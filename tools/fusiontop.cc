// fusiontop — live text dashboard over a fusionqd's STATS exposition.
//
// One-shot by default: connect, fetch STATS (FUSIONQ/1), render the service
// counters and the per-tenant SLO table, exit. With --interval=N it
// refreshes every N seconds until interrupted (or --count renders elapse).
// --raw skips rendering and prints the exposition text verbatim — handy for
// piping into files or diffing two snapshots.
//
// Usage:
//   fusiontop --connect=HOST:PORT [--interval=SECONDS] [--count=N] [--raw]
//   fusiontop --catalog=FILE --sql=QUERY --smoke   # in-process self-test
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cli/catalog_config.h"
#include "cli/client_flags.h"
#include "mediator/client.h"
#include "mediator/service.h"
#include "obs/exposition.h"
#include "protocol/socket.h"

namespace fusion {
namespace {

struct Args {
  std::string connect;
  std::string client_id = "fusiontop";
  int interval = 0;  // seconds between refreshes; 0 = one shot
  int count = 0;     // renders before exiting; 0 = until interrupted
  bool raw = false;
  std::string catalog_path;  // --smoke
  std::string sql;           // --smoke
  bool smoke = false;
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "fusiontop — live dashboard over a fusionqd's STATS\n\n"
      "usage: fusiontop --connect=HOST:PORT [options]\n\n"
      "  --connect=H:P    the fusionqd to watch\n"
      "  --client-id=S    identity for the STATS requests\n"
      "                   (default 'fusiontop')\n"
      "  --interval=N     refresh every N seconds (default: one shot)\n"
      "  --count=N        exit after N renders (default: until ^C;\n"
      "                   meaningful with --interval)\n"
      "  --raw            print the exposition text verbatim, no rendering\n"
      "  --smoke          in-process self-test: serve a catalog on an\n"
      "                   ephemeral port, run one query (requires --sql),\n"
      "                   then render the dashboard against it\n"
      "  --catalog=FILE   --smoke's catalog config\n"
      "  --sql=QUERY      --smoke's warm-up query\n");
}

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (ParseFlagValue(a, "--connect", &args.connect)) continue;
    if (ParseFlagValue(a, "--client-id", &args.client_id)) continue;
    if (ParseFlagValue(a, "--catalog", &args.catalog_path)) continue;
    if (ParseFlagValue(a, "--sql", &args.sql)) continue;
    std::string number;
    if (ParseFlagValue(a, "--interval", &number)) {
      args.interval = std::atoi(number.c_str());
      if (args.interval < 0) {
        return Status::InvalidArgument("--interval must be >= 0");
      }
      continue;
    }
    if (ParseFlagValue(a, "--count", &number)) {
      args.count = std::atoi(number.c_str());
      if (args.count < 0) {
        return Status::InvalidArgument("--count must be >= 0");
      }
      continue;
    }
    if (std::strcmp(a, "--raw") == 0) {
      args.raw = true;
      continue;
    }
    if (std::strcmp(a, "--smoke") == 0) {
      args.smoke = true;
      continue;
    }
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      args.help = true;
      continue;
    }
    return Status::InvalidArgument(std::string("unknown argument: ") + a);
  }
  return args;
}

double Value(const StatsExposition& stats, const std::string& name) {
  const StatsSample* sample = stats.Find(name);
  return sample == nullptr ? 0.0 : sample->value;
}

double TenantValue(const StatsExposition& stats, const std::string& name,
                   const std::string& tenant) {
  const StatsSample* sample = stats.Find(name, tenant);
  return sample == nullptr ? 0.0 : sample->value;
}

double TenantQuantile(const StatsExposition& stats, const std::string& tenant,
                      const char* quantile) {
  for (const StatsSample& sample : stats.samples) {
    if (sample.name != "tenant_latency_ms") continue;
    const std::string* t = sample.Label("tenant");
    const std::string* q = sample.Label("quantile");
    if (t != nullptr && *t == tenant && q != nullptr && *q == quantile) {
      return sample.value;
    }
  }
  return 0.0;
}

/// Every tenant named anywhere in the exposition, in first-seen (i.e.
/// lexicographic, since samples are sorted) order.
std::vector<std::string> Tenants(const StatsExposition& stats) {
  std::vector<std::string> tenants;
  for (const StatsSample& sample : stats.samples) {
    if (sample.name != "tenant_requests_total") continue;
    const std::string* tenant = sample.Label("tenant");
    if (tenant != nullptr) tenants.push_back(*tenant);
  }
  return tenants;
}

void Render(const std::string& server, const StatsExposition& stats) {
  std::printf("== %s — fusionq-stats schema %d ==\n", server.c_str(),
              stats.schema);
  std::printf(
      "service: requests=%.0f shed=%.0f cancelled=%.0f queue=%.0f "
      "clients=%.0f\n",
      Value(stats, "service_requests_total"),
      Value(stats, "service_shedded_total"),
      Value(stats, "service_cancelled_total"),
      Value(stats, "service_queue_depth"),
      Value(stats, "service_active_clients"));
  std::printf(
      "cache:   hits=%.0f misses=%.0f containment=%.0f entries=%.0f "
      "bytes=%.0f\n",
      Value(stats, "cache_hits_total"), Value(stats, "cache_misses_total"),
      Value(stats, "cache_containment_hits_total"),
      Value(stats, "cache_entries"), Value(stats, "cache_bytes"));
  std::printf(
      "rpc:     requests=%.0f served=%.0f bytes_out=%.0f bytes_in=%.0f\n",
      Value(stats, "rpc_requests_total"),
      Value(stats, "rpc_server_requests_total"),
      Value(stats, "rpc_bytes_sent"), Value(stats, "rpc_bytes_received"));
  const std::vector<std::string> tenants = Tenants(stats);
  if (tenants.empty()) {
    std::printf("tenants: none\n");
    return;
  }
  std::printf("%-16s %7s %5s %5s %5s %6s %8s %8s %8s %10s\n", "TENANT", "REQ",
              "ERR", "SHED", "DEGR", "ERR%", "P50ms", "P95ms", "P99ms",
              "COST");
  for (const std::string& tenant : tenants) {
    std::printf(
        "%-16s %7.0f %5.0f %5.0f %5.0f %5.1f%% %8.2f %8.2f %8.2f %10.3f\n",
        tenant.c_str(), TenantValue(stats, "tenant_requests_total", tenant),
        TenantValue(stats, "tenant_errors_total", tenant),
        TenantValue(stats, "tenant_shed_total", tenant),
        TenantValue(stats, "tenant_degraded_total", tenant),
        100.0 * TenantValue(stats, "tenant_error_rate", tenant),
        TenantQuantile(stats, tenant, "0.5"),
        TenantQuantile(stats, tenant, "0.95"),
        TenantQuantile(stats, tenant, "0.99"),
        TenantValue(stats, "tenant_metered_cost_total", tenant));
  }
}

int Watch(const Args& args, Client& client) {
  int renders = 0;
  for (;;) {
    const Result<std::string> text = client.Stats();
    if (!text.ok()) {
      std::fprintf(stderr, "stats: %s\n", text.status().ToString().c_str());
      return 1;
    }
    if (args.raw) {
      std::printf("%s", text->c_str());
    } else {
      const Result<StatsExposition> stats = ParseStatsText(*text);
      if (!stats.ok()) {
        std::fprintf(stderr, "stats: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      Render(client.server(), *stats);
    }
    ++renders;
    if (args.interval == 0) return 0;
    if (args.count > 0 && renders >= args.count) return 0;
    std::printf("\n");
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(args.interval));
  }
}

/// --smoke: stand up a QueryService on an ephemeral port in this process,
/// warm it with one query, and render the dashboard against it — proves the
/// STATS verb, the exposition parser, and the renderer end to end over real
/// sockets.
int Smoke(const Args& args) {
  if (args.catalog_path.empty() || args.sql.empty()) {
    std::fprintf(stderr, "--smoke requires --catalog and --sql\n");
    return 2;
  }
  auto catalog = LoadCatalogFromFile(args.catalog_path);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog: %s\n", catalog.status().ToString().c_str());
    return 1;
  }
  auto listener = TcpListener::Bind("127.0.0.1", 0);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(listener->port());
  QueryService::Options options;
  options.client.use_cache = true;
  QueryService service(Mediator(std::move(catalog).value()), options);
  std::vector<std::thread> server_threads;
  std::thread acceptor([&] {
    for (int i = 0; i < 2; ++i) {
      Result<MessageSocket> accepted = listener->Accept();
      if (!accepted.ok()) return;
      server_threads.emplace_back(
          [&service, socket = std::move(accepted).value()]() mutable {
            service.ServeConnection(std::move(socket));
          });
    }
  });

  int exit_code = 1;
  {
    auto querier = Client::Builder()
                       .To(Client::Target::Remote(endpoint))
                       .ClientId("smoke-tenant")
                       .Build();
    auto watcher = Client::Builder()
                       .To(Client::Target::Remote(endpoint))
                       .ClientId(args.client_id)
                       .Build();
    if (!querier.ok() || !watcher.ok()) {
      std::fprintf(stderr, "smoke: connect failed\n");
      return 1;
    }
    const auto answer = querier->QuerySql(args.sql);
    if (!answer.ok()) {
      std::fprintf(stderr, "smoke: query: %s\n",
                   answer.status().ToString().c_str());
      return 1;
    }
    Args once = args;
    once.interval = 0;
    exit_code = Watch(once, *watcher);
    // Clients hang up here, releasing the serve loops.
  }
  acceptor.join();
  for (std::thread& t : server_threads) t.join();
  if (exit_code == 0) std::printf("fusiontop smoke: ok\n");
  return exit_code;
}

int Run(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  if (args->help || (args->connect.empty() && !args->smoke)) {
    PrintUsage();
    return args->help ? 0 : 2;
  }
  if (args->smoke) return Smoke(*args);
  auto client_or = Client::Builder()
                       .To(Client::Target::Remote(args->connect))
                       .ClientId(args->client_id)
                       .Build();
  if (!client_or.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  Client client = std::move(client_or).value();
  return Watch(*args, client);
}

}  // namespace
}  // namespace fusion

int main(int argc, char** argv) { return fusion::Run(argc, argv); }
