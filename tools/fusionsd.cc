// fusionsd — the fusion source daemon.
//
// Serves ONE source from a catalog config over FUSIONP/1 TCP: the
// wrapper-side endpoint a mediator's RemoteSource dials. Run one fusionsd
// per source (or several per source, on different ports, for replica
// failover — every replica of a source serves the same data under the same
// name), then point a mediator catalog at them with `endpoint = host:port`
// lines instead of `csv = ...`.
//
// Usage:
//   fusionsd --catalog=<config.ini> --source=NAME
//            [--host=127.0.0.1] [--port=0] [--port-file=PATH]
//            [--chaos-drop-rate=P ... --chaos-seed=N]
//
// --port=0 (the default) binds an ephemeral port; the actual port is
// printed on the "serving" line and written to --port-file, so harnesses
// can spawn replicas without port bookkeeping. The --chaos-* flags inject
// seeded faults at this replica's edge (see protocol/chaos.h) — the way
// the chaos tests and drills abuse a "real" networked source.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cli/catalog_config.h"
#include "cli/client_flags.h"  // ParseFlagValue
#include "common/file_util.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "protocol/chaos.h"
#include "protocol/source_server.h"

namespace fusion {
namespace {

struct Args {
  std::string catalog_path;
  std::string source;  // which [source NAME] section to serve
  std::string host = "127.0.0.1";
  int port = 0;
  std::string port_file;
  ChaosPolicy chaos;
  bool chaos_seed_set = false;
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "fusionsd — fusion source daemon (FUSIONP/1 over TCP)\n\n"
      "usage: fusionsd --catalog=FILE --source=NAME [options]\n\n"
      "  --catalog=FILE   INI catalog config naming the source's data\n"
      "  --source=NAME    which [source NAME] section to serve (may be\n"
      "                   omitted when the catalog has exactly one source)\n"
      "  --host=H         listen address (default 127.0.0.1)\n"
      "  --port=P         listen port; 0 = ephemeral (default), printed on\n"
      "                   startup\n"
      "  --port-file=PATH write the bound port here once serving (the\n"
      "                   readiness hook for replica-spawning scripts)\n"
      "  --chaos-drop-rate=P / --chaos-torn-rate=P / --chaos-delay-rate=P\n"
      "  --chaos-delay-ms=MS / --chaos-refuse-rate=P / --chaos-hang-rate=P\n"
      "  --chaos-hang-ms=MS / --chaos-seed=N\n"
      "                   seeded fault injection at this replica's edge\n"
      "                   (same meanings as fusionqd's --chaos-* flags)\n");
}

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (ParseFlagValue(a, "--catalog", &args.catalog_path)) continue;
    if (ParseFlagValue(a, "--source", &args.source)) continue;
    if (ParseFlagValue(a, "--host", &args.host)) continue;
    if (ParseFlagValue(a, "--port-file", &args.port_file)) continue;
    std::string number;
    if (ParseFlagValue(a, "--port", &number)) {
      args.port = std::atoi(number.c_str());
      if (args.port < 0 || args.port > 65535) {
        return Status::InvalidArgument("--port must be in [0, 65535]");
      }
      continue;
    }
    bool chaos_rate = false;
    double* rate = nullptr;
    if (ParseFlagValue(a, "--chaos-drop-rate", &number)) {
      rate = &args.chaos.drop_rate;
      chaos_rate = true;
    } else if (ParseFlagValue(a, "--chaos-torn-rate", &number)) {
      rate = &args.chaos.torn_write_rate;
      chaos_rate = true;
    } else if (ParseFlagValue(a, "--chaos-delay-rate", &number)) {
      rate = &args.chaos.delay_rate;
      chaos_rate = true;
    } else if (ParseFlagValue(a, "--chaos-refuse-rate", &number)) {
      rate = &args.chaos.accept_refuse_rate;
      chaos_rate = true;
    } else if (ParseFlagValue(a, "--chaos-hang-rate", &number)) {
      rate = &args.chaos.hang_rate;
      chaos_rate = true;
    }
    if (chaos_rate) {
      *rate = std::atof(number.c_str());
      if (*rate < 0.0 || *rate > 1.0) {
        return Status::InvalidArgument(
            std::string("chaos rates must be in [0, 1]: ") + a);
      }
      continue;
    }
    if (ParseFlagValue(a, "--chaos-delay-ms", &number)) {
      args.chaos.delay_ms = std::atof(number.c_str());
      continue;
    }
    if (ParseFlagValue(a, "--chaos-hang-ms", &number)) {
      args.chaos.hang_ms = std::atof(number.c_str());
      continue;
    }
    if (ParseFlagValue(a, "--chaos-seed", &number)) {
      args.chaos.seed = static_cast<uint64_t>(
          std::strtoull(number.c_str(), nullptr, 10));
      args.chaos_seed_set = true;
      continue;
    }
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      args.help = true;
      continue;
    }
    return Status::InvalidArgument(std::string("unknown argument: ") + a);
  }
  return args;
}

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Serve(const Args& args) {
  auto text = ReadFileToString(args.catalog_path);
  if (!text.ok()) {
    std::fprintf(stderr, "catalog: %s\n", text.status().ToString().c_str());
    return 1;
  }
  auto specs = ParseCatalogConfig(text.value());
  if (!specs.ok()) {
    std::fprintf(stderr, "catalog: %s\n", specs.status().ToString().c_str());
    return 1;
  }
  const SourceSpecConfig* spec = nullptr;
  if (args.source.empty()) {
    if (specs->size() != 1) {
      std::fprintf(stderr,
                   "catalog defines %zu sources; pick one with --source\n",
                   specs->size());
      return 2;
    }
    spec = &specs->front();
  } else {
    for (const SourceSpecConfig& s : *specs) {
      if (s.name == args.source) spec = &s;
    }
    if (spec == nullptr) {
      std::fprintf(stderr, "catalog has no source '%s'\n",
                   args.source.c_str());
      return 2;
    }
  }
  const size_t slash = args.catalog_path.rfind('/');
  const std::string base_dir =
      slash == std::string::npos ? "." : args.catalog_path.substr(0, slash);
  auto wrapper = LoadSourceWrapper(*spec, base_dir);
  if (!wrapper.ok()) {
    std::fprintf(stderr, "source: %s\n", wrapper.status().ToString().c_str());
    return 1;
  }

  TcpSourceServer::Options options;
  options.host = args.host;
  options.port = args.port;
  options.chaos = args.chaos;
  if (options.chaos.enabled() && !args.chaos_seed_set) {
    options.chaos.seed = GlobalSeed(options.chaos.seed);
  }
  TcpSourceServer server(std::move(wrapper).value(), options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bind: %s\n", started.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("fusionsd: serving source '%s' on %s:%d%s\n",
              spec->name.c_str(), args.host.c_str(), server.port(),
              options.chaos.enabled() ? " (chaos enabled)" : "");
  std::fflush(stdout);
  if (!args.port_file.empty()) {
    // Atomic write: the readiness file is a polled signal, and a fast
    // reader must see the whole port or no file at all — never a torn
    // prefix (the fopen-then-fprintf it replaced created an *empty* file
    // before the port landed).
    const Status wrote = WriteFileAtomic(
        args.port_file, std::to_string(server.port()) + "\n");
    if (!wrote.ok()) {
      std::fprintf(stderr, "port-file: %s\n", wrote.message().c_str());
      return 1;
    }
  }

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("fusionsd: shutting down\n");
  server.Stop();
  return 0;
}

int Run(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  if (args->help || args->catalog_path.empty()) {
    PrintUsage();
    return args->help ? 0 : 2;
  }
  return Serve(*args);
}

}  // namespace
}  // namespace fusion

int main(int argc, char** argv) { return fusion::Run(argc, argv); }
