#!/usr/bin/env python3
"""Compare the two most recent bench_macro trajectory files.

bench_macro writes a schema-versioned BENCH_<date>.json per run (repo root
by default). This tool finds the two most recent ones, prints a metric
diff, and exits nonzero when throughput or tail latency regressed beyond
the threshold — the perf gate the verify workflow runs after a bench.

Usage:
  tools/bench_diff.py [--dir PATH] [--threshold PCT] [FILE_OLD FILE_NEW]

With two positional files, compares exactly those. Otherwise scans --dir
(default: the repo root, i.e. the parent of this script's directory) for
BENCH_*.json and compares the two lexically newest (the date-stamped names
sort chronologically). Exits 0 with a note when fewer than two files
exist — a fresh checkout has no trajectory yet, and that is not a failure.

Stdlib only; no third-party imports.
"""

import argparse
import glob
import json
import os
import sys

# A regression gate, not a noise detector: QPS dropping or p99 rising by
# more than this fraction fails the run.
DEFAULT_THRESHOLD = 0.20

# (json path under "metrics", label, higher_is_better)
TRACKED = [
    (("qps",), "QPS", True),
    (("latency_ms", "p50"), "p50 latency ms", False),
    (("latency_ms", "p95"), "p95 latency ms", False),
    (("latency_ms", "p99"), "p99 latency ms", False),
    (("cache", "hit_rate"), "cache hit rate", True),
    (("cache", "containment_rate"), "containment rate", True),
    (("metered_cost_per_query",), "cost/query", False),
]

# Only these gate the exit code; the rest are informational (cache rates
# legitimately move when the workload config changes).
GATED = {"QPS", "p99 latency ms"}

# Schema history: v1 had no "tenants" section and no stats_samples; v2
# (per-tenant SLO from the server's STATS exposition) added both; v3 added
# the "chaos" section (fault-injection profile, recovery counters, and the
# divergence count under chaos); v4 added the "local_eval" section (columnar
# batch-kernel counters and Bloom-skipped semijoin probes) and makes the
# oracle divergence gate mandatory — a v4 run must carry an "oracle" block
# reporting zero divergences; v5 added the "shards" section (per-shard
# forward/QPS split and the router's warm-hit locality, gated >= 0.95 when
# present). Old files stay comparable — missing fields are skipped, with a
# drift note.
KNOWN_SCHEMAS = {1, 2, 3, 4, 5}

# A warm repeated query must land on the shard that already holds it: the
# rendezvous hash is deterministic, so anything below this is a routing
# bug (or a fleet resize mid-run), not noise.
MIN_WARM_HIT_LOCALITY = 0.95


def lookup(metrics, path):
    node = metrics
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema_version") not in KNOWN_SCHEMAS:
        sys.exit(f"{path}: unsupported schema_version "
                 f"{data.get('schema_version')!r} "
                 f"(expected one of {sorted(KNOWN_SCHEMAS)})")
    if "metrics" not in data:
        sys.exit(f"{path}: no metrics block")
    return data


def warn_field_drift(old, new):
    """Fields appearing or vanishing between runs are usually a schema
    change landing; name them so the drift is deliberate, not silent."""
    for scope, a, b in [("", old, new), ("metrics.", old.get("metrics", {}),
                                         new.get("metrics", {}))]:
        added = sorted(set(b) - set(a))
        removed = sorted(set(a) - set(b))
        if added:
            print(f"bench_diff: note: new field(s) in the newer run: "
                  f"{', '.join(scope + k for k in added)}")
        if removed:
            print(f"bench_diff: note: field(s) gone from the newer run: "
                  f"{', '.join(scope + k for k in removed)}")


def main():
    parser = argparse.ArgumentParser(
        description="diff the two most recent BENCH_*.json files")
    parser.add_argument("files", nargs="*",
                        help="explicit OLD NEW files (default: scan --dir)")
    parser.add_argument("--dir", default=None,
                        help="directory to scan for BENCH_*.json "
                             "(default: repo root)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD * 100,
                        help="regression threshold in percent (default 20)")
    args = parser.parse_args()
    threshold = args.threshold / 100.0

    if args.files and len(args.files) != 2:
        parser.error("pass exactly two files, or none to scan --dir")
    if args.files:
        old_path, new_path = args.files
    else:
        root = args.dir or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        found = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
        if len(found) < 2:
            print(f"bench_diff: {len(found)} trajectory file(s) in {root}; "
                  "need two to compare — nothing to do")
            return 0
        old_path, new_path = found[-2], found[-1]

    old, new = load(old_path), load(new_path)
    print(f"bench_diff: {os.path.basename(old_path)} "
          f"({old.get('date', '?')}) -> {os.path.basename(new_path)} "
          f"({new.get('date', '?')})")
    if old.get("config") != new.get("config"):
        print("bench_diff: note: configs differ; deltas may reflect the "
              "workload change, not the code")
    warn_field_drift(old, new)

    regressions = []
    for path, label, higher_is_better in TRACKED:
        before = lookup(old["metrics"], path)
        after = lookup(new["metrics"], path)
        if before is None or after is None:
            continue
        if before == 0:
            delta_text = "n/a"
            regressed = False
        else:
            delta = (after - before) / before
            delta_text = f"{delta:+.1%}"
            worse = -delta if higher_is_better else delta
            regressed = label in GATED and worse > threshold
        flag = "  REGRESSION" if regressed else ""
        print(f"  {label:<20} {before:>12.4f} -> {after:>12.4f}  "
              f"{delta_text}{flag}")
        if regressed:
            regressions.append(label)

    # Per-tenant p99 (schema >= 2): the aggregate p99 can hide one tenant's
    # tail regressing while the others improve, so each tenant present in
    # both runs gates independently.
    old_tenants = old.get("tenants", {}) or {}
    new_tenants = new.get("tenants", {}) or {}
    for tenant in sorted(set(old_tenants) & set(new_tenants)):
        before = lookup(old_tenants[tenant], ("latency_ms", "p99"))
        after = lookup(new_tenants[tenant], ("latency_ms", "p99"))
        if before is None or after is None or before == 0:
            continue
        delta = (after - before) / before
        regressed = delta > threshold
        flag = "  REGRESSION" if regressed else ""
        label = f"{tenant} p99 ms"
        print(f"  {label:<20} {before:>12.4f} -> {after:>12.4f}  "
              f"{delta:+.1%}{flag}")
        if regressed:
            regressions.append(label)

    # Columnar data-plane counters (schema >= 4): informational — they show
    # how much of the run rode the batch kernels and the Bloom pre-filter,
    # and move with workload shape, not code quality.
    local_eval = new.get("local_eval")
    if isinstance(local_eval, dict):
        print(f"  local_eval: {lookup(local_eval, ('batch_evals',))} batch "
              f"evals over {lookup(local_eval, ('batch_rows_evaluated',))} "
              f"rows; {lookup(local_eval, ('semijoin_probes_skipped',))} "
              "semijoin probes bloom-skipped")

    # Sharded-fleet gate (schema >= 5, runs with --shards > 1): print the
    # per-shard split and hold the router's warm-hit locality to the floor.
    shards = new.get("shards")
    if isinstance(shards, dict):
        per_shard = shards.get("per_shard") or []
        split = ", ".join(
            f"{entry.get('name')}={entry.get('forwards')}"
            for entry in per_shard if isinstance(entry, dict))
        print(f"  shards: {shards.get('count')} "
              f"({split}); {shards.get('failovers')} failovers, "
              f"{shards.get('invalidate_fanouts')} invalidate fan-outs, "
              f"{shards.get('cross_shard_bytes')} bytes forwarded")
        locality = lookup(shards, ("warm_hit_locality",))
        warm_forwards = lookup(shards, ("warm_forwards",)) or 0
        if locality is not None:
            print(f"  warm hit locality    {locality:.4f} "
                  f"(over {warm_forwards} warm forwards; "
                  f"floor {MIN_WARM_HIT_LOCALITY})")
            if warm_forwards > 0 and locality < MIN_WARM_HIT_LOCALITY:
                regressions.append("warm hit locality")

    old_div = lookup(old.get("oracle", {}), ("divergences",))
    new_div = lookup(new.get("oracle", {}), ("divergences",))
    if new_div is not None:
        print(f"  oracle divergences   {old_div} -> {new_div}")
        if new_div and new_div > 0:
            regressions.append("oracle divergences")
    elif new.get("schema_version", 0) >= 4:
        # From v4 on the answers-divergence gate is not optional: a run that
        # vectorized the data plane but dropped its oracle evidence does not
        # pass.
        print("  oracle divergences   missing (required from schema 4 on)")
        regressions.append("oracle divergences missing")

    # Chaos gate (schema >= 3): a run served under fault injection must
    # still be byte-identical to the serial oracle — correctness under
    # chaos is absolute, not thresholded. The recovery counters are
    # informational (they scale with the profile's rates, not with code
    # quality).
    chaos = new.get("chaos", {}) or {}
    if chaos.get("enabled"):
        chaos_div = lookup(chaos, ("divergences",))
        print(f"  chaos profile '{chaos.get('profile')}': "
              f"{lookup(chaos, ('drops',))} drops, "
              f"{lookup(chaos, ('torn_writes',))} torn writes, "
              f"{lookup(chaos, ('client_reconnects',))} reconnects, "
              f"{lookup(chaos, ('service_replays',))} replays; "
              f"divergences {chaos_div}")
        if chaos_div is None or chaos_div > 0:
            regressions.append("divergences under chaos")

    if regressions:
        print(f"bench_diff: FAILED — {', '.join(regressions)} beyond "
              f"{threshold:.0%}")
        return 1
    print("bench_diff: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
