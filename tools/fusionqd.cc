// fusionqd — the fusion query service daemon.
//
// Loads a catalog once, builds ONE shared QuerySession (result cache,
// circuit breakers, learned statistics), and serves concurrent FUSIONQ/1
// clients over TCP: every accepted connection gets a thread running the
// service's receive → dispatch → reply loop, and every query funnels
// through the same admission queue, fair per-client scheduler, and executor
// pool. Point `fusionq --connect=host:port` (or any FUSIONQ/1 speaker) at
// it.
//
// Usage:
//   fusionqd --catalog=<config.ini> [--host=127.0.0.1] [--port=4631]
//            [--workers=N] [--max-queue=N] [--name=fusionqd]
//            [client flags: --strategy/--stats/--cache/...]
//   fusionqd --catalog=... --sql=QUERY --smoke   # in-process self-test
//
// --port=0 binds an ephemeral port; the actual port is printed on the
// "listening on" line, so scripts can parse it.
#include <sys/socket.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cli/catalog_config.h"
#include "cli/client_flags.h"
#include "common/file_util.h"
#include "common/rng.h"
#include "mediator/client.h"
#include "mediator/service.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "protocol/chaos.h"
#include "protocol/socket.h"

namespace fusion {
namespace {

struct Args {
  std::string catalog_path;
  std::string host = "127.0.0.1";
  int port = 4631;
  int workers = 4;
  int max_queue = 64;
  std::string name = "fusionqd";
  /// Readiness hook: the bound port is written here once the daemon is
  /// accepting, so harnesses using --port=0 can poll the file instead of
  /// parsing stdout.
  std::string port_file;
  std::string sql;   // --smoke's test query
  /// Record spans for every served request; write Chrome trace-event JSON
  /// here at shutdown. Served spans carry the client's trace ids, so this
  /// file merges with client-side exports (tools/trace_merge.py) into one
  /// stitched distributed trace.
  std::string trace_out;
  /// Fault injection at the daemon's own edge (--chaos-* flags): every
  /// accepted connection may be refused, reset, torn, delayed, or hung per
  /// this seeded policy — the daemon abuses itself so operators can drill
  /// client recovery against a real deployment.
  ChaosPolicy chaos;
  bool chaos_seed_set = false;
  bool smoke = false;
  bool help = false;
  ClientFlags client;

  Args() {
    // Daemon defaults differ from the one-shot CLI: a long-lived service
    // exists to amortize — result cache on, session-learned statistics.
    client.cache = true;
    client.stats = "session";
  }
};

void PrintUsage() {
  std::printf(
      "fusionqd — fusion query service daemon (FUSIONQ/1 over TCP)\n\n"
      "usage: fusionqd --catalog=FILE [options]\n\n"
      "  --catalog=FILE   INI catalog config (see examples/data/)\n"
      "  --host=H         listen address (default 127.0.0.1)\n"
      "  --port=P         listen port; 0 = ephemeral, printed on startup\n"
      "                   (default 4631)\n"
      "  --workers=N      concurrently running queries (default 4)\n"
      "  --max-queue=N    admission bound: queued requests beyond this are\n"
      "                   shed with Unavailable (default 64)\n"
      "  --name=S         server name reported in the HELLO handshake\n"
      "  --port-file=PATH write the bound port here once listening (the\n"
      "                   readiness hook for scripts using --port=0)\n"
      "  --trace=FILE     record spans for every served request; write\n"
      "                   Chrome trace-event JSON to FILE at shutdown.\n"
      "                   Spans keep the submitting client's trace ids, so\n"
      "                   tools/trace_merge.py can stitch this file with\n"
      "                   client-side exports into one distributed trace\n"
      "  --chaos-drop-rate=P    probability a send/receive resets the\n"
      "                         connection instead (default 0)\n"
      "  --chaos-torn-rate=P    probability a send ships half the frame and\n"
      "                         closes (default 0)\n"
      "  --chaos-delay-rate=P   probability an operation is delayed\n"
      "  --chaos-delay-ms=MS    the injected delay (default 2)\n"
      "  --chaos-refuse-rate=P  probability an accepted connection is closed\n"
      "                         before serving a byte (default 0)\n"
      "  --chaos-hang-rate=P    probability an operation hangs hang-ms\n"
      "  --chaos-hang-ms=MS     the injected hang (default 50)\n"
      "  --chaos-seed=N         fault-schedule seed (default: FUSION_SEED,\n"
      "                         else 1) — same seed, same fault schedule\n"
      "  --smoke          in-process self-test: serve on an ephemeral port,\n"
      "                   run two concurrent clients over real sockets\n"
      "                   (requires --sql), verify identical answers and a\n"
      "                   warm second query, then exit\n"
      "  --sql=QUERY      the query --smoke submits\n"
      "\nshared client flags (same meanings as fusionq; defaults here:\n"
      "--cache on, --stats=session):\n%s",
      ClientFlags::Help());
}

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    Status client_error = Status::Ok();
    if (args.client.Consume(a, &client_error)) {
      FUSION_RETURN_IF_ERROR(client_error);
      continue;
    }
    if (ParseFlagValue(a, "--catalog", &args.catalog_path)) continue;
    if (ParseFlagValue(a, "--host", &args.host)) continue;
    if (ParseFlagValue(a, "--name", &args.name)) continue;
    if (ParseFlagValue(a, "--port-file", &args.port_file)) continue;
    if (ParseFlagValue(a, "--sql", &args.sql)) continue;
    if (ParseFlagValue(a, "--trace", &args.trace_out)) continue;
    std::string number;
    if (ParseFlagValue(a, "--port", &number)) {
      args.port = std::atoi(number.c_str());
      if (args.port < 0 || args.port > 65535) {
        return Status::InvalidArgument("--port must be in [0, 65535]");
      }
      continue;
    }
    if (ParseFlagValue(a, "--workers", &number)) {
      args.workers = std::atoi(number.c_str());
      if (args.workers < 1) {
        return Status::InvalidArgument("--workers must be >= 1");
      }
      continue;
    }
    if (ParseFlagValue(a, "--max-queue", &number)) {
      args.max_queue = std::atoi(number.c_str());
      if (args.max_queue < 1) {
        return Status::InvalidArgument("--max-queue must be >= 1");
      }
      continue;
    }
    bool chaos_rate = false;
    double* rate = nullptr;
    if (ParseFlagValue(a, "--chaos-drop-rate", &number)) {
      rate = &args.chaos.drop_rate;
      chaos_rate = true;
    } else if (ParseFlagValue(a, "--chaos-torn-rate", &number)) {
      rate = &args.chaos.torn_write_rate;
      chaos_rate = true;
    } else if (ParseFlagValue(a, "--chaos-delay-rate", &number)) {
      rate = &args.chaos.delay_rate;
      chaos_rate = true;
    } else if (ParseFlagValue(a, "--chaos-refuse-rate", &number)) {
      rate = &args.chaos.accept_refuse_rate;
      chaos_rate = true;
    } else if (ParseFlagValue(a, "--chaos-hang-rate", &number)) {
      rate = &args.chaos.hang_rate;
      chaos_rate = true;
    }
    if (chaos_rate) {
      *rate = std::atof(number.c_str());
      if (*rate < 0.0 || *rate > 1.0) {
        return Status::InvalidArgument(
            std::string("chaos rates must be in [0, 1]: ") + a);
      }
      continue;
    }
    if (ParseFlagValue(a, "--chaos-delay-ms", &number)) {
      args.chaos.delay_ms = std::atof(number.c_str());
      continue;
    }
    if (ParseFlagValue(a, "--chaos-hang-ms", &number)) {
      args.chaos.hang_ms = std::atof(number.c_str());
      continue;
    }
    if (ParseFlagValue(a, "--chaos-seed", &number)) {
      args.chaos.seed = static_cast<uint64_t>(
          std::strtoull(number.c_str(), nullptr, 10));
      args.chaos_seed_set = true;
      continue;
    }
    if (std::strcmp(a, "--smoke") == 0) {
      args.smoke = true;
      continue;
    }
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      args.help = true;
      continue;
    }
    return Status::InvalidArgument(std::string("unknown argument: ") + a);
  }
  return args;
}

/// The accepted connections' fds, so shutdown can unblock their Receive()s
/// (shutdown(2) wakes a blocked recv; close alone does not). Registered at
/// accept time — the fd number survives the socket being moved into its
/// serve thread.
class ConnectionRegistry {
 public:
  void Register(int fd) {
    std::lock_guard<std::mutex> lock(mutex_);
    fds_.push_back(fd);
  }

  void ShutdownAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : fds_) ::shutdown(fd, SHUT_RDWR);
  }

 private:
  std::mutex mutex_;
  std::vector<int> fds_;
};

// The listening fd, for the async-signal-safe shutdown path: SIGINT/SIGTERM
// shut it down and close it, which makes the blocked accept() return and
// the main loop exit. shutdown(2) first — close alone does not wake an
// accept() blocked on another thread, and the signal may land on any.
std::atomic<int> g_listener_fd{-1};

void HandleSignal(int) {
  const int fd = g_listener_fd.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<QueryService::Options> ServiceOptionsFromArgs(const Args& args) {
  QueryService::Options options;
  options.server_name = args.name;
  options.workers = args.workers;
  options.max_queue = static_cast<size_t>(args.max_queue);
  FUSION_ASSIGN_OR_RETURN(options.client, args.client.ToClientOptions());
  return options;
}

int Serve(const Args& args) {
  auto catalog = LoadCatalogFromFile(args.catalog_path);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog: %s\n", catalog.status().ToString().c_str());
    return 1;
  }
  const size_t num_sources = catalog->size();
  const auto options = ServiceOptionsFromArgs(args);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 2;
  }
  auto listener = TcpListener::Bind(args.host, args.port);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  QueryService service(Mediator(std::move(catalog).value()), *options);
  if (!args.trace_out.empty()) Tracer::Global().Enable();

  g_listener_fd.store(listener->fd());
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("%s: listening on %s:%d (%zu sources, workers=%d, queue=%d)\n",
              args.name.c_str(), args.host.c_str(), listener->port(),
              num_sources, args.workers, args.max_queue);
  std::fflush(stdout);
  if (!args.port_file.empty()) {
    // Atomic write: the readiness file is a polled signal, and a fast
    // reader must see the whole port or no file at all — never a torn
    // prefix (the fopen-then-fprintf it replaced created an *empty* file
    // before the port landed).
    const Status wrote = WriteFileAtomic(
        args.port_file, std::to_string(listener->port()) + "\n");
    if (!wrote.ok()) {
      std::fprintf(stderr, "port-file: %s\n", wrote.message().c_str());
      return 1;
    }
  }

  std::shared_ptr<ChaosDecider> chaos;
  if (args.chaos.enabled()) {
    ChaosPolicy policy = args.chaos;
    // FUSION_SEED replays the whole daemon's fault schedule unless the
    // operator pinned one explicitly.
    if (!args.chaos_seed_set) policy.seed = GlobalSeed(policy.seed);
    chaos = std::make_shared<ChaosDecider>(policy);
    std::printf(
        "%s: chaos enabled (drop=%.3g torn=%.3g delay=%.3g refuse=%.3g "
        "hang=%.3g seed=%llu)\n",
        args.name.c_str(), policy.drop_rate, policy.torn_write_rate,
        policy.delay_rate, policy.accept_refuse_rate, policy.hang_rate,
        static_cast<unsigned long long>(policy.seed));
    std::fflush(stdout);
  }

  ConnectionRegistry connections;
  std::vector<std::thread> threads;
  for (;;) {
    Result<MessageSocket> accepted = listener->Accept();
    if (!accepted.ok()) break;  // listener closed: shutdown
    MessageSocket socket = std::move(accepted).value();
    if (ChaosRefuseAccept(chaos.get())) {
      socket.Close();
      continue;
    }
    connections.Register(socket.fd());
    threads.emplace_back(
        [&service, chaos](MessageSocket s) {
          service.ServeConnection(ChaosSocket(std::move(s), chaos));
        },
        std::move(socket));
  }
  // Signal path: reject new work, cancel in-flight queries, wake blocked
  // connection reads, then join everything.
  std::printf("%s: shutting down\n", args.name.c_str());
  service.Shutdown();
  connections.ShutdownAll();
  for (std::thread& t : threads) t.join();
  if (!args.trace_out.empty()) {
    const std::vector<SpanRecord> spans = Tracer::Global().Drain();
    const Status written = WriteChromeTrace(spans, args.trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "trace: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("%s: trace: %zu spans -> %s\n", args.name.c_str(),
                spans.size(), args.trace_out.c_str());
  }
  return 0;
}

/// --smoke: the daemon exercises its own serving path end to end, over real
/// sockets, inside one process — two concurrent clients submit the same
/// query, answers must match byte for byte, and a repeat query must be
/// answered warm (metered cost an order of magnitude below the first).
int Smoke(const Args& args) {
  if (args.sql.empty()) {
    std::fprintf(stderr, "--smoke requires --sql\n");
    return 2;
  }
  auto catalog = LoadCatalogFromFile(args.catalog_path);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog: %s\n", catalog.status().ToString().c_str());
    return 1;
  }
  const auto options = ServiceOptionsFromArgs(args);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 2;
  }
  auto listener = TcpListener::Bind("127.0.0.1", 0);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(listener->port());
  QueryService service(Mediator(std::move(catalog).value()), *options);

  // Serve exactly two connections, each on its own thread — the smoke's
  // clients below.
  std::vector<std::thread> server_threads;
  std::thread acceptor([&] {
    for (int i = 0; i < 2; ++i) {
      Result<MessageSocket> accepted = listener->Accept();
      if (!accepted.ok()) return;
      server_threads.emplace_back(
          [&service, socket = std::move(accepted).value()]() mutable {
            service.ServeConnection(std::move(socket));
          });
    }
  });

  auto first_or = Client::Builder()
                      .To(Client::Target::Remote(endpoint))
                      .ClientId("smoke-0")
                      .Build();
  if (!first_or.ok()) {
    std::fprintf(stderr, "smoke: connect: %s\n",
                 first_or.status().ToString().c_str());
    return 1;
  }
  // unique_ptr so the connection can be closed (below) before the serve
  // threads are joined — they run until their peer hangs up.
  auto first = std::make_unique<Client>(std::move(first_or).value());
  // Phase 1: one cold query pays the full metered cost.
  Result<ClientAnswer> cold = first->QuerySql(args.sql);
  if (!cold.ok()) {
    std::fprintf(stderr, "smoke: cold query failed: %s\n",
                 cold.status().ToString().c_str());
    return 1;
  }
  if (cold->cost <= 0.0) {
    std::fprintf(stderr, "smoke: cold query was free (cost %.3f) — "
                 "cannot demonstrate cache sharing\n", cold->cost);
    return 1;
  }
  // Phase 2: the same query from the *same* client and from a *different*
  // client, concurrently. Both must be answered warm — the second client
  // never asked anything before, so a cheap answer proves the cache is
  // shared across clients through the service path.
  Result<ClientAnswer> warm_same = Status::Unavailable("not run");
  Result<ClientAnswer> warm_other = Status::Unavailable("not run");
  std::thread same([&] { warm_same = first->QuerySql(args.sql); });
  std::thread other([&] {
    auto second = Client::Builder()
                      .To(Client::Target::Remote(endpoint))
                      .ClientId("smoke-1")
                      .Build();
    if (!second.ok()) {
      warm_other = second.status();
      return;
    }
    warm_other = second->QuerySql(args.sql);
  });
  same.join();
  other.join();
  first.reset();  // hang up so the serve loops (and their threads) exit
  acceptor.join();
  for (std::thread& t : server_threads) t.join();

  for (const auto* run : {&warm_same, &warm_other}) {
    if (!run->ok()) {
      std::fprintf(stderr, "smoke: warm query failed: %s\n",
                   run->status().ToString().c_str());
      return 1;
    }
  }
  const std::string answer = cold->items.ToString();
  if (warm_same->items.ToString() != answer ||
      warm_other->items.ToString() != answer) {
    std::fprintf(stderr, "smoke: answers diverge: %s / %s / %s\n",
                 answer.c_str(), warm_same->items.ToString().c_str(),
                 warm_other->items.ToString().c_str());
    return 1;
  }
  if (warm_same->cost > 0.1 * cold->cost ||
      warm_other->cost > 0.1 * cold->cost) {
    std::fprintf(stderr,
                 "smoke: no cache sharing across clients (cold %.3f, "
                 "warm %.3f and %.3f)\n",
                 cold->cost, warm_same->cost, warm_other->cost);
    return 1;
  }
  std::printf(
      "smoke: ok (answer %s; cold cost %.3f; warm costs %.3f / %.3f; "
      "second client shared the first's cache)\n",
      answer.c_str(), cold->cost, warm_same->cost, warm_other->cost);
  return 0;
}

int Run(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  if (args->help || args->catalog_path.empty()) {
    PrintUsage();
    return args->help ? 0 : 2;
  }
  return args->smoke ? Smoke(*args) : Serve(*args);
}

}  // namespace
}  // namespace fusion

int main(int argc, char** argv) { return fusion::Run(argc, argv); }
