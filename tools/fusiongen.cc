// fusiongen — synthetic federation generator for fusionq.
//
// Generates an overlapping-source fusion workload (see
// workload/synthetic.h for the data model) and writes it in fusionq's
// on-disk format: one CSV per source plus catalog.ini. Prints a ready-to-run
// fusionq invocation for the generated query.
//
// Usage:
//   fusiongen --out=DIR [--sources=N] [--entities=U] [--conditions=M]
//             [--coverage=0.3] [--selectivity=0.05] [--zipf=0]
//             [--native=1.0] [--bindings=0.0] [--partition] [--seed=1]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cli/catalog_export.h"
#include "common/str_util.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

void PrintUsage() {
  std::printf(
      "fusiongen — generate a synthetic federation for fusionq\n\n"
      "usage: fusiongen --out=DIR [options]\n\n"
      "  --out=DIR          output directory (must exist)\n"
      "  --sources=N        number of sources (default 5)\n"
      "  --entities=U       universe size (default 1000)\n"
      "  --conditions=M     number of query conditions (default 2)\n"
      "  --coverage=F       per-source entity coverage (default 0.3)\n"
      "  --selectivity=F    per-condition flag probability (default 0.1)\n"
      "  --zipf=T           source-size skew exponent (default 0)\n"
      "  --native=F         fraction of natively semijoin-capable sources\n"
      "  --bindings=F       fraction with passed-bindings support\n"
      "  --partition        traditional partitioned regime (no overlap)\n"
      "  --seed=K           deterministic seed (default 1)\n");
}

bool FlagValue(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

int Run(int argc, char** argv) {
  std::string out_dir;
  SyntheticSpec spec;
  spec.universe_size = 1000;
  spec.num_sources = 5;
  spec.num_conditions = 2;
  spec.selectivity_default = 0.1;
  spec.seed = 1;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    std::string v;
    if (FlagValue(a, "--out", &out_dir)) continue;
    if (FlagValue(a, "--sources", &v)) {
      spec.num_sources = static_cast<size_t>(std::atoll(v.c_str()));
      continue;
    }
    if (FlagValue(a, "--entities", &v)) {
      spec.universe_size = static_cast<size_t>(std::atoll(v.c_str()));
      continue;
    }
    if (FlagValue(a, "--conditions", &v)) {
      spec.num_conditions = static_cast<size_t>(std::atoll(v.c_str()));
      continue;
    }
    if (FlagValue(a, "--coverage", &v)) {
      spec.coverage = std::atof(v.c_str());
      continue;
    }
    if (FlagValue(a, "--selectivity", &v)) {
      spec.selectivity_default = std::atof(v.c_str());
      continue;
    }
    if (FlagValue(a, "--zipf", &v)) {
      spec.zipf_theta = std::atof(v.c_str());
      continue;
    }
    if (FlagValue(a, "--native", &v)) {
      spec.frac_native_semijoin = std::atof(v.c_str());
      continue;
    }
    if (FlagValue(a, "--bindings", &v)) {
      spec.frac_passed_bindings = std::atof(v.c_str());
      continue;
    }
    if (FlagValue(a, "--seed", &v)) {
      spec.seed = static_cast<uint64_t>(std::atoll(v.c_str()));
      continue;
    }
    if (std::strcmp(a, "--partition") == 0) {
      spec.partition_entities = true;
      continue;
    }
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      PrintUsage();
      return 0;
    }
    std::fprintf(stderr, "unknown argument: %s\n", a);
    PrintUsage();
    return 2;
  }
  if (out_dir.empty()) {
    PrintUsage();
    return 2;
  }

  const auto instance = GenerateSynthetic(spec);
  if (!instance.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  const Status exported = ExportCatalog(instance->catalog, out_dir);
  if (!exported.ok()) {
    std::fprintf(stderr, "export: %s\n", exported.ToString().c_str());
    return 1;
  }

  size_t total = 0;
  for (const SimulatedSource* s : instance->simulated) {
    total += s->relation().size();
  }
  std::printf("wrote %zu sources (%zu tuples total) to %s\n",
              instance->catalog.size(), total, out_dir.c_str());

  // Print a ready-to-run query in the paper's SQL form.
  std::string where;
  for (size_t i = 1; i < spec.num_conditions; ++i) {
    where += StrFormat("u1.M = u%zu.M AND ", i + 1);
  }
  for (size_t i = 0; i < spec.num_conditions; ++i) {
    where += StrFormat("u%zu.A%zu = 1%s", i + 1, i + 1,
                       i + 1 < spec.num_conditions ? " AND " : "");
  }
  std::string from;
  for (size_t i = 0; i < spec.num_conditions; ++i) {
    from += StrFormat("U u%zu%s", i + 1,
                      i + 1 < spec.num_conditions ? ", " : "");
  }
  std::printf(
      "\ntry:\n  fusionq --catalog=%s/catalog.ini --explain \\\n"
      "    --sql=\"SELECT u1.M FROM %s WHERE %s\"\n",
      out_dir.c_str(), from.c_str(), where.c_str());
  return 0;
}

}  // namespace
}  // namespace fusion

int main(int argc, char** argv) { return fusion::Run(argc, argv); }
