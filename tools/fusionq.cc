// fusionq — command-line fusion query processor.
//
// Two modes behind one fusion::Client facade:
//
//  - embedded (default): loads a catalog of sources from an INI-style
//    config (each source a CSV file plus capability/network profiles),
//    optimizes the fusion query written in the paper's SQL form, and
//    executes it in-process, printing the chosen plan, the answer, and a
//    metered cost report;
//  - connected (--connect=host:port): submits the query to a running
//    fusionqd over FUSIONQ/1 and prints the served answer — sharing that
//    daemon's result cache, breakers, and learned statistics with every
//    other connected client.
//
// Usage:
//   fusionq --catalog=<config.ini> --sql="SELECT u1.L FROM U u1, U u2
//           WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
//           [--strategy=...] [--stats=...] [--cache] [--repeat=N]
//           [--lazy] [--explain] [--ledger] [--parallelism=N]
//           [--trace=FILE] [--trace-summary] [--metrics]
//   fusionq --connect=127.0.0.1:4631 --sql="..." [--client-id=me]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cli/client_flags.h"
#include "common/file_util.h"
#include "common/str_util.h"
#include "mediator/client.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "plan/plan.h"
#include "plan/plan_serde.h"
#include "query/parser.h"

namespace fusion {
namespace {

struct Args {
  std::string catalog_path;
  std::string connect;      // fusionqd endpoint (connected mode)
  std::string client_id = "fusionq";
  std::string sql;
  bool explain = false;
  bool ledger = false;
  bool help = false;
  std::string plan_out;    // write the chosen plan in FPLAN/1 format
  std::string trace_out;   // write Chrome trace-event JSON file(s)
  bool trace_summary = false;  // print the per-category span rollup
  bool metrics = false;        // print the process metrics dump
  bool stats = false;          // print the live STATS exposition
  int repeat = 1;              // execute the query N times (cache demo)
  ClientFlags client;
};

void PrintUsage() {
  std::printf(
      "fusionq — fusion queries over autonomous sources (EDBT'98 repro)\n\n"
      "usage: fusionq --catalog=FILE --sql=QUERY [options]\n"
      "       fusionq --connect=HOST:PORT --sql=QUERY [options]\n\n"
      "  --catalog=FILE   INI catalog config (see examples/data/) —\n"
      "                   embedded mode: the full mediator runs in-process\n"
      "  --connect=H:P    connected mode: submit to a running fusionqd and\n"
      "                   share its session (cache, breakers, statistics);\n"
      "                   planning flags and --cache are the daemon's\n"
      "                   configuration and cannot be set per client\n"
      "  --client-id=S    fair-scheduling identity at the daemon\n"
      "                   (default 'fusionq')\n"
      "  --sql=QUERY      fusion query in the paper's SQL form\n"
      "%s"
      "  --explain        print the executed plan annotated with per-op\n"
      "                   metered cost, wall-clock time, and cache\n"
      "                   provenance (both modes; a connected server\n"
      "                   renders it from its own execution)\n"
      "  --stats          print the live STATS exposition — connected mode\n"
      "                   fetches the daemon's (per-tenant SLO table\n"
      "                   included); embedded mode renders this process's\n"
      "                   metrics. With --connect, works without --sql\n"
      "  --ledger         print the per-query cost ledger (embedded mode)\n"
      "  --plan-out=FILE  write the chosen plan in FPLAN/1 format\n"
      "  --repeat=N       run the query N times against the same session —\n"
      "                   shows the warm-cache cost drop (default 1)\n"
      "  --trace=FILE     record spans; write Chrome trace-event JSON to\n"
      "                   FILE (open in chrome://tracing or Perfetto).\n"
      "                   With --repeat=N (N > 1), each run's spans are\n"
      "                   exported separately to FILE.run1, FILE.run2, ...\n"
      "                   (suffix before the extension) so one run's spans\n"
      "                   never bleed into another's timeline\n"
      "  --trace-summary  record spans; print a per-category rollup over\n"
      "                   all runs\n"
      "  --metrics        print the process-wide metrics dump\n",
      ClientFlags::Help());
}

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    Status client_error = Status::Ok();
    if (args.client.Consume(a, &client_error)) {
      FUSION_RETURN_IF_ERROR(client_error);
      continue;
    }
    if (ParseFlagValue(a, "--catalog", &args.catalog_path)) continue;
    if (ParseFlagValue(a, "--connect", &args.connect)) continue;
    if (ParseFlagValue(a, "--client-id", &args.client_id)) continue;
    if (ParseFlagValue(a, "--sql", &args.sql)) continue;
    if (ParseFlagValue(a, "--plan-out", &args.plan_out)) continue;
    if (ParseFlagValue(a, "--trace", &args.trace_out)) continue;
    std::string number;
    if (ParseFlagValue(a, "--repeat", &number)) {
      args.repeat = std::atoi(number.c_str());
      if (args.repeat < 1) {
        return Status::InvalidArgument("--repeat must be >= 1");
      }
      continue;
    }
    if (std::strcmp(a, "--trace-summary") == 0) {
      args.trace_summary = true;
      continue;
    }
    if (std::strcmp(a, "--metrics") == 0) {
      args.metrics = true;
      continue;
    }
    if (std::strcmp(a, "--stats") == 0) {
      args.stats = true;
      continue;
    }
    if (std::strcmp(a, "--explain") == 0) {
      args.explain = true;
      continue;
    }
    if (std::strcmp(a, "--ledger") == 0) {
      args.ledger = true;
      continue;
    }
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      args.help = true;
      continue;
    }
    return Status::InvalidArgument(std::string("unknown argument: ") + a);
  }
  return args;
}

/// "trace.json" + run 2 -> "trace.run2.json" (suffix before the extension).
std::string PerRunTracePath(const std::string& base, int run) {
  const size_t dot = base.rfind('.');
  const size_t slash = base.rfind('/');
  const bool has_ext =
      dot != std::string::npos && (slash == std::string::npos || dot > slash);
  const std::string stem = has_ext ? base.substr(0, dot) : base;
  const std::string ext = has_ext ? base.substr(dot) : "";
  return stem + ".run" + std::to_string(run) + ext;
}

/// Condition and source display names for the plan / completeness printers
/// (embedded mode only: re-parses the query and reads the local catalog).
Result<PlanPrintNames> PrintNames(const std::string& sql, Client& client) {
  FUSION_ASSIGN_OR_RETURN(FusionQuery query, ParseFusionQuery(sql));
  PlanPrintNames names;
  for (const Condition& c : query.conditions()) {
    names.conditions.push_back(c.ToString());
  }
  const SourceCatalog& catalog = client.session()->mediator().catalog();
  for (size_t j = 0; j < catalog.size(); ++j) {
    names.sources.push_back(catalog.source(j).name());
  }
  return names;
}

void PrintAnswer(const Args& args, const ClientAnswer& answer) {
  std::printf("answer (%zu items): %s\n", answer.items.size(),
              answer.items.ToString().c_str());
  std::printf("cost: %.3f over %zu source queries", answer.cost,
              answer.source_queries);
  if (answer.detail != nullptr) {
    const ExecutionReport& report = answer.detail->execution;
    if (report.emulated_semijoins > 0) {
      std::printf(" (%zu semijoins emulated)", report.emulated_semijoins);
    }
    if (report.skipped_ops > 0) {
      std::printf(" (%zu ops short-circuited)", report.skipped_ops);
    }
    if (report.retries_total > 0) {
      std::printf(" (%zu retries)", report.retries_total);
    }
    if (report.breaker_fast_fails > 0) {
      std::printf(" (%zu breaker fast-fails)", report.breaker_fast_fails);
    }
  }
  std::printf("\n");
  if (answer.calibration_cost > 0.0) {
    std::printf("calibration cost: %.3f\n", answer.calibration_cost);
  }
}

int Run(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  const bool connected = !args->connect.empty();
  const bool stats_only = args->stats && connected && args->sql.empty();
  if (args->help || (args->sql.empty() && !stats_only) ||
      (args->catalog_path.empty() && !connected)) {
    PrintUsage();
    return args->help ? 0 : 2;
  }
  if (connected && !args->catalog_path.empty()) {
    std::fprintf(stderr, "--catalog and --connect are mutually exclusive\n");
    return 2;
  }
  if (connected && (args->ledger || !args->plan_out.empty())) {
    std::fprintf(stderr,
                 "--ledger/--plan-out need the in-process plan and "
                 "report; they are not available with --connect\n");
    return 2;
  }

  Client::Builder builder;
  if (connected) {
    builder.To(Client::Target::Remote(args->connect)).ClientId(args->client_id);
  } else {
    const auto options = args->client.ToClientOptions();
    if (!options.ok()) {
      std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
      return 2;
    }
    builder.To(Client::Target::EmbeddedFile(args->catalog_path))
        .Options(*options);
  }
  auto client_or = builder.Build();
  if (!client_or.ok()) {
    std::fprintf(stderr, "client: %s\n",
                 client_or.status().ToString().c_str());
    return 1;
  }
  Client client = std::move(client_or).value();

  if (stats_only) {
    const auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", stats->c_str());
    return 0;
  }

  const bool tracing = !args->trace_out.empty() || args->trace_summary;
  if (tracing) Tracer::Global().Enable();

  Result<ClientAnswer> answer = Status::Internal("no runs");
  std::vector<SpanRecord> all_spans;
  for (int run = 1; run <= args->repeat; ++run) {
    // Explain rides on the first run only: warm repeats would annotate an
    // all-hit plan, which is the cache demo's job (--repeat) not explain's.
    answer = (run == 1 && args->explain)
                 ? client.QuerySqlExplained(args->sql)
                 : client.QuerySql(args->sql);
    if (!answer.ok()) {
      std::fprintf(stderr, "query: %s\n", answer.status().ToString().c_str());
      return 1;
    }
    if (run == 1 && args->explain) {
      std::printf("-- explain --\n");
      for (const std::string& line : answer->explain_lines) {
        std::printf("%s\n", line.c_str());
      }
    }
    if (run == 1 && !args->plan_out.empty() && answer->detail != nullptr) {
      const Status written = WriteStringToFile(
          args->plan_out, SerializePlan(answer->detail->optimized.plan));
      if (!written.ok()) {
        std::fprintf(stderr, "plan-out: %s\n", written.ToString().c_str());
        return 1;
      }
    }
    if (args->repeat > 1) {
      std::printf("run %d: cost %.3f (%zu cache hits, %zu misses, "
                  "%zu containment)\n",
                  run, answer->cost, answer->cache_hits, answer->cache_misses,
                  answer->cache_containment_hits);
    }
    if (tracing) {
      // Per-run scope: drain the tracer after every run so one run's spans
      // never leak into the next run's export (the old behavior wrote one
      // file mixing every repeat's spans).
      std::vector<SpanRecord> spans = Tracer::Global().Drain();
      if (!args->trace_out.empty()) {
        const std::string path = args->repeat > 1
                                     ? PerRunTracePath(args->trace_out, run)
                                     : args->trace_out;
        const Status written = WriteChromeTrace(spans, path);
        if (!written.ok()) {
          std::fprintf(stderr, "trace: %s\n", written.ToString().c_str());
          return 1;
        }
        std::printf("trace: %zu spans -> %s\n", spans.size(), path.c_str());
      }
      all_spans.insert(all_spans.end(),
                       std::make_move_iterator(spans.begin()),
                       std::make_move_iterator(spans.end()));
    }
  }

  if (tracing) {
    Tracer::Global().Disable();
    if (args->trace_summary) {
      std::printf("%s", FlameSummary(all_spans).c_str());
    }
  }

  PrintAnswer(*args, *answer);
  if (connected) {
    // The daemon's view of this query: its shared cross-client cache did
    // the work, so the counters are the server's, not ours.
    std::printf(
        "server cache: %zu hits, %zu misses (%zu answered by containment)\n",
        answer->cache_hits, answer->cache_misses,
        answer->cache_containment_hits);
  }
  if (args->client.cache && client.session() != nullptr) {
    const SourceCallCache::Stats cs =
        client.session()->cache().StatsSnapshot();
    std::printf(
        "cache: %zu hits, %zu misses (%zu answered by containment), "
        "%zu evictions, %zu entries, %zu bytes\n",
        cs.hits, cs.misses, cs.containment_hits, cs.evictions, cs.entries,
        cs.bytes);
  }
  if (!answer->complete) {
    const auto names = answer->detail != nullptr
                           ? PrintNames(args->sql, client)
                           : Result<PlanPrintNames>(Status::Unavailable(""));
    if (answer->detail != nullptr && names.ok()) {
      std::printf("%s",
                  answer->detail->execution.completeness
                      .ToString(names->conditions, names->sources)
                      .c_str());
    } else {
      std::printf("answer incomplete: sources were excluded (degraded "
                  "mode at the service)\n");
    }
  }
  if (args->ledger && answer->detail != nullptr) {
    std::printf("\n%s", answer->detail->execution.ledger.Report().c_str());
  }
  if (args->metrics) {
    std::printf("\n-- metrics --\n%s",
                MetricsRegistry::Global().DumpText().c_str());
  }
  if (args->stats) {
    const auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("\n-- stats --\n%s", stats->c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fusion

int main(int argc, char** argv) { return fusion::Run(argc, argv); }
