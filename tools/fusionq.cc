// fusionq — command-line fusion query processor.
//
// Loads a catalog of sources from an INI-style config (each source a CSV
// file plus capability/network profiles), optimizes a fusion query written
// in the paper's SQL form, and executes it, printing the chosen plan, the
// answer, and a metered cost report.
//
// Usage:
//   fusionq --catalog=<config.ini> --sql="SELECT u1.L FROM U u1, U u2
//           WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
//           [--strategy=filter|sj|sja|sja+|greedy|greedy+]
//           [--stats=oracle|parametric]
//           [--lazy] [--explain] [--ledger] [--parallelism=N]
//           [--trace=FILE] [--trace-summary] [--metrics]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cli/catalog_config.h"
#include "common/str_util.h"
#include "common/file_util.h"
#include "exec/source_call_cache.h"
#include "exec/source_health.h"
#include "mediator/mediator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "plan/plan_serde.h"
#include "query/parser.h"

namespace fusion {
namespace {

struct Args {
  std::string catalog_path;
  std::string sql;
  std::string strategy = "sja+";
  std::string stats = "oracle";
  bool lazy = false;
  bool explain = false;
  bool ledger = false;
  bool help = false;
  std::string plan_out;    // write the chosen plan in FPLAN/1 format
  std::string trace_out;   // write a Chrome trace-event JSON file
  bool trace_summary = false;  // print the per-category span rollup
  bool metrics = false;        // print the process metrics dump
  int parallelism = 1;
  // Fault tolerance.
  std::string on_failure = "fail";  // fail | degrade
  int max_attempts = 1;
  double deadline_ms = 0.0;       // per-query deadline (0 = none)
  double retry_backoff_ms = 0.0;  // initial retry backoff (0 = immediate)
  double call_timeout_ms = 0.0;   // per-call timeout (0 = none)
  // Result cache.
  bool cache = false;          // attach a SourceCallCache to the run
  double cache_mb = 0.0;       // byte budget in MiB (0 = unbounded)
  double cache_ttl_ms = 0.0;   // entry TTL (0 = never expires)
  int repeat = 1;              // execute the query N times (cache demo)
};

void PrintUsage() {
  std::printf(
      "fusionq — fusion queries over autonomous sources (EDBT'98 repro)\n\n"
      "usage: fusionq --catalog=FILE --sql=QUERY [options]\n\n"
      "  --catalog=FILE   INI catalog config (see examples/data/)\n"
      "  --sql=QUERY      fusion query in the paper's SQL form\n"
      "  --strategy=S     filter | sj | sja | sja+ | greedy | greedy+\n"
      "                   (default sja+)\n"
      "  --stats=S        oracle | parametric (default oracle)\n"
      "  --lazy           lazy short-circuit execution\n"
      "  --explain        print the optimized plan and response-time info\n"
      "  --ledger         print the per-query cost ledger\n"
      "  --plan-out=FILE  write the chosen plan in FPLAN/1 format\n"
      "  --parallelism=N  parallel plan execution with N workers (default 1)\n"
      "  --on-failure=P   fail | degrade — what to do when a source is\n"
      "                   exhausted: fail the query (default) or return a\n"
      "                   sound partial answer excluding the dead source\n"
      "  --max-attempts=N retry transient source failures up to N attempts\n"
      "  --retry-backoff=MS  initial exponential-backoff sleep, in ms\n"
      "  --call-timeout-ms=MS  per-source-call timeout (0 = none)\n"
      "  --deadline-ms=MS per-query deadline; with --on-failure=degrade the\n"
      "                   partial answer gathered in time is returned\n"
      "  --cache          attach a source-call result cache (sq/sjq/lq memo\n"
      "                   with containment reuse) and print its statistics\n"
      "  --cache-mb=MB    cache byte budget in MiB, LRU-evicted (implies\n"
      "                   --cache; 0 = unbounded)\n"
      "  --cache-ttl-ms=MS  cache entry time-to-live (implies --cache;\n"
      "                   0 = never expires)\n"
      "  --repeat=N       run the query N times against the same cache —\n"
      "                   shows the warm-cache cost drop (default 1)\n"
      "  --trace=FILE     record spans; write Chrome trace-event JSON to\n"
      "                   FILE (open in chrome://tracing or Perfetto)\n"
      "  --trace-summary  record spans; print a per-category rollup\n"
      "  --metrics        print the process-wide metrics dump\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (ParseFlag(a, "--catalog", &args.catalog_path)) continue;
    if (ParseFlag(a, "--sql", &args.sql)) continue;
    if (ParseFlag(a, "--strategy", &args.strategy)) continue;
    if (ParseFlag(a, "--stats", &args.stats)) continue;
    if (ParseFlag(a, "--plan-out", &args.plan_out)) continue;
    if (ParseFlag(a, "--trace", &args.trace_out)) continue;
    std::string parallelism;
    if (ParseFlag(a, "--parallelism", &parallelism)) {
      args.parallelism = std::atoi(parallelism.c_str());
      if (args.parallelism < 1) {
        return Status::InvalidArgument("--parallelism must be >= 1");
      }
      continue;
    }
    if (ParseFlag(a, "--on-failure", &args.on_failure)) {
      if (args.on_failure != "fail" && args.on_failure != "degrade") {
        return Status::InvalidArgument(
            "--on-failure must be 'fail' or 'degrade'");
      }
      continue;
    }
    std::string number;
    if (ParseFlag(a, "--max-attempts", &number)) {
      args.max_attempts = std::atoi(number.c_str());
      if (args.max_attempts < 1) {
        return Status::InvalidArgument("--max-attempts must be >= 1");
      }
      continue;
    }
    if (ParseFlag(a, "--deadline-ms", &number)) {
      args.deadline_ms = std::atof(number.c_str());
      continue;
    }
    if (ParseFlag(a, "--retry-backoff", &number)) {
      args.retry_backoff_ms = std::atof(number.c_str());
      continue;
    }
    if (ParseFlag(a, "--call-timeout-ms", &number)) {
      args.call_timeout_ms = std::atof(number.c_str());
      continue;
    }
    if (ParseFlag(a, "--cache-mb", &number)) {
      args.cache_mb = std::atof(number.c_str());
      if (args.cache_mb < 0.0) {
        return Status::InvalidArgument("--cache-mb must be >= 0");
      }
      args.cache = true;
      continue;
    }
    if (ParseFlag(a, "--cache-ttl-ms", &number)) {
      args.cache_ttl_ms = std::atof(number.c_str());
      if (args.cache_ttl_ms < 0.0) {
        return Status::InvalidArgument("--cache-ttl-ms must be >= 0");
      }
      args.cache = true;
      continue;
    }
    if (ParseFlag(a, "--repeat", &number)) {
      args.repeat = std::atoi(number.c_str());
      if (args.repeat < 1) {
        return Status::InvalidArgument("--repeat must be >= 1");
      }
      continue;
    }
    if (std::strcmp(a, "--cache") == 0) {
      args.cache = true;
      continue;
    }
    if (std::strcmp(a, "--trace-summary") == 0) {
      args.trace_summary = true;
      continue;
    }
    if (std::strcmp(a, "--metrics") == 0) {
      args.metrics = true;
      continue;
    }
    if (std::strcmp(a, "--lazy") == 0) {
      args.lazy = true;
      continue;
    }
    if (std::strcmp(a, "--explain") == 0) {
      args.explain = true;
      continue;
    }
    if (std::strcmp(a, "--ledger") == 0) {
      args.ledger = true;
      continue;
    }
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      args.help = true;
      continue;
    }
    return Status::InvalidArgument(std::string("unknown argument: ") + a);
  }
  return args;
}

Result<OptimizerStrategy> StrategyFromName(const std::string& name) {
  const std::string s = ToLower(name);
  if (s == "filter") return OptimizerStrategy::kFilter;
  if (s == "sj") return OptimizerStrategy::kSj;
  if (s == "sja") return OptimizerStrategy::kSja;
  if (s == "sja+") return OptimizerStrategy::kSjaPlus;
  if (s == "greedy") return OptimizerStrategy::kGreedySja;
  if (s == "greedy+") return OptimizerStrategy::kGreedySjaPlus;
  return Status::InvalidArgument("unknown strategy: " + name);
}

int Run(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  if (args->help || args->catalog_path.empty() || args->sql.empty()) {
    PrintUsage();
    return args->help ? 0 : 2;
  }

  auto catalog = LoadCatalogFromFile(args->catalog_path);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }
  const size_t num_sources = catalog->size();

  auto query = ParseFusionQuery(args->sql);
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.status().ToString().c_str());
    return 1;
  }

  MediatorOptions options;
  {
    const auto strategy = StrategyFromName(args->strategy);
    if (!strategy.ok()) {
      std::fprintf(stderr, "%s\n", strategy.status().ToString().c_str());
      return 2;
    }
    options.strategy = *strategy;
  }
  options.statistics = ToLower(args->stats) == "parametric"
                           ? StatisticsMode::kOracleParametric
                           : StatisticsMode::kOracle;

  const bool tracing = !args->trace_out.empty() || args->trace_summary;
  if (tracing) Tracer::Global().Enable();

  Mediator mediator(std::move(catalog).value());
  const auto optimized = mediator.Optimize(*query, options);
  if (!optimized.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 optimized.status().ToString().c_str());
    return 1;
  }

  if (args->explain) {
    PlanPrintNames names;
    for (const Condition& c : query->conditions()) {
      names.conditions.push_back(c.ToString());
    }
    for (size_t j = 0; j < num_sources; ++j) {
      names.sources.push_back(mediator.catalog().source(j).name());
    }
    std::printf("-- plan (%s, %s), estimated cost %.3f --\n%s\n",
                optimized->algorithm.c_str(),
                PlanClassName(optimized->plan_class),
                optimized->estimated_cost,
                optimized->plan.ToString(names).c_str());
  }

  if (!args->plan_out.empty()) {
    const Status written =
        WriteStringToFile(args->plan_out, SerializePlan(optimized->plan));
    if (!written.ok()) {
      std::fprintf(stderr, "plan-out: %s\n", written.ToString().c_str());
      return 1;
    }
  }

  ExecOptions exec_options;
  exec_options.lazy_short_circuit = args->lazy;
  exec_options.parallelism = args->parallelism;
  exec_options.retry.max_attempts = args->max_attempts;
  exec_options.retry.initial_backoff_seconds = args->retry_backoff_ms / 1e3;
  exec_options.retry.call_timeout_seconds = args->call_timeout_ms / 1e3;
  exec_options.deadline_seconds = args->deadline_ms / 1e3;
  if (args->on_failure == "degrade") {
    exec_options.on_source_failure = SourceFailurePolicy::kDegrade;
  }
  SourceHealth health;
  exec_options.health = &health;
  SourceCallCache::Options cache_options;
  cache_options.max_bytes =
      static_cast<size_t>(args->cache_mb * 1024.0 * 1024.0);
  cache_options.ttl_seconds = args->cache_ttl_ms / 1e3;
  SourceCallCache cache(cache_options);
  if (args->cache) exec_options.cache = &cache;

  Result<ExecutionReport> report = Status::Internal("no runs");
  for (int run = 0; run < args->repeat; ++run) {
    report = ExecutePlan(optimized->plan, mediator.catalog(), *query,
                         exec_options);
    if (!report.ok()) {
      std::fprintf(stderr, "execute: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    if (args->repeat > 1) {
      std::printf("run %d: cost %.3f (%zu cache hits, %zu misses, "
                  "%zu containment)\n",
                  run + 1, report->ledger.total(), report->cache_hits,
                  report->cache_misses, report->cache_containment_hits);
    }
  }

  if (tracing) {
    const std::vector<SpanRecord> spans = Tracer::Global().Drain();
    Tracer::Global().Disable();
    if (!args->trace_out.empty()) {
      const Status written = WriteChromeTrace(spans, args->trace_out);
      if (!written.ok()) {
        std::fprintf(stderr, "trace: %s\n", written.ToString().c_str());
        return 1;
      }
      std::printf("trace: %zu spans -> %s\n", spans.size(),
                  args->trace_out.c_str());
    }
    if (args->trace_summary) {
      std::printf("%s", FlameSummary(spans).c_str());
    }
  }

  std::printf("answer (%zu items): %s\n", report->answer.size(),
              report->answer.ToString().c_str());
  std::printf("cost: %.3f over %zu source queries", report->ledger.total(),
              report->ledger.num_queries());
  if (report->emulated_semijoins > 0) {
    std::printf(" (%zu semijoins emulated)", report->emulated_semijoins);
  }
  if (report->skipped_ops > 0) {
    std::printf(" (%zu ops short-circuited)", report->skipped_ops);
  }
  if (report->retries_total > 0) {
    std::printf(" (%zu retries)", report->retries_total);
  }
  if (report->breaker_fast_fails > 0) {
    std::printf(" (%zu breaker fast-fails)", report->breaker_fast_fails);
  }
  std::printf("\n");
  if (args->cache) {
    const SourceCallCache::Stats cs = cache.StatsSnapshot();
    std::printf(
        "cache: %zu hits, %zu misses (%zu answered by containment), "
        "%zu evictions, %zu entries, %zu bytes\n",
        cs.hits, cs.misses, cs.containment_hits, cs.evictions, cs.entries,
        cs.bytes);
  }
  if (!report->completeness.answer_complete) {
    std::vector<std::string> cond_names;
    for (const Condition& c : query->conditions()) {
      cond_names.push_back(c.ToString());
    }
    std::vector<std::string> source_names;
    for (size_t j = 0; j < num_sources; ++j) {
      source_names.push_back(mediator.catalog().source(j).name());
    }
    std::printf("%s",
                report->completeness.ToString(cond_names, source_names)
                    .c_str());
  }
  if (args->ledger) {
    std::printf("\n%s", report->ledger.Report().c_str());
  }
  if (args->metrics) {
    std::printf("\n-- metrics --\n%s",
                MetricsRegistry::Global().DumpText().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fusion

int main(int argc, char** argv) { return fusion::Run(argc, argv); }
