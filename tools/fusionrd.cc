// fusionrd — the fusion query router daemon: the front door of a sharded
// mediator fleet.
//
// Speaks FUSIONQ/1 to clients exactly like fusionqd (same HELLO, same
// verbs), but owns no catalog: every SUBMIT is rendezvous-hashed on its
// canonical query key and forwarded to the owning fusionqd shard over a
// pooled upstream connection, so a repeated query always lands on the shard
// whose plan memo and source-call cache already hold it — warm at ~0
// metered cost no matter which client connection asked. Dead shards fail
// over to the next-ranked; INVALIDATE broadcasts to the whole fleet with
// version-stamped idempotence.
//
// Usage:
//   fusionrd --shard=host:port --shard=host:port ...
//            [--host=127.0.0.1] [--port=4630] [--name=fusionrd]
//            [--port-file=PATH]
//
// --port=0 binds an ephemeral port; the actual port is printed on the
// "listening on" line and written to --port-file (atomically) when given.
#include <sys/socket.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cli/client_flags.h"
#include "common/file_util.h"
#include "protocol/socket.h"
#include "router/router.h"
#include "router/shard_map.h"

namespace fusion {
namespace {

struct Args {
  std::vector<Shard> shards;
  std::string host = "127.0.0.1";
  int port = 4630;
  std::string name = "fusionrd";
  /// Readiness hook, same contract as fusionqd: the bound port is written
  /// here (atomically — whole file or no file) once accepting.
  std::string port_file;
  bool help = false;
};

void PrintUsage() {
  std::printf(
      "fusionrd — fusion query router daemon (FUSIONQ/1 over TCP)\n\n"
      "usage: fusionrd --shard=HOST:PORT [--shard=HOST:PORT ...] [options]\n\n"
      "  --shard=H:P      a fusionqd shard endpoint; repeat once per shard.\n"
      "                   NAME=H:P names the shard (default shard-<i>);\n"
      "                   names feed the rendezvous hash, so keep them\n"
      "                   stable across restarts to keep caches warm\n"
      "  --host=H         listen address (default 127.0.0.1)\n"
      "  --port=P         listen port; 0 = ephemeral, printed on startup\n"
      "                   (default 4630)\n"
      "  --name=S         router name reported in the HELLO handshake\n"
      "  --port-file=PATH write the bound port here once listening\n");
}

Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    std::string value;
    if (ParseFlagValue(a, "--shard", &value)) {
      Shard shard;
      // NAME=HOST:PORT names the shard; bare HOST:PORT gets a default name
      // in ShardMap::Make. The '=' test must dodge the ':' of the endpoint.
      const size_t eq = value.find('=');
      if (eq != std::string::npos && eq < value.find(':')) {
        shard.name = value.substr(0, eq);
        shard.endpoint = value.substr(eq + 1);
      } else {
        shard.endpoint = value;
      }
      args.shards.push_back(std::move(shard));
      continue;
    }
    if (ParseFlagValue(a, "--host", &args.host)) continue;
    if (ParseFlagValue(a, "--name", &args.name)) continue;
    if (ParseFlagValue(a, "--port-file", &args.port_file)) continue;
    std::string number;
    if (ParseFlagValue(a, "--port", &number)) {
      args.port = std::atoi(number.c_str());
      if (args.port < 0 || args.port > 65535) {
        return Status::InvalidArgument("--port must be in [0, 65535]");
      }
      continue;
    }
    if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      args.help = true;
      continue;
    }
    return Status::InvalidArgument(std::string("unknown argument: ") + a);
  }
  return args;
}

/// Accepted-connection fds so shutdown can unblock their Receive()s —
/// shutdown(2) wakes a blocked recv; close alone does not.
class ConnectionRegistry {
 public:
  void Register(int fd) {
    std::lock_guard<std::mutex> lock(mutex_);
    fds_.push_back(fd);
  }

  void ShutdownAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : fds_) ::shutdown(fd, SHUT_RDWR);
  }

 private:
  std::mutex mutex_;
  std::vector<int> fds_;
};

// Async-signal-safe shutdown: SIGINT/SIGTERM shut the listener down (then
// close it), so the blocked accept() returns and the main loop exits.
// shutdown(2) first — close alone does not wake an accept() blocked on
// another thread, and the signal may be delivered to any of them.
std::atomic<int> g_listener_fd{-1};

void HandleSignal(int) {
  const int fd = g_listener_fd.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

int Serve(const Args& args) {
  auto shard_map = ShardMap::Make(args.shards);
  if (!shard_map.ok()) {
    std::fprintf(stderr, "shards: %s\n",
                 shard_map.status().ToString().c_str());
    return 2;
  }
  auto listener = TcpListener::Bind(args.host, args.port);
  if (!listener.ok()) {
    std::fprintf(stderr, "bind: %s\n", listener.status().ToString().c_str());
    return 1;
  }
  QueryRouter::Options options;
  options.server_name = args.name;
  QueryRouter router(std::move(shard_map).value(), options);

  g_listener_fd.store(listener->fd());
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("%s: listening on %s:%d (routing to %zu shards)\n",
              args.name.c_str(), args.host.c_str(), listener->port(),
              router.shards().size());
  for (size_t i = 0; i < router.shards().size(); ++i) {
    const Shard& shard = router.shards().shard(i);
    std::printf("%s:   shard %s at %s\n", args.name.c_str(),
                shard.name.c_str(), shard.endpoint.c_str());
  }
  std::fflush(stdout);
  if (!args.port_file.empty()) {
    const Status wrote = WriteFileAtomic(
        args.port_file, std::to_string(listener->port()) + "\n");
    if (!wrote.ok()) {
      std::fprintf(stderr, "port-file: %s\n", wrote.message().c_str());
      return 1;
    }
  }

  ConnectionRegistry connections;
  std::vector<std::thread> threads;
  for (;;) {
    Result<MessageSocket> accepted = listener->Accept();
    if (!accepted.ok()) break;  // listener closed: shutdown
    MessageSocket socket = std::move(accepted).value();
    connections.Register(socket.fd());
    threads.emplace_back(
        [&router](MessageSocket s) {
          router.ServeConnection(ChaosSocket(std::move(s)));
        },
        std::move(socket));
  }
  std::printf("%s: shutting down\n", args.name.c_str());
  router.Shutdown();
  connections.ShutdownAll();
  for (std::thread& t : threads) t.join();
  return 0;
}

int Run(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  if (args->help || args->shards.empty()) {
    PrintUsage();
    return args->help ? 0 : 2;
  }
  return Serve(*args);
}

}  // namespace
}  // namespace fusion

int main(int argc, char** argv) { return fusion::Run(argc, argv); }
