#!/usr/bin/env python3
"""Merge per-process Chrome trace exports into one distributed trace file.

Each fusion process (fusionq, fusionqd, a source daemon) exports its own
Chrome trace-event JSON with pid=1 and timestamps on its own steady-clock
epoch. This tool stitches N such files into one viewable trace:

  * every input file becomes its own pid (1..N), with a process_name
    metadata event naming it after the file;
  * --align shifts each file's timestamps so its earliest span starts at 0
    (per-process epochs are not comparable across machines; alignment makes
    the merged view readable, not clock-accurate);
  * the distributed span ids recorded in each event's args (trace_id /
    span_id / parent_id) are preserved verbatim — they are what actually
    stitches the processes together, and --check verifies them: every file
    must share at least one common trace_id, and span ids must be unique
    across the whole merge.

Usage:
  trace_merge.py --out merged.json [--align] [--check] client.json daemon.json
"""

import argparse
import json
import os
import sys


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    return [e for e in events if isinstance(e, dict)]


def main():
    parser = argparse.ArgumentParser(
        description="merge per-process Chrome traces into one file")
    parser.add_argument("inputs", nargs="+", help="Chrome trace JSON files")
    parser.add_argument("--out", required=True, help="merged output file")
    parser.add_argument("--align", action="store_true",
                        help="shift each file so its first span starts at 0")
    parser.add_argument("--check", action="store_true",
                        help="verify one shared trace id and unique span ids")
    args = parser.parse_args()

    merged = []
    trace_ids_per_file = []
    span_ids = {}
    for pid, path in enumerate(args.inputs, start=1):
        events = load_events(path)
        spans = [e for e in events if e.get("ph") == "X"]
        base = min((e.get("ts", 0.0) for e in spans), default=0.0)
        merged.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": os.path.basename(path)},
        })
        file_trace_ids = set()
        for event in events:
            event = dict(event)
            event["pid"] = pid
            if args.align and "ts" in event:
                event["ts"] = event["ts"] - base
            trace_args = event.get("args", {})
            if "trace_id" in trace_args:
                file_trace_ids.add(trace_args["trace_id"])
            if "span_id" in trace_args:
                span_id = trace_args["span_id"]
                if span_id in span_ids and span_ids[span_id] != path:
                    print(f"error: span id {span_id} appears in both "
                          f"{span_ids[span_id]} and {path}", file=sys.stderr)
                    if args.check:
                        return 1
                span_ids[span_id] = path
            merged.append(event)
        trace_ids_per_file.append((path, file_trace_ids))

    if args.check:
        traced = [(p, ids) for p, ids in trace_ids_per_file if ids]
        if len(traced) >= 2:
            common = set.intersection(*(ids for _, ids in traced))
            if not common:
                print("error: no trace id is shared by every traced file",
                      file=sys.stderr)
                return 1
            print(f"check: ok ({len(common)} shared trace id(s), "
                  f"{len(span_ids)} unique span ids)")
        else:
            print("check: fewer than two files carry trace ids; "
                  "nothing to stitch", file=sys.stderr)
            return 1

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump({"traceEvents": merged, "displayTimeUnit": "ms"}, f)
        f.write("\n")
    total = sum(1 for e in merged if e.get("ph") == "X")
    print(f"merged {total} spans from {len(args.inputs)} file(s) "
          f"-> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
