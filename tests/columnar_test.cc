#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <thread>
#include <vector>

#include "common/bloom.h"
#include "common/item_set.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "relational/columnar.h"
#include "relational/relation.h"
#include "source/catalog.h"
#include "source/simulated_source.h"

namespace fusion {
namespace {

// ---------------------------------------------------------------------------
// Random-instance generators for the row-vs-columnar differential tests
// ---------------------------------------------------------------------------

Schema TestSchema() {
  return Schema({{"M", ValueType::kString},
                 {"i", ValueType::kInt64},
                 {"d", ValueType::kDouble},
                 {"s", ValueType::kString}});
}

Value RandomValueFor(Rng& rng, ValueType type, bool allow_null,
                     bool allow_nan = true) {
  if (allow_null && rng.Bernoulli(0.12)) return Value::Null();
  switch (type) {
    case ValueType::kInt64:
      return Value(rng.Uniform(-20, 20));
    case ValueType::kDouble:
      if (allow_nan && rng.Bernoulli(0.05)) {
        return Value(std::numeric_limits<double>::quiet_NaN());
      }
      // Half-integral values so int64/double cross-equality actually fires.
      return Value(static_cast<double>(rng.Uniform(-40, 40)) / 2.0);
    case ValueType::kString:
      return Value("v" + std::to_string(rng.Uniform(0, 30)));
    case ValueType::kNull:
      break;
  }
  return Value::Null();
}

Relation RandomRelation(Rng& rng, size_t rows) {
  const Schema schema = TestSchema();
  Relation rel(schema);
  for (size_t r = 0; r < rows; ++r) {
    Tuple t;
    t.reserve(schema.num_columns());
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      t.push_back(RandomValueFor(rng, schema.column(c).type, /*allow_null=*/true));
    }
    rel.AppendUnchecked(std::move(t));
  }
  return rel;
}

/// A random constant that may deliberately mismatch the attribute's type —
/// exercising cross-type compare semantics (numeric promotion, type-rank
/// verdicts, NULL constants).
Value RandomConstant(Rng& rng, ValueType attr_type) {
  const double roll = rng.NextDouble();
  if (roll < 0.05) return Value::Null();
  if (roll < 0.25) {
    const ValueType other[] = {ValueType::kInt64, ValueType::kDouble,
                               ValueType::kString};
    return RandomValueFor(rng, other[rng.Uniform(0, 2)], /*allow_null=*/false);
  }
  return RandomValueFor(rng, attr_type, /*allow_null=*/false);
}

Condition RandomCondition(Rng& rng, const Schema& schema, int depth) {
  if (depth > 0 && rng.Bernoulli(0.55)) {
    switch (rng.Uniform(0, 2)) {
      case 0:
        return Condition::And(RandomCondition(rng, schema, depth - 1),
                              RandomCondition(rng, schema, depth - 1));
      case 1:
        return Condition::Or(RandomCondition(rng, schema, depth - 1),
                             RandomCondition(rng, schema, depth - 1));
      default:
        return Condition::Not(RandomCondition(rng, schema, depth - 1));
    }
  }
  const size_t attr_idx =
      static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(schema.num_columns()) - 1));
  const std::string& attr = schema.column(attr_idx).name;
  const ValueType attr_type = schema.column(attr_idx).type;
  switch (rng.Uniform(0, 4)) {
    case 0:
    case 1: {
      const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                               CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
      return Condition::Compare(attr, ops[rng.Uniform(0, 5)],
                                RandomConstant(rng, attr_type));
    }
    case 2:
      return Condition::Between(attr, RandomConstant(rng, attr_type),
                                RandomConstant(rng, attr_type));
    case 3: {
      std::vector<Value> set;
      const int64_t n = rng.Uniform(0, 4);
      for (int64_t i = 0; i < n; ++i) {
        set.push_back(RandomConstant(rng, attr_type));
      }
      return Condition::In(attr, std::move(set));
    }
    default:
      return rng.Bernoulli(0.5) ? Condition::True() : Condition::False();
  }
}

// ---------------------------------------------------------------------------
// Tentpole invariant: the batch evaluator is interchangeable with the row
// interpreter — byte-identical answers on every operation, every tree shape
// ---------------------------------------------------------------------------

TEST(ColumnarTest, RandomConditionsMatchRowPathOnAllOperations) {
  Rng rng(20260809);
  for (int trial = 0; trial < 60; ++trial) {
    const Relation rel = RandomRelation(rng, 40 + trial * 9);
    const Condition cond = RandomCondition(rng, rel.schema(), 3);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " + cond.ToString());

    const auto row_sel = rel.Select(cond, EvalPath::kRow);
    const auto col_sel = rel.Select(cond, EvalPath::kColumnar);
    ASSERT_TRUE(row_sel.ok());
    ASSERT_TRUE(col_sel.ok());
    EXPECT_EQ(row_sel->ToString(), col_sel->ToString());

    const auto row_items = rel.SelectItems(cond, "M", EvalPath::kRow);
    const auto col_items = rel.SelectItems(cond, "M", EvalPath::kColumnar);
    ASSERT_TRUE(row_items.ok());
    ASSERT_TRUE(col_items.ok());
    EXPECT_EQ(row_items->ToString(), col_items->ToString());

    const auto row_count = rel.CountWhere(cond, EvalPath::kRow);
    const auto col_count = rel.CountWhere(cond, EvalPath::kColumnar);
    ASSERT_TRUE(row_count.ok());
    ASSERT_TRUE(col_count.ok());
    EXPECT_EQ(row_count.value(), col_count.value());

    // Semijoin with a candidate set drawn from the data (plus misses).
    std::vector<Value> cand;
    for (int i = 0; i < 12; ++i) {
      cand.push_back(rng.Bernoulli(0.7)
                         ? Value("v" + std::to_string(rng.Uniform(0, 30)))
                         : Value("miss" + std::to_string(i)));
    }
    const ItemSet candidates(std::move(cand));
    const auto row_sj = rel.SemiJoinItems(cond, "M", candidates, EvalPath::kRow);
    const auto col_sj =
        rel.SemiJoinItems(cond, "M", candidates, EvalPath::kColumnar);
    ASSERT_TRUE(row_sj.ok());
    ASSERT_TRUE(col_sj.ok());
    EXPECT_EQ(row_sj->ToString(), col_sj->ToString());
  }
}

TEST(ColumnarTest, NumericCrossTypeAndNaNEdgeCases) {
  Schema schema({{"M", ValueType::kString}, {"x", ValueType::kDouble}});
  Relation rel(schema);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  int id = 0;
  for (const double v : {0.0, -0.0, 1.0, 2.5, -3.0, nan, inf, -inf, 1e308}) {
    rel.AppendUnchecked({Value("m" + std::to_string(id++)), Value(v)});
  }
  rel.AppendUnchecked({Value("mnull"), Value::Null()});
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  const Value consts[] = {Value(int64_t{1}),  Value(1.0),  Value(nan),
                          Value(int64_t{-3}), Value(-0.0), Value::Null(),
                          Value("1")};
  for (const CompareOp op : ops) {
    for (const Value& k : consts) {
      const Condition cond = Condition::Compare("x", op, k);
      SCOPED_TRACE(cond.ToString());
      const auto row = rel.SelectItems(cond, "M", EvalPath::kRow);
      const auto col = rel.SelectItems(cond, "M", EvalPath::kColumnar);
      ASSERT_TRUE(row.ok());
      ASSERT_TRUE(col.ok());
      EXPECT_EQ(row->ToString(), col->ToString());
      // NOT flips NULL rows to true in both evaluators.
      const Condition negated = Condition::Not(cond);
      const auto row_n = rel.SelectItems(negated, "M", EvalPath::kRow);
      const auto col_n = rel.SelectItems(negated, "M", EvalPath::kColumnar);
      ASSERT_TRUE(row_n.ok());
      ASSERT_TRUE(col_n.ok());
      EXPECT_EQ(row_n->ToString(), col_n->ToString());
    }
  }
}

TEST(ColumnarTest, StringDictionaryCompareAllOpsAbsentAndPresentConstants) {
  Schema schema({{"M", ValueType::kString}, {"s", ValueType::kString}});
  Relation rel(schema);
  int id = 0;
  for (const char* v : {"apple", "banana", "banana", "cherry", "date"}) {
    rel.AppendUnchecked({Value("m" + std::to_string(id++)), Value(v)});
  }
  rel.AppendUnchecked({Value("mnull"), Value::Null()});
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  // "" sorts before all, "az"/"bz" between dict entries, "zz" after all.
  for (const char* k : {"", "apple", "az", "banana", "bz", "date", "zz"}) {
    for (const CompareOp op : ops) {
      const Condition cond = Condition::Compare("s", op, Value(k));
      SCOPED_TRACE(cond.ToString());
      const auto row = rel.SelectItems(cond, "M", EvalPath::kRow);
      const auto col = rel.SelectItems(cond, "M", EvalPath::kColumnar);
      ASSERT_TRUE(row.ok());
      ASSERT_TRUE(col.ok());
      EXPECT_EQ(row->ToString(), col->ToString());
    }
  }
}

TEST(ColumnarTest, IllTypedRelationFallsBackToRowSemantics) {
  // AppendUnchecked lets a double sneak into a declared-int64 column; the
  // columnar build must fail (cached) and kColumnar silently use the row
  // path — same answers as kRow, no error.
  Schema schema({{"M", ValueType::kString}, {"i", ValueType::kInt64}});
  Relation rel(schema);
  rel.AppendUnchecked({Value("a"), Value(int64_t{1})});
  rel.AppendUnchecked({Value("b"), Value(2.5)});  // ill-typed
  rel.AppendUnchecked({Value("c"), Value(int64_t{3})});
  EXPECT_EQ(rel.columnar(), nullptr);
  const Condition cond = Condition::Compare("i", CompareOp::kGt, Value(1.0));
  const auto row = rel.SelectItems(cond, "M", EvalPath::kRow);
  const auto col = rel.SelectItems(cond, "M", EvalPath::kColumnar);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(row->ToString(), col->ToString());
  EXPECT_EQ(col->ToString(), "{'b', 'c'}");
  EXPECT_EQ(rel.columnar(), nullptr);  // build failure cached, not retried
}

TEST(ColumnarTest, UnknownAttributeErrorsMatchRowPath) {
  Rng rng(7);
  const Relation rel = RandomRelation(rng, 80);
  const Condition cond = Condition::Eq("nope", Value(int64_t{1}));
  const auto row = rel.Select(cond, EvalPath::kRow);
  const auto col = rel.Select(cond, EvalPath::kColumnar);
  ASSERT_FALSE(row.ok());
  ASSERT_FALSE(col.ok());
  EXPECT_EQ(row.status().code(), col.status().code());
}

TEST(ColumnarTest, StalenessDetectedAfterAppend) {
  Rng rng(11);
  Relation rel = RandomRelation(rng, 100);
  const Condition cond = Condition::True();
  ASSERT_TRUE(rel.CountWhere(cond, EvalPath::kColumnar).ok());
  ASSERT_NE(rel.columnar(), nullptr);
  rel.AppendUnchecked({Value("zz"), Value(int64_t{5}), Value(1.0), Value("x")});
  EXPECT_EQ(rel.columnar(), nullptr);  // stale mirror not served
  const auto count = rel.CountWhere(cond, EvalPath::kColumnar);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 101u);  // rebuilt over the new row count
}

TEST(ColumnarTest, ConcurrentLazyBuildIsRaceFree) {
  // 8 threads race the first columnar scan of a shared relation; the build
  // must happen exactly once (or harmlessly more) with every thread seeing
  // the row-path answer. Run under the TSan matrix via the `concurrency`
  // ctest label.
  Rng rng(99);
  const Relation rel = RandomRelation(rng, 500);
  const Condition cond =
      Condition::Compare("i", CompareOp::kGe, Value(int64_t{0}));
  const auto expected = rel.SelectItems(cond, "M", EvalPath::kRow);
  ASSERT_TRUE(expected.ok());
  std::vector<std::thread> threads;
  std::vector<std::string> got(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const auto items = rel.SelectItems(cond, "M", EvalPath::kColumnar);
      got[t] = items.ok() ? items->ToString() : items.status().ToString();
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::string& s : got) EXPECT_EQ(s, expected->ToString());
}

TEST(ColumnarTest, ApproxBytesGrowsWhenMirrorIsWarm) {
  Rng rng(5);
  const Relation rel = RandomRelation(rng, 200);
  const size_t cold = rel.ApproxBytes();
  rel.WarmColumnar();
  EXPECT_GT(rel.ApproxBytes(), cold);
}

// ---------------------------------------------------------------------------
// ItemSet: typed merge kernels vs std::set_* reference (satellite 5), plus
// the right-sizing (satellite 1) and in-place merge (satellite 2) fixes
// ---------------------------------------------------------------------------

/// Item pools exclude NaN: NaN breaks Value's strict weak order, so an
/// ItemSet built over it violates its own sorted-unique invariant (a
/// pre-existing pathology shared with the legacy merges) — set-op inputs are
/// contractually invariant-respecting.
std::vector<Value> RandomPool(Rng& rng, ValueType type, size_t n) {
  std::vector<Value> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(
        RandomValueFor(rng, type, /*allow_null=*/false, /*allow_nan=*/false));
  }
  return out;
}

void CheckSetOpsAgainstReference(const ItemSet& a, const ItemSet& b) {
  std::vector<Value> u, i, d;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(u));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(i));
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(d));
  EXPECT_EQ(ItemSet::Union(a, b).ToString(),
            ItemSet::FromSortedUnique(u).ToString());
  EXPECT_EQ(ItemSet::Intersect(a, b).ToString(),
            ItemSet::FromSortedUnique(i).ToString());
  EXPECT_EQ(ItemSet::Difference(a, b).ToString(),
            ItemSet::FromSortedUnique(d).ToString());
  ItemSet acc = a;
  acc.UnionInPlace(b);
  EXPECT_EQ(acc.ToString(), ItemSet::FromSortedUnique(u).ToString());
}

TEST(ItemSetKernelTest, TypedAndMixedPoolsMatchReference) {
  Rng rng(31337);
  const ValueType types[] = {ValueType::kInt64, ValueType::kDouble,
                             ValueType::kString};
  for (int trial = 0; trial < 40; ++trial) {
    // Same-typed pools hit the decoded kernels...
    for (const ValueType t : types) {
      const ItemSet a(RandomPool(rng, t, 1 + trial % 17));
      const ItemSet b(RandomPool(rng, t, 1 + (trial * 7) % 23));
      CheckSetOpsAgainstReference(a, b);
    }
    // ...mixed pools take the generic path (int64/double cross-order).
    std::vector<Value> mixed_a = RandomPool(rng, ValueType::kInt64, 8);
    std::vector<Value> mixed_b = RandomPool(rng, ValueType::kDouble, 8);
    std::vector<Value> more = RandomPool(rng, ValueType::kDouble, 4);
    mixed_a.insert(mixed_a.end(), more.begin(), more.end());
    CheckSetOpsAgainstReference(ItemSet(std::move(mixed_a)),
                                ItemSet(std::move(mixed_b)));
  }
}

TEST(ItemSetKernelTest, EmptyOperandFastPaths) {
  const ItemSet empty;
  const ItemSet a(
      {Value(int64_t{3}), Value(int64_t{1}), Value(int64_t{2})});
  EXPECT_EQ(ItemSet::Union(empty, a).ToString(), a.ToString());
  EXPECT_EQ(ItemSet::Union(a, empty).ToString(), a.ToString());
  EXPECT_EQ(ItemSet::Intersect(empty, a).ToString(), "{}");
  EXPECT_EQ(ItemSet::Difference(empty, a).ToString(), "{}");
  EXPECT_EQ(ItemSet::Difference(a, empty).ToString(), a.ToString());
}

TEST(ItemSetKernelTest, UnionResultIsRightSized) {
  // Satellite regression: Union used to reserve |a|+|b| and keep that
  // capacity forever, so heavily-overlapping merges wasted ~2x memory and
  // ApproxBytes (the cache's sizing input) over-reported. The merged set's
  // ApproxBytes must now be within one Value of its exact payload.
  std::vector<Value> av, bv;
  for (int64_t i = 0; i < 1000; ++i) {
    av.push_back(Value(i));
    bv.push_back(Value(i + 1));  // 999 shared, 1 fresh
  }
  const ItemSet a(std::move(av)), b(std::move(bv));
  const ItemSet u = ItemSet::Union(a, b);
  ASSERT_EQ(u.size(), 1001u);
  const size_t exact = sizeof(ItemSet) + u.size() * sizeof(Value);
  EXPECT_LE(u.ApproxBytes(), exact + sizeof(Value));
  // Intersect and Difference as well: no inherited over-capacity.
  const ItemSet inter = ItemSet::Intersect(a, b);
  EXPECT_LE(inter.ApproxBytes(),
            sizeof(ItemSet) + (inter.size() + 1) * sizeof(Value));
  const ItemSet diff = ItemSet::Difference(a, b);
  EXPECT_LE(diff.ApproxBytes(),
            sizeof(ItemSet) + (diff.size() + 1) * sizeof(Value));
}

TEST(ItemSetKernelTest, UnionInPlaceInterleavedAccumulation) {
  // Satellite regression: interleaved UnionInPlace used to degrade to a
  // full insert + inplace_merge + unique rebuild per call. Verify the
  // backward-merge rewrite stays correct across an adversarial interleaved
  // accumulation (odd/even stripes, duplicates, overlapping runs).
  ItemSet acc;
  std::set<int64_t> reference;
  Rng rng(404);
  for (int round = 0; round < 50; ++round) {
    std::vector<Value> piece;
    const int64_t start = rng.Uniform(0, 100);
    const int64_t step = 1 + rng.Uniform(0, 3);
    for (int64_t k = 0; k < 20; ++k) {
      const int64_t v = start + k * step;
      piece.push_back(Value(v));
      reference.insert(v);
    }
    acc.UnionInPlace(ItemSet(std::move(piece)));
    ASSERT_EQ(acc.size(), reference.size());
  }
  std::vector<Value> expected;
  for (const int64_t v : reference) expected.push_back(Value(v));
  EXPECT_EQ(acc.ToString(), ItemSet(std::move(expected)).ToString());
}

TEST(ItemSetKernelTest, UnionInPlaceAllDuplicateSuffixNoCorruption) {
  // The backward merge must terminate cleanly when every remaining element
  // of `other` is already present (w catches up to i — the self-move
  // hazard).
  ItemSet acc({Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{5})});
  acc.UnionInPlace(ItemSet({Value(int64_t{1}), Value(int64_t{4})}));
  EXPECT_EQ(acc.ToString(), "{1, 2, 4, 5}");
  ItemSet again = acc;
  again.UnionInPlace(acc);  // pure duplicates: no fresh elements at all
  EXPECT_EQ(again.ToString(), "{1, 2, 4, 5}");
}

// ---------------------------------------------------------------------------
// Bloom filter
// ---------------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  Rng rng(8);
  BloomFilter filter(500, 0.01);
  std::vector<Value> inserted;
  for (int i = 0; i < 500; ++i) {
    Value v = RandomValueFor(
        rng,
        i % 3 == 0 ? ValueType::kInt64
                   : (i % 3 == 1 ? ValueType::kDouble : ValueType::kString),
        /*allow_null=*/false);
    filter.Insert(v);
    inserted.push_back(std::move(v));
  }
  for (const Value& v : inserted) EXPECT_TRUE(filter.MayContain(v));
}

TEST(BloomFilterTest, CrossTypeNumericEqualityIsBloomSafe) {
  // int64 5 == double 5.0 under Value::Compare; Value::Hash makes them
  // collide, so a filter fed int64s cannot false-negative the equal double.
  BloomFilter filter(16, 0.01);
  filter.Insert(Value(int64_t{5}));
  EXPECT_TRUE(filter.MayContain(Value(5.0)));
  filter.Insert(Value(7.0));
  EXPECT_TRUE(filter.MayContain(Value(int64_t{7})));
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  const BloomFilter filter;
  EXPECT_FALSE(filter.MayContain(Value(int64_t{1})));
  EXPECT_FALSE(filter.MayContain(Value("x")));
}

TEST(BloomFilterTest, FalsePositiveRateIsSane) {
  BloomFilter filter(1000, 0.01);
  for (int64_t i = 0; i < 1000; ++i) filter.Insert(Value(i));
  size_t false_positives = 0;
  const size_t probes = 10000;
  for (size_t i = 0; i < probes; ++i) {
    if (filter.MayContain(Value(static_cast<int64_t>(1000000 + i)))) {
      ++false_positives;
    }
  }
  // ~1% target; allow generous slack against hash unluckiness.
  EXPECT_LT(false_positives, probes / 20);
}

// ---------------------------------------------------------------------------
// Bloom probe pre-filter: answers identical, probes skipped, charges shrink
// ---------------------------------------------------------------------------

/// Source 0 holds M in {m0..m59}; source 1 (passed-bindings only) holds only
/// {m0..m9}, so 50 of the 60 probe bindings are guaranteed misses.
struct BloomInstance {
  SourceCatalog catalog;
  FusionQuery query;
};

BloomInstance MakeBloomInstance() {
  Schema schema({{"M", ValueType::kString}, {"i", ValueType::kInt64}});
  Relation wide(schema), narrow(schema);
  for (int64_t k = 0; k < 60; ++k) {
    EXPECT_TRUE(wide.Append({Value("m" + std::to_string(k)), Value(k)}).ok());
  }
  for (int64_t k = 0; k < 10; ++k) {
    EXPECT_TRUE(narrow.Append({Value("m" + std::to_string(k)), Value(k)}).ok());
  }
  Capabilities native;
  Capabilities passed_only;
  passed_only.semijoin = SemijoinSupport::kPassedBindingsOnly;
  BloomInstance out;
  EXPECT_TRUE(out.catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "wide", std::move(wide), native, NetworkProfile{}))
                  .ok());
  EXPECT_TRUE(out.catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "narrow", std::move(narrow), passed_only,
                      NetworkProfile{}))
                  .ok());
  out.query = FusionQuery(
      "M", {Condition::Compare("i", CompareOp::kGe, Value(int64_t{0})),
            Condition::Compare("i", CompareOp::kGe, Value(int64_t{0}))});
  return out;
}

TEST(BloomPrefilterTest, SkipsGuaranteedMissProbesWithIdenticalAnswer) {
  Plan plan;
  const int x = plan.EmitSelect(0, 0);
  const int s = plan.EmitSemiJoin(1, 1, x);
  plan.SetResult(s);

  const BloomInstance base = MakeBloomInstance();
  ExecOptions off;
  const auto report_off = ExecutePlan(plan, base.catalog, base.query, off);
  ASSERT_TRUE(report_off.ok()) << report_off.status().ToString();
  EXPECT_EQ(report_off->semijoin_probes_skipped, 0u);

  const BloomInstance bloomed = MakeBloomInstance();
  ExecOptions on;
  on.bloom_probe_prefilter = true;
  const auto report_on = ExecutePlan(plan, bloomed.catalog, bloomed.query, on);
  ASSERT_TRUE(report_on.ok()) << report_on.status().ToString();

  // Byte-identical answer; 50 of 60 probes skipped; skipped probes left no
  // charges, so the metered total strictly shrinks.
  EXPECT_EQ(report_on->answer.ToString(), report_off->answer.ToString());
  EXPECT_EQ(report_on->semijoin_probes_skipped, 50u);
  EXPECT_LT(report_on->ledger.total(), report_off->ledger.total());
  size_t probes_on = 0, probes_off = 0;
  for (const Charge& c : report_on->ledger.charges()) {
    if (c.kind == ChargeKind::kEmulatedSemiJoinProbe) ++probes_on;
  }
  for (const Charge& c : report_off->ledger.charges()) {
    if (c.kind == ChargeKind::kEmulatedSemiJoinProbe) ++probes_off;
  }
  EXPECT_EQ(probes_off, 60u);
  EXPECT_EQ(probes_on, 10u);
}

TEST(BloomPrefilterTest, DefaultOffPreservesMeteredProbeAccounting) {
  // The cost model (and its golden tests) meter one probe per candidate;
  // the Bloom option must stay opt-in.
  EXPECT_FALSE(ExecOptions{}.bloom_probe_prefilter);
}

// ---------------------------------------------------------------------------
// Ledger fidelity: a columnar-warmed source meters exactly the same charges
// as an identical cold (row-path) twin
// ---------------------------------------------------------------------------

TEST(ColumnarTest, WarmedSourceMetersIdenticalCharges) {
  Rng rng(42);
  Relation rel = RandomRelation(rng, 300);
  SimulatedSource cold("s", rel, Capabilities{}, NetworkProfile{});
  SimulatedSource warm("s", rel, Capabilities{}, NetworkProfile{});
  warm.relation().WarmColumnar();

  for (int trial = 0; trial < 20; ++trial) {
    const Condition cond = RandomCondition(rng, rel.schema(), 2);
    SCOPED_TRACE(cond.ToString());
    CostLedger cold_ledger, warm_ledger;
    const auto cold_items = cold.Select(cond, "M", &cold_ledger);
    const auto warm_items = warm.Select(cond, "M", &warm_ledger);
    ASSERT_EQ(cold_items.ok(), warm_items.ok());
    if (!cold_items.ok()) continue;
    EXPECT_EQ(cold_items->ToString(), warm_items->ToString());
    ASSERT_EQ(cold_ledger.charges().size(), warm_ledger.charges().size());
    for (size_t i = 0; i < cold_ledger.charges().size(); ++i) {
      const Charge& a = cold_ledger.charges()[i];
      const Charge& b = warm_ledger.charges()[i];
      EXPECT_EQ(a.items_received, b.items_received);
      EXPECT_EQ(a.tuples_scanned, b.tuples_scanned);
      EXPECT_EQ(a.cost, b.cost);
      EXPECT_EQ(a.detail, b.detail);
    }
  }
}

}  // namespace
}  // namespace fusion
