// Tests for the FUSIONP/1 wrapper protocol: message round trips, server
// behaviour, and RemoteSource equivalence with in-process wrappers —
// including the key invariant that metered costs are identical whether a
// source is called directly or across the serialized boundary.
#include <gtest/gtest.h>

#include <memory>

#include "cost/oracle_cost_model.h"
#include "exec/executor.h"
#include "optimizer/sja.h"
#include "protocol/message.h"
#include "protocol/remote_source.h"
#include "protocol/source_server.h"
#include "relational/reference_evaluator.h"
#include "source/simulated_source.h"
#include "workload/dmv.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

// ---------------------------------------------------------------------------
// Value / message serialization round trips
// ---------------------------------------------------------------------------

TEST(ProtocolValueTest, RoundTripsEveryType) {
  for (const Value& v :
       {Value::Null(), Value(int64_t{-42}), Value(3.141592653589793),
        Value("plain"), Value("with\nnewline"), Value("back\\slash"),
        Value("")}) {
    const auto back = ParseSerializedValue(SerializeValue(v));
    ASSERT_TRUE(back.ok()) << SerializeValue(v);
    EXPECT_EQ(*back, v) << SerializeValue(v);
    if (!v.is_null()) {
      EXPECT_EQ(back->type(), v.type());
    }
  }
}

TEST(ProtocolValueTest, RejectsGarbage) {
  EXPECT_FALSE(ParseSerializedValue("x:1").ok());
  EXPECT_FALSE(ParseSerializedValue("i:abc").ok());
  EXPECT_FALSE(ParseSerializedValue("d:").ok());
  EXPECT_FALSE(ParseSerializedValue("s").ok());
  EXPECT_FALSE(ParseSerializedValue("s:bad\\q").ok());
}

TEST(ProtocolMessageTest, RequestRoundTrip) {
  SourceRequest request;
  request.kind = SourceRequest::Kind::kSemiJoin;
  request.merge_attribute = "L";
  request.condition_text = "V = 'it''s' AND D >= 1990";
  request.bindings = {Value("J55"), Value(int64_t{7})};
  const auto back = ParseRequest(SerializeRequest(request));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->kind, SourceRequest::Kind::kSemiJoin);
  EXPECT_EQ(back->merge_attribute, "L");
  EXPECT_EQ(back->condition_text, request.condition_text);
  ASSERT_EQ(back->bindings.size(), 2u);
  EXPECT_EQ(back->bindings[0], Value("J55"));
  EXPECT_EQ(back->bindings[1], Value(int64_t{7}));
}

TEST(ProtocolMessageTest, ResponseRoundTrip) {
  SourceResponse response;
  response.items = {Value("J55"), Value("T21")};
  response.relation_lines = {"L:string,V:string", "J55,dui"};
  response.name = "R1";
  response.semijoin_support = "bindings";
  response.supports_load = false;
  response.charges.push_back({"sq", 0, 2, 3, 15.5});
  const auto back = ParseResponse(SerializeResponse(response));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->ok);
  EXPECT_EQ(back->items.size(), 2u);
  EXPECT_EQ(back->relation_lines, response.relation_lines);
  EXPECT_EQ(back->name, "R1");
  EXPECT_EQ(back->semijoin_support, "bindings");
  EXPECT_FALSE(back->supports_load);
  ASSERT_EQ(back->charges.size(), 1u);
  EXPECT_EQ(back->charges[0].kind, "sq");
  EXPECT_DOUBLE_EQ(back->charges[0].cost, 15.5);
}

TEST(ProtocolMessageTest, ErrorResponseRoundTrip) {
  SourceResponse response;
  response.ok = false;
  response.error_code = StatusCode::kUnsupported;
  response.error_message = "no semijoins\nhere";
  const auto back = ParseResponse(SerializeResponse(response));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back->ok);
  EXPECT_EQ(back->error_code, StatusCode::kUnsupported);
  EXPECT_EQ(back->error_message, response.error_message);
}

TEST(ProtocolMessageTest, RejectsMalformedFrames) {
  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("HTTP/1.1 GET\nend\n").ok());
  EXPECT_FALSE(ParseRequest("FUSIONP/1 NOPE\nend\n").ok());
  EXPECT_FALSE(ParseRequest("FUSIONP/1 SELECT\nmerge L\n").ok());  // no end
  EXPECT_FALSE(ParseResponse("FUSIONP/1 MAYBE\nend\n").ok());
  EXPECT_FALSE(ParseResponse("FUSIONP/1 OK\ncharge sq 1\nend\n").ok());
  // Malformed values of *known* fields still fail...
  EXPECT_FALSE(ParseRequest("FUSIONP/1 SELECT\ntrace x y\nend\n").ok());
}

TEST(ProtocolMessageTest, IgnoresUnknownFieldsForForwardCompat) {
  // ...but unknown fields are skipped, so an older peer survives a newer
  // peer's extensions (the way trace/features were added) instead of
  // erroring on every new line.
  const auto request = ParseRequest("FUSIONP/1 SELECT\nwat x\nend\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->kind, SourceRequest::Kind::kSelect);
  const auto response =
      ParseResponse("FUSIONP/1 OK\nname dmv\nshiny new-field\nend\n");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->name, "dmv");
}

TEST(ProtocolMessageTest, TraceContextRoundTrip) {
  SourceRequest request;
  request.kind = SourceRequest::Kind::kSelect;
  request.condition_text = "V = 'x'";
  request.merge_attribute = "L";
  request.trace_id = 0xdeadbeefcafef00dULL;
  request.parent_span = 42;
  const auto back = ParseRequest(SerializeRequest(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->trace_id, request.trace_id);
  EXPECT_EQ(back->parent_span, request.parent_span);
  // A request without a context serializes no trace line at all.
  request.trace_id = 0;
  EXPECT_EQ(SerializeRequest(request).find("trace"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Server + RemoteSource end to end (in-process transport)
// ---------------------------------------------------------------------------

/// Builds a connected (server, remote-wrapper) pair over one Figure 1 DMV
/// source.
struct Endpoint {
  std::shared_ptr<SourceServer> server;
  std::unique_ptr<RemoteSource> remote;
};

Endpoint MakeEndpoint() {
  auto instance = BuildDmvFigure1();
  EXPECT_TRUE(instance.ok());
  // Copy the first simulated source into a server.
  const SimulatedSource* sim = instance->simulated[0];
  auto server = std::make_shared<SourceServer>(
      std::make_unique<SimulatedSource>(*sim));
  auto remote = RemoteSource::Connect(
      [server](const std::string& request) { return server->Handle(request); });
  EXPECT_TRUE(remote.ok()) << remote.status().ToString();
  return {server, std::move(remote).value()};
}

TEST(RemoteSourceTest, HandshakeCarriesMetadata) {
  Endpoint ep = MakeEndpoint();
  EXPECT_EQ(ep.remote->name(), "R1");
  EXPECT_TRUE(ep.remote->schema().HasColumn("L"));
  EXPECT_TRUE(ep.remote->schema().HasColumn("V"));
  EXPECT_EQ(ep.remote->capabilities().semijoin, SemijoinSupport::kNative);
}

TEST(RemoteSourceTest, SelectMatchesDirectCallIncludingCosts) {
  Endpoint ep = MakeEndpoint();
  const SimulatedSource& direct = *ep.server->impl().AsSimulated();
  SimulatedSource local(direct);

  const Condition cond = Condition::Eq("V", Value("dui"));
  CostLedger remote_ledger, local_ledger;
  const auto via_protocol = ep.remote->Select(cond, "L", &remote_ledger);
  const auto via_direct = local.Select(cond, "L", &local_ledger);
  ASSERT_TRUE(via_protocol.ok()) << via_protocol.status().ToString();
  ASSERT_TRUE(via_direct.ok());
  EXPECT_EQ(*via_protocol, *via_direct);
  EXPECT_DOUBLE_EQ(remote_ledger.total(), local_ledger.total());
  EXPECT_EQ(remote_ledger.num_queries(), local_ledger.num_queries());
}

TEST(RemoteSourceTest, SemiJoinAndLoadAndFetch) {
  Endpoint ep = MakeEndpoint();
  ItemSet candidates({Value("J55"), Value("T21"), Value("ZZ")});
  CostLedger ledger;
  const auto semi = ep.remote->SemiJoin(Condition::Eq("V", Value("sp")), "L",
                                        candidates, &ledger);
  ASSERT_TRUE(semi.ok()) << semi.status().ToString();
  EXPECT_EQ(semi->ToString(), "{'T21'}");

  const auto loaded = ep.remote->Load(&ledger);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->schema(), ep.remote->schema());

  const auto records = ep.remote->FetchRecords("L", candidates, &ledger);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);  // J55 + T21 rows in R1
  EXPECT_GT(ledger.total(), 0.0);
}

TEST(RemoteSourceTest, ServerErrorsMapBackToStatus) {
  // A wrapper without native semijoin support refuses SEMIJOIN; the error
  // crosses the protocol as ERROR and comes back as kUnsupported.
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  Capabilities caps;
  caps.semijoin = SemijoinSupport::kPassedBindingsOnly;
  auto server = std::make_shared<SourceServer>(
      std::make_unique<SimulatedSource>(
          "R1", instance->simulated[0]->relation(), caps,
          instance->simulated[0]->network()));
  auto remote = RemoteSource::Connect(
      [server](const std::string& r) { return server->Handle(r); });
  ASSERT_TRUE(remote.ok());
  ItemSet candidates({Value("J55")});
  const auto semi = (*remote)->SemiJoin(Condition::True(), "L", candidates,
                                        nullptr);
  ASSERT_FALSE(semi.ok());
  EXPECT_EQ(semi.status().code(), StatusCode::kUnsupported);
}

TEST(RemoteSourceTest, GarbageTransportFailsCleanly) {
  auto remote = RemoteSource::Connect(
      [](const std::string&) { return std::string("NOISE"); });
  EXPECT_FALSE(remote.ok());
}

// ---------------------------------------------------------------------------
// Whole federation behind the protocol
// ---------------------------------------------------------------------------

TEST(RemoteFederationTest, PlansExecuteIdenticallyOverTheWire) {
  SyntheticSpec spec;
  spec.universe_size = 300;
  spec.num_sources = 3;
  spec.num_conditions = 2;
  spec.selectivity = {0.1, 0.3};
  spec.frac_native_semijoin = 1.0;
  spec.seed = 23;
  auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const FusionQuery query = instance->query;
  const ItemSet expected =
      *ReferenceFusionAnswer(RelationsOf(*instance), "M", query.conditions());

  // Optimize against the local instance.
  const auto model = OracleCostModel::Create(instance->simulated, query);
  ASSERT_TRUE(model.ok());
  const auto sja = OptimizeSja(*model);
  ASSERT_TRUE(sja.ok());
  const auto local_report =
      ExecutePlan(sja->plan, instance->catalog, query);
  ASSERT_TRUE(local_report.ok());

  // Rebuild the catalog with every source behind a protocol boundary.
  SourceCatalog remote_catalog;
  std::vector<std::shared_ptr<SourceServer>> servers;
  for (const SimulatedSource* sim : instance->simulated) {
    servers.push_back(std::make_shared<SourceServer>(
        std::make_unique<SimulatedSource>(*sim)));
    auto server = servers.back();
    auto remote = RemoteSource::Connect(
        [server](const std::string& r) { return server->Handle(r); });
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    ASSERT_TRUE(remote_catalog.Add(std::move(remote).value()).ok());
  }

  const auto remote_report = ExecutePlan(sja->plan, remote_catalog, query);
  ASSERT_TRUE(remote_report.ok()) << remote_report.status().ToString();
  EXPECT_EQ(remote_report->answer, expected);
  EXPECT_EQ(remote_report->answer, local_report->answer);
  EXPECT_NEAR(remote_report->ledger.total(), local_report->ledger.total(),
              1e-9);
}

}  // namespace
}  // namespace fusion
