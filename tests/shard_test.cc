// Sharded-fleet tests (the `shard` ctest label): the FUSIONQ/1 feature
// registry, the rendezvous shard map, the INVALIDATE coherence verb, the
// distributed plan split, the in-process distributed executor, and the
// fusionrd QueryRouter end to end over real sockets — k shards behind one
// router must answer byte-identically to a single serial mediator, keep
// repeated queries warm regardless of which client connection asks, fail
// over past a dead shard, and apply INVALIDATE broadcasts idempotently.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "exec/source_call_cache.h"
#include "mediator/client.h"
#include "mediator/distributed.h"
#include "mediator/service.h"
#include "plan/plan_split.h"
#include "protocol/client_protocol.h"
#include "protocol/features.h"
#include "protocol/socket.h"
#include "router/router.h"
#include "router/shard_map.h"
#include "workload/dmv.h"

namespace fusion {
namespace {

constexpr char kDuiAndSp[] =
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'";
constexpr char kSpAndDui[] =
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.V = 'sp' AND u2.V = 'dui' AND u1.L = u2.L";
constexpr char kDuiOnly[] = "SELECT u1.L FROM U u1 WHERE u1.V = 'dui'";

std::string Endpoint(int port) {
  return "127.0.0.1:" + std::to_string(port);
}

// ---------------------------------------------------------------------------
// Feature registry
// ---------------------------------------------------------------------------

TEST(FeatureRegistryTest, NamesRoundTrip) {
  const FeatureSet all = FeatureSet::All();
  for (const Feature f : {Feature::kTrace, Feature::kStats, Feature::kExplain,
                          Feature::kIdempotency, Feature::kSharding}) {
    EXPECT_TRUE(all.Has(f)) << FeatureName(f);
    Feature parsed;
    ASSERT_TRUE(ParseFeatureName(FeatureName(f), &parsed));
    EXPECT_EQ(parsed, f);
  }
  EXPECT_EQ(FeatureSet::FromNames(all.Names()), all);
}

TEST(FeatureRegistryTest, FromNamesDropsUnknownNames) {
  const FeatureSet set =
      FeatureSet::FromNames({"sharding", "warp-drive", "trace"});
  EXPECT_TRUE(set.Has(Feature::kSharding));
  EXPECT_TRUE(set.Has(Feature::kTrace));
  EXPECT_FALSE(set.Has(Feature::kStats));
}

TEST(FeatureRegistryTest, ClientProtocolFeaturesIsTheFullRegistry) {
  EXPECT_EQ(ClientProtocolFeatures(), FeatureSet::All().Names());
}

// ---------------------------------------------------------------------------
// Rendezvous shard map
// ---------------------------------------------------------------------------

std::vector<Shard> TestShards(size_t k) {
  std::vector<Shard> shards;
  for (size_t i = 0; i < k; ++i) {
    Shard shard;
    shard.name = "shard-" + std::to_string(i);
    shard.endpoint = "127.0.0.1:" + std::to_string(10000 + i);
    shards.push_back(shard);
  }
  return shards;
}

TEST(ShardMapTest, ValidatesItsShards) {
  EXPECT_FALSE(ShardMap::Make({}).ok());
  auto dup = TestShards(2);
  dup[1].name = dup[0].name;
  EXPECT_FALSE(ShardMap::Make(dup).ok());
  auto blank = TestShards(2);
  blank[1].endpoint.clear();
  EXPECT_FALSE(ShardMap::Make(blank).ok());
  EXPECT_TRUE(ShardMap::Make(TestShards(2)).ok());
}

TEST(ShardMapTest, OwnerIsDeterministicAcrossRebuilds) {
  auto a = ShardMap::Make(TestShards(4));
  auto b = ShardMap::Make(TestShards(4));
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 200; ++i) {
    const std::string key = "query-" + std::to_string(i);
    EXPECT_EQ(a->Owner(key), b->Owner(key)) << key;
  }
}

TEST(ShardMapTest, RankedCoversEveryShardAndSpreadsKeys) {
  auto map = ShardMap::Make(TestShards(4));
  ASSERT_TRUE(map.ok());
  std::vector<size_t> owned(4, 0);
  for (int i = 0; i < 400; ++i) {
    const std::string key = "query-" + std::to_string(i);
    const std::vector<size_t> ranked = map->Ranked(key);
    ASSERT_EQ(ranked.size(), 4u);
    EXPECT_EQ(std::set<size_t>(ranked.begin(), ranked.end()).size(), 4u);
    ++owned[ranked[0]];
  }
  // HRW spreads uniformly in expectation (100 per shard here); a shard
  // getting under a quarter of its fair share would mean a broken hash.
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT(owned[s], 25u) << "shard " << s << " starved";
  }
}

TEST(ShardMapTest, GrowingTheFleetMovesOnlyAFractionOfKeys) {
  auto four = ShardMap::Make(TestShards(4));
  auto five = ShardMap::Make(TestShards(5));
  ASSERT_TRUE(four.ok() && five.ok());
  size_t moved = 0;
  const size_t kKeys = 500;
  for (size_t i = 0; i < kKeys; ++i) {
    const std::string key = "query-" + std::to_string(i);
    if (four->Owner(key) != five->Owner(key)) ++moved;
  }
  // Rendezvous hashing moves ~1/5 of keys when a fifth shard joins; a
  // modulo hash would move ~4/5. The bound splits the difference.
  EXPECT_LT(moved, kKeys / 2) << "not minimal-movement hashing";
  EXPECT_GT(moved, 0u) << "new shard never wins";
}

TEST(ShardMapTest, CanonicalQueryKeyCommutesConditions) {
  // The same fusion query spelled in two orders must land on one shard —
  // that is what makes the warm-locality routing invariant real.
  EXPECT_EQ(CanonicalQueryKey(kDuiAndSp), CanonicalQueryKey(kSpAndDui));
  EXPECT_NE(CanonicalQueryKey(kDuiAndSp), CanonicalQueryKey(kDuiOnly));
  // Unparseable text degrades to trimmed-verbatim keying.
  EXPECT_EQ(CanonicalQueryKey("  not sql  "), CanonicalQueryKey("not sql"));
}

// ---------------------------------------------------------------------------
// INVALIDATE: wire round-trip and service-side version idempotence
// ---------------------------------------------------------------------------

TEST(InvalidateProtocolTest, RequestRoundTripsWithVersion) {
  ClientRequest request;
  request.kind = ClientRequest::Kind::kInvalidate;
  request.client_id = "router";
  request.source = "DMV HQ";  // space exercises wire escaping
  request.version = 41;
  const auto parsed = ParseClientRequest(SerializeClientRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->kind, ClientRequest::Kind::kInvalidate);
  EXPECT_EQ(parsed->source, "DMV HQ");
  EXPECT_EQ(parsed->version, 41u);
}

std::unique_ptr<QueryService> Figure1Service() {
  auto instance = BuildDmvFigure1();
  EXPECT_TRUE(instance.ok());
  QueryService::Options options;
  options.client.statistics = StatisticsMode::kOracle;
  return std::make_unique<QueryService>(Mediator(std::move(instance->catalog)),
                                        options);
}

TEST(ServiceInvalidateTest, VersionsAreIdempotent) {
  auto service = Figure1Service();
  const std::string source = service->session().mediator().catalog()
                                 .source(0).name();
  // Version 7 applies; replaying it (the router retrying a partial
  // broadcast) is a stale no-op; a higher version applies again.
  auto first = service->Invalidate(source, 7);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, "applied");
  auto replay = service->Invalidate(source, 7);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(*replay, "stale");
  auto older = service->Invalidate(source, 3);
  ASSERT_TRUE(older.ok());
  EXPECT_EQ(*older, "stale");
  auto newer = service->Invalidate(source, 8);
  ASSERT_TRUE(newer.ok());
  EXPECT_EQ(*newer, "applied");
  // Version 0 = unconditional (never recorded, never staled).
  auto unconditional = service->Invalidate(source, 0);
  ASSERT_TRUE(unconditional.ok());
  EXPECT_EQ(*unconditional, "applied");
  EXPECT_EQ(service->invalidates_applied(), 3u);
  EXPECT_EQ(service->invalidates_stale(), 2u);
  // Unknown sources are an error, not a silent no-op.
  EXPECT_FALSE(service->Invalidate("no-such-source", 1).ok());
}

TEST(ServiceInvalidateTest, HandlesTheWireVerb) {
  auto service = Figure1Service();
  ClientRequest request;
  request.kind = ClientRequest::Kind::kInvalidate;
  request.client_id = "coherence";
  request.source =
      service->session().mediator().catalog().source(1).name();
  request.version = 5;
  auto response =
      ParseClientResponse(service->Handle(SerializeClientRequest(request)));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok) << response->error_message;
  EXPECT_EQ(response->state, "applied");
  response =
      ParseClientResponse(service->Handle(SerializeClientRequest(request)));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->ok);
  EXPECT_EQ(response->state, "stale");
}

// ---------------------------------------------------------------------------
// Plan split + distributed execution
// ---------------------------------------------------------------------------

/// The paper's semijoin plan over Figure 1: ∪_j sq(dui, R_j) feeding
/// per-source semijoins for 'sp'. Three sources, so a 2-shard split puts
/// sources {0, 1} on shard 0 and source {2} on shard 1.
Plan SemiJoinPlan() {
  Plan plan;
  std::vector<int> dui;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  std::vector<int> sp;
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSemiJoin(1, j, x1));
  plan.SetResult(plan.EmitUnion(sp, "X2"));
  return plan;
}

TEST(PlanSplitTest, PlacesSourceOpsOnTheirHomeShard) {
  const Plan plan = SemiJoinPlan();
  const std::vector<size_t> source_shard = {0, 0, 1};
  auto split = SplitPlanBySource(plan, source_shard, 2);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  ASSERT_EQ(split->op_shard.size(), plan.ops().size());
  for (size_t k = 0; k < plan.ops().size(); ++k) {
    const PlanOp& op = plan.ops()[k];
    if (op.source >= 0) {
      EXPECT_EQ(split->op_shard[k],
                source_shard[static_cast<size_t>(op.source)])
          << "op " << k;
    }
  }
  // Every cut variable is a merge-attribute item set — the invariant that
  // keeps inter-shard traffic proportional to answers, not sources.
  EXPECT_GT(split->num_cut_vars(), 0u);
  for (const PlanCutEdge& edge : split->cut_edges) {
    EXPECT_EQ(plan.var(edge.var).type, PlanVarType::kItems);
    EXPECT_NE(edge.producer_shard, edge.consumer_shard);
  }
  // Fragments partition the ops in order.
  size_t covered = 0;
  for (const PlanFragment& fragment : split->fragments) {
    for (const size_t k : fragment.ops) {
      EXPECT_EQ(k, covered++);
      EXPECT_EQ(split->op_shard[k], fragment.shard);
    }
  }
  EXPECT_EQ(covered, plan.ops().size());
}

TEST(PlanSplitTest, PinsLocalSelectsToTheLoadShard) {
  Plan plan;
  const int rel = plan.EmitLoad(2, "R3");
  const int local = plan.EmitLocalSelect(0, rel, "Y1");
  const int remote = plan.EmitSelect(1, 0, "Y2");
  plan.SetResult(plan.EmitIntersect({local, remote}, "X"));
  auto split = SplitPlanBySource(plan, {0, 0, 1}, 2);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split->op_shard[0], 1u);  // load runs at source 2's shard
  EXPECT_EQ(split->op_shard[1], 1u);  // local select pinned to the load
  // Only item sets cross: the loaded relation variable never appears as a
  // cut edge.
  for (const PlanCutEdge& edge : split->cut_edges) {
    EXPECT_NE(edge.var, rel);
  }
}

TEST(PlanSplitTest, SingleShardHasNoCutEdges) {
  const Plan plan = SemiJoinPlan();
  auto split = SplitPlanBySource(plan, {0, 0, 0}, 1);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->num_cut_vars(), 0u);
  EXPECT_EQ(split->fragments.size(), 1u);
}

TEST(DistributedExecTest, MatchesTheSerialInterpreterByteForByte) {
  // Serial oracle over one replica…
  auto serial_instance = BuildDmvFigure1();
  ASSERT_TRUE(serial_instance.ok());
  const Plan plan = SemiJoinPlan();
  const auto serial =
      ExecutePlan(plan, serial_instance->catalog, serial_instance->query);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  // …vs the same plan split across two shards, each with its own replica
  // and its own memo.
  auto replica_a = BuildDmvFigure1();
  auto replica_b = BuildDmvFigure1();
  ASSERT_TRUE(replica_a.ok() && replica_b.ok());
  SourceCallCache cache_a, cache_b;
  const std::vector<ShardExecutor> shards = {
      {&replica_a->catalog, &cache_a}, {&replica_b->catalog, &cache_b}};
  auto split = SplitPlanBySource(plan, {0, 1, 0}, 2);
  ASSERT_TRUE(split.ok());
  const auto distributed = ExecutePlanDistributed(
      plan, replica_a->query, *split, shards, ExecOptions{});
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();

  EXPECT_EQ(distributed->answer.ToString(), serial->answer.ToString());
  // The merged ledger is charge-for-charge identical: same sources, same
  // conditions, same costs, same order.
  EXPECT_EQ(distributed->ledger.Report(), serial->ledger.Report());
  EXPECT_GT(distributed->cross_shard_vars, 0u);
  EXPECT_GT(distributed->cross_shard_items, 0u);
  // Both shards did real work.
  ASSERT_EQ(distributed->per_shard_ops.size(), 2u);
  EXPECT_GT(distributed->per_shard_ops[0], 0u);
  EXPECT_GT(distributed->per_shard_ops[1], 0u);

  // Re-running the same split is answered entirely from the shard memos:
  // zero new charges.
  const auto warm = ExecutePlanDistributed(plan, replica_a->query, *split,
                                           shards, ExecOptions{});
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->answer.ToString(), serial->answer.ToString());
  EXPECT_EQ(warm->ledger.total(), 0.0);
  EXPECT_GT(warm->cache_hits, 0u);
}

TEST(DistributedExecTest, RejectsUnsupportedModes) {
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  const Plan plan = SemiJoinPlan();
  auto split = SplitPlanBySource(plan, {0, 0, 0}, 1);
  ASSERT_TRUE(split.ok());
  const std::vector<ShardExecutor> shards = {{&instance->catalog, nullptr}};
  ExecOptions lazy;
  lazy.lazy_short_circuit = true;
  EXPECT_FALSE(
      ExecutePlanDistributed(plan, instance->query, *split, shards, lazy)
          .ok());
  ExecOptions parallel;
  parallel.parallelism = 4;
  EXPECT_FALSE(
      ExecutePlanDistributed(plan, instance->query, *split, shards, parallel)
          .ok());
}

// ---------------------------------------------------------------------------
// QueryRouter end to end over real sockets
// ---------------------------------------------------------------------------

/// Minimal serve loop for one QueryService (or QueryRouter) over TCP — the
/// test-side twin of fusionqd/fusionrd.
template <typename Server>
class Daemon {
 public:
  explicit Daemon(Server* server) : server_(server) {}
  ~Daemon() { Stop(); }

  Status Start() {
    FUSION_ASSIGN_OR_RETURN(listener_, TcpListener::Bind("127.0.0.1", 0));
    acceptor_ = std::thread([this] { AcceptLoop(); });
    return Status::Ok();
  }

  int port() const { return listener_.port(); }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      stopping_ = true;
    }
    listener_.Close();
    if (acceptor_.joinable()) acceptor_.join();
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread& thread : serving_) {
      if (thread.joinable()) thread.join();
    }
    serving_.clear();
  }

 private:
  void AcceptLoop() {
    while (true) {
      auto accepted = listener_.Accept();
      if (!accepted.ok()) return;
      MessageSocket socket = std::move(accepted).value();
      const int fd = socket.fd();
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        socket.Close();
        return;
      }
      live_fds_.insert(fd);
      serving_.emplace_back(
          [this, fd](MessageSocket s) {
            server_->ServeConnection(ChaosSocket(std::move(s)));
            std::lock_guard<std::mutex> inner(mu_);
            live_fds_.erase(fd);
          },
          std::move(socket));
    }
  }

  Server* server_;
  TcpListener listener_;
  std::thread acceptor_;
  std::mutex mu_;
  bool stopping_ = false;
  std::set<int> live_fds_;
  std::vector<std::thread> serving_;
};

/// A 2-shard fleet behind a router: each shard is a full QueryService over
/// its own byte-identical replica of the Figure 1 federation.
struct Fleet {
  std::vector<std::unique_ptr<QueryService>> services;
  std::vector<std::unique_ptr<Daemon<QueryService>>> shard_daemons;
  std::unique_ptr<QueryRouter> router;
  std::unique_ptr<Daemon<QueryRouter>> router_daemon;

  std::string endpoint() const {
    return Endpoint(router_daemon->port());
  }
};

Fleet StartFleet(size_t k) {
  Fleet fleet;
  std::vector<Shard> shards;
  for (size_t i = 0; i < k; ++i) {
    fleet.services.push_back(Figure1Service());
    fleet.shard_daemons.push_back(
        std::make_unique<Daemon<QueryService>>(fleet.services.back().get()));
    EXPECT_TRUE(fleet.shard_daemons.back()->Start().ok());
    Shard shard;
    shard.name = "shard-" + std::to_string(i);
    shard.endpoint = Endpoint(fleet.shard_daemons.back()->port());
    shards.push_back(shard);
  }
  auto map = ShardMap::Make(shards);
  EXPECT_TRUE(map.ok());
  fleet.router = std::make_unique<QueryRouter>(std::move(map).value(),
                                               QueryRouter::Options{});
  fleet.router_daemon =
      std::make_unique<Daemon<QueryRouter>>(fleet.router.get());
  EXPECT_TRUE(fleet.router_daemon->Start().ok());
  return fleet;
}

TEST(RouterTest, HelloAdvertisesShardingAndNamesTheRouter) {
  Fleet fleet = StartFleet(2);
  auto client = Client::Builder()
                    .To(Client::Target::Remote(fleet.endpoint()))
                    .ClientId("hello")
                    .Build();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client->server(), "fusionrd");
  EXPECT_TRUE(
      FeatureSet::FromNames(client->server_features()).Has(Feature::kSharding));
  fleet.router->Shutdown();
}

TEST(RouterTest, FleetAnswersMatchASerialMediatorWithChurn) {
  Fleet fleet = StartFleet(2);
  auto serial_instance = BuildDmvFigure1();
  ASSERT_TRUE(serial_instance.ok());
  auto serial = Client::Builder()
                    .To(Client::Target::Embedded(
                        std::move(serial_instance->catalog)))
                    .Statistics(StatisticsMode::kOracle)
                    .Build();
  ASSERT_TRUE(serial.ok());

  // Three concurrent tenants, each its own connection through the router;
  // every answer must equal the serial mediator's, across source churn.
  const std::vector<std::string> pool = {kDuiAndSp, kDuiOnly, kSpAndDui};
  std::vector<std::string> expected;
  for (const std::string& sql : pool) {
    auto answer = serial->QuerySql(sql);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    expected.push_back(answer->items.ToString());
  }
  std::vector<std::string> failures;
  std::mutex failures_mu;
  std::vector<std::thread> tenants;
  for (int t = 0; t < 3; ++t) {
    tenants.emplace_back([&, t] {
      auto client = Client::Builder()
                        .To(Client::Target::Remote(fleet.endpoint()))
                        .ClientId("tenant-" + std::to_string(t))
                        .Build();
      if (!client.ok()) {
        std::lock_guard<std::mutex> lock(failures_mu);
        failures.push_back(client.status().ToString());
        return;
      }
      uint64_t version = 0;
      for (int round = 0; round < 8; ++round) {
        const size_t index = static_cast<size_t>(t + round) % pool.size();
        const auto answer = client->QuerySql(pool[index]);
        if (!answer.ok() || answer->items.ToString() != expected[index]) {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures.push_back(
              answer.ok() ? "diverged: " + answer->items.ToString()
                          : answer.status().ToString());
          return;
        }
        if (t == 0 && round % 3 == 2) {
          // Source churn mid-run: a coherence broadcast through the router.
          const auto state = client->InvalidateSource("R1", ++version);
          if (!state.ok()) {
            std::lock_guard<std::mutex> lock(failures_mu);
            failures.push_back(state.status().ToString());
            return;
          }
        }
      }
    });
  }
  for (std::thread& tenant : tenants) tenant.join();
  EXPECT_TRUE(failures.empty()) << failures.front();
  const auto counters = fleet.router->counters();
  EXPECT_GT(counters.forwards, 0u);
  EXPECT_GT(counters.invalidate_fanouts, 0u);
  fleet.router->Shutdown();
}

TEST(RouterTest, WarmQueriesStayWarmAcrossClientConnections) {
  Fleet fleet = StartFleet(2);
  auto first = Client::Builder()
                   .To(Client::Target::Remote(fleet.endpoint()))
                   .ClientId("cold")
                   .Build();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const auto cold = first->QuerySql(kDuiAndSp);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_GT(cold->cost, 0.0) << "cold query must meter source calls";

  // A different client connection, the same query — rendezvous routing
  // lands it on the same shard, whose memo answers it for free. The
  // commuted spelling must land warm too (canonical keying).
  auto second = Client::Builder()
                    .To(Client::Target::Remote(fleet.endpoint()))
                    .ClientId("warm")
                    .Build();
  ASSERT_TRUE(second.ok());
  for (const char* sql : {kDuiAndSp, kSpAndDui}) {
    const auto warm = second->QuerySql(sql);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    EXPECT_EQ(warm->items.ToString(), cold->items.ToString());
    EXPECT_EQ(warm->cost, 0.0) << sql;
  }
  const auto counters = fleet.router->counters();
  EXPECT_GE(counters.warm_forwards, 2u);
  EXPECT_EQ(counters.warm_hits, counters.warm_forwards)
      << "a warm forward landed on a different shard";
  fleet.router->Shutdown();
}

TEST(RouterTest, FailsOverPastADeadShard) {
  Fleet fleet = StartFleet(2);
  auto client = Client::Builder()
                    .To(Client::Target::Remote(fleet.endpoint()))
                    .ClientId("failover")
                    .Build();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto before = client->QuerySql(kDuiAndSp);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // Kill shard 0 outright (service and daemon). Whichever shard owns each
  // key, every query must still be answered — worst case the survivor
  // serves it at cold-cache cost, never a wrong answer.
  fleet.services[0]->Shutdown();
  fleet.shard_daemons[0]->Stop();
  const auto after = client->QuerySql(kDuiAndSp);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->items.ToString(), before->items.ToString());
  const auto other = client->QuerySql(kDuiOnly);
  ASSERT_TRUE(other.ok()) << other.status().ToString();
  fleet.router->Shutdown();
}

TEST(RouterTest, InvalidateFanOutIsIdempotentAcrossTheFleet) {
  Fleet fleet = StartFleet(2);
  auto client = Client::Builder()
                    .To(Client::Target::Remote(fleet.endpoint()))
                    .ClientId("coherence")
                    .Build();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto state = client->InvalidateSource("R2", 9);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(*state, "applied");
  // The broadcast reached every shard with the version recorded.
  for (const auto& service : fleet.services) {
    EXPECT_EQ(service->invalidates_applied(), 1u);
  }
  // Replaying the same version (a retry after a partial broadcast) is a
  // fleet-wide stale no-op.
  state = client->InvalidateSource("R2", 9);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, "stale");
  for (const auto& service : fleet.services) {
    EXPECT_EQ(service->invalidates_stale(), 1u);
  }
  fleet.router->Shutdown();
}

TEST(RouterTest, EmbeddedInvalidateWorksWithoutAFleet) {
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  auto client = Client::Builder()
                    .To(Client::Target::Embedded(std::move(instance->catalog)))
                    .Statistics(StatisticsMode::kOracle)
                    .Build();
  ASSERT_TRUE(client.ok());
  const auto state = client->InvalidateSource("R1");
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(*state, "applied");
  EXPECT_FALSE(client->InvalidateSource("no-such-source").ok());
}

TEST(RouterTest, MultiEndpointTargetFailsOverToALiveShard) {
  // Clients may also skip the router and aim Target::Remote at the shard
  // list directly: the first endpoint is dead here, so Build must rotate
  // to the live one.
  Fleet fleet = StartFleet(1);
  auto client =
      Client::Builder()
          .To(Client::Target::Remote(std::vector<std::string>{
              "127.0.0.1:1", Endpoint(fleet.shard_daemons[0]->port())}))
          .ClientId("rotate")
          .Reconnect([] {
            RetryPolicy policy;
            policy.max_attempts = 4;
            policy.initial_backoff_seconds = 0.001;
            policy.max_backoff_seconds = 0.01;
            return policy;
          }())
          .Build();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto answer = client->QuerySql(kDuiAndSp);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items.ToString(), "{'J55', 'T21'}");
}

}  // namespace
}  // namespace fusion
