#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "cost/oracle_cost_model.h"
#include "cost/parametric_cost_model.h"
#include "optimizer/brute_force.h"
#include "optimizer/filter.h"
#include "optimizer/greedy.h"
#include "optimizer/postopt.h"
#include "optimizer/sj.h"
#include "optimizer/sja.h"
#include "optimizer/spj_baseline.h"
#include "plan/cost_estimator.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

/// A heterogeneous hand-built model: source 0 fast with native semijoins,
/// source 1 slow without them — the setting where adaptivity wins.
ParametricCostModel HeterogeneousModel() {
  SourceParams fast;
  fast.capabilities.semijoin = SemijoinSupport::kNative;
  fast.network.query_overhead = 5;
  fast.network.cost_per_item_sent = 0.1;
  fast.network.cost_per_item_received = 1;
  fast.network.processing_per_tuple = 0;
  fast.cardinality = 1000;
  fast.result_size = {400, 50, 200};

  SourceParams slow;
  slow.capabilities.semijoin = SemijoinSupport::kPassedBindingsOnly;
  slow.network.query_overhead = 20;
  slow.network.cost_per_item_sent = 1;
  slow.network.cost_per_item_received = 1;
  slow.network.processing_per_tuple = 0;
  slow.cardinality = 800;
  slow.result_size = {300, 40, 150};

  return ParametricCostModel({fast, slow}, /*universe_size=*/2000);
}

ParametricCostModel RandomModel(uint64_t seed, size_t m, size_t n) {
  Rng rng(seed);
  std::vector<SourceParams> params;
  for (size_t j = 0; j < n; ++j) {
    SourceParams p;
    const double r = rng.NextDouble();
    p.capabilities.semijoin = r < 0.6 ? SemijoinSupport::kNative
                              : r < 0.9 ? SemijoinSupport::kPassedBindingsOnly
                                        : SemijoinSupport::kUnsupported;
    p.network.query_overhead = 1 + rng.NextDouble() * 30;
    p.network.cost_per_item_sent = 0.1 + rng.NextDouble() * 2;
    p.network.cost_per_item_received = 0.1 + rng.NextDouble() * 2;
    p.network.processing_per_tuple = rng.NextDouble() * 0.01;
    p.network.record_width_factor = 1 + rng.NextDouble() * 6;
    p.cardinality = static_cast<double>(rng.Uniform(50, 2000));
    for (size_t i = 0; i < m; ++i) {
      p.result_size.push_back(p.cardinality * (0.01 + rng.NextDouble() * 0.5));
    }
    params.push_back(std::move(p));
  }
  return ParametricCostModel(std::move(params), 3000);
}

// ---------------------------------------------------------------------------
// FILTER
// ---------------------------------------------------------------------------

TEST(FilterTest, IssuesOneSelectionPerConditionSourcePair) {
  const ParametricCostModel m = HeterogeneousModel();
  const auto opt = OptimizeFilter(m);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  EXPECT_EQ(opt->plan.num_source_queries(), 6u);  // m=3 × n=2
  EXPECT_EQ(opt->plan_class, PlanClass::kFilter);
  EXPECT_TRUE(opt->plan.Validate(3, 2).ok());
}

TEST(FilterTest, CostIsSumOfAllSelectionCosts) {
  const ParametricCostModel m = HeterogeneousModel();
  const auto opt = OptimizeFilter(m);
  ASSERT_TRUE(opt.ok());
  double expected = 0;
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) expected += m.SqCost(i, j);
  }
  EXPECT_DOUBLE_EQ(opt->estimated_cost, expected);
}

TEST(FilterTest, RejectsEmptyInputs) {
  // A model cannot be built with zero sources, so only bad dimensions via
  // a one-condition model with zero... covered by constructor checks; here
  // verify FILTER works at the minimum size m=n=1.
  SourceParams p;
  p.cardinality = 10;
  p.result_size = {5};
  const ParametricCostModel m({p}, 10);
  const auto opt = OptimizeFilter(m);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->plan.num_source_queries(), 1u);
}

// ---------------------------------------------------------------------------
// SJ and SJA basics
// ---------------------------------------------------------------------------

TEST(SjTest, ProducesValidSemijoinPlan) {
  const ParametricCostModel m = HeterogeneousModel();
  const auto opt = OptimizeSj(m);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  EXPECT_TRUE(opt->plan.Validate(3, 2).ok());
  EXPECT_NE(opt->plan_class, PlanClass::kSemijoinAdaptive);
  EXPECT_NE(opt->plan_class, PlanClass::kNonSimple);
  // Uniform rows: every row all-true or all-false.
  for (size_t i = 1; i < opt->structure.use_semijoin.size(); ++i) {
    const auto& row = opt->structure.use_semijoin[i];
    EXPECT_TRUE(std::equal(row.begin() + 1, row.end(), row.begin()))
        << "row " << i << " not uniform";
  }
}

TEST(SjaTest, ProducesValidPlanNoWorseThanSjAndFilter) {
  const ParametricCostModel m = HeterogeneousModel();
  const auto filter = OptimizeFilter(m);
  const auto sj = OptimizeSj(m);
  const auto sja = OptimizeSja(m);
  ASSERT_TRUE(filter.ok());
  ASSERT_TRUE(sj.ok());
  ASSERT_TRUE(sja.ok());
  EXPECT_LE(sja->estimated_cost, sj->estimated_cost + 1e-9);
  EXPECT_LE(sj->estimated_cost, filter->estimated_cost + 1e-9);
}

TEST(SjaTest, AdaptsPerSourceOnHeterogeneousModel) {
  // Source 1 lacks native semijoins; with a large intermediate set the
  // emulated semijoin is hopeless there, while source 0's native semijoin is
  // cheap. SJA should mix sq and sjq within a round.
  const ParametricCostModel m = HeterogeneousModel();
  const auto sja = OptimizeSja(m);
  ASSERT_TRUE(sja.ok());
  EXPECT_EQ(sja->plan_class, PlanClass::kSemijoinAdaptive);
}

TEST(SjaTest, FirstConditionAlwaysBySelection) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const ParametricCostModel m = RandomModel(seed, 3, 4);
    const auto sja = OptimizeSja(m);
    ASSERT_TRUE(sja.ok());
    for (bool b : sja->structure.use_semijoin[0]) EXPECT_FALSE(b);
  }
}

TEST(SjaTest, NeverRoutesSemijoinToUnsupportedSource) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const ParametricCostModel m = RandomModel(seed, 3, 5);
    const auto sja = OptimizeSja(m);
    ASSERT_TRUE(sja.ok());
    EXPECT_TRUE(std::isfinite(sja->estimated_cost));
    for (size_t i = 1; i < 3; ++i) {
      for (size_t j = 0; j < 5; ++j) {
        if (m.params(j).capabilities.semijoin == SemijoinSupport::kUnsupported) {
          EXPECT_FALSE(sja->structure.use_semijoin[i][j]);
        }
      }
    }
  }
}

TEST(SjaTest, RefusesTooManyConditionsForExhaustiveSearch) {
  const ParametricCostModel m = RandomModel(1, 10, 2);
  EXPECT_FALSE(OptimizeSja(m).ok());
  EXPECT_FALSE(OptimizeSj(m).ok());
  // Greedy handles the same instance.
  EXPECT_TRUE(
      OptimizeGreedySja(m, GreedyOrderHeuristic::kBySelectivity).ok());
}

TEST(SjaTest, SingleConditionDegeneratesToFilter) {
  const ParametricCostModel m = RandomModel(5, 1, 4);
  const auto sja = OptimizeSja(m);
  const auto filter = OptimizeFilter(m);
  ASSERT_TRUE(sja.ok());
  ASSERT_TRUE(filter.ok());
  EXPECT_DOUBLE_EQ(sja->estimated_cost, filter->estimated_cost);
  EXPECT_EQ(sja->plan_class, PlanClass::kFilter);
}

// ---------------------------------------------------------------------------
// Optimality against brute force (the paper's central claims)
// ---------------------------------------------------------------------------

class OptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimalityTest, SjaMatchesBruteForceOverAdaptiveSpace) {
  const ParametricCostModel m = RandomModel(GetParam(), 3, 3);
  const auto sja = OptimizeSja(m);
  const auto brute = BruteForceSemijoinAdaptive(m);
  ASSERT_TRUE(sja.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(sja->estimated_cost, brute->estimated_cost,
              1e-6 * (1 + std::abs(brute->estimated_cost)))
      << "SJA missed the optimum on seed " << GetParam();
}

TEST_P(OptimalityTest, SjMatchesBruteForceOverSemijoinSpace) {
  const ParametricCostModel m = RandomModel(GetParam() + 1000, 3, 3);
  const auto sj = OptimizeSj(m);
  const auto brute = BruteForceSemijoin(m);
  ASSERT_TRUE(sj.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(sj->estimated_cost, brute->estimated_cost,
              1e-6 * (1 + std::abs(brute->estimated_cost)));
}

TEST_P(OptimalityTest, GreedyIsNeverBetterThanExhaustiveSja) {
  const ParametricCostModel m = RandomModel(GetParam() + 2000, 4, 4);
  const auto sja = OptimizeSja(m);
  ASSERT_TRUE(sja.ok());
  for (auto h : {GreedyOrderHeuristic::kBySelectivity,
                 GreedyOrderHeuristic::kByMinCost}) {
    const auto greedy = OptimizeGreedySja(m, h);
    ASSERT_TRUE(greedy.ok());
    EXPECT_GE(greedy->estimated_cost, sja->estimated_cost - 1e-9);
    EXPECT_TRUE(greedy->plan.Validate(4, 4).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityTest,
                         ::testing::Range<uint64_t>(0, 15));

// ---------------------------------------------------------------------------
// SJA+ postoptimization
// ---------------------------------------------------------------------------

TEST(PostOptTest, NeverWorseThanSja) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    const ParametricCostModel m = RandomModel(seed, 3, 4);
    const auto sja = OptimizeSja(m);
    const auto plus = OptimizeSjaPlus(m);
    ASSERT_TRUE(sja.ok());
    ASSERT_TRUE(plus.ok());
    EXPECT_LE(plus->estimated_cost, sja->estimated_cost + 1e-9)
        << "seed " << seed;
  }
}

TEST(PostOptTest, DifferencePruningShrinksSemijoinCost) {
  // Homogeneous, semijoin-friendly model with two conditions; after the
  // first semijoin source answers, the second should receive a smaller set.
  SourceParams p;
  p.capabilities.semijoin = SemijoinSupport::kNative;
  p.network.query_overhead = 1;
  p.network.cost_per_item_sent = 10;  // shipping dominates
  p.network.cost_per_item_received = 0.1;
  p.network.processing_per_tuple = 0;
  p.cardinality = 1000;
  p.result_size = {500, 400};
  const ParametricCostModel m({p, p}, 1000);

  const auto sja = OptimizeSja(m);
  ASSERT_TRUE(sja.ok());
  PostOptOptions diff_only;
  diff_only.use_difference = true;
  diff_only.use_loading = false;
  const auto plus = PostOptimizeStructure(m, sja->structure, diff_only, "SJA");
  ASSERT_TRUE(plus.ok());
  if (sja->plan_class != PlanClass::kFilter) {
    EXPECT_LT(plus->estimated_cost, sja->estimated_cost);
    EXPECT_EQ(plus->plan_class, PlanClass::kNonSimple);
  }
}

TEST(PostOptTest, LoadsTinySources) {
  // A tiny source with huge per-query overhead should be loaded wholesale.
  SourceParams tiny;
  tiny.capabilities.semijoin = SemijoinSupport::kNative;
  tiny.network.query_overhead = 500;
  tiny.network.cost_per_item_received = 1;
  tiny.network.record_width_factor = 1;
  tiny.cardinality = 10;
  tiny.result_size = {5, 5, 5};

  SourceParams normal;
  normal.capabilities.semijoin = SemijoinSupport::kNative;
  normal.network.query_overhead = 5;
  normal.network.cost_per_item_received = 1;
  normal.cardinality = 1000;
  normal.result_size = {100, 100, 100};

  const ParametricCostModel m({tiny, normal}, 1500);
  const auto sja = OptimizeSja(m);
  const auto plus = OptimizeSjaPlus(m);
  ASSERT_TRUE(sja.ok());
  ASSERT_TRUE(plus.ok());
  EXPECT_LT(plus->estimated_cost, sja->estimated_cost);
  // The plan must contain an lq op against source 0.
  bool has_load = false;
  for (const PlanOp& op : plus->plan.ops()) {
    if (op.kind == PlanOpKind::kLoad) {
      EXPECT_EQ(op.source, 0);
      has_load = true;
    }
  }
  EXPECT_TRUE(has_load);
}

TEST(PostOptTest, OptionsDisableEverything) {
  const ParametricCostModel m = HeterogeneousModel();
  const auto sja = OptimizeSja(m);
  ASSERT_TRUE(sja.ok());
  PostOptOptions off;
  off.use_difference = false;
  off.use_loading = false;
  const auto plus = PostOptimizeStructure(m, sja->structure, off, "SJA");
  ASSERT_TRUE(plus.ok());
  EXPECT_NEAR(plus->estimated_cost, sja->estimated_cost, 1e-9);
}

// ---------------------------------------------------------------------------
// Structured build internals
// ---------------------------------------------------------------------------

TEST(BuildStructuredPlanTest, RejectsBadStructures) {
  const ParametricCostModel m = HeterogeneousModel();
  // Wrong ordering length.
  ConditionOrderPlan s1 = MakeStructure({0, 1}, 2);
  EXPECT_FALSE(BuildStructuredPlan(m, s1, {}, false).ok());
  // Semijoin in the first round.
  ConditionOrderPlan s2 = MakeStructure({0, 1, 2}, 2);
  s2.use_semijoin[0][0] = true;
  EXPECT_FALSE(BuildStructuredPlan(m, s2, {}, false).ok());
  // Bad loaded mask size.
  ConditionOrderPlan s3 = MakeStructure({0, 1, 2}, 2);
  EXPECT_FALSE(BuildStructuredPlan(m, s3, {true}, false).ok());
}

TEST(BuildStructuredPlanTest, PerSourceCostsSumToTotal) {
  const ParametricCostModel m = HeterogeneousModel();
  ConditionOrderPlan s = MakeStructure({0, 1, 2}, 2);
  s.use_semijoin[1][0] = true;
  const auto built = BuildStructuredPlan(m, s, {}, false);
  ASSERT_TRUE(built.ok());
  double sum = 0;
  for (double c : built->per_source_cost) sum += c;
  EXPECT_NEAR(sum, built->total_cost, 1e-9);
}

TEST(BuildStructuredPlanTest, SearchCostMatchesBuiltCost) {
  // The incremental cost tracked by the SJA search must agree with the
  // estimator's cost of the materialized plan.
  for (uint64_t seed = 100; seed < 110; ++seed) {
    const ParametricCostModel m = RandomModel(seed, 3, 3);
    const auto sja = OptimizeSja(m);
    ASSERT_TRUE(sja.ok());
    const auto rebuilt =
        BuildStructuredPlan(m, sja->structure, {}, false);
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_NEAR(rebuilt->total_cost, sja->estimated_cost,
                1e-6 * (1 + sja->estimated_cost));
  }
}

// ---------------------------------------------------------------------------
// SPJ union baseline (Section 5)
// ---------------------------------------------------------------------------

TEST(SpjBaselineTest, ExpandsNToTheMSubqueries) {
  const ParametricCostModel m = HeterogeneousModel();  // m=3, n=2
  const auto no_cse = SpjUnionBaseline(m, false);
  ASSERT_TRUE(no_cse.ok()) << no_cse.status().ToString();
  // 8 chains × 3 queries each = 24 source queries without CSE.
  EXPECT_EQ(no_cse->plan.num_source_queries(), 24u);
  const auto cse = SpjUnionBaseline(m, true);
  ASSERT_TRUE(cse.ok());
  EXPECT_LT(cse->plan.num_source_queries(),
            no_cse->plan.num_source_queries());
  EXPECT_LE(cse->estimated_cost, no_cse->estimated_cost);
}

TEST(SpjBaselineTest, NeverBeatsSja) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    ParametricCostModel m = RandomModel(seed, 3, 3);
    // Baseline plans semijoin everywhere; skip instances with unsupported
    // sources (the baseline would be infinite there, trivially worse).
    const auto sja = OptimizeSja(m);
    const auto base = SpjUnionBaseline(m, true);
    ASSERT_TRUE(sja.ok());
    ASSERT_TRUE(base.ok());
    EXPECT_GE(base->estimated_cost, sja->estimated_cost - 1e-9);
  }
}

TEST(SpjBaselineTest, RefusesExplosiveExpansion) {
  const ParametricCostModel m = RandomModel(3, 6, 8);  // 8^6 = 262144
  EXPECT_FALSE(SpjUnionBaseline(m, true, /*max_subqueries=*/100000).ok());
}

}  // namespace
}  // namespace fusion
