#include <gtest/gtest.h>

#include "mediator/mediator.h"
#include "relational/reference_evaluator.h"
#include "workload/bibliographic.h"
#include "workload/dmv.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

Mediator Figure1Mediator() {
  auto instance = BuildDmvFigure1();
  EXPECT_TRUE(instance.ok());
  return Mediator(std::move(instance->catalog));
}

TEST(MediatorTest, AnswersPaperQueryWithEveryStrategy) {
  Mediator mediator = Figure1Mediator();
  for (const OptimizerStrategy strategy :
       {OptimizerStrategy::kFilter, OptimizerStrategy::kSj,
        OptimizerStrategy::kSja, OptimizerStrategy::kSjaPlus,
        OptimizerStrategy::kGreedySja, OptimizerStrategy::kGreedySjaPlus}) {
    MediatorOptions options;
    options.strategy = strategy;
    options.statistics = StatisticsMode::kOracle;
    const auto answer = mediator.Answer(DmvFigure1Query(), options);
    ASSERT_TRUE(answer.ok())
        << OptimizerStrategyName(strategy) << ": "
        << answer.status().ToString();
    EXPECT_EQ(answer->items.ToString(), "{'J55', 'T21'}")
        << OptimizerStrategyName(strategy);
    EXPECT_GT(answer->execution.ledger.total(), 0.0);
  }
}

TEST(MediatorTest, AnswerSqlParsesAndRuns) {
  Mediator mediator = Figure1Mediator();
  MediatorOptions options;
  options.statistics = StatisticsMode::kOracle;
  const auto answer = mediator.AnswerSql(
      "SELECT u1.L FROM U u1, U u2 "
      "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'",
      options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items.ToString(), "{'J55', 'T21'}");
}

TEST(MediatorTest, AnswerSqlRejectsGarbage) {
  Mediator mediator = Figure1Mediator();
  EXPECT_FALSE(mediator.AnswerSql("DELETE FROM everything").ok());
}

TEST(MediatorTest, RejectsQueryNotMatchingSchema) {
  Mediator mediator = Figure1Mediator();
  const FusionQuery bad("NOPE", {Condition::Eq("V", Value("dui"))});
  EXPECT_FALSE(mediator.Answer(bad).ok());
}

TEST(MediatorTest, OptimizeWithoutExecuting) {
  Mediator mediator = Figure1Mediator();
  MediatorOptions options;
  options.strategy = OptimizerStrategy::kSja;
  options.statistics = StatisticsMode::kOracle;
  const auto plan = mediator.Optimize(DmvFigure1Query(), options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, "SJA");
  EXPECT_TRUE(plan->plan.Validate(2, 3).ok());
}

TEST(MediatorTest, OracleParametricStatisticsWork) {
  Mediator mediator = Figure1Mediator();
  MediatorOptions options;
  options.statistics = StatisticsMode::kOracleParametric;
  const auto answer = mediator.Answer(DmvFigure1Query(), options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items.ToString(), "{'J55', 'T21'}");
}

TEST(MediatorTest, CalibratedStatisticsAnswerCorrectly) {
  SyntheticSpec spec;
  spec.universe_size = 1000;
  spec.num_sources = 3;
  spec.num_conditions = 2;
  spec.coverage = 0.5;
  spec.selectivity = {0.3, 0.2};
  spec.seed = 9;
  auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const ItemSet expected =
      *ReferenceFusionAnswer(RelationsOf(*instance), "M",
                             instance->query.conditions());
  const FusionQuery query = instance->query;
  Mediator mediator(std::move(instance->catalog));
  MediatorOptions options;
  options.statistics = StatisticsMode::kCalibrated;
  options.calibration.merge_domain_lo = 0;
  options.calibration.merge_domain_hi = 999;
  options.calibration.num_range_probes = 5;
  options.calibration.range_fraction = 0.1;
  const auto answer = mediator.Answer(query, options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items, expected);  // plan quality varies; answers don't
  EXPECT_GT(answer->calibration_cost, 0.0);
}

TEST(MediatorTest, TwoPhaseFetchReturnsFullRecords) {
  const auto instance = GenerateBibliographic({});
  ASSERT_TRUE(instance.ok());
  const FusionQuery query = instance->query;
  const std::vector<const Relation*> relations = RelationsOf(*instance);
  Mediator mediator(std::move(
      const_cast<SyntheticInstance&>(*instance).catalog));
  MediatorOptions options;
  options.statistics = StatisticsMode::kOracle;
  const auto answer = mediator.Answer(query, options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  const ItemSet expected =
      *ReferenceFusionAnswer(relations, "DOC", query.conditions());
  EXPECT_EQ(answer->items, expected);

  CostLedger fetch_ledger;
  const auto records =
      mediator.FetchRecords(query, answer->items, &fetch_ledger);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  // Every fetched record's DOC is in the answer set.
  const size_t doc_idx = *records->schema().IndexOf("DOC");
  for (const Tuple& t : records->tuples()) {
    EXPECT_TRUE(answer->items.Contains(t[doc_idx]));
  }
  // Every answered id has at least one record somewhere.
  ItemSet fetched_ids;
  for (const Tuple& t : records->tuples()) fetched_ids.Insert(t[doc_idx]);
  EXPECT_EQ(fetched_ids, answer->items);
  EXPECT_GT(fetch_ledger.total(), 0.0);
}

TEST(MediatorTest, StrategyAndStatisticsNames) {
  EXPECT_STREQ(OptimizerStrategyName(OptimizerStrategy::kSjaPlus), "SJA+");
  EXPECT_STREQ(StatisticsModeName(StatisticsMode::kCalibrated), "calibrated");
}

TEST(MediatorTest, GreedyStrategiesHandleManyConditions) {
  // 10 conditions exceeds the exhaustive limit; greedy must still work.
  SyntheticSpec spec;
  spec.universe_size = 400;
  spec.num_sources = 3;
  spec.num_conditions = 10;
  spec.selectivity_default = 0.3;
  spec.seed = 31;
  auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const FusionQuery query = instance->query;
  const ItemSet expected = *ReferenceFusionAnswer(
      RelationsOf(*instance), "M", query.conditions());
  Mediator mediator(std::move(instance->catalog));
  MediatorOptions options;
  options.statistics = StatisticsMode::kOracle;
  options.strategy = OptimizerStrategy::kSja;
  EXPECT_FALSE(mediator.Answer(query, options).ok());  // m! refused
  options.strategy = OptimizerStrategy::kGreedySjaPlus;
  const auto answer = mediator.Answer(query, options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items, expected);
}

}  // namespace
}  // namespace fusion
