// Circuit-breaker tests: the SourceHealth state machine (closed → open →
// half-open → closed/open), fast-fail accounting, thread-safety under
// concurrent recording, executor integration (fast-fails charge nothing and
// degrade soundly), and session-level breaker sharing across queries.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "exec/source_health.h"
#include "mediator/session.h"
#include "protocol/remote_source.h"
#include "protocol/source_server.h"
#include "source/flaky_source.h"
#include "source/simulated_source.h"
#include "workload/dmv.h"

namespace fusion {
namespace {

using BreakerState = SourceHealth::BreakerState;

// ---------------------------------------------------------------------------
// State machine
// ---------------------------------------------------------------------------

TEST(BreakerTest, OpensAfterConsecutiveFailures) {
  SourceHealth::Options options;
  options.failure_threshold = 3;
  SourceHealth health(options);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(health.Admit(0).allowed);
    health.RecordFailure(0);
    EXPECT_EQ(health.state(0), BreakerState::kClosed);
  }
  EXPECT_EQ(health.consecutive_failures(0), 2);
  health.RecordFailure(0);
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  // Open breaker fast-fails admissions and counts them.
  EXPECT_FALSE(health.Admit(0).allowed);
  EXPECT_EQ(health.fast_fails(0), 1u);
}

TEST(BreakerTest, SuccessResetsConsecutiveFailures) {
  SourceHealth::Options options;
  options.failure_threshold = 2;
  SourceHealth health(options);
  health.RecordFailure(0);
  health.RecordSuccess(0);
  health.RecordFailure(0);
  // Never two *consecutive* failures, so the breaker stays closed.
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  EXPECT_EQ(health.consecutive_failures(0), 1);
}

TEST(BreakerTest, CooldownAdmitsExactlyOneProbe) {
  SourceHealth::Options options;
  options.failure_threshold = 1;
  options.open_cooldown_rejections = 2;
  SourceHealth health(options);
  health.RecordFailure(0);
  ASSERT_EQ(health.state(0), BreakerState::kOpen);
  // Two calls absorb the cool-down.
  EXPECT_FALSE(health.Admit(0).allowed);
  EXPECT_FALSE(health.Admit(0).allowed);
  EXPECT_EQ(health.fast_fails(0), 2u);
  // The next call is the half-open probe...
  const SourceHealth::Admission probe = health.Admit(0);
  EXPECT_TRUE(probe.allowed);
  EXPECT_TRUE(probe.probe);
  EXPECT_EQ(health.state(0), BreakerState::kHalfOpen);
  // ...and while it is in flight, everyone else keeps fast-failing (no
  // stampede on a recovering source).
  EXPECT_FALSE(health.Admit(0).allowed);
  // Probe success closes the breaker; normal admissions resume.
  health.RecordSuccess(0);
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  const SourceHealth::Admission normal = health.Admit(0);
  EXPECT_TRUE(normal.allowed);
  EXPECT_FALSE(normal.probe);
}

TEST(BreakerTest, ProbeFailureReopensForAnotherCooldown) {
  SourceHealth::Options options;
  options.failure_threshold = 1;
  options.open_cooldown_rejections = 1;
  SourceHealth health(options);
  health.RecordFailure(0);
  EXPECT_FALSE(health.Admit(0).allowed);  // cool-down
  ASSERT_TRUE(health.Admit(0).probe);
  health.RecordFailure(0);  // probe fails
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  // A fresh cool-down must elapse before the next probe.
  EXPECT_FALSE(health.Admit(0).allowed);
  EXPECT_TRUE(health.Admit(0).probe);
}

TEST(BreakerTest, SourcesAreIndependent) {
  SourceHealth::Options options;
  options.failure_threshold = 1;
  SourceHealth health(options);
  health.RecordFailure(2);
  EXPECT_EQ(health.state(2), BreakerState::kOpen);
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  EXPECT_TRUE(health.Admit(0).allowed);
  EXPECT_TRUE(health.Admit(1).allowed);
  EXPECT_FALSE(health.Admit(2).allowed);
}

TEST(BreakerTest, ResetForgetsAllState) {
  SourceHealth::Options options;
  options.failure_threshold = 1;
  SourceHealth health(options);
  health.RecordFailure(0);
  EXPECT_FALSE(health.Admit(0).allowed);
  health.Reset();
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  EXPECT_EQ(health.fast_fails(0), 0u);
  EXPECT_TRUE(health.Admit(0).allowed);
}

TEST(BreakerTest, HalfOpenAdmitsExactlyOneProbeUnderContention) {
  // The open → half-open transition is a check-then-act hazard: many threads
  // absorb the tail of the cool-down and reach for the probe slot at once.
  // Exactly one may win; everyone else must keep fast-failing until the
  // probe resolves. TSan (via the concurrency label) checks the locking;
  // this asserts the invariant itself, repeatedly, with all threads released
  // onto the breaker together.
  for (int round = 0; round < 25; ++round) {
    SourceHealth::Options options;
    options.failure_threshold = 1;
    options.open_cooldown_rejections = 4;
    SourceHealth health(options);
    health.RecordFailure(0);
    ASSERT_EQ(health.state(0), BreakerState::kOpen);

    constexpr int kThreads = 8;
    std::atomic<int> ready{0};
    std::atomic<int> probes{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        ready.fetch_add(1);
        while (ready.load() < kThreads) std::this_thread::yield();
        for (int i = 0; i < 4; ++i) {
          const SourceHealth::Admission admission = health.Admit(0);
          if (admission.allowed) {
            // Every admission granted while the breaker walks out of open
            // must be flagged as the probe.
            EXPECT_TRUE(admission.probe);
            probes.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    // 32 admissions against a 4-rejection cool-down: the probe slot was
    // certainly reached, and only one thread may have taken it. With the
    // probe unresolved the breaker is still half-open.
    EXPECT_EQ(probes.load(), 1) << "round " << round;
    EXPECT_EQ(health.state(0), BreakerState::kHalfOpen);
  }
}

TEST(BreakerTest, ConcurrentRecordingIsSafe) {
  // Hammer one breaker from many threads; TSan (concurrency label) verifies
  // the synchronization, and the final state must be a legal one.
  SourceHealth::Options options;
  options.failure_threshold = 3;
  SourceHealth health(options);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&health, t] {
      for (int i = 0; i < 200; ++i) {
        const SourceHealth::Admission admission =
            health.Admit(static_cast<size_t>(t % 2));
        if (!admission.allowed) continue;
        if ((t + i) % 3 == 0) {
          health.RecordFailure(static_cast<size_t>(t % 2));
        } else {
          health.RecordSuccess(static_cast<size_t>(t % 2));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (size_t source = 0; source < 2; ++source) {
    const BreakerState state = health.state(source);
    EXPECT_TRUE(state == BreakerState::kClosed ||
                state == BreakerState::kHalfOpen ||
                state == BreakerState::kOpen);
  }
}

// ---------------------------------------------------------------------------
// Executor integration
// ---------------------------------------------------------------------------

Schema DmvSchema() {
  return Schema({{"L", ValueType::kString},
                 {"V", ValueType::kString},
                 {"D", ValueType::kInt64}});
}

FusionQuery DuiSpQuery() {
  return FusionQuery("L", {Condition::Eq("V", Value("dui")),
                           Condition::Eq("V", Value("sp"))});
}

/// Filter plan for two conditions over two sources.
Plan FilterPlanFor2x2() {
  Plan plan;
  const int a0 = plan.EmitSelect(0, 0);
  const int a1 = plan.EmitSelect(0, 1);
  const int x1 = plan.EmitUnion({a0, a1});
  const int b0 = plan.EmitSelect(1, 0);
  const int b1 = plan.EmitSelect(1, 1);
  const int u2 = plan.EmitUnion({b0, b1});
  const int x2 = plan.EmitIntersect({x1, u2});
  plan.SetResult(x2);
  return plan;
}

/// Catalog of two sources where R1 is wrapped in a FlakySource (so its calls
/// can be counted and failures injected) and R2 answers reliably. The
/// relations are chosen so that losing R1 *shrinks* the answer:
/// healthy = {J55, T21}, R2-only = {J55}.
SourceCatalog TwoSourceCatalog(const FlakySource::Options& flaky_options,
                               const FlakySource** flaky_out = nullptr) {
  SourceCatalog catalog;
  NetworkProfile net;
  net.query_overhead = 10.0;
  Relation r1(DmvSchema());
  EXPECT_TRUE(
      r1.Append({Value("J55"), Value("dui"), Value(int64_t{1993})}).ok());
  EXPECT_TRUE(
      r1.Append({Value("T21"), Value("sp"), Value(int64_t{1994})}).ok());
  auto flaky = std::make_unique<FlakySource>(
      std::make_unique<SimulatedSource>("R1", std::move(r1), Capabilities{},
                                        net),
      flaky_options);
  if (flaky_out != nullptr) *flaky_out = flaky.get();
  EXPECT_TRUE(catalog.Add(std::move(flaky)).ok());
  Relation r2(DmvSchema());
  EXPECT_TRUE(
      r2.Append({Value("J55"), Value("dui"), Value(int64_t{1995})}).ok());
  EXPECT_TRUE(
      r2.Append({Value("J55"), Value("sp"), Value(int64_t{1996})}).ok());
  EXPECT_TRUE(
      r2.Append({Value("T21"), Value("dui"), Value(int64_t{1997})}).ok());
  EXPECT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "R2", std::move(r2), Capabilities{}, net))
                  .ok());
  return catalog;
}

/// Breaker options whose cool-down is effectively infinite: once open, no
/// half-open probe is ever admitted. Keeps pre-opened-breaker tests from
/// accidentally probing (and closing) against a healthy inner source.
SourceHealth::Options NoProbeOptions() {
  SourceHealth::Options options;
  options.open_cooldown_rejections = 1000000;
  return options;
}

/// Opens source 0's breaker by recording `threshold` consecutive failures.
void OpenBreakerForSource0(SourceHealth& health, int threshold) {
  for (int i = 0; i < threshold; ++i) health.RecordFailure(0);
  ASSERT_EQ(health.state(0), BreakerState::kOpen);
}

TEST(BreakerExecutorTest, OpenBreakerFailsFastWithoutRoundTrips) {
  const FlakySource* flaky = nullptr;
  const SourceCatalog catalog = TwoSourceCatalog({}, &flaky);
  SourceHealth health(NoProbeOptions());
  OpenBreakerForSource0(health, SourceHealth::Options{}.failure_threshold);
  ExecOptions exec;
  exec.health = &health;
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable);
  // Fast-fail means *no* round-trip: the source never saw the call.
  EXPECT_EQ(flaky->calls_attempted(), 0u);
}

TEST(BreakerExecutorTest, DegradeModeTurnsFastFailsIntoPartialAnswer) {
  const FlakySource* flaky = nullptr;
  const SourceCatalog catalog = TwoSourceCatalog({}, &flaky);

  // Healthy baseline for the subset check.
  const auto healthy = ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery());
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->answer.ToString(), "{'J55', 'T21'}");
  const size_t calls_after_baseline = flaky->calls_attempted();

  SourceHealth health(NoProbeOptions());
  OpenBreakerForSource0(health, SourceHealth::Options{}.failure_threshold);
  ExecOptions exec;
  exec.health = &health;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->answer.ToString(), "{'J55'}");
  EXPECT_TRUE(ItemSet::Difference(report->answer, healthy->answer).empty());
  EXPECT_GE(report->breaker_fast_fails, 2u);
  // Fast-fails issued no round-trip: R1 saw nothing beyond the baseline.
  EXPECT_EQ(flaky->calls_attempted(), calls_after_baseline);
  // Fast-failed calls left no ledger charge: only R2's two selections paid.
  EXPECT_EQ(report->ledger.num_queries(), 2u);
  for (const Charge& c : report->ledger.charges()) {
    EXPECT_EQ(c.source, "R2");
  }
  // The completeness report names R1 (index 0) under both conditions.
  EXPECT_FALSE(report->completeness.answer_complete);
  EXPECT_TRUE(report->completeness.sound);
  EXPECT_EQ(report->completeness.ExcludedSources(0), std::vector<int>{0});
  EXPECT_EQ(report->completeness.ExcludedSources(1), std::vector<int>{0});
}

TEST(BreakerExecutorTest, ParallelExecutorSharesTheBreaker) {
  const FlakySource* flaky = nullptr;
  const SourceCatalog catalog = TwoSourceCatalog({}, &flaky);
  SourceHealth health(NoProbeOptions());
  OpenBreakerForSource0(health, SourceHealth::Options{}.failure_threshold);
  ExecOptions exec;
  exec.health = &health;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;
  exec.parallelism = 4;
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->answer.ToString(), "{'J55'}");
  EXPECT_GE(report->breaker_fast_fails, 2u);
  EXPECT_EQ(flaky->calls_attempted(), 0u);
  EXPECT_FALSE(report->completeness.answer_complete);
  EXPECT_EQ(report->completeness.ExcludedSources(0), std::vector<int>{0});
}

TEST(BreakerExecutorTest, HalfOpenProbeRecoversAfterOutage) {
  // R1 is down for its first two calls, then recovers. With threshold 2 and
  // a 1-rejection cool-down, three degraded executions walk the breaker all
  // the way around: open → fast-fail + probe → closed.
  FlakySource::Options flaky_options;
  flaky_options.outage_end = 2;
  const FlakySource* flaky = nullptr;
  const SourceCatalog catalog = TwoSourceCatalog(flaky_options, &flaky);
  SourceHealth::Options health_options;
  health_options.failure_threshold = 2;
  health_options.open_cooldown_rejections = 1;
  SourceHealth health(health_options);
  ExecOptions exec;
  exec.health = &health;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;

  // Run 1: both R1 selections fail (the outage); the second opens the
  // breaker. The answer degrades to R2's contribution.
  const auto run1 = ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  EXPECT_FALSE(run1->completeness.answer_complete);
  EXPECT_EQ(flaky->calls_attempted(), 2u);

  // Run 2: the first R1 call absorbs the cool-down (fast-fail); the second
  // is the half-open probe — the outage is over, so it succeeds and closes
  // the breaker. Only condition 0 lost R1 this time.
  const auto run2 = ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  EXPECT_EQ(run2->breaker_fast_fails, 1u);
  EXPECT_EQ(run2->completeness.ExcludedSources(0), std::vector<int>{0});
  EXPECT_TRUE(run2->completeness.ExcludedSources(1).empty());

  // Run 3: fully healthy again.
  const auto run3 = ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(run3.ok()) << run3.status().ToString();
  EXPECT_TRUE(run3->completeness.answer_complete);
  EXPECT_EQ(run3->answer.ToString(), "{'J55', 'T21'}");
}

// ---------------------------------------------------------------------------
// Replica failover interplay
// ---------------------------------------------------------------------------

Relation ReplicaR1Relation() {
  Relation r1(DmvSchema());
  EXPECT_TRUE(
      r1.Append({Value("J55"), Value("dui"), Value(int64_t{1993})}).ok());
  EXPECT_TRUE(
      r1.Append({Value("T21"), Value("sp"), Value(int64_t{1994})}).ok());
  return r1;
}

/// Adds the reliable in-process R2 (same data as TwoSourceCatalog's) behind
/// an already-added networked R1.
void AddReliableR2(SourceCatalog& catalog) {
  NetworkProfile net;
  net.query_overhead = 10.0;
  Relation r2(DmvSchema());
  ASSERT_TRUE(
      r2.Append({Value("J55"), Value("dui"), Value(int64_t{1995})}).ok());
  ASSERT_TRUE(
      r2.Append({Value("J55"), Value("sp"), Value(int64_t{1996})}).ok());
  ASSERT_TRUE(
      r2.Append({Value("T21"), Value("dui"), Value(int64_t{1997})}).ok());
  ASSERT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "R2", std::move(r2), Capabilities{}, net))
                  .ok());
}

TEST(BreakerReplicaTest, FailoverMasksReplicaDeathFromTheBreaker) {
  // Source 0 is a RemoteSource over two TCP replicas of R1. Replica death
  // is absorbed one layer *below* the breaker: the failover redial makes
  // the source call succeed, so no failure is ever recorded and a breaker
  // tuned to open on the very first failure stays closed.
  NetworkProfile net;
  net.query_overhead = 10.0;
  std::vector<std::unique_ptr<TcpSourceServer>> replicas;
  std::vector<std::string> endpoints;
  for (int i = 0; i < 2; ++i) {
    auto server = std::make_unique<TcpSourceServer>(
        std::make_unique<SimulatedSource>("R1", ReplicaR1Relation(),
                                          Capabilities{}, net),
        TcpSourceServer::Options{});
    ASSERT_TRUE(server->Start().ok());
    endpoints.push_back("127.0.0.1:" + std::to_string(server->port()));
    replicas.push_back(std::move(server));
  }
  auto connected = RemoteSource::ConnectTcp(endpoints);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  const RemoteSource* remote = connected->get();
  SourceCatalog catalog;
  ASSERT_TRUE(catalog.Add(std::move(connected).value()).ok());
  AddReliableR2(catalog);

  SourceHealth::Options health_options;
  health_options.failure_threshold = 1;  // any recorded failure would open
  SourceHealth health(health_options);
  ExecOptions exec;
  exec.health = &health;

  const auto healthy =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy->answer.ToString(), "{'J55', 'T21'}");
  ASSERT_EQ(health.state(0), BreakerState::kClosed);

  // Kill whichever replica the source is currently stuck to.
  const std::string active = remote->active_endpoint();
  for (size_t i = 0; i < replicas.size(); ++i) {
    if (endpoints[i] == active) replicas[i]->Stop();
  }

  const auto failed_over =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(failed_over.ok()) << failed_over.status().ToString();
  EXPECT_EQ(failed_over->answer.ToString(), "{'J55', 'T21'}");
  EXPECT_TRUE(failed_over->completeness.answer_complete);
  EXPECT_GE(remote->failovers(), 1u);
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  EXPECT_EQ(health.consecutive_failures(0), 0);
}

TEST(BreakerReplicaTest, ExhaustedReplicasOpenOnlyTheirSourcesBreaker) {
  // With every replica of R1 dead, failover has nothing to rotate to: each
  // R1 call surfaces kUnavailable, the failures land on R1's breaker until
  // it opens — and on R1's breaker *only*. R2 keeps answering and degraded
  // mode still produces its sound partial answer.
  NetworkProfile net;
  net.query_overhead = 10.0;
  TcpSourceServer server(
      std::make_unique<SimulatedSource>("R1", ReplicaR1Relation(),
                                        Capabilities{}, net),
      TcpSourceServer::Options{});
  ASSERT_TRUE(server.Start().ok());
  RetryPolicy fast_failover;  // a dead replica should cost ~nothing here
  fast_failover.max_attempts = 2;
  fast_failover.initial_backoff_seconds = 0.001;
  fast_failover.max_backoff_seconds = 0.01;
  auto connected = RemoteSource::ConnectTcp(
      {"127.0.0.1:" + std::to_string(server.port())}, fast_failover);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  SourceCatalog catalog;
  ASSERT_TRUE(catalog.Add(std::move(connected).value()).ok());
  AddReliableR2(catalog);
  server.Stop();

  SourceHealth::Options health_options;
  health_options.failure_threshold = 2;
  health_options.open_cooldown_rejections = 1000000;  // no probes here
  SourceHealth health(health_options);
  ExecOptions exec;
  exec.health = &health;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;

  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->answer.ToString(), "{'J55'}");
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  EXPECT_EQ(health.state(1), BreakerState::kClosed);
  EXPECT_FALSE(report->completeness.answer_complete);
  EXPECT_TRUE(report->completeness.sound);
  // The failed attempts charged nothing: only R2's selections paid.
  for (const Charge& c : report->ledger.charges()) {
    EXPECT_EQ(c.source, "R2");
  }
}

// ---------------------------------------------------------------------------
// Session sharing
// ---------------------------------------------------------------------------

TEST(BreakerSessionTest, OneQuerysFailuresFastFailTheNext) {
  // R1 is permanently down. The session's breaker opens during the first
  // query's retry ladder; the second query never pays a round-trip to R1.
  FlakySource::Options flaky_options;
  flaky_options.outage_end = std::numeric_limits<size_t>::max();
  const FlakySource* flaky = nullptr;
  SourceCatalog catalog = TwoSourceCatalog(flaky_options, &flaky);

  QuerySession::Options options;
  options.health.failure_threshold = 2;
  // No probes during this test: any R1 call after the breaker opens would
  // be a real (failing) round-trip and muddy the accounting.
  options.health.open_cooldown_rejections = 1000000;
  options.execution.on_source_failure = SourceFailurePolicy::kDegrade;
  // Keep the second query's plan shape identical to the first: cache-aware
  // re-optimization would plan R1 behind a difference (an SJA+ shape),
  // where a breaker fast-fail is not ∅-substitutable and the degraded
  // query would fail instead. This test is about breaker sharing.
  options.cache_aware_optimization = false;
  QuerySession session(Mediator(std::move(catalog)), options);

  const auto first = session.Answer(DuiSpQuery());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->execution.completeness.answer_complete);
  EXPECT_EQ(session.health().state(0), BreakerState::kOpen);
  const size_t calls_after_first = flaky->calls_attempted();
  EXPECT_GE(calls_after_first, 2u);

  const auto second = session.Answer(DuiSpQuery());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(second->execution.completeness.answer_complete);
  // Every R1 call in the second query was a breaker fast-fail — the down
  // source saw no further traffic and charged nothing new.
  EXPECT_EQ(flaky->calls_attempted(), calls_after_first);
  EXPECT_GE(second->execution.breaker_fast_fails, 1u);
  EXPECT_EQ(session.health().state(0), BreakerState::kOpen);
}

}  // namespace
}  // namespace fusion
