// Degraded-mode execution tests: sound partial answers when sources are
// exhausted (outages, retries spent, deadlines), the per-condition
// CompletenessReport, the refusal to degrade at non-monotone plan positions,
// deadline/cost-budget termination in both executors, and sequential ↔
// parallel equivalence of the degraded result.
#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "source/flaky_source.h"
#include "source/simulated_source.h"

namespace fusion {
namespace {

Schema DmvSchema() {
  return Schema({{"L", ValueType::kString},
                 {"V", ValueType::kString},
                 {"D", ValueType::kInt64}});
}

FusionQuery DuiSpQuery() {
  return FusionQuery("L", {Condition::Eq("V", Value("dui")),
                           Condition::Eq("V", Value("sp"))});
}

Plan FilterPlanFor2x2() {
  Plan plan;
  const int a0 = plan.EmitSelect(0, 0);
  const int a1 = plan.EmitSelect(0, 1);
  const int x1 = plan.EmitUnion({a0, a1});
  const int b0 = plan.EmitSelect(1, 0);
  const int b1 = plan.EmitSelect(1, 1);
  const int u2 = plan.EmitUnion({b0, b1});
  const int x2 = plan.EmitIntersect({x1, u2});
  plan.SetResult(x2);
  return plan;
}

/// Two-source catalog: R1 (index 0) is wrapped in a FlakySource configured by
/// `flaky_options`; R2 (index 1) is reliable. Relations are chosen so losing
/// R1 shrinks the answer: healthy = {J55, T21}, R2-only = {J55}.
SourceCatalog TwoSourceCatalog(const FlakySource::Options& flaky_options,
                               const FlakySource** flaky_out = nullptr) {
  SourceCatalog catalog;
  NetworkProfile net;
  net.query_overhead = 10.0;
  Relation r1(DmvSchema());
  EXPECT_TRUE(
      r1.Append({Value("J55"), Value("dui"), Value(int64_t{1993})}).ok());
  EXPECT_TRUE(
      r1.Append({Value("T21"), Value("sp"), Value(int64_t{1994})}).ok());
  auto flaky = std::make_unique<FlakySource>(
      std::make_unique<SimulatedSource>("R1", std::move(r1), Capabilities{},
                                        net),
      flaky_options);
  if (flaky_out != nullptr) *flaky_out = flaky.get();
  EXPECT_TRUE(catalog.Add(std::move(flaky)).ok());
  Relation r2(DmvSchema());
  EXPECT_TRUE(
      r2.Append({Value("J55"), Value("dui"), Value(int64_t{1995})}).ok());
  EXPECT_TRUE(
      r2.Append({Value("J55"), Value("sp"), Value(int64_t{1996})}).ok());
  EXPECT_TRUE(
      r2.Append({Value("T21"), Value("dui"), Value(int64_t{1997})}).ok());
  EXPECT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "R2", std::move(r2), Capabilities{}, net))
                  .ok());
  return catalog;
}

FlakySource::Options PermanentOutage() {
  FlakySource::Options options;
  options.outage_end = std::numeric_limits<size_t>::max();
  return options;
}

// ---------------------------------------------------------------------------
// Sound partial answers
// ---------------------------------------------------------------------------

TEST(DegradedTest, PartialAnswerIsSubsetOfHealthyAnswer) {
  const auto healthy =
      ExecutePlan(FilterPlanFor2x2(), TwoSourceCatalog({}), DuiSpQuery());
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->answer.ToString(), "{'J55', 'T21'}");

  const SourceCatalog catalog = TwoSourceCatalog(PermanentOutage());
  ExecOptions exec;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;
  const auto degraded =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_EQ(degraded->answer.ToString(), "{'J55'}");
  // Soundness: no false positives — the partial answer is a subset.
  EXPECT_TRUE(
      ItemSet::Difference(degraded->answer, healthy->answer).empty());

  const CompletenessReport& completeness = degraded->completeness;
  EXPECT_FALSE(completeness.answer_complete);
  EXPECT_TRUE(completeness.sound);
  // R1 (index 0) was excluded from both conditions' unions.
  EXPECT_EQ(completeness.ExcludedSources(0), std::vector<int>{0});
  EXPECT_EQ(completeness.ExcludedSources(1), std::vector<int>{0});
  EXPECT_EQ(completeness.degraded_ops.size(), 2u);
  // The exclusion records why.
  ASSERT_FALSE(completeness.excluded.empty());
  EXPECT_NE(completeness.excluded[0].reason.find("down"), std::string::npos);
}

TEST(DegradedTest, FailModeIsUnchangedByDefault) {
  const SourceCatalog catalog = TwoSourceCatalog(PermanentOutage());
  // Default options: the classic behavior — first exhausted source call
  // fails the query.
  const auto report = ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable);
}

TEST(DegradedTest, CompleteRunReportsComplete) {
  ExecOptions exec;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;
  const auto report = ExecutePlan(FilterPlanFor2x2(), TwoSourceCatalog({}),
                                  DuiSpQuery(), exec);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completeness.answer_complete);
  EXPECT_TRUE(report->completeness.excluded.empty());
  EXPECT_EQ(report->answer.ToString(), "{'J55', 'T21'}");
}

TEST(DegradedTest, DegradedLoadExcludesItsDependentConditions) {
  // Load-based plan: lq(R1) feeds local selections for both conditions;
  // R2 is queried remotely. When the load degrades, the exclusion fans out
  // to every condition that selected from the loaded relation.
  Plan plan;
  const int y = plan.EmitLoad(0);
  const int a0 = plan.EmitLocalSelect(0, y);
  const int a1 = plan.EmitSelect(0, 1);
  const int x1 = plan.EmitUnion({a0, a1});
  const int b0 = plan.EmitLocalSelect(1, y);
  const int b1 = plan.EmitSelect(1, 1);
  const int u2 = plan.EmitUnion({b0, b1});
  plan.SetResult(plan.EmitIntersect({x1, u2}));

  const SourceCatalog catalog = TwoSourceCatalog(PermanentOutage());
  ExecOptions exec;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;
  const auto report = ExecutePlan(plan, catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->answer.ToString(), "{'J55'}");
  EXPECT_FALSE(report->completeness.answer_complete);
  EXPECT_EQ(report->completeness.ExcludedSources(0), std::vector<int>{0});
  EXPECT_EQ(report->completeness.ExcludedSources(1), std::vector<int>{0});
}

TEST(DegradedTest, RefusesToDegradeTheRightSideOfADifference) {
  // answer := (sq(c0, R1) ∪ sq(c0, R2)) − sq(c1, R1). Substituting ∅ for
  // the subtrahend would *add* items — unsound — so even in degrade mode
  // the query must fail rather than return a wrong answer.
  Plan plan;
  const int a0 = plan.EmitSelect(0, 0);
  const int a1 = plan.EmitSelect(0, 1);
  const int x1 = plan.EmitUnion({a0, a1});
  const int rhs = plan.EmitSelect(1, 0);
  plan.SetResult(plan.EmitDifference(x1, rhs));

  // R1 fails only its *second* call, so the monotone leaf a0 succeeds and
  // the non-monotone rhs is the one that degrades.
  FlakySource::Options options;
  options.outage_start = 1;
  options.outage_end = std::numeric_limits<size_t>::max();
  const SourceCatalog catalog = TwoSourceCatalog(options);
  ExecOptions exec;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;
  const auto report = ExecutePlan(plan, catalog, DuiSpQuery(), exec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable);
}

TEST(DegradedTest, SemiJoinLeafDegradesSoundly) {
  // Semijoin plan: cond 1 over R1 is evaluated by probing with cond-0
  // candidates. With R1 down, both its leaves degrade; the answer shrinks
  // to R2's witnessed items.
  Plan plan;
  const int a0 = plan.EmitSelect(0, 0);
  const int a1 = plan.EmitSelect(0, 1);
  const int x1 = plan.EmitUnion({a0, a1});
  const int b0 = plan.EmitSemiJoin(1, 0, x1);
  const int b1 = plan.EmitSemiJoin(1, 1, x1);
  const int u2 = plan.EmitUnion({b0, b1});
  plan.SetResult(u2);

  const auto healthy = ExecutePlan(plan, TwoSourceCatalog({}), DuiSpQuery());
  ASSERT_TRUE(healthy.ok());
  const SourceCatalog catalog = TwoSourceCatalog(PermanentOutage());
  ExecOptions exec;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;
  const auto degraded = ExecutePlan(plan, catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(
      ItemSet::Difference(degraded->answer, healthy->answer).empty());
  EXPECT_FALSE(degraded->completeness.answer_complete);
}

// ---------------------------------------------------------------------------
// Deadlines and budgets
// ---------------------------------------------------------------------------

TEST(DegradedTest, DeadlineTerminatesSequentialExecutionInTime) {
  // Every R1 call takes 50 ms; the query deadline is 60 ms. The first slow
  // call fits, later admissions fail fast — wall clock stays bounded by
  // deadline + one call.
  FlakySource::Options options;
  options.injected_latency_seconds = 0.05;
  const SourceCatalog catalog = TwoSourceCatalog(options);
  ExecOptions exec;
  exec.deadline_seconds = 0.06;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;
  const auto start = std::chrono::steady_clock::now();
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Bounded: deadline + one in-flight call + slack.
  EXPECT_LE(elapsed, 0.06 + 0.05 + 0.25);
  // The deadline cut off at least one R1 call.
  EXPECT_FALSE(report->completeness.answer_complete);
  EXPECT_TRUE(
      ItemSet::Difference(report->answer,
                          ItemSet(std::vector<Value>{Value("J55"),
                                                     Value("T21")}))
          .empty());
}

TEST(DegradedTest, DeadlineTerminatesParallelExecutionInTime) {
  FlakySource::Options options;
  options.injected_latency_seconds = 0.05;
  const SourceCatalog catalog = TwoSourceCatalog(options);
  ExecOptions exec;
  exec.deadline_seconds = 0.06;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;
  exec.parallelism = 4;
  const auto start = std::chrono::steady_clock::now();
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_LE(elapsed, 0.06 + 0.05 + 0.25);
}

TEST(DegradedTest, DeadlineFailsTheQueryInFailMode) {
  FlakySource::Options options;
  options.injected_latency_seconds = 0.05;
  const SourceCatalog catalog = TwoSourceCatalog(options);
  ExecOptions exec;
  exec.deadline_seconds = 0.001;  // expires during the very first call
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(DegradedTest, PerCallTimeoutMakesSlowCallsRetriable) {
  // R1's calls take 30 ms against a 5 ms per-call timeout: every attempt
  // converts to kDeadlineExceeded and the retry ladder is spent; in degrade
  // mode the source is excluded instead of failing the query.
  FlakySource::Options options;
  options.injected_latency_seconds = 0.03;
  options.target_operation = "sq";
  const FlakySource* flaky = nullptr;
  const SourceCatalog catalog = TwoSourceCatalog(options, &flaky);
  ExecOptions exec;
  exec.retry.max_attempts = 2;
  exec.retry.call_timeout_seconds = 0.005;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->completeness.answer_complete);
  // Both R1 leaves spent the full ladder: 2 attempts each.
  EXPECT_EQ(report->retries_total, 2u);
  EXPECT_EQ(flaky->calls_attempted(), 4u);
  ASSERT_FALSE(report->completeness.excluded.empty());
  EXPECT_NE(report->completeness.excluded[0].reason.find("per-call timeout"),
            std::string::npos);
}

TEST(DegradedTest, CostBudgetStopsAdmittingCalls) {
  // Each selection costs ≈ overhead 10 + transfer. A budget of 15 admits
  // the first call and exhausts before the rest.
  const SourceCatalog catalog = TwoSourceCatalog({});
  ExecOptions exec;
  exec.cost_budget = 15.0;
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(report.status().message().find("budget"), std::string::npos);

  ExecOptions degrade = exec;
  degrade.on_source_failure = SourceFailurePolicy::kDegrade;
  const auto partial =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), degrade);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_FALSE(partial->completeness.answer_complete);
  EXPECT_LE(partial->ledger.total(), 15.0 + 12.0);  // budget + one call
}

// ---------------------------------------------------------------------------
// Sequential ↔ parallel equivalence
// ---------------------------------------------------------------------------

TEST(DegradedTest, SequentialAndParallelDegradeIdentically) {
  const SourceCatalog catalog = TwoSourceCatalog(PermanentOutage());
  ExecOptions exec;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;
  const auto seq = ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  const SourceCatalog catalog2 = TwoSourceCatalog(PermanentOutage());
  ExecOptions par = exec;
  par.parallelism = 4;
  const auto parallel =
      ExecutePlan(FilterPlanFor2x2(), catalog2, DuiSpQuery(), par);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(parallel->answer, seq->answer);
  EXPECT_EQ(parallel->completeness.answer_complete,
            seq->completeness.answer_complete);
  EXPECT_EQ(parallel->completeness.degraded_ops,
            seq->completeness.degraded_ops);
  EXPECT_EQ(parallel->completeness.ExcludedSources(0),
            seq->completeness.ExcludedSources(0));
  EXPECT_EQ(parallel->completeness.ExcludedSources(1),
            seq->completeness.ExcludedSources(1));
  EXPECT_EQ(parallel->ledger.total(), seq->ledger.total());
}

TEST(DegradedTest, CompletenessToStringNamesTheExcluded) {
  const SourceCatalog catalog = TwoSourceCatalog(PermanentOutage());
  ExecOptions exec;
  exec.on_source_failure = SourceFailurePolicy::kDegrade;
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(report.ok());
  const std::string text = report->completeness.ToString(
      {"V = 'dui'", "V = 'sp'"}, {"R1", "R2"});
  EXPECT_NE(text.find("partial answer"), std::string::npos);
  EXPECT_NE(text.find("R1"), std::string::npos);
  EXPECT_NE(text.find("V = 'dui'"), std::string::npos);
  // And a complete report says so.
  CompletenessReport complete;
  EXPECT_NE(complete.ToString().find("complete answer"), std::string::npos);
}

}  // namespace
}  // namespace fusion
