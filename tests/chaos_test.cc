// Chaos-engineering tests for the serving tier (the `chaos` ctest label):
// the seeded fault-injecting socket layer (protocol/chaos.h), the socket
// hardening guards (stall deadline, receive limit), FUSIONQ/1 idempotent
// reconnect (request-id dedup + transparent client redial), and source
// replica failover (RemoteSource::ConnectTcp over TcpSourceServer pairs).
//
// The acceptance test at the bottom runs the whole stack — QueryService
// over replicated TCP sources, chaos on every wire, one replica killed
// mid-run — and asserts the chaotic run answers byte-identically to a
// fault-free serial run with no query metered twice. All chaos seeds are
// pinned, so a failure replays deterministically.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "mediator/client.h"
#include "mediator/service.h"
#include "protocol/chaos.h"
#include "protocol/client_protocol.h"
#include "protocol/remote_source.h"
#include "protocol/socket.h"
#include "protocol/source_server.h"
#include "source/simulated_source.h"
#include "workload/dmv.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

constexpr char kDuiAndSp[] =
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'";
constexpr char kDuiAndSp93[] =
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp' AND u1.D >= 1993";
constexpr char kDuiOnly[] = "SELECT u1.L FROM U u1 WHERE u1.V = 'dui'";

std::string Endpoint(int port) {
  return "127.0.0.1:" + std::to_string(port);
}

/// Millisecond-scale retry schedule so failover/reconnect tests finish in
/// well under a second even when every attempt is needed.
RetryPolicy FastRetry(int attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.initial_backoff_seconds = 0.001;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.01;
  return policy;
}

/// A connected loopback pair: `server` is the accepted side, `client` the
/// dialing side. Dialing completes against the listener's backlog, so no
/// accept thread is needed.
struct SocketPair {
  MessageSocket server;
  MessageSocket client;
};

SocketPair MakeSocketPair() {
  auto listener = TcpListener::Bind("127.0.0.1", 0);
  EXPECT_TRUE(listener.ok()) << listener.status().ToString();
  auto dialed = DialTcp(Endpoint(listener->port()));
  EXPECT_TRUE(dialed.ok()) << dialed.status().ToString();
  auto accepted = listener->Accept();
  EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
  return {std::move(accepted).value(), std::move(dialed).value()};
}

/// Service over the Figure-1 federation with oracle statistics (simulated
/// sources, so the deterministic mode keeps costs pinned).
std::unique_ptr<QueryService> Figure1Service(QueryService::Options options) {
  auto instance = BuildDmvFigure1();
  EXPECT_TRUE(instance.ok());
  options.client.statistics = StatisticsMode::kOracle;
  return std::make_unique<QueryService>(Mediator(std::move(instance->catalog)),
                                        options);
}

/// The test-side twin of fusionqd's serve loop: one QueryService over TCP,
/// optional chaos on every connection, plus a switch that loses exactly one
/// SUBMIT response *after* executing it — the deterministic trigger for the
/// idempotent-replay path (frame delivered, answer lost, client re-SUBMITs).
class TestDaemon {
 public:
  struct Options {
    ChaosPolicy chaos;
    bool drop_first_submit_response = false;
  };

  TestDaemon(QueryService* service, const Options& options)
      : service_(service), options_(options) {
    if (options.chaos.enabled()) {
      chaos_ = std::make_shared<ChaosDecider>(options.chaos);
    }
  }
  ~TestDaemon() { Stop(); }

  Status Start() {
    FUSION_ASSIGN_OR_RETURN(listener_, TcpListener::Bind("127.0.0.1", 0));
    acceptor_ = std::thread([this] { AcceptLoop(); });
    return Status::Ok();
  }

  int port() const { return listener_.port(); }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      stopping_ = true;
    }
    listener_.Close();
    if (acceptor_.joinable()) acceptor_.join();
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    }
    for (std::thread& thread : serving_) {
      if (thread.joinable()) thread.join();
    }
    serving_.clear();
  }

 private:
  void AcceptLoop() {
    while (true) {
      auto accepted = listener_.Accept();
      if (!accepted.ok()) return;
      MessageSocket socket = std::move(accepted).value();
      if (ChaosRefuseAccept(chaos_.get())) {
        socket.Close();
        continue;
      }
      (void)socket.SetStallDeadline(5.0);
      const int fd = socket.fd();
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        socket.Close();
        return;
      }
      live_fds_.insert(fd);
      serving_.emplace_back(
          [this, fd](ChaosSocket connection) {
            Serve(connection);
            // Deregister before closing so Stop() can never shutdown(2) a
            // recycled fd number.
            {
              std::lock_guard<std::mutex> inner(mu_);
              live_fds_.erase(fd);
            }
            connection.Close();
          },
          ChaosSocket(std::move(socket), chaos_));
    }
  }

  void Serve(ChaosSocket& socket) {
    while (true) {
      auto frame = socket.Receive();
      if (!frame.ok()) return;
      const std::string response = service_->Handle(frame.value());
      if (options_.drop_first_submit_response &&
          frame.value().rfind("FUSIONQ/1 SUBMIT", 0) == 0 &&
          !submit_response_dropped_.exchange(true)) {
        // The query executed; its answer dies on the wire. The client must
        // reconnect and replay via its request-id, never re-execute.
        return;
      }
      if (!socket.Send(response).ok()) return;
    }
  }

  QueryService* service_;
  Options options_;
  std::shared_ptr<ChaosDecider> chaos_;  // null when chaos is disabled
  TcpListener listener_;
  std::thread acceptor_;
  std::atomic<bool> submit_response_dropped_{false};

  std::mutex mu_;
  bool stopping_ = false;
  std::set<int> live_fds_;
  std::vector<std::thread> serving_;
};

// ---------------------------------------------------------------------------
// ChaosDecider: the seeded decision stream
// ---------------------------------------------------------------------------

TEST(ChaosDeciderTest, SameSeedSameStream) {
  ChaosPolicy policy;
  policy.drop_rate = 0.5;
  policy.seed = 42;
  ChaosDecider a(policy), b(policy);
  for (int i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(a.NextUniform(), b.NextUniform()) << "draw " << i;
  }
  EXPECT_EQ(a.decisions(), 64u);

  // A different seed produces a different schedule.
  ChaosPolicy other = policy;
  other.seed = 43;
  ChaosDecider c(policy), d(other);
  bool diverged = false;
  for (int i = 0; i < 64; ++i) {
    if (c.NextUniform() != d.NextUniform()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(ChaosDeciderTest, ZeroProbabilityConsumesNoDraw) {
  ChaosPolicy policy;
  policy.drop_rate = 0.5;
  ChaosDecider decider(policy);
  // Fire(0) must not advance the stream: which rates are enabled never
  // shifts the decision schedule of the others.
  EXPECT_FALSE(decider.Fire(0.0));
  EXPECT_EQ(decider.decisions(), 0u);
  (void)decider.Fire(0.5);
  EXPECT_EQ(decider.decisions(), 1u);
}

// ---------------------------------------------------------------------------
// ChaosSocket: injected faults look like real network failures
// ---------------------------------------------------------------------------

TEST(ChaosSocketTest, PassthroughWithoutDecider) {
  SocketPair pair = MakeSocketPair();
  ChaosSocket server(std::move(pair.server));  // implicit, no chaos
  ASSERT_TRUE(pair.client.Send("ping\nend\n").ok());
  auto received = server.Receive();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received.value(), "ping\nend\n");
}

TEST(ChaosSocketTest, DropResetsTheConnection) {
  const ChaosCounts before = GlobalChaosCounts();
  ChaosPolicy policy;
  policy.drop_rate = 1.0;
  policy.seed = 7;
  SocketPair pair = MakeSocketPair();
  ChaosSocket server(std::move(pair.server),
                     std::make_shared<ChaosDecider>(policy));
  ASSERT_TRUE(pair.client.Send("ping\nend\n").ok());
  const auto received = server.Receive();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kUnavailable);
  // The peer sees either a clean close (kUnavailable) or, when the kernel
  // RSTs because the dropped frame was never read, ECONNRESET (kInternal) —
  // both in the transport-error class every recovery path retries.
  const auto client_side = pair.client.Receive();
  ASSERT_FALSE(client_side.ok());
  EXPECT_TRUE(client_side.status().code() == StatusCode::kUnavailable ||
              client_side.status().code() == StatusCode::kInternal)
      << client_side.status().ToString();
  EXPECT_GT(GlobalChaosCounts().drops, before.drops);
}

TEST(ChaosSocketTest, TornWriteLeavesPeerMidMessage) {
  const ChaosCounts before = GlobalChaosCounts();
  ChaosPolicy policy;
  policy.torn_write_rate = 1.0;
  policy.seed = 7;
  SocketPair pair = MakeSocketPair();
  ChaosSocket server(std::move(pair.server),
                     std::make_shared<ChaosDecider>(policy));
  const Status sent = server.Send("FUSIONQ/1 OK\nticket 1\nstate done\nend\n");
  EXPECT_FALSE(sent.ok());
  EXPECT_EQ(sent.code(), StatusCode::kUnavailable);
  // The peer holds a strict prefix of the frame when the connection dies:
  // a mid-message close, not a clean idle one.
  const auto received = pair.client.Receive();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kParseError);
  EXPECT_GT(GlobalChaosCounts().torn_writes, before.torn_writes);
}

// ---------------------------------------------------------------------------
// Socket hardening: stall deadline and receive limit
// ---------------------------------------------------------------------------

TEST(SocketGuardTest, IdlePeerNeverTripsTheStallDeadline) {
  SocketPair pair = MakeSocketPair();
  ASSERT_TRUE(pair.server.SetStallDeadline(0.2).ok());
  Result<std::string> received = Status::Unavailable("pending");
  std::thread reader([&] { received = pair.server.Receive(); });
  // Idle (no frame in progress) for longer than the deadline, then a whole
  // frame: the guard only watches *mid-frame* silence.
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  ASSERT_TRUE(pair.client.Send("late\nend\n").ok());
  reader.join();
  ASSERT_TRUE(received.ok()) << received.status().ToString();
  EXPECT_EQ(received.value(), "late\nend\n");
}

TEST(SocketGuardTest, MidFrameSilenceTripsTheStallDeadline) {
  SocketPair pair = MakeSocketPair();
  ASSERT_TRUE(pair.server.SetStallDeadline(0.2).ok());
  // Ship half a frame and go silent — a torn write or a wedged peer.
  const char partial[] = "FUSIONP/1 OK\nname R";
  ASSERT_GT(::send(pair.client.fd(), partial, sizeof(partial) - 1, 0), 0);
  const auto received = pair.server.Receive();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SocketGuardTest, ReceiveLimitCutsOffUnterminatedFloods) {
  SocketPair pair = MakeSocketPair();
  pair.server.SetReceiveLimit(1024);
  ASSERT_TRUE(pair.client.Send(std::string(4096, 'x')).ok());
  const auto received = pair.server.Receive();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// QueryService idempotency dedup
// ---------------------------------------------------------------------------

TEST(ServiceIdempotencyTest, DuplicateSubmitReplaysTheOriginal) {
  auto service = Figure1Service(QueryService::Options());
  QueryService::SubmitOptions submit;
  submit.request_id = 77;
  const auto first = service->Submit("alice", kDuiAndSp, submit);
  ASSERT_TRUE(first.ok());
  const auto answer = service->Wait(first.value());
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->items.ToString(), "{'J55', 'T21'}");

  // Same (client, request-id): the original ticket and outcome come back,
  // nothing executes or meters a second time.
  const auto replayed = service->Submit("alice", kDuiAndSp, submit);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value(), first.value());
  EXPECT_EQ(service->idempotent_replays(), 1u);
  const auto replayed_answer = service->Wait(replayed.value());
  ASSERT_TRUE(replayed_answer.ok());
  EXPECT_EQ(replayed_answer->items.ToString(), answer->items.ToString());
  EXPECT_DOUBLE_EQ(replayed_answer->cost, answer->cost);

  // A different client with the same request-id is a different request.
  const auto other = service->Submit("bob", kDuiAndSp, submit);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other.value(), first.value());
  EXPECT_EQ(service->idempotent_replays(), 1u);
  ASSERT_TRUE(service->Wait(other.value()).ok());
}

TEST(ServiceIdempotencyTest, DedupTableEvictsFifo) {
  QueryService::Options options;
  options.max_dedup = 1;
  auto service = Figure1Service(options);
  QueryService::SubmitOptions submit;
  submit.request_id = 1;
  const auto first = service->Submit("alice", kDuiOnly, submit);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(service->Wait(first.value()).ok());
  submit.request_id = 2;
  ASSERT_TRUE(service->Submit("alice", kDuiOnly, submit).ok());
  // request-id 1 was evicted: the same key now executes afresh (at-most-once
  // holds within the window, at-least-once beyond it).
  submit.request_id = 1;
  const auto again = service->Submit("alice", kDuiOnly, submit);
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again.value(), first.value());
  EXPECT_EQ(service->idempotent_replays(), 0u);
}

// ---------------------------------------------------------------------------
// ServeConnection over a ChaosSocket
// ---------------------------------------------------------------------------

TEST(ServiceServeConnectionTest, ServesFramesAndAdvertisesIdempotency) {
  auto service = Figure1Service(QueryService::Options());
  SocketPair pair = MakeSocketPair();
  std::thread serving([&] {
    service->ServeConnection(ChaosSocket(std::move(pair.server)));
  });

  ClientRequest hello;
  hello.kind = ClientRequest::Kind::kHello;
  hello.client_id = "wire";
  ASSERT_TRUE(pair.client.Send(SerializeClientRequest(hello)).ok());
  auto reply = pair.client.Receive();
  ASSERT_TRUE(reply.ok());
  auto parsed = ParseClientResponse(reply.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ok);
  EXPECT_TRUE(
      FeatureSet::FromNames(parsed->features).Has(Feature::kIdempotency));

  ClientRequest submit;
  submit.kind = ClientRequest::Kind::kSubmit;
  submit.client_id = "wire";
  submit.sql = kDuiAndSp;
  submit.request_id = 99;
  ASSERT_TRUE(pair.client.Send(SerializeClientRequest(submit)).ok());
  reply = pair.client.Receive();
  ASSERT_TRUE(reply.ok());
  parsed = ParseClientResponse(reply.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->items.size(), 2u);

  pair.client.Close();
  serving.join();
}

// ---------------------------------------------------------------------------
// Client transparent reconnect
// ---------------------------------------------------------------------------

TEST(ClientReconnectTest, LostResponseReplaysInsteadOfReexecuting) {
  auto service = Figure1Service(QueryService::Options());
  TestDaemon::Options daemon_options;
  daemon_options.drop_first_submit_response = true;
  TestDaemon daemon(service.get(), daemon_options);
  ASSERT_TRUE(daemon.Start().ok());

  auto client = Client::Builder()
                    .To(Client::Target::Remote(Endpoint(daemon.port())))
                    .ClientId("replay")
                    .Reconnect(FastRetry(6))
                    .Build();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto answer = client->QuerySql(kDuiAndSp);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items.ToString(), "{'J55', 'T21'}");
  // The SUBMIT executed exactly once; the lost answer came back via the
  // request-id dedup table after one reconnect.
  EXPECT_EQ(client->reconnects(), 1u);
  EXPECT_EQ(service->idempotent_replays(), 1u);
}

TEST(ClientReconnectTest, SurvivesSeededConnectionChaos) {
  auto service = Figure1Service(QueryService::Options());
  TestDaemon::Options daemon_options;
  // ~35% of exchanges die under these rates; a 20-attempt millisecond
  // backoff ladder makes query failure vanishingly unlikely while still
  // forcing many reconnects.
  daemon_options.chaos.drop_rate = 0.15;
  daemon_options.chaos.torn_write_rate = 0.1;
  daemon_options.chaos.seed = 20260809;
  TestDaemon daemon(service.get(), daemon_options);
  ASSERT_TRUE(daemon.Start().ok());

  auto client = Client::Builder()
                    .To(Client::Target::Remote(Endpoint(daemon.port())))
                    .ClientId("chaotic")
                    .Reconnect(FastRetry(20))
                    .Build();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int q = 0; q < 20; ++q) {
    const auto answer = client->QuerySql(kDuiOnly);
    ASSERT_TRUE(answer.ok()) << "query " << q << ": "
                             << answer.status().ToString();
    EXPECT_EQ(answer->items.ToString(), "{'J55', 'T21', 'T80'}") << q;
  }
  // With these rates and seed the connection dies repeatedly; every death
  // was healed by a transparent redial.
  EXPECT_GT(client->reconnects(), 0u);
}

// ---------------------------------------------------------------------------
// RemoteSource replica failover
// ---------------------------------------------------------------------------

TEST(ReplicaFailoverTest, FailsOverWhenTheActiveReplicaDies) {
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  const SimulatedSource* sim = instance->simulated[0];
  SimulatedSource direct(*sim);

  TcpSourceServer::Options options;
  std::vector<std::unique_ptr<TcpSourceServer>> replicas;
  std::vector<std::string> endpoints;
  for (int r = 0; r < 2; ++r) {
    replicas.push_back(std::make_unique<TcpSourceServer>(
        std::make_unique<SimulatedSource>(*sim), options));
    ASSERT_TRUE(replicas.back()->Start().ok());
    endpoints.push_back(Endpoint(replicas.back()->port()));
  }

  auto remote = RemoteSource::ConnectTcp(endpoints, FastRetry(6));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote.value()->name(), "R1");
  EXPECT_EQ(remote.value()->active_endpoint(), endpoints[0]);

  const Condition cond = Condition::Eq("V", Value("dui"));
  CostLedger healthy_ledger, direct_ledger;
  const auto healthy = remote.value()->Select(cond, "L", &healthy_ledger);
  const auto expected = direct.Select(cond, "L", &direct_ledger);
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(healthy->ToString(), expected->ToString());
  EXPECT_DOUBLE_EQ(healthy_ledger.total(), direct_ledger.total());

  // Kill the replica the source is stuck to: the next call must rotate to
  // the survivor, answer identically, and charge exactly once.
  replicas[0]->Stop();
  CostLedger failover_ledger;
  const auto failed_over = remote.value()->Select(cond, "L", &failover_ledger);
  ASSERT_TRUE(failed_over.ok()) << failed_over.status().ToString();
  EXPECT_EQ(failed_over->ToString(), expected->ToString());
  EXPECT_DOUBLE_EQ(failover_ledger.total(), direct_ledger.total());
  EXPECT_GE(remote.value()->failovers(), 1u);
  EXPECT_EQ(remote.value()->active_endpoint(), endpoints[1]);
}

TEST(ReplicaFailoverTest, RejectsReplicaServingADifferentSource) {
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  TcpSourceServer::Options options;
  TcpSourceServer r1(std::make_unique<SimulatedSource>(*instance->simulated[0]),
                     options);
  TcpSourceServer r2(std::make_unique<SimulatedSource>(*instance->simulated[1]),
                     options);
  ASSERT_TRUE(r1.Start().ok());
  ASSERT_TRUE(r2.Start().ok());

  // The misconfigured "replica" (a different source) passes unnoticed at
  // connect time — endpoint 0 answers — but is rejected by HELLO
  // re-validation when failover reaches it: better no answer than the
  // wrong source's answer.
  auto remote = RemoteSource::ConnectTcp(
      {Endpoint(r1.port()), Endpoint(r2.port())}, FastRetry(3));
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote.value()->name(), "R1");
  r1.Stop();
  CostLedger ledger;
  const auto result =
      remote.value()->Select(Condition::Eq("V", Value("dui")), "L", &ledger);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("all replicas failed"),
            std::string::npos);
  // The failed attempts replayed no charges.
  EXPECT_DOUBLE_EQ(ledger.total(), 0.0);
}

TEST(ReplicaFailoverTest, AllReplicasDownIsUnavailable) {
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  TcpSourceServer::Options options;
  TcpSourceServer replica(
      std::make_unique<SimulatedSource>(*instance->simulated[0]), options);
  ASSERT_TRUE(replica.Start().ok());
  auto remote =
      RemoteSource::ConnectTcp({Endpoint(replica.port())}, FastRetry(3));
  ASSERT_TRUE(remote.ok());
  replica.Stop();
  const auto result =
      remote.value()->Select(Condition::Eq("V", Value("dui")), "L", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Acceptance: the full stack under seeded chaos matches a fault-free run
// ---------------------------------------------------------------------------

TEST(ChaosSoakTest, ChaoticRunMatchesFaultFreeSerialRun) {
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());

  // Both runs use the same serial query order, session-learned statistics
  // (oracle modes need in-process simulated sources), and no result cache —
  // so every query's metered cost is its own and the two ledgers must agree
  // query by query.
  ClientOptions client_options;
  client_options.use_cache = false;
  client_options.execution.parallelism = 1;

  // Fault-free baseline: an embedded client over copies of the sources.
  SourceCatalog baseline_catalog;
  for (const SimulatedSource* sim : instance->simulated) {
    ASSERT_TRUE(
        baseline_catalog.Add(std::make_unique<SimulatedSource>(*sim)).ok());
  }
  auto baseline = Client::Builder()
                      .To(Client::Target::Embedded(std::move(baseline_catalog)))
                      .Options(client_options)
                      .Build();
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Chaotic stack: each source behind two TCP replicas with seeded faults
  // on every connection.
  std::vector<std::unique_ptr<TcpSourceServer>> replicas;
  SourceCatalog remote_catalog;
  std::vector<RemoteSource*> remotes;
  for (size_t j = 0; j < instance->simulated.size(); ++j) {
    TcpSourceServer::Options server_options;
    server_options.chaos.drop_rate = 0.05;
    server_options.chaos.torn_write_rate = 0.05;
    server_options.chaos.seed = 1000 + j;
    std::vector<std::string> endpoints;
    for (int r = 0; r < 2; ++r) {
      replicas.push_back(std::make_unique<TcpSourceServer>(
          std::make_unique<SimulatedSource>(*instance->simulated[j]),
          server_options));
      ASSERT_TRUE(replicas.back()->Start().ok());
      endpoints.push_back(Endpoint(replicas.back()->port()));
    }
    auto remote = RemoteSource::ConnectTcp(endpoints, FastRetry(8));
    ASSERT_TRUE(remote.ok()) << "source " << j << ": "
                             << remote.status().ToString();
    remotes.push_back(remote.value().get());
    ASSERT_TRUE(remote_catalog.Add(std::move(remote).value()).ok());
  }

  QueryService::Options service_options;
  service_options.client = client_options;
  QueryService service(Mediator(std::move(remote_catalog)), service_options);

  TestDaemon::Options daemon_options;
  daemon_options.chaos.drop_rate = 0.1;
  daemon_options.chaos.torn_write_rate = 0.1;
  daemon_options.chaos.seed = 4242;
  TestDaemon daemon(&service, daemon_options);
  ASSERT_TRUE(daemon.Start().ok());

  auto chaotic = Client::Builder()
                     .To(Client::Target::Remote(Endpoint(daemon.port())))
                     .ClientId("soak")
                     .Reconnect(FastRetry(10))
                     .Build();
  ASSERT_TRUE(chaotic.ok()) << chaotic.status().ToString();

  std::vector<std::string> queries;
  for (int round = 0; round < 4; ++round) {
    queries.push_back(kDuiOnly);
    queries.push_back(kDuiAndSp);
    queries.push_back(kDuiAndSp93);
  }

  double chaotic_total = 0.0, baseline_total = 0.0;
  for (size_t q = 0; q < queries.size(); ++q) {
    if (q == 5) {
      // Mid-run replica failure: kill whichever replica source R1 is
      // currently stuck to. Every later query touches R1, so failover to
      // the survivor is forced.
      const std::string active = remotes[0]->active_endpoint();
      for (auto& replica : replicas) {
        if (Endpoint(replica->port()) == active) replica->Stop();
      }
    }
    const auto expected = baseline->QuerySql(queries[q]);
    ASSERT_TRUE(expected.ok()) << q << ": " << expected.status().ToString();
    const auto got = chaotic->QuerySql(queries[q]);
    ASSERT_TRUE(got.ok()) << q << ": " << got.status().ToString();
    EXPECT_EQ(got->items.ToString(), expected->items.ToString())
        << "query " << q;
    EXPECT_TRUE(got->complete) << "query " << q;
    // No query is double-metered: the chaotic ledger matches the fault-free
    // one even though frames were dropped, torn, and re-sent underneath.
    EXPECT_NEAR(got->cost, expected->cost, 1e-6) << "query " << q;
    EXPECT_EQ(got->source_queries, expected->source_queries) << "query " << q;
    chaotic_total += got->cost;
    baseline_total += expected->cost;
  }
  EXPECT_NEAR(chaotic_total, baseline_total, 1e-6);
  EXPECT_GE(remotes[0]->failovers(), 1u);

  // The run really was chaotic — the seeded schedules injected faults.
  const ChaosCounts counts = GlobalChaosCounts();
  EXPECT_GT(counts.drops + counts.torn_writes, 0u);
}

}  // namespace
}  // namespace fusion
