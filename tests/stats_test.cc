#include <gtest/gtest.h>

#include "stats/calibration.h"
#include "stats/oracle_stats.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

SyntheticSpec CalibratableSpec() {
  SyntheticSpec spec;
  spec.universe_size = 4000;
  spec.num_sources = 4;
  spec.num_conditions = 2;
  spec.coverage = 0.5;
  spec.selectivity = {0.2, 0.1};
  spec.selectivity_jitter = 0.0;
  spec.frac_native_semijoin = 1.0;
  spec.processing_per_tuple = 0.0;  // lets the linear fit be exact
  spec.seed = 17;
  return spec;
}

TEST(OracleStatsTest, ParamsMatchRelationTruth) {
  const auto instance = GenerateSynthetic(CalibratableSpec());
  ASSERT_TRUE(instance.ok());
  const auto params =
      OracleSourceParams(*instance->simulated[0], instance->query);
  ASSERT_TRUE(params.ok());
  EXPECT_DOUBLE_EQ(
      params->cardinality,
      static_cast<double>(instance->simulated[0]->relation().size()));
  const ItemSet truth = *instance->simulated[0]->relation().SelectItems(
      instance->query.conditions()[0], "M");
  EXPECT_DOUBLE_EQ(params->result_size[0], static_cast<double>(truth.size()));
}

TEST(OracleStatsTest, UniverseSizeCountsDistinctItems) {
  const auto instance = GenerateSynthetic(CalibratableSpec());
  ASSERT_TRUE(instance.ok());
  const auto universe =
      ExactUniverseSize(instance->simulated, instance->query);
  ASSERT_TRUE(universe.ok());
  EXPECT_GT(*universe, 1000.0);
  EXPECT_LE(*universe, 4000.0);
}

TEST(CalibrationTest, EstimatesCardinalityWithinTolerance) {
  const auto instance = GenerateSynthetic(CalibratableSpec());
  ASSERT_TRUE(instance.ok());
  SyntheticInstance& inst = const_cast<SyntheticInstance&>(*instance);

  CalibrationOptions options;
  options.num_range_probes = 8;
  options.range_fraction = 0.1;
  options.merge_domain_lo = 0;
  options.merge_domain_hi = 3999;
  CostLedger probes;
  const auto model =
      CalibrateBySampling(inst.catalog, inst.query, options, &probes);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GT(probes.total(), 0.0);  // calibration is not free

  for (size_t j = 0; j < inst.catalog.size(); ++j) {
    const double truth =
        static_cast<double>(inst.simulated[j]->relation().size());
    const double est = model->params(j).cardinality;
    EXPECT_NEAR(est, truth, truth * 0.35)
        << "source " << j << " truth " << truth << " est " << est;
  }
}

TEST(CalibrationTest, EstimatesSelectivityRank) {
  // Condition 0 (sel 0.2) should be estimated larger than condition 1 (0.1)
  // at every source.
  const auto instance = GenerateSynthetic(CalibratableSpec());
  ASSERT_TRUE(instance.ok());
  SyntheticInstance& inst = const_cast<SyntheticInstance&>(*instance);
  CalibrationOptions options;
  options.num_range_probes = 8;
  options.range_fraction = 0.15;
  options.merge_domain_lo = 0;
  options.merge_domain_hi = 3999;
  const auto model =
      CalibrateBySampling(inst.catalog, inst.query, options, nullptr);
  ASSERT_TRUE(model.ok());
  for (size_t j = 0; j < inst.catalog.size(); ++j) {
    EXPECT_GT(model->params(j).result_size[0], model->params(j).result_size[1])
        << "source " << j;
  }
}

TEST(CalibrationTest, FitsReceiveCostWhenProcessingFree) {
  // With processing_per_tuple = 0 the observed select cost is exactly
  // overhead + recv * result, so the least-squares fit recovers both.
  const auto instance = GenerateSynthetic(CalibratableSpec());
  ASSERT_TRUE(instance.ok());
  SyntheticInstance& inst = const_cast<SyntheticInstance&>(*instance);
  CalibrationOptions options;
  options.num_range_probes = 6;
  options.range_fraction = 0.1;
  options.merge_domain_lo = 0;
  options.merge_domain_hi = 3999;
  const auto model =
      CalibrateBySampling(inst.catalog, inst.query, options, nullptr);
  ASSERT_TRUE(model.ok());
  for (size_t j = 0; j < inst.catalog.size(); ++j) {
    const NetworkProfile& truth = inst.simulated[j]->network();
    EXPECT_NEAR(model->params(j).network.cost_per_item_received,
                truth.cost_per_item_received,
                truth.cost_per_item_received * 0.25 + 1e-6)
        << "source " << j;
  }
}

TEST(CalibrationTest, RejectsBadOptions) {
  const auto instance = GenerateSynthetic(CalibratableSpec());
  ASSERT_TRUE(instance.ok());
  SyntheticInstance& inst = const_cast<SyntheticInstance&>(*instance);
  CalibrationOptions bad;
  bad.merge_domain_lo = 10;
  bad.merge_domain_hi = 0;
  EXPECT_FALSE(
      CalibrateBySampling(inst.catalog, inst.query, bad, nullptr).ok());
  CalibrationOptions zero_probes;
  zero_probes.num_range_probes = 0;
  zero_probes.merge_domain_hi = 100;
  EXPECT_FALSE(
      CalibrateBySampling(inst.catalog, inst.query, zero_probes, nullptr)
          .ok());
}

TEST(CalibrationTest, UniverseEstimateInRightBallpark) {
  const auto instance = GenerateSynthetic(CalibratableSpec());
  ASSERT_TRUE(instance.ok());
  SyntheticInstance& inst = const_cast<SyntheticInstance&>(*instance);
  CalibrationOptions options;
  options.num_range_probes = 8;
  options.range_fraction = 0.15;
  options.merge_domain_lo = 0;
  options.merge_domain_hi = 3999;
  const auto model =
      CalibrateBySampling(inst.catalog, inst.query, options, nullptr);
  ASSERT_TRUE(model.ok());
  const double truth = *ExactUniverseSize(inst.simulated, inst.query);
  // Capture-recapture is noisy; within a factor of two is good enough for
  // plan choice (bench_cost_fidelity quantifies the impact).
  EXPECT_GT(model->universe_size(), truth * 0.5);
  EXPECT_LT(model->universe_size(), truth * 2.0);
}

}  // namespace
}  // namespace fusion
