// Tests for the serving layer (mediator/service.h): admission control and
// load shedding, round-robin fairness, cooperative CANCEL, the FUSIONQ/1
// Handle() driver, and the acceptance property of the shared session — two
// clients submitting the same query get byte-identical answers with the
// second metered at a fraction of the first.
//
// Labelled `service` and `concurrency` (see tests/CMakeLists.txt): the soak
// and shared-cache tests exercise many client threads against one session
// and must stay TSan-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mediator/service.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "protocol/client_protocol.h"
#include "source/simulated_source.h"
#include "workload/dmv.h"

namespace fusion {
namespace {

constexpr char kDuiAndSp[] =
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'";
constexpr char kDuiAndSp93[] =
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp' AND u1.D >= 1993";
constexpr char kDuiOnly[] = "SELECT u1.L FROM U u1 WHERE u1.V = 'dui'";

/// Service over the Figure-1 federation with oracle statistics (the sources
/// are simulated, so the deterministic mode keeps costs pinned).
std::unique_ptr<QueryService> Figure1Service(QueryService::Options options) {
  auto instance = BuildDmvFigure1();
  EXPECT_TRUE(instance.ok());
  options.client.statistics = StatisticsMode::kOracle;
  return std::make_unique<QueryService>(Mediator(std::move(instance->catalog)),
                                        options);
}

/// A gate shared by decorated sources: every Select/Load blocks until the
/// test opens it, and the test can await the first arrival — the tool for
/// holding a request *mid-execution* deterministically.
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  int entered = 0;

  void Enter() {
    std::unique_lock<std::mutex> lock(mutex);
    ++entered;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return entered > 0; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mutex);
    open = true;
    cv.notify_all();
  }
};

class GatedSource : public SourceWrapper {
 public:
  GatedSource(std::unique_ptr<SourceWrapper> inner, Gate* gate)
      : inner_(std::move(inner)), gate_(gate) {}

  const std::string& name() const override { return inner_->name(); }
  const Schema& schema() const override { return inner_->schema(); }
  const Capabilities& capabilities() const override {
    return inner_->capabilities();
  }

  Result<ItemSet> Select(const Condition& cond,
                         const std::string& merge_attribute,
                         CostLedger* ledger) override {
    gate_->Enter();
    return inner_->Select(cond, merge_attribute, ledger);
  }
  Result<ItemSet> SemiJoin(const Condition& cond,
                           const std::string& merge_attribute,
                           const ItemSet& candidates,
                           CostLedger* ledger) override {
    gate_->Enter();
    return inner_->SemiJoin(cond, merge_attribute, candidates, ledger);
  }
  Result<Relation> Load(CostLedger* ledger) override {
    gate_->Enter();
    return inner_->Load(ledger);
  }
  Result<Relation> FetchRecords(const std::string& merge_attribute,
                                const ItemSet& items,
                                CostLedger* ledger) override {
    return inner_->FetchRecords(merge_attribute, items, ledger);
  }

 private:
  std::unique_ptr<SourceWrapper> inner_;
  Gate* gate_;
};

/// Service whose sources all block on `gate`. Session-learned statistics
/// (the decorated sources hide the oracle) and no cache, so every submitted
/// query really reaches the gate.
std::unique_ptr<QueryService> GatedService(Gate* gate,
                                           QueryService::Options options) {
  auto instance = BuildDmvFigure1();
  EXPECT_TRUE(instance.ok());
  SourceCatalog catalog;
  for (size_t j = 0; j < instance->catalog.size(); ++j) {
    const SimulatedSource* sim = instance->catalog.source(j).AsSimulated();
    EXPECT_NE(sim, nullptr);
    EXPECT_TRUE(catalog
                    .Add(std::make_unique<GatedSource>(
                        std::make_unique<SimulatedSource>(*sim), gate))
                    .ok());
  }
  options.client.use_cache = false;
  options.client.execution.parallelism = 1;
  return std::make_unique<QueryService>(Mediator(std::move(catalog)),
                                        options);
}

// ---------------------------------------------------------------------------
// Submit / Wait / Poll basics
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, SubmitWaitAnswersTheRunningExample) {
  auto service = Figure1Service({});
  const auto ticket = service->Submit("alice", kDuiAndSp);
  ASSERT_TRUE(ticket.ok());
  const auto answer = service->Wait(*ticket);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->items.ToString(), "{'J55', 'T21'}");
  EXPECT_GT(answer->cost, 0.0);
  const auto status = service->Poll(*ticket);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, "done");
}

TEST(QueryServiceTest, UnknownTicketIsNotFound) {
  auto service = Figure1Service({});
  EXPECT_EQ(service->Wait(12345).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service->Poll(12345).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service->Cancel(12345).code(), StatusCode::kNotFound);
}

TEST(QueryServiceTest, InvalidSqlFailsTheRequestNotTheService) {
  auto service = Figure1Service({});
  const auto bad = service->Submit("alice", "SELECT nonsense");
  ASSERT_TRUE(bad.ok());  // admission succeeds; the failure is the outcome
  EXPECT_FALSE(service->Wait(*bad).ok());
  const auto status = service->Poll(*bad);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, "failed");
  // The service keeps serving after a failed request.
  const auto good = service->Submit("alice", kDuiAndSp);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(service->Wait(*good).ok());
}

TEST(QueryServiceTest, ShutdownRejectsNewSubmissions) {
  auto service = Figure1Service({});
  service->Shutdown();
  const auto ticket = service->Submit("alice", kDuiAndSp);
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// The acceptance property: a shared session makes the second client cheap
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, SecondClientSameQueryIsNearlyFreeAndIdentical) {
  auto service = Figure1Service({});
  const auto first = service->Submit("alice", kDuiAndSp);
  ASSERT_TRUE(first.ok());
  const auto cold = service->Wait(*first);
  ASSERT_TRUE(cold.ok());
  ASSERT_GT(cold->cost, 0.0);

  // A *different* client submits the same query: same session, same cache.
  const auto second = service->Submit("bob", kDuiAndSp);
  ASSERT_TRUE(second.ok());
  const auto warm = service->Wait(*second);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->items.ToString(), cold->items.ToString());
  EXPECT_LE(warm->cost, 0.1 * cold->cost);
}

TEST(QueryServiceTest, ConcurrentSameQueryClientsShareOneExecution) {
  QueryService::Options options;
  options.workers = 4;
  auto service = Figure1Service(options);

  // Phase 1: one cold request establishes the full metered cost.
  const auto cold_ticket = service->Submit("warmup", kDuiAndSp);
  ASSERT_TRUE(cold_ticket.ok());
  const auto cold = service->Wait(*cold_ticket);
  ASSERT_TRUE(cold.ok());
  ASSERT_GT(cold->cost, 0.0);

  // Phase 2: many clients hit the warm session concurrently. Every answer
  // must be byte-identical to the cold one and nearly free.
  constexpr int kClients = 6;
  std::vector<std::string> answers(kClients);
  std::vector<double> costs(kClients, -1.0);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      const auto ticket =
          service->Submit("client-" + std::to_string(i), kDuiAndSp);
      if (!ticket.ok()) return;
      const auto answer = service->Wait(*ticket);
      if (!answer.ok()) return;
      answers[i] = answer->items.ToString();
      costs[i] = answer->cost;
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(answers[i], cold->items.ToString()) << "client " << i;
    ASSERT_GE(costs[i], 0.0) << "client " << i;
    EXPECT_LE(costs[i], 0.1 * cold->cost) << "client " << i;
  }
}

// ---------------------------------------------------------------------------
// Admission control and load shedding
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, AdmissionOverflowShedsWithUnavailableNotAHang) {
  Gate gate;
  QueryService::Options options;
  options.workers = 1;
  options.max_queue = 1;
  auto service = GatedService(&gate, options);

  // First request occupies the only worker (held at the gate)...
  const auto running = service->Submit("alice", kDuiAndSp);
  ASSERT_TRUE(running.ok());
  gate.AwaitEntered();
  // ...second request fills the single admission slot...
  const auto queued = service->Submit("bob", kDuiAndSp93);
  ASSERT_TRUE(queued.ok());
  // ...third is shed immediately — kUnavailable, not a blocked Submit.
  const auto shed = service->Submit("carol", kDuiOnly);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service->shedded(), 1u);

  // Draining the gate lets the admitted requests finish normally.
  gate.Open();
  EXPECT_TRUE(service->Wait(*running).ok());
  EXPECT_TRUE(service->Wait(*queued).ok());
}

// ---------------------------------------------------------------------------
// Cooperative cancellation
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, CancelMidExecutionFreesThePoolSlot) {
  Gate gate;
  QueryService::Options options;
  options.workers = 1;
  auto service = GatedService(&gate, options);

  const auto ticket = service->Submit("alice", kDuiAndSp);
  ASSERT_TRUE(ticket.ok());
  gate.AwaitEntered();  // the request is mid-execution, inside a source call
  ASSERT_TRUE(service->Cancel(*ticket).ok());
  gate.Open();  // the in-flight call returns; the next admission cancels

  const auto outcome = service->Wait(*ticket);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
  const auto status = service->Poll(*ticket);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, "cancelled");

  // The worker the cancelled query held must be free again: a fresh request
  // on the same single-worker pool completes.
  const auto next = service->Submit("bob", kDuiAndSp93);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(service->Wait(*next).ok());
}

TEST(QueryServiceTest, CancelQueuedRequestNeverStarts) {
  Gate gate;
  QueryService::Options options;
  options.workers = 1;
  auto service = GatedService(&gate, options);

  const auto running = service->Submit("alice", kDuiAndSp);
  ASSERT_TRUE(running.ok());
  gate.AwaitEntered();
  const auto queued = service->Submit("bob", kDuiAndSp93);
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(service->Cancel(*queued).ok());
  gate.Open();

  const auto outcome = service->Wait(*queued);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(service->Wait(*running).ok());
}

TEST(QueryServiceTest, CancelIsIdempotent) {
  Gate gate;
  QueryService::Options options;
  options.workers = 1;
  auto service = GatedService(&gate, options);
  const auto ticket = service->Submit("alice", kDuiAndSp);
  ASSERT_TRUE(ticket.ok());
  gate.AwaitEntered();
  EXPECT_TRUE(service->Cancel(*ticket).ok());
  EXPECT_TRUE(service->Cancel(*ticket).ok());
  gate.Open();
  EXPECT_FALSE(service->Wait(*ticket).ok());
  EXPECT_TRUE(service->Cancel(*ticket).ok());  // after completion, still OK
}

// ---------------------------------------------------------------------------
// The FUSIONQ/1 protocol driver
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, HandleAnswersHelloSubmitStatusCancel) {
  auto service = Figure1Service({});

  ClientRequest hello;
  hello.kind = ClientRequest::Kind::kHello;
  const auto hello_response =
      ParseClientResponse(service->Handle(SerializeClientRequest(hello)));
  ASSERT_TRUE(hello_response.ok());
  EXPECT_TRUE(hello_response->ok);
  EXPECT_EQ(hello_response->server, "fusionqd");

  ClientRequest submit;
  submit.kind = ClientRequest::Kind::kSubmit;
  submit.client_id = "wire-client";
  submit.sql = kDuiAndSp;
  submit.wait = true;
  const auto result =
      ParseClientResponse(service->Handle(SerializeClientRequest(submit)));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->ok);
  EXPECT_EQ(result->state, "done");
  ASSERT_EQ(result->items.size(), 2u);
  EXPECT_GT(result->cost, 0.0);

  ClientRequest status;
  status.kind = ClientRequest::Kind::kStatus;
  status.ticket = result->ticket;
  const auto polled =
      ParseClientResponse(service->Handle(SerializeClientRequest(status)));
  ASSERT_TRUE(polled.ok());
  ASSERT_TRUE(polled->ok);
  EXPECT_EQ(polled->state, "done");
  EXPECT_EQ(polled->items, result->items);

  ClientRequest cancel;
  cancel.kind = ClientRequest::Kind::kCancel;
  cancel.ticket = result->ticket;
  const auto cancelled =
      ParseClientResponse(service->Handle(SerializeClientRequest(cancel)));
  ASSERT_TRUE(cancelled.ok());
  EXPECT_TRUE(cancelled->ok);  // terminal request: cancel is a no-op
}

TEST(QueryServiceTest, HandleTurnsGarbageIntoAnErrorResponse) {
  auto service = Figure1Service({});
  const auto response =
      ParseClientResponse(service->Handle("GET / HTTP/1.1\r\n\r\n"));
  ASSERT_TRUE(response.ok());  // the *response* is well-formed FUSIONQ/1
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->error_code, StatusCode::kParseError);
}

TEST(QueryServiceTest, HandleReportsUnknownTicketsAsNotFound) {
  auto service = Figure1Service({});
  ClientRequest status;
  status.kind = ClientRequest::Kind::kStatus;
  status.ticket = 777;
  const auto response =
      ParseClientResponse(service->Handle(SerializeClientRequest(status)));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->error_code, StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Observability surfaces: STATS, EXPLAIN, SLO accounting, trace adoption
// ---------------------------------------------------------------------------

TEST(QueryServiceTest, HelloAdvertisesObservabilityFeatures) {
  auto service = Figure1Service({});
  ClientRequest hello;
  hello.kind = ClientRequest::Kind::kHello;
  hello.client_id = "negotiator";
  hello.features = ClientProtocolFeatures();
  const auto response =
      ParseClientResponse(service->Handle(SerializeClientRequest(hello)));
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok);
  const FeatureSet features = FeatureSet::FromNames(response->features);
  EXPECT_TRUE(features.Has(Feature::kTrace));
  EXPECT_TRUE(features.Has(Feature::kStats));
  EXPECT_TRUE(features.Has(Feature::kExplain));
  EXPECT_TRUE(features.Has(Feature::kSharding));
}

TEST(QueryServiceTest, StatsVerbServesParseableExposition) {
  auto service = Figure1Service({});
  ClientRequest hello;
  hello.kind = ClientRequest::Kind::kHello;
  hello.client_id = "statsy";
  ASSERT_TRUE(ParseClientResponse(
                  service->Handle(SerializeClientRequest(hello)))->ok);
  ClientRequest submit;
  submit.kind = ClientRequest::Kind::kSubmit;
  submit.client_id = "statsy";
  submit.sql = kDuiAndSp;
  submit.wait = true;
  ASSERT_TRUE(ParseClientResponse(
                  service->Handle(SerializeClientRequest(submit)))->ok);

  ClientRequest stats;
  stats.kind = ClientRequest::Kind::kStats;
  stats.client_id = "statsy";
  const auto response =
      ParseClientResponse(service->Handle(SerializeClientRequest(stats)));
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok);
  ASSERT_FALSE(response->stats_lines.empty());
  std::string text;
  for (const std::string& line : response->stats_lines) text += line + "\n";
  const auto exposition = ParseStatsText(text);
  ASSERT_TRUE(exposition.ok()) << exposition.status().ToString();
  const StatsSample* requests =
      exposition->Find("tenant_requests_total", "statsy");
  ASSERT_NE(requests, nullptr) << text;
  EXPECT_GE(requests->value, 1.0);
  const StatsSample* cost =
      exposition->Find("tenant_metered_cost_total", "statsy");
  ASSERT_NE(cost, nullptr);
  EXPECT_GT(cost->value, 0.0);
}

TEST(QueryServiceTest, ExplainReturnsTheAnnotatedExecutedPlan) {
  auto service = Figure1Service({});
  ClientRequest submit;
  submit.kind = ClientRequest::Kind::kSubmit;
  submit.client_id = "explainer";
  submit.sql = kDuiAndSp;
  submit.wait = true;
  submit.explain = true;
  const auto response =
      ParseClientResponse(service->Handle(SerializeClientRequest(submit)));
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ok) << response->error_message;
  ASSERT_FALSE(response->explain_lines.empty());
  // Header names the chosen algorithm and both cost figures; op lines carry
  // the per-op timing/cache annotations.
  EXPECT_NE(response->explain_lines[0].find("plan "), std::string::npos);
  EXPECT_NE(response->explain_lines[0].find("measured cost"),
            std::string::npos);
  bool annotated = false;
  for (const std::string& line : response->explain_lines) {
    if (line.find("cache") != std::string::npos &&
        line.find("ms") != std::string::npos) {
      annotated = true;
    }
  }
  EXPECT_TRUE(annotated) << "no per-op annotation in explain output";
  // Without the flag, no explain lines ride the response.
  submit.explain = false;
  const auto plain =
      ParseClientResponse(service->Handle(SerializeClientRequest(submit)));
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->explain_lines.empty());
}

TEST(QueryServiceTest, SloRegistryAccountsCompletionsErrorsAndSheds) {
  auto service = Figure1Service({});
  ASSERT_TRUE(service->Wait(*service->Submit("alice", kDuiAndSp)).ok());
  EXPECT_FALSE(service->Wait(*service->Submit("alice", "SELECT junk")).ok());
  const std::vector<TenantSloSnapshot> tenants = service->slo().Snapshot();
  ASSERT_EQ(tenants.size(), 1u);
  EXPECT_EQ(tenants[0].tenant, "alice");
  EXPECT_EQ(tenants[0].requests, 2u);
  EXPECT_EQ(tenants[0].errors, 1u);
  EXPECT_DOUBLE_EQ(tenants[0].error_rate, 0.5);
  EXPECT_GT(tenants[0].metered_cost, 0.0);
  EXPECT_EQ(tenants[0].latency_ms.count, 2u);
}

TEST(QueryServiceTest, SloRegistryCountsShedsAndCancels) {
  Gate gate;
  QueryService::Options options;
  options.workers = 1;
  options.max_queue = 1;
  auto service = GatedService(&gate, options);
  const auto running = service->Submit("alice", kDuiAndSp);
  ASSERT_TRUE(running.ok());
  gate.AwaitEntered();
  const auto queued = service->Submit("bob", kDuiAndSp93);
  ASSERT_TRUE(queued.ok());
  ASSERT_FALSE(service->Submit("carol", kDuiOnly).ok());  // shed
  ASSERT_TRUE(service->Cancel(*queued).ok());             // never runs
  gate.Open();
  ASSERT_TRUE(service->Wait(*running).ok());
  EXPECT_FALSE(service->Wait(*queued).ok());

  const std::vector<TenantSloSnapshot> tenants = service->slo().Snapshot();
  ASSERT_EQ(tenants.size(), 3u);  // alice, bob, carol (sorted)
  EXPECT_EQ(tenants[0].tenant, "alice");
  EXPECT_EQ(tenants[0].requests, 1u);
  EXPECT_EQ(tenants[0].errors, 0u);
  EXPECT_EQ(tenants[1].tenant, "bob");
  EXPECT_EQ(tenants[1].cancelled, 1u);
  EXPECT_EQ(tenants[2].tenant, "carol");
  EXPECT_EQ(tenants[2].shed, 1u);
  EXPECT_EQ(tenants[2].requests, 0u);  // shed is not a completion
}

TEST(QueryServiceTest, SubmitAdoptsTheInboundTraceContext) {
  Tracer::Global().Clear();
  Tracer::Global().Enable();
  auto service = Figure1Service({});
  QueryService::SubmitOptions submit_options;
  submit_options.trace_id = 0x5eedULL;
  submit_options.parent_span = 0x77ULL;
  const auto ticket = service->Submit("traced", kDuiAndSp, submit_options);
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(service->Wait(*ticket).ok());
  const std::vector<SpanRecord> spans = Tracer::Global().Drain();
  Tracer::Global().Disable();
  const SpanRecord* request_span = nullptr;
  for (const SpanRecord& span : spans) {
    if (span.name == "service.request") request_span = &span;
  }
  ASSERT_NE(request_span, nullptr);
  // The service span joins the client's trace and parents to its span; so
  // does every span recorded underneath it.
  EXPECT_EQ(request_span->trace_id, submit_options.trace_id);
  EXPECT_EQ(request_span->parent_id, submit_options.parent_span);
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, submit_options.trace_id) << span.name;
  }
}

// ---------------------------------------------------------------------------
// Multi-client soak: N clients, mixed queries, one shared session
// ---------------------------------------------------------------------------

TEST(QueryServiceSoakTest, ManyClientsManyQueriesOneSession) {
  QueryService::Options options;
  options.workers = 4;
  options.max_queue = 256;  // soak must not shed
  auto service = Figure1Service(options);

  // Reference answers, computed through the same service up front.
  const char* queries[] = {kDuiAndSp, kDuiAndSp93, kDuiOnly};
  std::string expected[3];
  for (int q = 0; q < 3; ++q) {
    const auto ticket = service->Submit("reference", queries[q]);
    ASSERT_TRUE(ticket.ok());
    const auto answer = service->Wait(*ticket);
    ASSERT_TRUE(answer.ok()) << queries[q];
    expected[q] = answer->items.ToString();
  }

  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 6;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const int q = (c + i) % 3;
        const auto ticket =
            service->Submit("soak-" + std::to_string(c), queries[q]);
        if (!ticket.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const auto answer = service->Wait(*ticket);
        if (!answer.ok()) {
          failures.fetch_add(1);
        } else if (answer->items.ToString() != expected[q]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace fusion
