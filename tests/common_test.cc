#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/item_set.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/value.h"

namespace fusion {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodesDistinct) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  FUSION_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> odd = Quarter(6);  // 6/2 = 3, odd
  ASSERT_FALSE(odd.ok());
  EXPECT_EQ(odd.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{7}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{7}).int64(), 7);
  EXPECT_DOUBLE_EQ(Value(3.5).dbl(), 3.5);
  EXPECT_EQ(Value("hi").str(), "hi");
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("dui").ToString(), "'dui'");
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(1.5), Value(2.5));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, CrossNumericComparison) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_LT(Value(int64_t{2}), Value(2.5));
  EXPECT_GT(Value(3.5), Value(int64_t{3}));
}

TEST(ValueTest, CrossTypeOrderingByRank) {
  EXPECT_LT(Value(), Value(int64_t{0}));       // null < numbers
  EXPECT_LT(Value(int64_t{99}), Value("a"));   // numbers < strings
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{2}).Hash(), Value(2.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
}

TEST(ValueTest, CheckedAccessors) {
  EXPECT_TRUE(Value(int64_t{1}).AsInt64().ok());
  EXPECT_TRUE(Value(1.0).AsInt64().ok());
  EXPECT_FALSE(Value("x").AsInt64().ok());
  EXPECT_FALSE(Value(int64_t{1}).AsString().ok());
  EXPECT_TRUE(Value("x").AsString().ok());
}

// ---------------------------------------------------------------------------
// ItemSet
// ---------------------------------------------------------------------------

ItemSet Ints(std::initializer_list<int64_t> xs) {
  std::vector<Value> v;
  for (int64_t x : xs) v.push_back(Value(x));
  return ItemSet(std::move(v));
}

TEST(ItemSetTest, DeduplicatesAndSorts) {
  const ItemSet s = Ints({3, 1, 2, 3, 1});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ToString(), "{1, 2, 3}");
}

TEST(ItemSetTest, ContainsAndInsert) {
  ItemSet s = Ints({1, 3});
  EXPECT_TRUE(s.Contains(Value(int64_t{1})));
  EXPECT_FALSE(s.Contains(Value(int64_t{2})));
  EXPECT_TRUE(s.Insert(Value(int64_t{2})));
  EXPECT_FALSE(s.Insert(Value(int64_t{2})));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.Contains(Value(int64_t{2})));
}

TEST(ItemSetTest, UnionIntersectDifference) {
  const ItemSet a = Ints({1, 2, 3});
  const ItemSet b = Ints({2, 3, 4});
  EXPECT_EQ(ItemSet::Union(a, b), Ints({1, 2, 3, 4}));
  EXPECT_EQ(ItemSet::Intersect(a, b), Ints({2, 3}));
  EXPECT_EQ(ItemSet::Difference(a, b), Ints({1}));
  EXPECT_EQ(ItemSet::Difference(b, a), Ints({4}));
}

TEST(ItemSetTest, EmptySetIdentities) {
  const ItemSet e;
  const ItemSet a = Ints({1, 2});
  EXPECT_EQ(ItemSet::Union(a, e), a);
  EXPECT_EQ(ItemSet::Intersect(a, e), e);
  EXPECT_EQ(ItemSet::Difference(a, e), a);
  EXPECT_EQ(ItemSet::Difference(e, a), e);
  EXPECT_TRUE(e.empty());
}

TEST(ItemSetTest, SubsetChecks) {
  EXPECT_TRUE(Ints({1, 2}).IsSubsetOf(Ints({1, 2, 3})));
  EXPECT_TRUE(ItemSet().IsSubsetOf(Ints({1})));
  EXPECT_FALSE(Ints({1, 4}).IsSubsetOf(Ints({1, 2, 3})));
}

TEST(ItemSetTest, UnionInPlaceMatchesUnion) {
  ItemSet acc = Ints({1, 3, 5});
  acc.UnionInPlace(Ints({2, 3, 4}));
  EXPECT_EQ(acc, Ints({1, 2, 3, 4, 5}));
  // Disjoint tail: the append fast path must still produce a sorted set.
  acc.UnionInPlace(Ints({6, 7}));
  EXPECT_EQ(acc, Ints({1, 2, 3, 4, 5, 6, 7}));
  // Idempotent.
  acc.UnionInPlace(acc);
  EXPECT_EQ(acc, Ints({1, 2, 3, 4, 5, 6, 7}));
}

TEST(ItemSetTest, UnionInPlaceEmptyIdentities) {
  ItemSet acc;
  acc.UnionInPlace(ItemSet());
  EXPECT_TRUE(acc.empty());
  acc.UnionInPlace(Ints({1, 2}));
  EXPECT_EQ(acc, Ints({1, 2}));
  acc.UnionInPlace(ItemSet());
  EXPECT_EQ(acc, Ints({1, 2}));
}

TEST(ItemSetTest, ApproxBytesGrowsWithContents) {
  const ItemSet small = Ints({1});
  ItemSet big = Ints({1});
  for (int64_t i = 2; i < 100; ++i) big.Insert(Value(i));
  EXPECT_GT(small.ApproxBytes(), 0u);
  EXPECT_GT(big.ApproxBytes(), small.ApproxBytes());
}

TEST(ItemSetTest, MixedTypeElementsKeepTotalOrder) {
  ItemSet s({Value("b"), Value(int64_t{1}), Value("a"), Value(2.5)});
  EXPECT_EQ(s.size(), 4u);
  // ints/doubles before strings.
  EXPECT_EQ(s.ToString(), "{1, 2.5, 'a', 'b'}");
}

// Property: algebra laws on random sets.
class ItemSetAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ItemSetAlgebraTest, AlgebraLaws) {
  Rng rng(GetParam());
  auto random_set = [&] {
    std::vector<Value> v;
    const int k = static_cast<int>(rng.Uniform(0, 30));
    for (int i = 0; i < k; ++i) v.push_back(Value(rng.Uniform(0, 20)));
    return ItemSet(std::move(v));
  };
  const ItemSet a = random_set();
  const ItemSet b = random_set();
  const ItemSet c = random_set();
  // Commutativity.
  EXPECT_EQ(ItemSet::Union(a, b), ItemSet::Union(b, a));
  EXPECT_EQ(ItemSet::Intersect(a, b), ItemSet::Intersect(b, a));
  // Associativity.
  EXPECT_EQ(ItemSet::Union(ItemSet::Union(a, b), c),
            ItemSet::Union(a, ItemSet::Union(b, c)));
  // A − B ⊆ A; (A−B) ∩ B = ∅.
  EXPECT_TRUE(ItemSet::Difference(a, b).IsSubsetOf(a));
  EXPECT_TRUE(ItemSet::Intersect(ItemSet::Difference(a, b), b).empty());
  // A = (A∩B) ∪ (A−B).
  EXPECT_EQ(ItemSet::Union(ItemSet::Intersect(a, b), ItemSet::Difference(a, b)),
            a);
  // Distributivity: A ∩ (B ∪ C) = (A∩B) ∪ (A∩C).
  EXPECT_EQ(ItemSet::Intersect(a, ItemSet::Union(b, c)),
            ItemSet::Union(ItemSet::Intersect(a, b), ItemSet::Intersect(a, c)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ItemSetAlgebraTest,
                         ::testing::Range<uint64_t>(0, 20));

// ---------------------------------------------------------------------------
// Rng / Zipf
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(7);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, DiscretePicksByWeight) {
  Rng rng(7);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    counts[rng.Discrete({1.0, 2.0, 1.0})]++;
  }
  EXPECT_NEAR(counts[1] / 30000.0, 0.5, 0.02);
  EXPECT_NEAR(counts[0] / 30000.0, 0.25, 0.02);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(9);
  ZipfSampler z(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) counts[z.Sample(rng)]++;
  for (int c : counts) EXPECT_NEAR(c / 50000.0, 0.1, 0.02);
}

TEST(ZipfTest, HighThetaSkewsToHead) {
  Rng rng(9);
  ZipfSampler z(100, 1.2);
  int head = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (z.Sample(rng) < 5) ++head;
  }
  EXPECT_GT(head, trials / 2);  // top 5 ranks dominate
}

// ---------------------------------------------------------------------------
// StrUtil
// ---------------------------------------------------------------------------

TEST(StrUtilTest, Format) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 3, "ab"), "x=3 y=ab");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
}

TEST(StrUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,,c", ',').size(), 4u);
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
  EXPECT_EQ(StrSplit("a", ',')[0], "a");
}

TEST(StrUtilTest, TrimAndJoin) {
  EXPECT_EQ(StrTrim("  x y  "), "x y");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtilTest, CaseHelpers) {
  EXPECT_TRUE(EqualsIgnoreCase("SeLeCt", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

}  // namespace
}  // namespace fusion
