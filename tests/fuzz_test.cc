// Deterministic fuzz tests: every parser in the system (conditions, fusion
// SQL, CSV, catalog config, protocol frames) must reject arbitrary garbage
// and mutated valid inputs with a clean Status — never crash, hang, or
// return success for nonsense. Seeds are fixed; failures reproduce.
#include <gtest/gtest.h>

#include <string>

#include "cli/catalog_config.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "mediator/service.h"
#include "obs/exposition.h"
#include "protocol/client_protocol.h"
#include "protocol/message.h"
#include "protocol/source_server.h"
#include "query/parser.h"
#include "relational/condition.h"
#include "relational/relation.h"
#include "source/simulated_source.h"
#include "workload/dmv.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

/// Random printable-ish byte string, with newlines and quotes mixed in.
std::string RandomBytes(Rng& rng, size_t max_len) {
  const std::string alphabet =
      "abcXYZ 0189_.,;()[]'\"=<>!\\\n\t#:-+*/uU&|";
  std::string out;
  const size_t len = static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(max_len)));
  for (size_t i = 0; i < len; ++i) {
    out += alphabet[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(alphabet.size()) - 1))];
  }
  return out;
}

/// Applies `count` random single-character mutations to `input`.
std::string Mutate(Rng& rng, std::string input, int count) {
  for (int i = 0; i < count && !input.empty(); ++i) {
    const size_t pos = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(input.size()) - 1));
    switch (rng.Uniform(0, 2)) {
      case 0:
        input[pos] = static_cast<char>(rng.Uniform(32, 126));
        break;
      case 1:
        input.erase(pos, 1);
        break;
      default:
        input.insert(pos, 1, static_cast<char>(rng.Uniform(32, 126)));
        break;
    }
  }
  return input;
}

TEST(FuzzTest, ConditionParserNeverCrashes) {
  Rng rng(1);
  int parsed = 0;
  for (int i = 0; i < 3000; ++i) {
    const auto result = ParseCondition(RandomBytes(rng, 60));
    if (result.ok()) ++parsed;  // fine — some garbage is a valid condition
  }
  // Mutations of a valid condition.
  const std::string valid = "V = 'dui' AND D BETWEEN 1990 AND 1995";
  for (int i = 0; i < 3000; ++i) {
    const auto result = ParseCondition(Mutate(rng, valid, 1 + i % 5));
    if (result.ok()) {
      // Whatever parsed must round-trip through its own text.
      EXPECT_TRUE(ParseCondition(result->ToString()).ok())
          << result->ToString();
    }
  }
  SUCCEED();
}

TEST(FuzzTest, FusionSqlParserNeverCrashes) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    (void)ParseFusionQuery(RandomBytes(rng, 120));
  }
  const std::string valid =
      "SELECT u1.L FROM U u1, U u2 "
      "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'";
  for (int i = 0; i < 2000; ++i) {
    const auto result = ParseFusionQuery(Mutate(rng, valid, 1 + i % 6));
    if (result.ok()) {
      EXPECT_FALSE(result->merge_attribute().empty());
      EXPECT_GT(result->num_conditions(), 0u);
    }
  }
  SUCCEED();
}

TEST(FuzzTest, CsvParserNeverCrashes) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    (void)RelationFromCsv(RandomBytes(rng, 150));
  }
  const std::string valid =
      "L:string,V:string,D:int64\nJ55,dui,1993\nT21,\"s,p\",1994\n";
  for (int i = 0; i < 2000; ++i) {
    const auto result = RelationFromCsv(Mutate(rng, valid, 1 + i % 4));
    if (result.ok()) {
      // Anything accepted must re-serialize and re-parse identically.
      const auto again = RelationFromCsv(RelationToCsv(*result));
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->size(), result->size());
    }
  }
  SUCCEED();
}

TEST(FuzzTest, CatalogConfigParserNeverCrashes) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    (void)ParseCatalogConfig(RandomBytes(rng, 150));
  }
  const std::string valid =
      "[source R1]\ncsv = a.csv\nsemijoin = native\noverhead = 10\n";
  for (int i = 0; i < 2000; ++i) {
    (void)ParseCatalogConfig(Mutate(rng, valid, 1 + i % 4));
  }
  SUCCEED();
}

TEST(FuzzTest, ProtocolParsersNeverCrash) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const std::string bytes = RandomBytes(rng, 200);
    (void)ParseRequest(bytes);
    (void)ParseResponse(bytes);
    (void)ParseSerializedValue(bytes);
  }
  SourceRequest request;
  request.kind = SourceRequest::Kind::kSemiJoin;
  request.merge_attribute = "L";
  request.condition_text = "V = 'x'";
  request.bindings = {Value("J55"), Value(int64_t{3})};
  const std::string valid = SerializeRequest(request);
  for (int i = 0; i < 2000; ++i) {
    const auto result = ParseRequest(Mutate(rng, valid, 1 + i % 5));
    if (result.ok()) {
      // Accepted mutants must re-serialize and re-parse.
      EXPECT_TRUE(ParseRequest(SerializeRequest(*result)).ok());
    }
  }
  SUCCEED();
}

SourceRequest ValidSemiJoin() {
  SourceRequest request;
  request.kind = SourceRequest::Kind::kSemiJoin;
  request.merge_attribute = "L";
  request.condition_text = "V = 'dui'";
  request.bindings = {Value("J55"), Value("T21"), Value(int64_t{3})};
  return request;
}

TEST(FuzzTest, SourceProtocolTruncatedFramesRejected) {
  // The mediator dialect must behave exactly like the client dialect under
  // torn writes: every strict prefix of a valid frame short of the closing
  // "end" line is a clean parse error, for requests and responses alike.
  // This is the parser-level guarantee the chaos layer's torn-write fault
  // leans on.
  const std::string request_wire = SerializeRequest(ValidSemiJoin());
  for (size_t len = 0; len + 2 <= request_wire.size(); ++len) {
    EXPECT_FALSE(ParseRequest(request_wire.substr(0, len)).ok())
        << "accepted truncated request of " << len << " bytes";
  }

  SourceResponse ok;
  ok.ok = true;
  ok.items = {Value("J55"), Value(int64_t{7})};
  ok.relation_lines = {"L:string,V:string", "J55,dui"};
  ChargeSummary charge;
  charge.kind = "semijoin";
  charge.items_sent = 3;
  charge.items_received = 2;
  charge.cost = 12.5;
  ok.charges = {charge};
  const std::string response_wire = SerializeResponse(ok);
  for (size_t len = 0; len + 2 <= response_wire.size(); ++len) {
    EXPECT_FALSE(ParseResponse(response_wire.substr(0, len)).ok())
        << "accepted truncated response of " << len << " bytes";
  }

  // Dropping whole lines from the tail loses the terminator too.
  const std::vector<std::string> lines = StrSplit(response_wire, '\n');
  std::string partial;
  for (size_t i = 0; i + 2 < lines.size(); ++i) {
    partial += lines[i] + "\n";
    EXPECT_FALSE(ParseResponse(partial).ok());
  }
}

TEST(FuzzTest, SourceProtocolOversizedLinesRejected) {
  // Source servers read frames from whatever dials their port; an unbounded
  // line is the same memory-amplification vector as on the client dialect.
  SourceRequest huge = ValidSemiJoin();
  huge.condition_text = std::string(kMaxSourceProtocolLineBytes + 1, 'a');
  const auto request = ParseRequest(SerializeRequest(huge));
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("oversized"), std::string::npos)
      << request.status().ToString();

  SourceResponse wide;
  wide.relation_lines = {std::string(kMaxSourceProtocolLineBytes + 1, 'x')};
  const auto response = ParseResponse(SerializeResponse(wide));
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.status().message().find("oversized"), std::string::npos);

  // At (not over) the cap the frame still parses.
  SourceRequest fits = ValidSemiJoin();
  fits.condition_text = std::string(kMaxSourceProtocolLineBytes - 16, 'a');
  EXPECT_TRUE(ParseRequest(SerializeRequest(fits)).ok());
}

TEST(FuzzTest, SourceServerHandleNeverCrashes) {
  // The wrapper-side dispatch surface: arbitrary bytes into
  // SourceServer::Handle must always come back as one parseable FUSIONP/1
  // response — an ERROR for garbage, never a crash or an unframed reply.
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  SourceServer server(
      std::make_unique<SimulatedSource>(*instance->simulated[0]));

  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const auto response = ParseResponse(server.Handle(RandomBytes(rng, 200)));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->ok);  // random bytes are never a valid request
  }
  const std::string valid = SerializeRequest(ValidSemiJoin());
  for (int i = 0; i < 300; ++i) {
    // Mutants that happen to parse hit the real wrapper; either way the
    // reply must be a well-formed frame.
    const auto response =
        ParseResponse(server.Handle(Mutate(rng, valid, 1 + i % 5)));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  SUCCEED();
}

TEST(FuzzTest, ConditionTextRoundTripProperty) {
  // Structured fuzz: random condition trees must round-trip exactly
  // through ToString + ParseCondition (structural equality after one
  // canonicalization on both sides).
  Rng rng(6);
  std::function<Condition(int)> random_cond = [&](int depth) -> Condition {
    if (depth > 3 || rng.Bernoulli(0.4)) {
      switch (rng.Uniform(0, 3)) {
        case 0:
          return Condition::Eq("A", Value(rng.Uniform(0, 9)));
        case 1:
          return Condition::Compare("B", CompareOp::kGe,
                                    Value(rng.NextDouble() * 10));
        case 2:
          return Condition::Between("C", Value(rng.Uniform(0, 5)),
                                    Value(rng.Uniform(5, 9)));
        default:
          return Condition::In("D", {Value("it's"), Value("plain")});
      }
    }
    switch (rng.Uniform(0, 2)) {
      case 0:
        return Condition::And(random_cond(depth + 1), random_cond(depth + 1));
      case 1:
        return Condition::Or(random_cond(depth + 1), random_cond(depth + 1));
      default:
        return Condition::Not(random_cond(depth + 1));
    }
  };
  for (int i = 0; i < 500; ++i) {
    const Condition original = random_cond(0);
    const auto reparsed = ParseCondition(original.ToString());
    ASSERT_TRUE(reparsed.ok()) << original.ToString();
    EXPECT_TRUE(original.Simplified().Equals(reparsed->Simplified()))
        << original.ToString();
  }
}

ClientRequest ValidSubmit() {
  ClientRequest request;
  request.kind = ClientRequest::Kind::kSubmit;
  request.client_id = "fuzz";
  request.sql =
      "SELECT u1.M FROM U u1, U u2 WHERE u1.M = u2.M AND u1.A1 = 1 "
      "AND u2.A2 = 1";
  request.wait = true;
  return request;
}

TEST(FuzzTest, ClientProtocolParsersNeverCrash) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::string bytes = RandomBytes(rng, 200);
    (void)ParseClientRequest(bytes);
    (void)ParseClientResponse(bytes);
  }
  const std::string valid_request = SerializeClientRequest(ValidSubmit());
  ClientResponse ok;
  ok.ticket = 42;
  ok.state = "done";
  ok.items = {Value(int64_t{3}), Value("x")};
  ok.cost = 12.5;
  ok.source_queries = 2;
  ok.cache_hits = 1;
  ok.items_sent = 4;
  ok.items_received = 9;
  const std::string valid_response = SerializeClientResponse(ok);
  for (int i = 0; i < 2000; ++i) {
    const auto request = ParseClientRequest(Mutate(rng, valid_request, 1 + i % 5));
    if (request.ok()) {
      // Accepted mutants must re-serialize and re-parse.
      EXPECT_TRUE(ParseClientRequest(SerializeClientRequest(*request)).ok());
    }
    const auto response =
        ParseClientResponse(Mutate(rng, valid_response, 1 + i % 5));
    if (response.ok()) {
      EXPECT_TRUE(
          ParseClientResponse(SerializeClientResponse(*response)).ok());
    }
  }
  SUCCEED();
}

TEST(FuzzTest, ClientProtocolRequestIdRoundTrips) {
  // The idempotency key must survive the wire exactly — a corrupted or
  // dropped request-id silently downgrades reconnect to at-most-once.
  ClientRequest keyed = ValidSubmit();
  keyed.request_id = 0xdeadbeefcafef00dULL;
  const std::string wire = SerializeClientRequest(keyed);
  EXPECT_NE(wire.find("request-id 16045690984503111693\n"), std::string::npos)
      << wire;
  const auto parsed = ParseClientRequest(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->request_id, keyed.request_id);

  // request_id == 0 means "no key": the line must not be emitted at all, so
  // pre-idempotency servers see byte-identical SUBMIT frames.
  ClientRequest unkeyed = ValidSubmit();
  const std::string plain = SerializeClientRequest(unkeyed);
  EXPECT_EQ(plain.find("request-id"), std::string::npos) << plain;
  const auto reparsed = ParseClientRequest(plain);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->request_id, 0u);
}

TEST(FuzzTest, ClientProtocolTruncatedFramesRejected) {
  const std::string full = SerializeClientRequest(ValidSubmit());
  // Every strict byte prefix short of the closing "end" line is an
  // incomplete frame: a clean parse error, never a crash or an accept.
  // (The last two bytes are "d\n"; a prefix missing only the trailing
  // newline still contains a complete "end" line, so stop before it.)
  for (size_t len = 0; len + 2 <= full.size(); ++len) {
    const auto result = ParseClientRequest(full.substr(0, len));
    EXPECT_FALSE(result.ok()) << "accepted truncated frame of " << len
                              << " bytes";
  }
  // Dropping whole lines from the tail loses the terminator too.
  const std::vector<std::string> lines = StrSplit(full, '\n');
  std::string partial;
  for (size_t i = 0; i + 2 < lines.size(); ++i) {
    partial += lines[i] + "\n";
    EXPECT_FALSE(ParseClientRequest(partial).ok());
  }
}

TEST(FuzzTest, ClientProtocolOversizedLinesRejected) {
  // A line beyond the cap must be rejected up front — the serving layer
  // reads frames from untrusted sockets, and an unbounded line is a memory
  // amplification vector.
  ClientRequest huge = ValidSubmit();
  huge.sql = std::string(kMaxClientProtocolLineBytes + 1, 'a');
  const auto request = ParseClientRequest(SerializeClientRequest(huge));
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("oversized"), std::string::npos)
      << request.status().ToString();

  ClientResponse big;
  big.server = std::string(kMaxClientProtocolLineBytes + 1, 's');
  const auto response = ParseClientResponse(SerializeClientResponse(big));
  ASSERT_FALSE(response.ok());
  EXPECT_NE(response.status().message().find("oversized"), std::string::npos);

  // At (not over) the cap the frame still parses: the bound is a limit,
  // not a shrinking of the usable protocol.
  ClientRequest fits = ValidSubmit();
  fits.sql = std::string(kMaxClientProtocolLineBytes - 16, 'a');
  EXPECT_TRUE(ParseClientRequest(SerializeClientRequest(fits)).ok());
}

TEST(FuzzTest, QueryServiceHandleNeverCrashes) {
  // The full dispatch surface: arbitrary bytes into QueryService::Handle
  // must always come back as one parseable FUSIONQ/1 response — an ERROR
  // for garbage, never a crash, hang, or unframed reply.
  SyntheticSpec spec;
  spec.universe_size = 200;
  spec.num_sources = 3;
  spec.num_conditions = 2;
  spec.seed = 17;
  auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  QueryService::Options options;
  options.workers = 2;
  QueryService service(Mediator(std::move(instance->catalog)), options);

  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    const auto response = ParseClientResponse(service.Handle(RandomBytes(rng, 200)));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->ok);  // random bytes are never a valid request
  }
  const std::string valid = SerializeClientRequest(ValidSubmit());
  for (int i = 0; i < 300; ++i) {
    // Mutants that happen to parse run real queries; either way the reply
    // must be a well-formed frame.
    const auto response =
        ParseClientResponse(service.Handle(Mutate(rng, valid, 1 + i % 5)));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  SUCCEED();
}

TEST(FuzzTest, QueryServiceStatsAndExplainFramesNeverCrash) {
  // The new observability verbs share Handle's dispatch: mutated STATS
  // frames and trace/explain-carrying SUBMITs must always yield a framed
  // response, and a well-formed STATS reply must parse as an exposition.
  SyntheticSpec spec;
  spec.universe_size = 200;
  spec.num_sources = 3;
  spec.num_conditions = 2;
  spec.seed = 18;
  auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  QueryService::Options options;
  options.workers = 2;
  QueryService service(Mediator(std::move(instance->catalog)), options);

  ClientRequest stats;
  stats.kind = ClientRequest::Kind::kStats;
  stats.client_id = "fuzz";
  const std::string valid_stats = SerializeClientRequest(stats);
  ClientRequest explained = ValidSubmit();
  explained.explain = true;
  explained.trace_id = 0xfadedacedeadbeefULL;
  explained.parent_span = 77;
  const std::string valid_explain = SerializeClientRequest(explained);

  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const auto stats_reply =
        ParseClientResponse(service.Handle(Mutate(rng, valid_stats, 1 + i % 5)));
    ASSERT_TRUE(stats_reply.ok()) << stats_reply.status().ToString();
    const auto explain_reply = ParseClientResponse(
        service.Handle(Mutate(rng, valid_explain, 1 + i % 5)));
    ASSERT_TRUE(explain_reply.ok()) << explain_reply.status().ToString();
  }
  // The unmutated STATS frame round-trips all the way into a parsed
  // exposition with the mandatory schema header.
  const auto reply = ParseClientResponse(service.Handle(valid_stats));
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(reply->ok) << reply->error_message;
  std::string text;
  for (const std::string& line : reply->stats_lines) text += line + "\n";
  const auto exposition = ParseStatsText(text);
  ASSERT_TRUE(exposition.ok()) << exposition.status().ToString();
  EXPECT_GT(exposition->samples.size(), 0u);
}

TEST(FuzzTest, StatsExpositionParserNeverCrashes) {
  Rng rng(10);
  for (int i = 0; i < 2000; ++i) {
    (void)ParseStatsText(RandomBytes(rng, 200));
  }
  const std::string valid =
      "# fusionq-stats schema 1\n"
      "requests_total 42\n"
      "tenant_latency_ms{tenant=\"a\\\"b\",quantile=\"0.99\"} 3.5\n";
  for (int i = 0; i < 2000; ++i) {
    (void)ParseStatsText(Mutate(rng, valid, 1 + i % 5));
  }
  SUCCEED();
}

}  // namespace
}  // namespace fusion
