#include <gtest/gtest.h>

#include <memory>

#include "source/catalog.h"
#include "source/cost_ledger.h"
#include "source/simulated_source.h"
#include "workload/dmv.h"

namespace fusion {
namespace {

Schema DmvSchema() {
  return Schema({{"L", ValueType::kString},
                 {"V", ValueType::kString},
                 {"D", ValueType::kInt64}});
}

Relation SmallRelation() {
  Relation r(DmvSchema());
  EXPECT_TRUE(r.Append({Value("J55"), Value("dui"), Value(int64_t{1993})}).ok());
  EXPECT_TRUE(r.Append({Value("T21"), Value("sp"), Value(int64_t{1994})}).ok());
  EXPECT_TRUE(r.Append({Value("T80"), Value("dui"), Value(int64_t{1993})}).ok());
  return r;
}

NetworkProfile UnitNetwork() {
  NetworkProfile net;
  net.query_overhead = 10.0;
  net.cost_per_item_sent = 1.0;
  net.cost_per_item_received = 2.0;
  net.processing_per_tuple = 0.5;
  net.record_width_factor = 4.0;
  return net;
}

// ---------------------------------------------------------------------------
// CostLedger
// ---------------------------------------------------------------------------

TEST(CostLedgerTest, AccumulatesCharges) {
  CostLedger ledger;
  ledger.Add({"R1", ChargeKind::kSelect, "c1", 0, 5, 10, 12.5});
  ledger.Add({"R2", ChargeKind::kSemiJoin, "c2", 3, 2, 10, 7.0});
  EXPECT_DOUBLE_EQ(ledger.total(), 19.5);
  EXPECT_EQ(ledger.num_queries(), 2u);
  EXPECT_EQ(ledger.total_items_sent(), 3u);
  EXPECT_EQ(ledger.total_items_received(), 7u);
  const std::string report = ledger.Report();
  EXPECT_NE(report.find("R1"), std::string::npos);
  EXPECT_NE(report.find("sjq"), std::string::npos);
  ledger.Clear();
  EXPECT_DOUBLE_EQ(ledger.total(), 0.0);
  EXPECT_EQ(ledger.num_queries(), 0u);
}

// ---------------------------------------------------------------------------
// SimulatedSource metering
// ---------------------------------------------------------------------------

TEST(SimulatedSourceTest, SelectReturnsItemsAndCharges) {
  SimulatedSource src("R1", SmallRelation(), Capabilities{}, UnitNetwork());
  CostLedger ledger;
  const ItemSet items =
      *src.Select(Condition::Eq("V", Value("dui")), "L", &ledger);
  EXPECT_EQ(items.ToString(), "{'J55', 'T80'}");
  ASSERT_EQ(ledger.num_queries(), 1u);
  // overhead 10 + 3 tuples * 0.5 + 2 items * 2.0 = 15.5
  EXPECT_DOUBLE_EQ(ledger.total(), 15.5);
  EXPECT_DOUBLE_EQ(src.SelectCost(2), 15.5);
  EXPECT_EQ(ledger.charges()[0].kind, ChargeKind::kSelect);
}

TEST(SimulatedSourceTest, SelectWithoutLedgerIsSilent) {
  SimulatedSource src("R1", SmallRelation(), Capabilities{}, UnitNetwork());
  EXPECT_TRUE(src.Select(Condition::True(), "L", nullptr).ok());
}

TEST(SimulatedSourceTest, SemiJoinNativeCharges) {
  SimulatedSource src("R1", SmallRelation(), Capabilities{}, UnitNetwork());
  CostLedger ledger;
  ItemSet candidates({Value("J55"), Value("T21"), Value("ZZ")});
  const ItemSet items =
      *src.SemiJoin(Condition::Eq("V", Value("dui")), "L", candidates, &ledger);
  EXPECT_EQ(items.ToString(), "{'J55'}");
  // overhead 10 + 3 sent * 1.0 + 3 tuples * 0.5 + 1 recv * 2.0 = 16.5
  EXPECT_DOUBLE_EQ(ledger.total(), 16.5);
  EXPECT_EQ(ledger.charges()[0].kind, ChargeKind::kSemiJoin);
  EXPECT_EQ(ledger.charges()[0].items_sent, 3u);
}

TEST(SimulatedSourceTest, SemiJoinRejectedWithoutNativeSupport) {
  Capabilities caps;
  caps.semijoin = SemijoinSupport::kPassedBindingsOnly;
  SimulatedSource src("R1", SmallRelation(), caps, UnitNetwork());
  ItemSet candidates({Value("J55")});
  const auto result = src.SemiJoin(Condition::True(), "L", candidates, nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(SimulatedSourceTest, LoadShipsWholeRelation) {
  SimulatedSource src("R1", SmallRelation(), Capabilities{}, UnitNetwork());
  CostLedger ledger;
  const Relation loaded = *src.Load(&ledger);
  EXPECT_EQ(loaded.size(), 3u);
  // overhead 10 + 3 * 0.5 + 3 * 2.0 * 4.0 (width) = 35.5
  EXPECT_DOUBLE_EQ(ledger.total(), 35.5);
  EXPECT_EQ(ledger.charges()[0].kind, ChargeKind::kLoad);
}

TEST(SimulatedSourceTest, LoadRejectedWhenUnsupported) {
  Capabilities caps;
  caps.supports_load = false;
  SimulatedSource src("R1", SmallRelation(), caps, UnitNetwork());
  EXPECT_FALSE(src.Load(nullptr).ok());
}

TEST(SimulatedSourceTest, FetchRecordsReturnsMatchingTuples) {
  SimulatedSource src("R1", SmallRelation(), Capabilities{}, UnitNetwork());
  CostLedger ledger;
  ItemSet items({Value("J55"), Value("T21")});
  const Relation records = *src.FetchRecords("L", items, &ledger);
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(ledger.charges()[0].kind, ChargeKind::kFetchRecords);
  EXPECT_GT(ledger.total(), 0.0);
}

TEST(SimulatedSourceTest, CostsScaleWithResultSize) {
  SimulatedSource src("R1", SmallRelation(), Capabilities{}, UnitNetwork());
  EXPECT_LT(src.SelectCost(0), src.SelectCost(10));
  EXPECT_LT(src.SemiJoinCost(1, 0), src.SemiJoinCost(100, 0));
}

// ---------------------------------------------------------------------------
// SourceCatalog
// ---------------------------------------------------------------------------

TEST(SourceCatalogTest, AddAndLookup) {
  SourceCatalog catalog;
  ASSERT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "R1", SmallRelation(), Capabilities{}, UnitNetwork()))
                  .ok());
  ASSERT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "R2", SmallRelation(), Capabilities{}, UnitNetwork()))
                  .ok());
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(*catalog.IndexOf("R2"), 1u);
  EXPECT_FALSE(catalog.IndexOf("R9").ok());
  EXPECT_EQ(catalog.Names()[0], "R1");
  EXPECT_EQ(*catalog.CommonSchema(), DmvSchema());
}

TEST(SourceCatalogTest, RejectsDuplicateNames) {
  SourceCatalog catalog;
  ASSERT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "R1", SmallRelation(), Capabilities{}, UnitNetwork()))
                  .ok());
  const Status s = catalog.Add(std::make_unique<SimulatedSource>(
      "R1", SmallRelation(), Capabilities{}, UnitNetwork()));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(SourceCatalogTest, RejectsSchemaMismatch) {
  SourceCatalog catalog;
  ASSERT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "R1", SmallRelation(), Capabilities{}, UnitNetwork()))
                  .ok());
  Relation other{Schema({{"X", ValueType::kInt64}})};
  EXPECT_FALSE(catalog
                   .Add(std::make_unique<SimulatedSource>(
                       "R2", std::move(other), Capabilities{}, UnitNetwork()))
                   .ok());
}

TEST(SourceCatalogTest, EmptyCatalogHasNoSchema) {
  SourceCatalog catalog;
  EXPECT_FALSE(catalog.CommonSchema().ok());
  EXPECT_TRUE(catalog.empty());
}

// ---------------------------------------------------------------------------
// Workload generators produce consistent instances
// ---------------------------------------------------------------------------

TEST(DmvWorkloadTest, Figure1MatchesPaper) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  ASSERT_EQ(instance->catalog.size(), 3u);
  EXPECT_EQ(instance->simulated[0]->relation().size(), 3u);
  EXPECT_EQ(instance->query.merge_attribute(), "L");
  // R1 has J55's dui.
  const ItemSet dui = *instance->simulated[0]->relation().SelectItems(
      Condition::Eq("V", Value("dui")), "L");
  EXPECT_TRUE(dui.Contains(Value("J55")));
}

TEST(DmvWorkloadTest, GeneratedScenarioIsDeterministic) {
  DmvSpec spec;
  spec.num_states = 5;
  spec.num_drivers = 200;
  const auto a = GenerateDmv(spec);
  const auto b = GenerateDmv(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(a->simulated[j]->relation().size(),
              b->simulated[j]->relation().size());
  }
}

}  // namespace
}  // namespace fusion
