#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "cost/oracle_cost_model.h"
#include "source/cost_ledger.h"
#include "cost/parametric_cost_model.h"
#include "cost/set_estimate.h"
#include "stats/oracle_stats.h"
#include "workload/dmv.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

// ---------------------------------------------------------------------------
// SetEstimate algebra
// ---------------------------------------------------------------------------

ItemSet Ints(std::initializer_list<int64_t> xs) {
  std::vector<Value> v;
  for (int64_t x : xs) v.push_back(Value(x));
  return ItemSet(std::move(v));
}

TEST(SetEstimateTest, ExactOperandsStayExact) {
  const SetEstimate a = SetEstimate::Exact(Ints({1, 2, 3}));
  const SetEstimate b = SetEstimate::Exact(Ints({2, 3, 4}));
  const SetEstimate u = UnionEstimate(a, b, 100);
  ASSERT_TRUE(u.is_exact());
  EXPECT_EQ(*u.exact, Ints({1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(u.size, 4.0);
  const SetEstimate i = IntersectEstimate(a, b, 100);
  ASSERT_TRUE(i.is_exact());
  EXPECT_EQ(*i.exact, Ints({2, 3}));
  const SetEstimate d = DifferenceEstimate(a, b, 100);
  ASSERT_TRUE(d.is_exact());
  EXPECT_EQ(*d.exact, Ints({1}));
}

TEST(SetEstimateTest, ScalarIndependenceFormulas) {
  const SetEstimate a = SetEstimate::Approx(10);
  const SetEstimate b = SetEstimate::Approx(20);
  EXPECT_DOUBLE_EQ(UnionEstimate(a, b, 100).size, 10 + 20 - 10 * 20 / 100.0);
  EXPECT_DOUBLE_EQ(IntersectEstimate(a, b, 100).size, 10 * 20 / 100.0);
  EXPECT_DOUBLE_EQ(DifferenceEstimate(a, b, 100).size, 10 * (1 - 20 / 100.0));
}

TEST(SetEstimateTest, MixedOperandsDegradeToScalar) {
  const SetEstimate a = SetEstimate::Exact(Ints({1, 2, 3}));
  const SetEstimate b = SetEstimate::Approx(20);
  const SetEstimate u = UnionEstimate(a, b, 100);
  EXPECT_FALSE(u.is_exact());
  EXPECT_NEAR(u.size, 3 + 20 - 3 * 20 / 100.0, 1e-12);
}

TEST(SetEstimateTest, ScalarResultsClampedToBounds) {
  const SetEstimate a = SetEstimate::Approx(90);
  const SetEstimate b = SetEstimate::Approx(95);
  EXPECT_LE(UnionEstimate(a, b, 100).size, 100.0);
  EXPECT_LE(IntersectEstimate(a, b, 100).size, 90.0);
  EXPECT_GE(DifferenceEstimate(a, b, 100).size, 0.0);
  // Negative requested size clamps to zero.
  EXPECT_DOUBLE_EQ(SetEstimate::Approx(-5).size, 0.0);
}

TEST(SetEstimateTest, DegenerateUniverse) {
  const SetEstimate a = SetEstimate::Approx(1);
  EXPECT_GE(UnionEstimate(a, a, 0).size, 0.0);  // no NaN / inf
  EXPECT_FALSE(std::isnan(IntersectEstimate(a, a, 0).size));
}

// ---------------------------------------------------------------------------
// ParametricCostModel formulas
// ---------------------------------------------------------------------------

ParametricCostModel TwoSourceModel() {
  SourceParams p1;
  p1.capabilities.semijoin = SemijoinSupport::kNative;
  p1.network.query_overhead = 10;
  p1.network.cost_per_item_sent = 1;
  p1.network.cost_per_item_received = 2;
  p1.network.processing_per_tuple = 0.1;
  p1.network.record_width_factor = 4;
  p1.cardinality = 100;
  p1.result_size = {20, 5};

  SourceParams p2 = p1;
  p2.capabilities.semijoin = SemijoinSupport::kPassedBindingsOnly;
  p2.cardinality = 50;
  p2.result_size = {10, 2};

  return ParametricCostModel({p1, p2}, /*universe_size=*/200);
}

TEST(ParametricModelTest, SqCostFormula) {
  const ParametricCostModel m = TwoSourceModel();
  // overhead 10 + 100 * 0.1 + 20 * 2 = 60
  EXPECT_DOUBLE_EQ(m.SqCost(0, 0), 60.0);
  // overhead 10 + 50 * 0.1 + 10 * 2 = 35
  EXPECT_DOUBLE_EQ(m.SqCost(0, 1), 35.0);
}

TEST(ParametricModelTest, SjqNativeCostFormula) {
  const ParametricCostModel m = TwoSourceModel();
  const SetEstimate x = SetEstimate::Approx(30);
  // result = 30 * 20/200 = 3; cost = 10 + 30*1 + 100*0.1 + 3*2 = 56
  EXPECT_DOUBLE_EQ(m.SjqResult(0, 0, x).size, 3.0);
  EXPECT_DOUBLE_EQ(m.SjqCost(0, 0, x), 56.0);
}

TEST(ParametricModelTest, SjqEmulatedCostFormula) {
  const ParametricCostModel m = TwoSourceModel();
  const SetEstimate x = SetEstimate::Approx(30);
  // result = 30 * 10/200 = 1.5; per probe 10 + 50*0.1 = 15; total 30*15 + 1.5*2
  EXPECT_DOUBLE_EQ(m.SjqCost(0, 1, x), 30 * 15 + 3.0);
}

TEST(ParametricModelTest, SjqUnsupportedIsInfinite) {
  SourceParams p;
  p.capabilities.semijoin = SemijoinSupport::kUnsupported;
  p.cardinality = 10;
  p.result_size = {1};
  const ParametricCostModel m({p}, 100);
  EXPECT_TRUE(std::isinf(m.SjqCost(0, 0, SetEstimate::Approx(5))));
}

TEST(ParametricModelTest, LqCostAndUnsupportedLoad) {
  const ParametricCostModel m = TwoSourceModel();
  // 10 + 100*0.1 + 2*4*100 = 820
  EXPECT_DOUBLE_EQ(m.LqCost(0), 820.0);
  SourceParams p;
  p.capabilities.supports_load = false;
  p.cardinality = 10;
  p.result_size = {1};
  const ParametricCostModel m2({p}, 100);
  EXPECT_TRUE(std::isinf(m2.LqCost(0)));
}

TEST(ParametricModelTest, EmulationIsCostlierThanNativeForLargeSets) {
  // The motivating fact for adaptivity: emulated semijoins blow up with |X|.
  SourceParams native;
  native.cardinality = 100;
  native.result_size = {10};
  SourceParams emulated = native;
  emulated.capabilities.semijoin = SemijoinSupport::kPassedBindingsOnly;
  const ParametricCostModel m({native, emulated}, 1000);
  const SetEstimate big = SetEstimate::Approx(500);
  EXPECT_LT(m.SjqCost(0, 0, big), m.SjqCost(0, 1, big));
}

// Subadditivity is required by the paper's cost model (Section 2.4).
class SubadditivityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SubadditivityTest, HoldsForAllCapabilityKinds) {
  const auto [cap_kind, x_size] = GetParam();
  SourceParams p;
  p.capabilities.semijoin = static_cast<SemijoinSupport>(cap_kind);
  p.cardinality = 80;
  p.result_size = {15};
  p.network.query_overhead = 7;
  p.network.cost_per_item_sent = 0.8;
  p.network.cost_per_item_received = 1.3;
  p.network.processing_per_tuple = 0.05;
  const ParametricCostModel m({p}, 500);
  EXPECT_TRUE(CheckSubadditivity(m, 0, 0, static_cast<double>(x_size)));
}

INSTANTIATE_TEST_SUITE_P(
    CapabilitiesAndSizes, SubadditivityTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 10, 100, 1000)));

// ---------------------------------------------------------------------------
// OracleCostModel exactness
// ---------------------------------------------------------------------------

TEST(OracleModelTest, SqMatchesTrueResultSizesAndCosts) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  const auto model =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // R1 has 2 dui items {J55, T80}.
  EXPECT_EQ(model->satisfying(0, 0).size(), 2u);
  const SetEstimate r = model->SqResult(0, 0);
  ASSERT_TRUE(r.is_exact());
  EXPECT_DOUBLE_EQ(model->SqCost(0, 0),
                   instance->simulated[0]->SelectCost(2));
}

TEST(OracleModelTest, SjqResultIsExactIntersection) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  const auto model =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(model.ok());
  // X = all dui items anywhere = {J55, T80, T21}; sp at R1 = {T21}.
  SetEstimate x = SetEstimate::Exact(
      ItemSet({Value("J55"), Value("T80"), Value("T21")}));
  const SetEstimate r = model->SjqResult(1, 0, x);
  ASSERT_TRUE(r.is_exact());
  EXPECT_EQ(r.exact->ToString(), "{'T21'}");
}

TEST(OracleModelTest, UniverseSizeIsDistinctMergeCount) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  const auto model =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(model.ok());
  // Figure 1 licenses: J55, T21, T80, T11, S07.
  EXPECT_DOUBLE_EQ(model->universe_size(), 5.0);
}

TEST(OracleModelTest, OracleParamsMatchOracleModelOnSq) {
  // The parametric model built from exact stats must agree with the oracle
  // model on selection costs (they share the cost formulas).
  SyntheticSpec spec;
  spec.universe_size = 500;
  spec.num_sources = 4;
  spec.num_conditions = 3;
  spec.seed = 3;
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const auto oracle =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(oracle.ok());
  const auto parametric =
      OracleParametricModel(instance->simulated, instance->query);
  ASSERT_TRUE(parametric.ok());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(oracle->SqCost(i, j), parametric->SqCost(i, j))
          << "cond " << i << " source " << j;
    }
  }
  EXPECT_DOUBLE_EQ(oracle->universe_size(), parametric->universe_size());
}

// ---------------------------------------------------------------------------
// CostLedger: the merge path used by the parallel executor's sub-ledgers
// ---------------------------------------------------------------------------

Charge MakeCharge(const std::string& source, ChargeKind kind, double cost,
                  size_t sent = 0, size_t received = 0) {
  Charge charge;
  charge.source = source;
  charge.kind = kind;
  charge.detail = source + "-detail";
  charge.items_sent = sent;
  charge.items_received = received;
  charge.cost = cost;
  return charge;
}

TEST(CostLedgerTest, MergeFromMatchesSequentialAccumulationExactly) {
  // Costs chosen so floating-point addition order matters: merging must
  // replay charges in order, not add precomputed totals, or the final
  // total drifts from the sequential ledger's in the last ulp.
  const double costs[] = {0.1, 1e8, 0.2, -1e8, 0.3, 1e-9, 12.75};
  CostLedger sequential;
  std::vector<CostLedger> sub(3);
  for (size_t i = 0; i < std::size(costs); ++i) {
    const Charge charge = MakeCharge("s" + std::to_string(i % 3),
                                     ChargeKind::kSelect, costs[i], i, i + 1);
    sequential.Add(charge);
    sub[0].Add(charge);  // all into one sub-ledger: order preserved
  }
  CostLedger merged;
  for (CostLedger& ledger : sub) merged.MergeFrom(std::move(ledger));
  EXPECT_EQ(merged.num_queries(), sequential.num_queries());
  EXPECT_EQ(merged.total(), sequential.total());  // bitwise, not just near
  EXPECT_EQ(merged.Report(), sequential.Report());
  EXPECT_EQ(merged.total_items_sent(), sequential.total_items_sent());
  EXPECT_EQ(merged.total_items_received(), sequential.total_items_received());
}

TEST(CostLedgerTest, MergeFromAppendsInArgumentOrder) {
  CostLedger a, b, merged;
  a.Add(MakeCharge("alpha", ChargeKind::kSelect, 1.5));
  a.Add(MakeCharge("alpha", ChargeKind::kSemiJoin, 2.5, 4, 2));
  b.Add(MakeCharge("beta", ChargeKind::kLoad, 10.0));
  merged.MergeFrom(std::move(a));
  merged.MergeFrom(std::move(b));
  ASSERT_EQ(merged.num_queries(), 3u);
  EXPECT_EQ(merged.charges()[0].source, "alpha");
  EXPECT_EQ(merged.charges()[1].kind, ChargeKind::kSemiJoin);
  EXPECT_EQ(merged.charges()[2].source, "beta");
  EXPECT_DOUBLE_EQ(merged.total(), 14.0);
  EXPECT_EQ(merged.total_items_sent(), 4u);
  EXPECT_EQ(merged.total_items_received(), 2u);
}

TEST(CostLedgerTest, MergeFromConsumesTheSourceLedger) {
  CostLedger from, into;
  from.Add(MakeCharge("s", ChargeKind::kSelect, 3.0));
  into.MergeFrom(std::move(from));
  // The moved-from ledger is left cleared, so accidentally merging a
  // sub-ledger twice cannot double-charge.
  EXPECT_EQ(from.num_queries(), 0u);
  EXPECT_DOUBLE_EQ(from.total(), 0.0);
  into.MergeFrom(std::move(from));
  EXPECT_EQ(into.num_queries(), 1u);
  EXPECT_DOUBLE_EQ(into.total(), 3.0);
}

TEST(CostLedgerTest, MergeFromEmptyIsANoOp) {
  CostLedger into, empty;
  into.Add(MakeCharge("s", ChargeKind::kFetchRecords, 7.0, 2, 2));
  const std::string before = into.Report();
  into.MergeFrom(std::move(empty));
  EXPECT_EQ(into.Report(), before);
  EXPECT_DOUBLE_EQ(into.total(), 7.0);
}

}  // namespace
}  // namespace fusion
