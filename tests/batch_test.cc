// Tests for the multi-query batch optimizer: cross-query selection reuse,
// greedy sequencing, and agreement between estimated savings and metered
// execution with the shared source-call cache.
#include <gtest/gtest.h>

#include <memory>

#include "cost/oracle_cost_model.h"
#include "exec/executor.h"
#include "exec/source_call_cache.h"
#include "optimizer/batch.h"
#include "optimizer/sja.h"
#include "relational/reference_evaluator.h"
#include "workload/dmv.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

/// A DMV investigation session: three queries sharing the dui and sp
/// conditions pairwise.
std::vector<FusionQuery> DmvBatch() {
  const Condition dui = Condition::Eq("V", Value("dui"));
  const Condition sp = Condition::Eq("V", Value("sp"));
  const Condition reckless = Condition::Eq("V", Value("reckless"));
  return {FusionQuery("L", {dui, sp}), FusionQuery("L", {dui, reckless}),
          FusionQuery("L", {sp, reckless})};
}

struct BatchFixture {
  SyntheticInstance instance;
  std::vector<FusionQuery> queries;
  std::vector<OracleCostModel> models;
  std::vector<const CostModel*> model_ptrs;
};

BatchFixture MakeDmvFixture() {
  DmvSpec spec;
  spec.num_states = 8;
  spec.num_drivers = 600;
  spec.seed = 17;
  auto instance = GenerateDmv(spec);
  EXPECT_TRUE(instance.ok());
  BatchFixture fixture{std::move(instance).value(), DmvBatch(), {}, {}};
  for (const FusionQuery& q : fixture.queries) {
    auto model = OracleCostModel::Create(fixture.instance.simulated, q);
    EXPECT_TRUE(model.ok());
    fixture.models.push_back(std::move(model).value());
  }
  for (const OracleCostModel& m : fixture.models) {
    fixture.model_ptrs.push_back(&m);
  }
  return fixture;
}

TEST(BatchTest, SharedConditionsReduceEstimatedTotal) {
  BatchFixture fixture = MakeDmvFixture();
  const auto batch = OptimizeBatch(fixture.model_ptrs, fixture.queries);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->plans.size(), 3u);
  EXPECT_EQ(batch->order.size(), 3u);
  EXPECT_GT(batch->shared_selections, 0u);
  EXPECT_LT(batch->estimated_total, batch->estimated_independent);
}

TEST(BatchTest, PlansExecuteToCorrectAnswersWithSharedCache) {
  BatchFixture fixture = MakeDmvFixture();
  const auto batch = OptimizeBatch(fixture.model_ptrs, fixture.queries);
  ASSERT_TRUE(batch.ok());

  SourceCallCache cache;
  ExecOptions options;
  options.cache = &cache;
  double metered_total = 0;
  for (size_t idx : batch->order) {
    const auto report = ExecutePlan(batch->plans[idx].plan,
                                    fixture.instance.catalog,
                                    fixture.queries[idx], options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const ItemSet expected = *ReferenceFusionAnswer(
        RelationsOf(fixture.instance), "L",
        fixture.queries[idx].conditions());
    EXPECT_EQ(report->answer, expected) << "query " << idx;
    metered_total += report->ledger.total();
  }
  // The estimated batch total matches the cache-assisted metered total
  // (oracle model; reuse realized by the cache).
  EXPECT_NEAR(metered_total, batch->estimated_total,
              1e-6 * (1 + batch->estimated_total));
  EXPECT_GT(cache.hits(), 0u);
}

TEST(BatchTest, DisjointQueriesGainNothing) {
  SyntheticSpec spec;
  spec.universe_size = 300;
  spec.num_sources = 3;
  spec.num_conditions = 2;
  spec.selectivity = {0.1, 0.2};
  spec.seed = 5;
  auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  // Two queries over disjoint flag conditions (A1∧A2 vs NOT A1 ∧ NOT A2).
  const FusionQuery q1 = instance->query;
  const FusionQuery q2(
      "M", {Condition::Eq("A1", Value(int64_t{0})),
            Condition::Eq("A2", Value(int64_t{0}))});
  auto m1 = OracleCostModel::Create(instance->simulated, q1);
  auto m2 = OracleCostModel::Create(instance->simulated, q2);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  const auto batch = OptimizeBatch({&*m1, &*m2}, {q1, q2});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->shared_selections, 0u);
  EXPECT_NEAR(batch->estimated_total, batch->estimated_independent,
              1e-6 * (1 + batch->estimated_independent));
}

TEST(BatchTest, IdenticalQueriesSecondIsNearlyFree) {
  BatchFixture fixture = MakeDmvFixture();
  std::vector<FusionQuery> twice = {fixture.queries[0], fixture.queries[0]};
  auto m = OracleCostModel::Create(fixture.instance.simulated, twice[0]);
  ASSERT_TRUE(m.ok());
  const auto batch = OptimizeBatch({&*m, &*m}, twice);
  ASSERT_TRUE(batch.ok());
  // The repeat costs at most the semijoin traffic of its plan; with an
  // all-selection plan it is exactly free.
  EXPECT_LE(batch->estimated_total,
            batch->estimated_independent * 0.75);
}

TEST(BatchTest, RejectsMismatchedInputs) {
  BatchFixture fixture = MakeDmvFixture();
  EXPECT_FALSE(OptimizeBatch({}, {}).ok());
  EXPECT_FALSE(
      OptimizeBatch({fixture.model_ptrs[0]}, fixture.queries).ok());
}

}  // namespace
}  // namespace fusion
