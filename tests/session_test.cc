// Tests for session-level machinery: the source-call cache (runtime CSE)
// and the fusiongen catalog export / fusionq import round trip.
#include <gtest/gtest.h>

#include <cstdlib>

#include "cli/catalog_config.h"
#include "cli/catalog_export.h"
#include "cost/oracle_cost_model.h"
#include "exec/executor.h"
#include "exec/source_call_cache.h"
#include "mediator/mediator.h"
#include "optimizer/filter.h"
#include "optimizer/spj_baseline.h"
#include "relational/reference_evaluator.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

SyntheticInstance SmallInstance(uint64_t seed) {
  SyntheticSpec spec;
  spec.universe_size = 300;
  spec.num_sources = 3;
  spec.num_conditions = 2;
  spec.selectivity = {0.1, 0.3};
  spec.seed = seed;
  auto instance = GenerateSynthetic(spec);
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

// ---------------------------------------------------------------------------
// SourceCallCache
// ---------------------------------------------------------------------------

TEST(SourceCallCacheTest, LookupInsertAndStats) {
  SourceCallCache cache;
  EXPECT_EQ(cache.Lookup(0, "V = 'dui'"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(0, "V = 'dui'", ItemSet({Value("J55")}));
  const std::shared_ptr<const ItemSet> hit = cache.Lookup(0, "V = 'dui'");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->ToString(), "{'J55'}");
  EXPECT_EQ(cache.hits(), 1u);
  // Different source index: separate entry.
  EXPECT_EQ(cache.Lookup(1, "V = 'dui'"), nullptr);
  EXPECT_EQ(cache.entries(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(SourceCallCacheTest, SecondExecutionIsFree) {
  const SyntheticInstance instance = SmallInstance(4);
  const auto model =
      OracleCostModel::Create(instance.simulated, instance.query);
  ASSERT_TRUE(model.ok());
  const auto filter = OptimizeFilter(*model);
  ASSERT_TRUE(filter.ok());

  SourceCallCache cache;
  ExecOptions options;
  options.cache = &cache;
  const auto first =
      ExecutePlan(filter->plan, instance.catalog, instance.query, options);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->ledger.total(), 0.0);

  const auto second =
      ExecutePlan(filter->plan, instance.catalog, instance.query, options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->answer, first->answer);
  // Every selection served from the memo: nothing metered.
  EXPECT_DOUBLE_EQ(second->ledger.total(), 0.0);
  EXPECT_GT(cache.hits(), 0u);
}

TEST(SourceCallCacheTest, CachedRunsKeepWitnessKnowledge) {
  const SyntheticInstance instance = SmallInstance(6);
  const auto model =
      OracleCostModel::Create(instance.simulated, instance.query);
  ASSERT_TRUE(model.ok());
  const auto filter = OptimizeFilter(*model);
  ASSERT_TRUE(filter.ok());
  SourceCallCache cache;
  ExecOptions options;
  options.cache = &cache;
  const auto warm =
      ExecutePlan(filter->plan, instance.catalog, instance.query, options);
  ASSERT_TRUE(warm.ok());
  const auto cached =
      ExecutePlan(filter->plan, instance.catalog, instance.query, options);
  ASSERT_TRUE(cached.ok());
  // per_source_items must match between the metered and the cached run, so
  // witness-based fetch planning keeps working on cache hits.
  ASSERT_EQ(cached->per_source_items.size(), warm->per_source_items.size());
  for (size_t j = 0; j < warm->per_source_items.size(); ++j) {
    EXPECT_EQ(cached->per_source_items[j], warm->per_source_items[j]);
  }
}

TEST(SourceCallCacheTest, RecoversSpjBaselineCseAtRuntime) {
  // The no-CSE SPJ-union baseline re-issues identical selections; a shared
  // cache recovers the savings at execution time.
  const SyntheticInstance instance = SmallInstance(7);
  const auto model =
      OracleCostModel::Create(instance.simulated, instance.query);
  ASSERT_TRUE(model.ok());
  const auto baseline = SpjUnionBaseline(*model, false);
  ASSERT_TRUE(baseline.ok());

  const auto plain =
      ExecutePlan(baseline->plan, instance.catalog, instance.query);
  ASSERT_TRUE(plain.ok());

  SourceCallCache cache;
  ExecOptions options;
  options.cache = &cache;
  const auto cached =
      ExecutePlan(baseline->plan, instance.catalog, instance.query, options);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->answer, plain->answer);
  EXPECT_LT(cached->ledger.total(), plain->ledger.total());
  EXPECT_GT(cache.hits(), 0u);
}

TEST(SourceCallCacheTest, DistinctConditionsDoNotCollide) {
  SourceCallCache cache;
  cache.Insert(0, "A1 = 1", ItemSet({Value(int64_t{1})}));
  cache.Insert(0, "A1 = 2", ItemSet({Value(int64_t{2})}));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.Lookup(0, "A1 = 1")->ToString(), "{1}");
  EXPECT_EQ(cache.Lookup(0, "A1 = 2")->ToString(), "{2}");
}

// ---------------------------------------------------------------------------
// Catalog export round trip
// ---------------------------------------------------------------------------

class CatalogExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fusion_export_test";
    ASSERT_EQ(std::system(("rm -rf " + dir_ + " && mkdir -p " + dir_).c_str()),
              0);
  }
  std::string dir_;
};

TEST_F(CatalogExportTest, RoundTripsThroughLoadCatalog) {
  SyntheticSpec spec;
  spec.universe_size = 200;
  spec.num_sources = 3;
  spec.num_conditions = 2;
  spec.frac_native_semijoin = 0.34;
  spec.frac_passed_bindings = 0.33;
  spec.seed = 11;
  auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const FusionQuery query = instance->query;
  const ItemSet expected = *ReferenceFusionAnswer(
      RelationsOf(*instance), "M", query.conditions());

  ASSERT_TRUE(ExportCatalog(instance->catalog, dir_).ok());
  auto loaded = LoadCatalogFromFile(dir_ + "/catalog.ini");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);

  // Profiles and capabilities survive the round trip.
  for (size_t j = 0; j < 3; ++j) {
    const SimulatedSource* original = instance->simulated[j];
    const SimulatedSource* back = loaded->source(j).AsSimulated();
    ASSERT_NE(back, nullptr);
    EXPECT_EQ(back->name(), original->name());
    EXPECT_EQ(back->capabilities().semijoin,
              original->capabilities().semijoin);
    EXPECT_NEAR(back->network().query_overhead,
                original->network().query_overhead, 1e-9);
    EXPECT_NEAR(back->network().cost_per_item_sent,
                original->network().cost_per_item_sent, 1e-9);
    EXPECT_EQ(back->relation().size(), original->relation().size());
  }

  // And queries answer identically.
  Mediator mediator(std::move(loaded).value());
  MediatorOptions options;
  options.statistics = StatisticsMode::kOracle;
  const auto answer = mediator.Answer(query, options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items, expected);
}

TEST_F(CatalogExportTest, RejectsEmptyCatalog) {
  SourceCatalog empty;
  EXPECT_FALSE(ExportCatalog(empty, dir_).ok());
}

TEST_F(CatalogExportTest, FailsOnUnwritableDirectory) {
  SyntheticSpec spec;
  spec.universe_size = 50;
  spec.num_sources = 1;
  spec.num_conditions = 1;
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  EXPECT_FALSE(
      ExportCatalog(instance->catalog, "/nonexistent/dir/xyz").ok());
}

}  // namespace
}  // namespace fusion
