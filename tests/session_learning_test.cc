// Tests for QuerySession: cross-query caching, statistics learned from
// execution feedback, and regret shrinking toward the oracle plan as the
// session observes the federation.
#include <gtest/gtest.h>

#include "cost/oracle_cost_model.h"
#include "mediator/session.h"
#include "optimizer/sja.h"
#include "relational/reference_evaluator.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

SyntheticInstance MakeInstance(uint64_t seed) {
  SyntheticSpec spec;
  spec.universe_size = 800;
  spec.num_sources = 5;
  spec.num_conditions = 3;
  spec.coverage = 0.4;
  spec.selectivity = {0.03, 0.3, 0.4};
  spec.selectivity_jitter = 0.6;
  spec.frac_native_semijoin = 0.7;
  spec.frac_passed_bindings = 0.3;
  spec.seed = seed;
  auto instance = GenerateSynthetic(spec);
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

TEST(QuerySessionTest, AnswersAreCorrectFromTheFirstQuery) {
  SyntheticInstance instance = MakeInstance(3);
  const FusionQuery query = instance.query;
  const ItemSet expected = *ReferenceFusionAnswer(
      RelationsOf(instance), "M", query.conditions());
  QuerySession session(Mediator(std::move(instance.catalog)), {});
  const auto answer = session.Answer(query);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items, expected);
  EXPECT_GT(session.observed_conditions(), 0u);
}

TEST(QuerySessionTest, RepeatedQueryIsServedFromTheCache) {
  SyntheticInstance instance = MakeInstance(4);
  const FusionQuery query = instance.query;
  QuerySession session(Mediator(std::move(instance.catalog)), {});
  const auto first = session.Answer(query);
  const auto second = session.Answer(query);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->items, second->items);
  EXPECT_LE(second->execution.ledger.total(),
            first->execution.ledger.total());
  EXPECT_GT(session.cache().hits(), 0u);
}

TEST(QuerySessionTest, LearnedStatisticsImproveLaterPlans) {
  // First query runs on priors (default selectivity 0.2 for everything);
  // after observing the true sizes, the session should pick a plan at or
  // near the oracle optimum for a fresh query over the same conditions.
  SyntheticInstance instance = MakeInstance(5);
  const FusionQuery query = instance.query;
  const auto oracle =
      OracleCostModel::Create(instance.simulated, instance.query);
  ASSERT_TRUE(oracle.ok());
  const auto oracle_opt = OptimizeSja(*oracle);
  ASSERT_TRUE(oracle_opt.ok());
  const double oracle_cost = oracle_opt->estimated_cost;

  QuerySession::Options options;
  options.strategy = OptimizerStrategy::kSja;
  // Plan cache-obliviously: this test scores the *learned-statistics* plan
  // against the oracle optimum, and cache-aware re-pricing would swap in a
  // warm-cache plan that looks expensive under the (cache-free) oracle.
  options.cache_aware_optimization = false;
  QuerySession session(Mediator(std::move(instance.catalog)), options);

  const auto first = session.Answer(query);
  ASSERT_TRUE(first.ok());
  const double first_cost = first->execution.ledger.total();

  // Warmed statistics; disable the literal result cache to isolate the
  // *planning* improvement (new session would share stats, so instead
  // compare the plan the session now picks against the oracle).
  const auto second = session.Answer(query);
  ASSERT_TRUE(second.ok());
  // Second run costs no more than the first (cache) ...
  EXPECT_LE(second->execution.ledger.total(), first_cost + 1e-9);
  // ... and the session's *chosen structure* is now oracle-grade: its
  // estimated cost under the oracle model matches the oracle optimum
  // within a small factor.
  // Feedback is partial — pairs the first plan evaluated by semijoin stay
  // unobserved — so oracle parity (or even strict monotone improvement) is
  // not guaranteed; near-optimality is the contract.
  const auto rebuilt = BuildStructuredPlan(
      *oracle, second->optimized.structure, {}, false);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_LE(rebuilt->total_cost, oracle_cost * 1.3 + 1e-9)
      << "after feedback the session plan should be near oracle-optimal";
}

TEST(QuerySessionTest, LearningHelpsAcrossOverlappingQueries) {
  // Queries share condition c1; observing it in query 1 improves query 2's
  // planning even though query 2 itself was never run.
  SyntheticInstance instance = MakeInstance(6);
  const Condition c1 = instance.query.conditions()[0];
  const Condition c2 = instance.query.conditions()[1];
  const Condition c3 = instance.query.conditions()[2];
  const FusionQuery q1("M", {c1, c2});
  const FusionQuery q2("M", {c1, c3});
  const ItemSet expected2 = *ReferenceFusionAnswer(
      RelationsOf(instance), "M", q2.conditions());

  QuerySession session(Mediator(std::move(instance.catalog)), {});
  ASSERT_TRUE(session.Answer(q1).ok());
  const size_t seen_after_q1 = session.observed_conditions();
  EXPECT_GT(seen_after_q1, 0u);
  const auto a2 = session.Answer(q2);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->items, expected2);
  EXPECT_GT(session.observed_conditions(), seen_after_q1);
}

TEST(QuerySessionTest, SqlEntryPointAndValidation) {
  SyntheticInstance instance = MakeInstance(7);
  QuerySession session(Mediator(std::move(instance.catalog)), {});
  const auto bad = session.AnswerSql("SELECT nope");
  EXPECT_FALSE(bad.ok());
  const auto good = session.AnswerSql(
      "SELECT a.M FROM U a, U b WHERE a.M = b.M AND a.A1 = 1 AND b.A2 = 1");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
}

}  // namespace
}  // namespace fusion
