// Concurrency test suite for the parallel plan executor (run it under TSan
// via -DFUSION_SANITIZE=thread, see README.md):
//   - equivalence: for a matrix of plan shapes, parallel execution at any
//     worker count reproduces sequential answers, emulation counts, witness
//     sets, and the ledger charge-for-charge;
//   - retry/flake determinism: interleaved attempts against FlakySources
//     lose no retries and stay byte-deterministic under a fixed seed;
//   - single-flight: concurrent identical selections through a shared
//     SourceCallCache cost exactly one source call;
//   - makespan: with simulated per-cost latencies, measured wall clock
//     tracks ComputeResponseTime's critical path, not the sequential sum.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "exec/source_call_cache.h"
#include "mediator/mediator.h"
#include "plan/response_time.h"
#include "relational/reference_evaluator.h"
#include "source/flaky_source.h"
#include "source/simulated_source.h"
#include "workload/dmv.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

// ---------------------------------------------------------------------------
// Plan matrix over the Figure 1 instance
// ---------------------------------------------------------------------------

Plan FilterPlan() {
  Plan plan;
  std::vector<int> dui, sp;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSelect(1, j));
  const int u2 = plan.EmitUnion(sp, "U2");
  plan.SetResult(plan.EmitIntersect({x1, u2}, "X2"));
  return plan;
}

Plan SemijoinPlan() {
  Plan plan;
  std::vector<int> dui;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  std::vector<int> sp;
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSemiJoin(1, j, x1));
  plan.SetResult(plan.EmitUnion(sp, "X2"));
  return plan;
}

Plan DifferencePrunedPlan() {
  Plan plan;
  std::vector<int> dui;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  const int y1 = plan.EmitSemiJoin(1, 0, x1, "Y1");
  const int p1 = plan.EmitDifference(x1, y1, "P1");
  const int y2 = plan.EmitSemiJoin(1, 1, p1, "Y2");
  const int p2 = plan.EmitDifference(p1, y2, "P2");
  const int y3 = plan.EmitSemiJoin(1, 2, p2, "Y3");
  plan.SetResult(plan.EmitUnion({y1, y2, y3}, "X2"));
  return plan;
}

Plan LoadPlan() {
  Plan plan;
  const int y = plan.EmitLoad(2, "Y3");
  const int a0 = plan.EmitSelect(0, 0);
  const int a1 = plan.EmitSelect(0, 1);
  const int a2 = plan.EmitLocalSelect(0, y, "X13");
  const int x1 = plan.EmitUnion({a0, a1, a2}, "X1");
  const int b0 = plan.EmitSelect(1, 0);
  const int b1 = plan.EmitSelect(1, 1);
  const int b2 = plan.EmitLocalSelect(1, y, "X23");
  const int u2 = plan.EmitUnion({b0, b1, b2}, "U2");
  plan.SetResult(plan.EmitIntersect({x1, u2}, "X2"));
  return plan;
}

/// Asserts that a parallel report is indistinguishable from the sequential
/// one: answer, emulation count, witness knowledge, per-op costs, and the
/// ledger charge-for-charge (Report() prints every charge in order, so
/// string equality is the strongest practical check — even floating-point
/// totals must agree because both sides accumulate in plan-op order).
void ExpectSameExecution(const ExecutionReport& seq,
                         const ExecutionReport& par) {
  EXPECT_EQ(seq.answer, par.answer);
  EXPECT_EQ(seq.emulated_semijoins, par.emulated_semijoins);
  EXPECT_EQ(seq.ledger.Report(), par.ledger.Report());
  EXPECT_DOUBLE_EQ(seq.ledger.total(), par.ledger.total());
  ASSERT_EQ(seq.per_op_cost.size(), par.per_op_cost.size());
  for (size_t k = 0; k < seq.per_op_cost.size(); ++k) {
    EXPECT_NEAR(seq.per_op_cost[k], par.per_op_cost[k],
                1e-9 * (1.0 + seq.per_op_cost[k]))
        << "op " << k;
  }
  ASSERT_EQ(seq.per_source_items.size(), par.per_source_items.size());
  for (size_t j = 0; j < seq.per_source_items.size(); ++j) {
    EXPECT_EQ(seq.per_source_items[j], par.per_source_items[j])
        << "source " << j;
  }
}

TEST(ParallelExecTest, MatchesSequentialAcrossPlanMatrix) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  const Plan plans[] = {FilterPlan(), SemijoinPlan(), DifferencePrunedPlan(),
                        LoadPlan()};
  for (size_t p = 0; p < std::size(plans); ++p) {
    const auto seq =
        ExecutePlan(plans[p], instance->catalog, instance->query);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    for (const int parallelism : {1, 2, 8}) {
      ExecOptions options;
      options.parallelism = parallelism;
      const auto par =
          ExecutePlan(plans[p], instance->catalog, instance->query, options);
      ASSERT_TRUE(par.ok())
          << "plan " << p << " parallelism " << parallelism << ": "
          << par.status().ToString();
      SCOPED_TRACE("plan " + std::to_string(p) + " parallelism " +
                   std::to_string(parallelism));
      ExpectSameExecution(*seq, *par);
      EXPECT_EQ(par->answer.ToString(), "{'J55', 'T21'}");
    }
  }
}

TEST(ParallelExecTest, MatchesSequentialWithEmulatedSemijoins) {
  SyntheticSpec spec;
  spec.universe_size = 200;
  spec.num_sources = 3;
  spec.num_conditions = 2;
  spec.coverage = 0.6;
  spec.frac_native_semijoin = 0.0;
  spec.frac_passed_bindings = 1.0;  // every semijoin is emulated
  spec.seed = 21;
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());

  Plan plan;
  std::vector<int> c1;
  for (int j = 0; j < 3; ++j) c1.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(c1, "X1");
  std::vector<int> c2;
  for (int j = 0; j < 3; ++j) c2.push_back(plan.EmitSemiJoin(1, j, x1));
  plan.SetResult(plan.EmitUnion(c2, "X2"));

  const auto seq = ExecutePlan(plan, instance->catalog, instance->query);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(seq->emulated_semijoins, 3u);
  for (const int parallelism : {2, 8}) {
    ExecOptions options;
    options.parallelism = parallelism;
    const auto par =
        ExecutePlan(plan, instance->catalog, instance->query, options);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    SCOPED_TRACE("parallelism " + std::to_string(parallelism));
    ExpectSameExecution(*seq, *par);
  }
  // And the answer is the true fusion answer for this shape: every source
  // sees both conditions.
  const ItemSet expected = *ReferenceFusionAnswer(
      RelationsOf(*instance), "M", instance->query.conditions());
  EXPECT_EQ(seq->answer, expected);
}

TEST(ParallelExecTest, MatchesSequentialOnOptimizedPlans) {
  // Whatever shape the optimizers produce (SJA+ emits differences and loads
  // when they pay off), parallel execution must agree with sequential.
  for (const uint64_t seed : {0u, 1u, 2u, 3u, 4u}) {
    SyntheticSpec spec;
    spec.universe_size = 300;
    spec.num_sources = 4;
    spec.num_conditions = 3;
    spec.coverage = 0.4;
    spec.frac_native_semijoin = 0.7;
    spec.frac_passed_bindings = 0.3;
    spec.seed = seed;
    auto instance = GenerateSynthetic(spec);
    ASSERT_TRUE(instance.ok());
    Mediator mediator(std::move(instance->catalog));
    MediatorOptions options;
    options.strategy = OptimizerStrategy::kSjaPlus;
    options.statistics = StatisticsMode::kOracle;
    const auto opt = mediator.Optimize(instance->query, options);
    ASSERT_TRUE(opt.ok()) << opt.status().ToString();

    const auto seq =
        ExecutePlan(opt->plan, mediator.catalog(), instance->query);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    ExecOptions exec;
    exec.parallelism = 8;
    const auto par =
        ExecutePlan(opt->plan, mediator.catalog(), instance->query, exec);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExpectSameExecution(*seq, *par);
  }
}

TEST(ParallelExecTest, MediatorPlumbsParallelismThrough) {
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  Mediator mediator(std::move(instance->catalog));
  MediatorOptions options;
  options.statistics = StatisticsMode::kOracle;
  const auto sequential = mediator.Answer(instance->query, options);
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
  options.execution.parallelism = 4;
  const auto parallel = mediator.Answer(instance->query, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(parallel->items.ToString(), "{'J55', 'T21'}");
  ExpectSameExecution(sequential->execution, parallel->execution);
}

TEST(ParallelExecTest, UnsupportedSemijoinStillFailsCleanly) {
  SyntheticSpec spec;
  spec.universe_size = 50;
  spec.num_sources = 2;
  spec.num_conditions = 2;
  spec.frac_native_semijoin = 0.0;
  spec.frac_passed_bindings = 0.0;  // no semijoin capability at all
  spec.seed = 5;
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  const int b = plan.EmitSelect(0, 1);  // independent work for the workers
  const int s = plan.EmitSemiJoin(1, 1, a);
  plan.SetResult(plan.EmitUnion({b, s}));
  ExecOptions options;
  options.parallelism = 4;
  const auto report =
      ExecutePlan(plan, instance->catalog, instance->query, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// Flaky sources: interleaved retries stay deterministic
// ---------------------------------------------------------------------------

struct FlakyFederation {
  SourceCatalog catalog;
  FusionQuery query;
  std::vector<const FlakySource*> flaky;  // borrowed views
};

/// Builds a flaky-decorated copy of a deterministic synthetic federation.
/// Two invocations with the same arguments produce byte-identical twins, so
/// a parallel run can be compared against a sequential run of its twin.
FlakyFederation BuildFlakyFederation(double failure_probability) {
  SyntheticSpec spec;
  spec.universe_size = 150;
  spec.num_sources = 4;
  spec.num_conditions = 2;
  spec.coverage = 0.5;
  spec.frac_native_semijoin = 0.5;
  spec.frac_passed_bindings = 0.5;  // emulated probes retry individually
  spec.seed = 77;
  auto instance = GenerateSynthetic(spec);
  EXPECT_TRUE(instance.ok());
  FlakyFederation out;
  out.query = instance->query;
  for (size_t j = 0; j < spec.num_sources; ++j) {
    const SimulatedSource* sim = instance->catalog.source(j).AsSimulated();
    EXPECT_NE(sim, nullptr);
    FlakySource::Options options;
    options.failure_probability = failure_probability;
    // Generous retry budget: with p=0.2 and 10 attempts the chance of any
    // call exhausting its retries is ~1e-7, so runs are reliably identical.
    options.seed = 1000 + j;
    auto flaky = std::make_unique<FlakySource>(
        std::make_unique<SimulatedSource>(*sim), options);
    out.flaky.push_back(flaky.get());
    EXPECT_TRUE(out.catalog.Add(std::move(flaky)).ok());
  }
  return out;
}

Plan FlakyStressPlan() {
  // sq fan-out, a semijoin chain with a difference, and an intersect join:
  // every op kind whose retries can interleave.
  Plan plan;
  std::vector<int> c1;
  for (int j = 0; j < 4; ++j) c1.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(c1, "X1");
  const int y1 = plan.EmitSemiJoin(1, 0, x1, "Y1");
  const int p1 = plan.EmitDifference(x1, y1, "P1");
  const int y2 = plan.EmitSemiJoin(1, 1, p1, "Y2");
  const int y3 = plan.EmitSemiJoin(1, 2, x1, "Y3");
  plan.SetResult(plan.EmitUnion({y1, y2, y3}, "X2"));
  return plan;
}

TEST(ParallelExecStressTest, HundredFlakyExecutionsMatchSequentialTwin) {
  constexpr int kExecutions = 100;
  constexpr double kFailureProbability = 0.2;
  FlakyFederation parallel_fed = BuildFlakyFederation(kFailureProbability);
  FlakyFederation sequential_fed = BuildFlakyFederation(kFailureProbability);
  const Plan plan = FlakyStressPlan();

  ExecOptions par_options;
  par_options.parallelism = 8;
  par_options.retry.max_attempts = 10;
  ExecOptions seq_options;
  seq_options.retry.max_attempts = 10;

  for (int i = 0; i < kExecutions; ++i) {
    const auto par =
        ExecutePlan(plan, parallel_fed.catalog, parallel_fed.query,
                    par_options);
    const auto seq =
        ExecutePlan(plan, sequential_fed.catalog, sequential_fed.query,
                    seq_options);
    ASSERT_TRUE(par.ok()) << "execution " << i << ": "
                          << par.status().ToString();
    ASSERT_TRUE(seq.ok()) << "execution " << i << ": "
                          << seq.status().ToString();
    SCOPED_TRACE("execution " + std::to_string(i));
    // Deterministic answers AND deterministic accounting: the ledger carries
    // every failed attempt's wasted round trip, so equality here means no
    // retry was lost or double-counted under interleaving.
    ExpectSameExecution(*seq, *par);
  }
  // The failure streams themselves must line up call-for-call.
  size_t total_attempts = 0, total_failures = 0;
  for (size_t j = 0; j < parallel_fed.flaky.size(); ++j) {
    EXPECT_EQ(parallel_fed.flaky[j]->calls_attempted(),
              sequential_fed.flaky[j]->calls_attempted())
        << "source " << j;
    EXPECT_EQ(parallel_fed.flaky[j]->calls_failed(),
              sequential_fed.flaky[j]->calls_failed())
        << "source " << j;
    total_attempts += parallel_fed.flaky[j]->calls_attempted();
    total_failures += parallel_fed.flaky[j]->calls_failed();
  }
  EXPECT_GT(total_failures, 0u) << "stress test injected no failures at all";
  EXPECT_GT(total_attempts, total_failures);
}

TEST(ParallelExecStressTest, SharedCacheNeverDoubleCharges) {
  // Repeated executions through one shared cache: after the first run every
  // selection is a hit, and hits must charge nothing — in any mode.
  constexpr int kExecutions = 50;
  FlakyFederation parallel_fed = BuildFlakyFederation(0.0);
  FlakyFederation sequential_fed = BuildFlakyFederation(0.0);
  const Plan plan = FlakyStressPlan();

  SourceCallCache par_cache, seq_cache;
  ExecOptions par_options;
  par_options.parallelism = 8;
  par_options.cache = &par_cache;
  ExecOptions seq_options;
  seq_options.cache = &seq_cache;

  for (int i = 0; i < kExecutions; ++i) {
    const auto par = ExecutePlan(plan, parallel_fed.catalog,
                                 parallel_fed.query, par_options);
    const auto seq = ExecutePlan(plan, sequential_fed.catalog,
                                 sequential_fed.query, seq_options);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    SCOPED_TRACE("execution " + std::to_string(i));
    ExpectSameExecution(*seq, *par);
  }
  EXPECT_EQ(par_cache.hits(), seq_cache.hits());
  EXPECT_EQ(par_cache.misses(), seq_cache.misses());
  // Each distinct selection hit the source exactly once across all 50 runs.
  for (size_t j = 0; j < parallel_fed.flaky.size(); ++j) {
    EXPECT_EQ(parallel_fed.flaky[j]->calls_attempted(),
              sequential_fed.flaky[j]->calls_attempted())
        << "source " << j;
  }
}

// ---------------------------------------------------------------------------
// Single-flight deduplication
// ---------------------------------------------------------------------------

/// Decorator that makes Select slow and counts invocations — slow enough
/// that two racing executions reliably overlap in the flight window.
class SlowCountingSource : public SourceWrapper {
 public:
  SlowCountingSource(std::unique_ptr<SourceWrapper> inner,
                     std::atomic<int>* select_calls)
      : inner_(std::move(inner)), select_calls_(select_calls) {}

  const std::string& name() const override { return inner_->name(); }
  const Schema& schema() const override { return inner_->schema(); }
  const Capabilities& capabilities() const override {
    return inner_->capabilities();
  }

  Result<ItemSet> Select(const Condition& cond,
                         const std::string& merge_attribute,
                         CostLedger* ledger) override {
    select_calls_->fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    return inner_->Select(cond, merge_attribute, ledger);
  }
  Result<ItemSet> SemiJoin(const Condition& cond,
                           const std::string& merge_attribute,
                           const ItemSet& candidates,
                           CostLedger* ledger) override {
    return inner_->SemiJoin(cond, merge_attribute, candidates, ledger);
  }
  Result<Relation> Load(CostLedger* ledger) override {
    return inner_->Load(ledger);
  }
  Result<Relation> FetchRecords(const std::string& merge_attribute,
                                const ItemSet& items,
                                CostLedger* ledger) override {
    return inner_->FetchRecords(merge_attribute, items, ledger);
  }

 private:
  std::unique_ptr<SourceWrapper> inner_;
  std::atomic<int>* select_calls_;
};

TEST(SingleFlightTest, ConcurrentIdenticalSelectionsCostOneSourceCall) {
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  std::atomic<int> select_calls{0};
  SourceCatalog catalog;
  for (size_t j = 0; j < 3; ++j) {
    const SimulatedSource* sim = instance->catalog.source(j).AsSimulated();
    ASSERT_NE(sim, nullptr);
    ASSERT_TRUE(catalog
                    .Add(std::make_unique<SlowCountingSource>(
                        std::make_unique<SimulatedSource>(*sim),
                        &select_calls))
                    .ok());
  }
  Plan plan;
  plan.SetResult(plan.EmitSelect(0, 0));  // one selection: sq(c1, R1)

  SourceCallCache cache;
  ExecOptions options;
  options.cache = &cache;
  // Two whole executions race on the same cache: the slower one must ride
  // the faster one's in-flight call rather than issuing its own.
  Status statuses[2];
  ItemSet answers[2];
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      const auto report =
          ExecutePlan(plan, catalog, instance->query, options);
      statuses[t] = report.status();
      if (report.ok()) answers[t] = report->answer;
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_TRUE(statuses[0].ok()) << statuses[0].ToString();
  ASSERT_TRUE(statuses[1].ok()) << statuses[1].ToString();
  EXPECT_EQ(answers[0], answers[1]);
  EXPECT_EQ(select_calls.load(), 1)
      << "identical concurrent selections must be deduplicated into a "
         "single in-flight source call";
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SingleFlightTest, AbandonedFlightPromotesAWaiter) {
  // The leader's call fails; a waiter must be promoted and retry the source
  // rather than inheriting the failure or deadlocking.
  SourceCallCache cache;
  std::atomic<int> fulfilled{0};
  std::thread leader([&] {
    auto flight = cache.BeginFlight(0, "c");
    ASSERT_EQ(flight.cached(), nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // Dropping the guard without Fulfill = the source call failed.
  });
  std::thread waiter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    auto flight = cache.BeginFlight(0, "c");
    if (flight.cached() == nullptr) {
      flight.Fulfill(ItemSet({Value("x")}));
      fulfilled.fetch_add(1);
    }
  });
  leader.join();
  waiter.join();
  EXPECT_EQ(fulfilled.load(), 1);
  const std::shared_ptr<const ItemSet> entry = cache.Lookup(0, "c");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->ToString(), "{'x'}");
}

// ---------------------------------------------------------------------------
// Measured makespan
// ---------------------------------------------------------------------------

TEST(ParallelExecTest, MeasuredMakespanTracksCriticalPathNotTotalWork) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  const Plan plan = FilterPlan();
  ExecOptions options;
  options.simulated_seconds_per_cost = 2e-3;  // each op sleeps ~2ms/cost-unit

  const auto seq = ExecutePlan(plan, instance->catalog, instance->query,
                               options);
  ASSERT_TRUE(seq.ok());
  options.parallelism = 4;
  const auto par = ExecutePlan(plan, instance->catalog, instance->query,
                               options);
  ASSERT_TRUE(par.ok());

  const auto theory = ComputeResponseTime(plan, par->per_op_cost);
  ASSERT_TRUE(theory.ok());
  ASSERT_GT(theory->response_time, 0.0);
  ASSERT_LT(theory->response_time, theory->total_work);

  // Sleeps are lower bounds, so the measured makespan can only exceed the
  // theoretical one; and parallel overlap must beat the sequential sum by a
  // wide margin (theory predicts ~2.6x on this plan — assert a loose 1.5x
  // so scheduler jitter and sanitizer overhead never flake the test).
  const double scale = options.simulated_seconds_per_cost;
  EXPECT_GE(par->wall_clock_makespan, 0.95 * theory->response_time * scale);
  EXPECT_GE(seq->wall_clock_makespan, 0.95 * theory->total_work * scale);
  EXPECT_LT(par->wall_clock_makespan, seq->wall_clock_makespan / 1.5)
      << "parallel execution failed to overlap independent source calls";
}

}  // namespace
}  // namespace fusion
