// Golden tests: exact textual form of the plans the structured builder
// produces for the paper's Figure 2 and Figure 5 shapes. These lock both
// the builder's op layout and the printer's paper notation — a change that
// shuffles steps or renames variables should be a conscious decision.
#include <gtest/gtest.h>

#include "cost/parametric_cost_model.h"
#include "optimizer/optimizer.h"

namespace fusion {
namespace {

ParametricCostModel Model(size_t m, size_t n) {
  SourceParams p;
  p.capabilities.semijoin = SemijoinSupport::kNative;
  p.cardinality = 100;
  p.result_size.assign(m, 10.0);
  std::vector<SourceParams> params(n, p);
  return ParametricCostModel(std::move(params), 1000);
}

TEST(GoldenPlanTest, Figure2aFilterPlan) {
  const ParametricCostModel model = Model(3, 2);
  const ConditionOrderPlan s = MakeStructure({0, 1, 2}, 2);
  const auto built = BuildStructuredPlan(model, s, {}, false);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->plan.ToString(),
            " 1) X11 := sq(c1, R1)\n"
            " 2) X12 := sq(c1, R2)\n"
            " 3) X1 := X11 ∪ X12\n"
            " 4) X21 := sq(c2, R1)\n"
            " 5) X22 := sq(c2, R2)\n"
            " 6) U2 := X21 ∪ X22\n"
            " 7) X2 := X1 ∩ U2\n"
            " 8) X31 := sq(c3, R1)\n"
            " 9) X32 := sq(c3, R2)\n"
            "10) U3 := X31 ∪ X32\n"
            "11) X3 := X2 ∩ U3\n"
            "result: X3\n");
}

TEST(GoldenPlanTest, Figure2bSemijoinPlan) {
  const ParametricCostModel model = Model(3, 2);
  ConditionOrderPlan s = MakeStructure({0, 1, 2}, 2);
  s.use_semijoin[1] = {true, true};
  const auto built = BuildStructuredPlan(model, s, {}, false);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->plan.ToString(),
            " 1) X11 := sq(c1, R1)\n"
            " 2) X12 := sq(c1, R2)\n"
            " 3) X1 := X11 ∪ X12\n"
            " 4) X21 := sjq(c2, R1, X1)\n"
            " 5) X22 := sjq(c2, R2, X1)\n"
            " 6) X2 := X21 ∪ X22\n"
            " 7) X31 := sq(c3, R1)\n"
            " 8) X32 := sq(c3, R2)\n"
            " 9) U3 := X31 ∪ X32\n"
            "10) X3 := X2 ∩ U3\n"
            "result: X3\n");
}

TEST(GoldenPlanTest, Figure2cSemijoinAdaptivePlan) {
  const ParametricCostModel model = Model(3, 2);
  ConditionOrderPlan s = MakeStructure({0, 1, 2}, 2);
  s.use_semijoin[1] = {true, false};  // sjq at R1, sq at R2
  const auto built = BuildStructuredPlan(model, s, {}, false);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->plan.ToString(),
            " 1) X11 := sq(c1, R1)\n"
            " 2) X12 := sq(c1, R2)\n"
            " 3) X1 := X11 ∪ X12\n"
            " 4) X22 := sq(c2, R2)\n"
            " 5) X21 := sjq(c2, R1, X1)\n"
            " 6) U2 := X22 ∪ X21\n"
            " 7) X2 := X1 ∩ U2\n"
            " 8) X31 := sq(c3, R1)\n"
            " 9) X32 := sq(c3, R2)\n"
            "10) U3 := X31 ∪ X32\n"
            "11) X3 := X2 ∩ U3\n"
            "result: X3\n");
}

TEST(GoldenPlanTest, Figure5LoadingAndDifference) {
  const ParametricCostModel model = Model(2, 3);
  ConditionOrderPlan s = MakeStructure({0, 1}, 3);
  s.use_semijoin[1] = {false, true, false};
  const auto built = BuildStructuredPlan(model, s, {false, false, true},
                                         /*use_difference=*/true);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->plan.ToString(),
            " 1) Y3 := lq(R3)\n"
            " 2) X11 := sq(c1, R1)\n"
            " 3) X12 := sq(c1, R2)\n"
            " 4) X13 := sq(c1, Y3)\n"
            " 5) X1 := X11 ∪ X12 ∪ X13\n"
            " 6) X21 := sq(c2, R1)\n"
            " 7) X23 := sq(c2, Y3)\n"
            " 8) U2 := X21 ∪ X23\n"
            " 9) C2 := X1 ∩ U2\n"
            "10) P2 := X1 − C2\n"
            "11) X22 := sjq(c2, R2, P2)\n"
            "12) X2 := C2 ∪ X22\n"
            "result: X2\n");
}

TEST(GoldenPlanTest, PureSemijoinDifferenceChain) {
  const ParametricCostModel model = Model(2, 3);
  ConditionOrderPlan s = MakeStructure({0, 1}, 3);
  s.use_semijoin[1] = {true, true, true};
  const auto built = BuildStructuredPlan(model, s, {}, true);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->plan.ToString(),
            " 1) X11 := sq(c1, R1)\n"
            " 2) X12 := sq(c1, R2)\n"
            " 3) X13 := sq(c1, R3)\n"
            " 4) X1 := X11 ∪ X12 ∪ X13\n"
            " 5) X21 := sjq(c2, R1, X1)\n"
            " 6) P2_2 := X1 − X21\n"
            " 7) X22 := sjq(c2, R2, P2_2)\n"
            " 8) P2_3 := P2_2 − X22\n"
            " 9) X23 := sjq(c2, R3, P2_3)\n"
            "10) X2 := X21 ∪ X22 ∪ X23\n"
            "result: X2\n");
}

TEST(GoldenPlanTest, QueryToSqlGolden) {
  // Printed SQL locks the paper's query form.
  const ParametricCostModel model = Model(1, 1);
  (void)model;
  Plan plan;
  const int a = plan.EmitSelect(0, 0, "X11");
  plan.SetResult(a);
  PlanPrintNames names;
  names.conditions = {"V = 'dui'"};
  names.sources = {"CA"};
  EXPECT_EQ(plan.ToString(names),
            " 1) X11 := sq(V = 'dui', CA)\nresult: X11\n");
}

}  // namespace
}  // namespace fusion
