#include <gtest/gtest.h>

#include "cost/oracle_cost_model.h"
#include "exec/executor.h"
#include "optimizer/filter.h"
#include "optimizer/postopt.h"
#include "optimizer/sja.h"
#include "relational/reference_evaluator.h"
#include "workload/dmv.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

// ---------------------------------------------------------------------------
// Hand-built plans over the Figure 1 instance
// ---------------------------------------------------------------------------

TEST(ExecutorTest, FilterPlanComputesPaperAnswer) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  // Filter plan for 2 conditions over 3 sources.
  Plan plan;
  std::vector<int> dui, sp;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSelect(1, j));
  const int x2u = plan.EmitUnion(sp, "U2");
  const int x2 = plan.EmitIntersect({x1, x2u}, "X2");
  plan.SetResult(x2);

  const auto report = ExecutePlan(plan, instance->catalog, instance->query);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->answer.ToString(), "{'J55', 'T21'}");
  EXPECT_EQ(report->ledger.num_queries(), 6u);
  EXPECT_EQ(report->emulated_semijoins, 0u);
}

TEST(ExecutorTest, SemijoinPlanComputesSameAnswer) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  Plan plan;
  std::vector<int> dui;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  std::vector<int> sp;
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSemiJoin(1, j, x1));
  const int x2 = plan.EmitUnion(sp, "X2");
  plan.SetResult(x2);

  const auto report = ExecutePlan(plan, instance->catalog, instance->query);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->answer.ToString(), "{'J55', 'T21'}");
}

TEST(ExecutorTest, DifferencePrunedPlanComputesSameAnswer) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  // P1 with difference: send X1 − Y1 to later sources.
  Plan plan;
  std::vector<int> dui;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  const int y1 = plan.EmitSemiJoin(1, 0, x1, "Y1");
  const int p1 = plan.EmitDifference(x1, y1, "P1");
  const int y2 = plan.EmitSemiJoin(1, 1, p1, "Y2");
  const int p2 = plan.EmitDifference(p1, y2, "P2");
  const int y3 = plan.EmitSemiJoin(1, 2, p2, "Y3");
  const int x2 = plan.EmitUnion({y1, y2, y3}, "X2");
  plan.SetResult(x2);

  const auto report = ExecutePlan(plan, instance->catalog, instance->query);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->answer.ToString(), "{'J55', 'T21'}");
  // Pruning means later semijoins ship fewer items than |X1| = 3.
  size_t sjq_seen = 0;
  for (const Charge& c : report->ledger.charges()) {
    if (c.kind == ChargeKind::kSemiJoin && sjq_seen++ > 0) {
      EXPECT_LT(c.items_sent, 3u);
    }
  }
}

TEST(ExecutorTest, LoadAndLocalSelectPlan) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  Plan plan;
  const int y = plan.EmitLoad(2, "Y3");
  const int a0 = plan.EmitSelect(0, 0);
  const int a1 = plan.EmitSelect(0, 1);
  const int a2 = plan.EmitLocalSelect(0, y, "X13");
  const int x1 = plan.EmitUnion({a0, a1, a2}, "X1");
  const int b0 = plan.EmitSelect(1, 0);
  const int b1 = plan.EmitSelect(1, 1);
  const int b2 = plan.EmitLocalSelect(1, y, "X23");
  const int u2 = plan.EmitUnion({b0, b1, b2}, "U2");
  const int x2 = plan.EmitIntersect({x1, u2}, "X2");
  plan.SetResult(x2);

  const auto report = ExecutePlan(plan, instance->catalog, instance->query);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->answer.ToString(), "{'J55', 'T21'}");
  // One load + four selects; local selects are free and unmetered.
  EXPECT_EQ(report->ledger.num_queries(), 5u);
}

// ---------------------------------------------------------------------------
// Emulated semijoins
// ---------------------------------------------------------------------------

SyntheticInstance EmulationInstance() {
  SyntheticSpec spec;
  spec.universe_size = 200;
  spec.num_sources = 2;
  spec.num_conditions = 2;
  spec.coverage = 0.6;
  spec.frac_native_semijoin = 0.0;
  spec.frac_passed_bindings = 1.0;  // every source emulates
  spec.seed = 21;
  auto instance = GenerateSynthetic(spec);
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

TEST(ExecutorTest, EmulatesSemijoinWithPerBindingProbes) {
  const SyntheticInstance instance = EmulationInstance();
  Plan plan;
  const int a0 = plan.EmitSelect(0, 0);
  const int a1 = plan.EmitSelect(0, 1);
  const int x1 = plan.EmitUnion({a0, a1});
  const int s = plan.EmitSemiJoin(1, 0, x1);
  plan.SetResult(s);

  const auto report = ExecutePlan(plan, instance.catalog, instance.query);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->emulated_semijoins, 1u);
  // Probes appear as re-tagged charges, one per candidate item.
  size_t probes = 0;
  for (const Charge& c : report->ledger.charges()) {
    if (c.kind == ChargeKind::kEmulatedSemiJoinProbe) ++probes;
  }
  EXPECT_GT(probes, 0u);
  // Answer still correct vs reference.
  const ItemSet expected = *ReferenceFusionAnswer(
      RelationsOf(instance), "M",
      {instance.query.conditions()[0], instance.query.conditions()[1]});
  // The plan computes c1 then semijoin c2 at source 0 only — a subset of the
  // full fusion answer (c2 may hold at source 1 too), so only check subset.
  EXPECT_TRUE(report->answer.IsSubsetOf(expected));
}

TEST(ExecutorTest, FailsOnSemijoinToFullyUnsupportedSource) {
  SyntheticSpec spec;
  spec.universe_size = 50;
  spec.num_sources = 1;
  spec.num_conditions = 2;
  spec.frac_native_semijoin = 0.0;
  spec.frac_passed_bindings = 0.0;  // unsupported
  spec.seed = 5;
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  const int s = plan.EmitSemiJoin(1, 0, a);
  plan.SetResult(s);
  const auto report = ExecutePlan(plan, instance->catalog, instance->query);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// Estimated cost equals metered cost under the oracle model
// ---------------------------------------------------------------------------

class OracleFidelityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleFidelityTest, EstimateMatchesMeteredExactly) {
  SyntheticSpec spec;
  spec.universe_size = 300;
  spec.num_sources = 4;
  spec.num_conditions = 3;
  spec.coverage = 0.4;
  spec.frac_native_semijoin = 0.7;
  spec.frac_passed_bindings = 0.3;
  spec.seed = GetParam();
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const auto model =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(model.ok());

  for (const bool post : {false, true}) {
    Result<OptimizedPlan> opt =
        post ? OptimizeSjaPlus(*model) : OptimizeSja(*model);
    ASSERT_TRUE(opt.ok()) << opt.status().ToString();
    const auto report =
        ExecutePlan(opt->plan, instance->catalog, instance->query);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_NEAR(report->ledger.total(), opt->estimated_cost,
                1e-6 * (1 + opt->estimated_cost))
        << "post=" << post << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleFidelityTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace fusion
