// End-to-end property tests: for randomized instances, every optimizer's
// plan must execute to exactly the reference fusion answer; the cost
// hierarchy SJA+ <= SJA <= SJ <= FILTER must hold on estimates; and under
// the oracle model the estimates must equal metered execution costs.
#include <gtest/gtest.h>

#include "cost/oracle_cost_model.h"
#include "exec/executor.h"
#include "mediator/mediator.h"
#include "optimizer/brute_force.h"
#include "optimizer/filter.h"
#include "optimizer/greedy.h"
#include "optimizer/postopt.h"
#include "optimizer/sj.h"
#include "optimizer/sja.h"
#include "relational/reference_evaluator.h"
#include "workload/dmv.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

struct Scenario {
  uint64_t seed;
  size_t sources;
  size_t conditions;
  double native_frac;
  double bindings_frac;
};

class EndToEndTest : public ::testing::TestWithParam<Scenario> {};

SyntheticInstance MakeInstance(const Scenario& s) {
  SyntheticSpec spec;
  spec.universe_size = 400;
  spec.num_sources = s.sources;
  spec.num_conditions = s.conditions;
  spec.coverage = 0.35;
  spec.selectivity_default = 0.15;
  spec.selectivity_jitter = 0.8;
  spec.zipf_theta = 0.5;
  spec.frac_native_semijoin = s.native_frac;
  spec.frac_passed_bindings = s.bindings_frac;
  spec.seed = s.seed;
  auto instance = GenerateSynthetic(spec);
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

TEST_P(EndToEndTest, AllOptimizersProduceCorrectAnswers) {
  const SyntheticInstance instance = MakeInstance(GetParam());
  const ItemSet expected = *ReferenceFusionAnswer(
      RelationsOf(instance), "M", instance.query.conditions());
  const auto model =
      OracleCostModel::Create(instance.simulated, instance.query);
  ASSERT_TRUE(model.ok());

  std::vector<std::pair<std::string, Result<OptimizedPlan>>> plans;
  plans.emplace_back("FILTER", OptimizeFilter(*model));
  plans.emplace_back("SJ", OptimizeSj(*model));
  plans.emplace_back("SJA", OptimizeSja(*model));
  plans.emplace_back("SJA+", OptimizeSjaPlus(*model));
  plans.emplace_back(
      "SJA-G-sel",
      OptimizeGreedySja(*model, GreedyOrderHeuristic::kBySelectivity));
  plans.emplace_back(
      "SJA-G-mincost",
      OptimizeGreedySja(*model, GreedyOrderHeuristic::kByMinCost));
  plans.emplace_back("SJ-G-sel",
                     OptimizeGreedySj(*model,
                                      GreedyOrderHeuristic::kBySelectivity));

  for (auto& [name, opt] : plans) {
    ASSERT_TRUE(opt.ok()) << name << ": " << opt.status().ToString();
    const auto report =
        ExecutePlan(opt->plan, instance.catalog, instance.query);
    ASSERT_TRUE(report.ok()) << name << ": " << report.status().ToString();
    EXPECT_EQ(report->answer, expected) << name << " computed a wrong answer";
  }
}

TEST_P(EndToEndTest, CostHierarchyHolds) {
  const SyntheticInstance instance = MakeInstance(GetParam());
  const auto model =
      OracleCostModel::Create(instance.simulated, instance.query);
  ASSERT_TRUE(model.ok());
  const auto filter = OptimizeFilter(*model);
  const auto sj = OptimizeSj(*model);
  const auto sja = OptimizeSja(*model);
  const auto plus = OptimizeSjaPlus(*model);
  ASSERT_TRUE(filter.ok());
  ASSERT_TRUE(sj.ok());
  ASSERT_TRUE(sja.ok());
  ASSERT_TRUE(plus.ok());
  const double tol = 1e-9 * (1 + filter->estimated_cost);
  EXPECT_LE(sj->estimated_cost, filter->estimated_cost + tol);
  EXPECT_LE(sja->estimated_cost, sj->estimated_cost + tol);
  EXPECT_LE(plus->estimated_cost, sja->estimated_cost + tol);
}

TEST_P(EndToEndTest, OracleEstimatesMatchMeteredCosts) {
  const SyntheticInstance instance = MakeInstance(GetParam());
  const auto model =
      OracleCostModel::Create(instance.simulated, instance.query);
  ASSERT_TRUE(model.ok());
  for (const char* name : {"FILTER", "SJ", "SJA", "SJA+"}) {
    Result<OptimizedPlan> opt = Status::Internal("unset");
    if (std::string(name) == "FILTER") opt = OptimizeFilter(*model);
    if (std::string(name) == "SJ") opt = OptimizeSj(*model);
    if (std::string(name) == "SJA") opt = OptimizeSja(*model);
    if (std::string(name) == "SJA+") opt = OptimizeSjaPlus(*model);
    ASSERT_TRUE(opt.ok()) << name;
    const auto report =
        ExecutePlan(opt->plan, instance.catalog, instance.query);
    ASSERT_TRUE(report.ok()) << name << ": " << report.status().ToString();
    EXPECT_NEAR(report->ledger.total(), opt->estimated_cost,
                1e-6 * (1 + opt->estimated_cost))
        << name;
  }
}

TEST_P(EndToEndTest, SjaMatchesBruteForceUnderOracle) {
  const Scenario s = GetParam();
  if (s.sources > 3 || s.conditions > 3) {
    GTEST_SKIP() << "brute force space too large";
  }
  const SyntheticInstance instance = MakeInstance(s);
  const auto model =
      OracleCostModel::Create(instance.simulated, instance.query);
  ASSERT_TRUE(model.ok());
  const auto sja = OptimizeSja(*model);
  const auto brute = BruteForceSemijoinAdaptive(*model);
  ASSERT_TRUE(sja.ok());
  ASSERT_TRUE(brute.ok());
  EXPECT_NEAR(sja->estimated_cost, brute->estimated_cost,
              1e-9 * (1 + brute->estimated_cost));
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, EndToEndTest,
    ::testing::Values(
        Scenario{1, 2, 2, 1.0, 0.0}, Scenario{2, 3, 2, 0.5, 0.5},
        Scenario{3, 3, 3, 1.0, 0.0}, Scenario{4, 3, 3, 0.3, 0.3},
        Scenario{5, 5, 2, 0.6, 0.2}, Scenario{6, 6, 3, 0.5, 0.3},
        Scenario{7, 8, 2, 0.0, 1.0}, Scenario{8, 4, 4, 0.7, 0.3},
        Scenario{9, 2, 3, 0.0, 0.0}, Scenario{10, 10, 3, 0.8, 0.1},
        Scenario{11, 3, 2, 1.0, 0.0}, Scenario{12, 5, 5, 0.5, 0.5}));

// ---------------------------------------------------------------------------
// Scaled DMV scenario end to end through the mediator
// ---------------------------------------------------------------------------

TEST(DmvIntegrationTest, FiftyStateScenario) {
  DmvSpec spec;
  spec.num_states = 20;
  spec.num_drivers = 800;
  auto instance = GenerateDmv(spec);
  ASSERT_TRUE(instance.ok());
  const FusionQuery query = instance->query;
  std::vector<const Relation*> relations;
  for (const SimulatedSource* s : instance->simulated) {
    relations.push_back(&s->relation());
  }
  const ItemSet expected =
      *ReferenceFusionAnswer(relations, "L", query.conditions());

  Mediator mediator(std::move(instance->catalog));
  for (const OptimizerStrategy strategy :
       {OptimizerStrategy::kFilter, OptimizerStrategy::kSjaPlus}) {
    MediatorOptions options;
    options.strategy = strategy;
    options.statistics = StatisticsMode::kOracle;
    const auto answer = mediator.Answer(query, options);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_EQ(answer->items, expected);
  }
}

TEST(DmvIntegrationTest, AdaptivePlansBeatFilterOnHeterogeneousStates) {
  DmvSpec spec;
  spec.num_states = 15;
  spec.num_drivers = 1500;
  spec.frac_native_semijoin = 0.5;
  spec.frac_passed_bindings = 0.3;
  auto instance = GenerateDmv(spec);
  ASSERT_TRUE(instance.ok());
  const FusionQuery query = instance->query;
  Mediator mediator(std::move(instance->catalog));
  MediatorOptions options;
  options.statistics = StatisticsMode::kOracle;
  options.strategy = OptimizerStrategy::kFilter;
  const auto filter = mediator.Answer(query, options);
  options.strategy = OptimizerStrategy::kSjaPlus;
  const auto plus = mediator.Answer(query, options);
  ASSERT_TRUE(filter.ok());
  ASSERT_TRUE(plus.ok());
  EXPECT_EQ(filter->items, plus->items);
  // dui is rare; semijoining sp against dui candidates should win clearly.
  EXPECT_LT(plus->execution.ledger.total(),
            filter->execution.ledger.total());
}

}  // namespace
}  // namespace fusion
