// Tests for the cross-query result cache: bounded LRU with a hard byte
// budget, TTL expiry, versioned invalidation that fences in-flight calls,
// containment reuse (sjq from sq / lq, sq from lq, sjq from a
// candidate-superset sjq) proved byte-identical to direct source answers,
// canonical condition cache keys, and cache-aware re-optimization making a
// repeated session query strictly cheaper than cache-oblivious planning.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "exec/source_call_cache.h"
#include "mediator/session.h"
#include "query/fusion_query.h"
#include "source/simulated_source.h"

namespace fusion {
namespace {

ItemSet Ints(std::vector<int64_t> xs) {
  std::vector<Value> v;
  v.reserve(xs.size());
  for (int64_t x : xs) v.push_back(Value(x));
  return ItemSet(std::move(v));
}

// ---------------------------------------------------------------------------
// LRU byte budget
// ---------------------------------------------------------------------------

/// Resident bytes of one single-int entry under a one-character key,
/// measured rather than hardcoded (entry overhead + ItemSet layout are
/// implementation details).
size_t OneEntryBytes() {
  SourceCallCache probe;
  probe.Insert(0, "k", Ints({1}));
  return probe.bytes();
}

TEST(CacheLruTest, ByteBudgetIsAHardInvariantUnderInsertStress) {
  SourceCallCache::Options options;
  options.max_bytes = 4 * OneEntryBytes();
  SourceCallCache cache(options);
  for (int i = 0; i < 200; ++i) {
    cache.Insert(0, "c" + std::to_string(i), Ints({i, i + 1, i + 2}));
    ASSERT_LE(cache.bytes(), options.max_bytes)
        << "budget exceeded after insert " << i;
  }
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LT(cache.entries(), 200u);
  // The newest entry survived; the oldest was evicted long ago.
  EXPECT_NE(cache.Lookup(0, "c199"), nullptr);
  EXPECT_EQ(cache.Lookup(0, "c0"), nullptr);
}

TEST(CacheLruTest, EvictsLeastRecentlyUsedFirst) {
  const size_t entry = OneEntryBytes();
  SourceCallCache::Options options;
  options.max_bytes = 2 * entry + entry / 2;  // room for two entries, not three
  SourceCallCache cache(options);
  cache.Insert(0, "a", Ints({1}));
  cache.Insert(0, "b", Ints({2}));
  EXPECT_EQ(cache.entries(), 2u);
  // Touch "a": "b" becomes the least recently used.
  EXPECT_NE(cache.Lookup(0, "a"), nullptr);
  cache.Insert(0, "c", Ints({3}));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.Lookup(0, "b"), nullptr);
  EXPECT_NE(cache.Lookup(0, "a"), nullptr);
  EXPECT_NE(cache.Lookup(0, "c"), nullptr);
}

TEST(CacheLruTest, EntryLargerThanBudgetIsEvictedImmediately) {
  SourceCallCache::Options options;
  options.max_bytes = 1;  // nothing fits
  SourceCallCache cache(options);
  cache.Insert(0, "big", Ints({1, 2, 3, 4, 5}));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(CacheLruTest, EvictionCannotInvalidateAHandedOutAnswer) {
  const size_t entry = OneEntryBytes();
  SourceCallCache::Options options;
  options.max_bytes = entry + entry / 2;  // exactly one entry fits
  SourceCallCache cache(options);
  cache.Insert(0, "a", Ints({7}));
  const std::shared_ptr<const ItemSet> held = cache.Lookup(0, "a");
  ASSERT_NE(held, nullptr);
  cache.Insert(0, "b", Ints({8}));  // evicts "a"
  EXPECT_EQ(cache.Lookup(0, "a"), nullptr);
  // The shared_ptr pins the evicted answer; it is still fully readable.
  EXPECT_EQ(held->ToString(), "{7}");
}

TEST(CacheLruTest, TtlExpiresEntriesLazily) {
  SourceCallCache::Options options;
  options.ttl_seconds = 0.02;
  SourceCallCache cache(options);
  cache.Insert(0, "a", Ints({1}));
  EXPECT_NE(cache.Lookup(0, "a"), nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(cache.Lookup(0, "a"), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_GE(cache.evictions(), 1u);
}

// ---------------------------------------------------------------------------
// Invalidation and flight fencing
// ---------------------------------------------------------------------------

TEST(CacheInvalidationTest, InvalidateDropsOnlyThatSource) {
  SourceCallCache cache;
  cache.Insert(0, "c", Ints({1}));
  cache.Insert(1, "c", Ints({2}));
  cache.InsertLoad(0, Relation(Schema({{"L", ValueType::kInt64}})));
  cache.Invalidate(0);
  EXPECT_EQ(cache.Lookup(0, "c"), nullptr);
  EXPECT_EQ(cache.LookupLoad(0), nullptr);
  EXPECT_NE(cache.Lookup(1, "c"), nullptr);
  EXPECT_EQ(cache.invalidations(), 1u);
}

TEST(CacheInvalidationTest, InvalidationDropsTheInFlightPublish) {
  SourceCallCache cache;
  SourceCallCache::FlightGuard flight = cache.BeginFlight(0, "c");
  ASSERT_EQ(flight.cached(), nullptr);  // leader
  // The source's data changes while the call is outstanding.
  cache.Invalidate(0);
  flight.Fulfill(Ints({42}));  // stale answer: publish must be dropped
  EXPECT_EQ(cache.Lookup(0, "c"), nullptr);
  // A different source's flights are not fenced.
  SourceCallCache::FlightGuard other = cache.BeginFlight(1, "c");
  ASSERT_EQ(other.cached(), nullptr);
  other.Fulfill(Ints({7}));
  EXPECT_NE(cache.Lookup(1, "c"), nullptr);
}

TEST(CacheInvalidationTest, FencedWaiterIsPromotedAndPublishesFreshAnswer) {
  SourceCallCache cache;
  auto leader = std::make_unique<SourceCallCache::FlightGuard>(
      cache.BeginFlight(0, "c"));
  ASSERT_EQ(leader->cached(), nullptr);
  std::thread waiter([&] {
    SourceCallCache::FlightGuard flight = cache.BeginFlight(0, "c");
    // The leader's publish was dropped by the invalidation, so this caller
    // is promoted to leader and performs the (fresh) call itself.
    ASSERT_EQ(flight.cached(), nullptr);
    flight.Fulfill(Ints({2026}));
  });
  while (cache.flights_deduplicated() == 0) {
    std::this_thread::yield();
  }
  cache.Invalidate(0);
  leader->Fulfill(Ints({1998}));  // stale: dropped
  leader.reset();
  waiter.join();
  const std::shared_ptr<const ItemSet> fresh = cache.Lookup(0, "c");
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->ToString(), "{2026}");
}

TEST(CacheInvalidationTest, ClearResetsEntriesStatsAndFencesFlights) {
  SourceCallCache cache;
  cache.Insert(0, "a", Ints({1}));
  EXPECT_NE(cache.Lookup(0, "a"), nullptr);  // one hit on the books
  SourceCallCache::FlightGuard flight = cache.BeginFlight(0, "b");
  ASSERT_EQ(flight.cached(), nullptr);
  cache.Clear();
  flight.Fulfill(Ints({3}));  // began before the Clear: publish dropped
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.hits(), 0u);  // stats reset
  EXPECT_EQ(cache.Lookup(0, "b"), nullptr);
}

// ---------------------------------------------------------------------------
// Containment reuse — derived answers must be byte-identical to what the
// source itself would return.
// ---------------------------------------------------------------------------

Schema ItemSchema() {
  return Schema({{"L", ValueType::kInt64}, {"V", ValueType::kString}});
}

/// 12 rows: L = 0..11, V = 'a' for even L, 'u' for odd L.
SimulatedSource ParitySource() {
  Relation r(ItemSchema());
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_TRUE(r.Append({Value(i), Value(i % 2 == 0 ? "a" : "u")}).ok());
  }
  return SimulatedSource("R1", std::move(r), Capabilities{}, NetworkProfile{});
}

TEST(CacheContainmentTest, SemiJoinFromCachedSelectIsByteIdentical) {
  SimulatedSource src = ParitySource();
  const Condition cond = Condition::Eq("V", Value("a"));
  CostLedger scratch;
  const auto direct_sq = src.Select(cond, "L", &scratch);
  ASSERT_TRUE(direct_sq.ok());
  const ItemSet candidates = Ints({0, 1, 2, 3, 99});
  const auto direct_sjq = src.SemiJoin(cond, "L", candidates, &scratch);
  ASSERT_TRUE(direct_sjq.ok());

  SourceCallCache cache;
  cache.Insert(0, cond.CacheKey(), *direct_sq);
  bool derived = false;
  const std::shared_ptr<const ItemSet> answer =
      cache.FindSemiJoin(0, cond, cond.CacheKey(), "L", candidates, &derived);
  ASSERT_NE(answer, nullptr);
  EXPECT_TRUE(derived);
  EXPECT_EQ(*answer, *direct_sjq);
  // A containment hit is also an exact-key miss (the sjq key was absent).
  EXPECT_EQ(cache.containment_hits(), 1u);
  EXPECT_GE(cache.misses(), cache.containment_hits());
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheContainmentTest, SelectAndSemiJoinFromCachedLoadAreByteIdentical) {
  SimulatedSource src = ParitySource();
  const Condition cond = Condition::Eq("V", Value("u"));
  CostLedger scratch;
  const auto direct_sq = src.Select(cond, "L", &scratch);
  ASSERT_TRUE(direct_sq.ok());
  const ItemSet candidates = Ints({1, 2, 3});
  const auto direct_sjq = src.SemiJoin(cond, "L", candidates, &scratch);
  ASSERT_TRUE(direct_sjq.ok());
  const auto loaded = src.Load(&scratch);
  ASSERT_TRUE(loaded.ok());

  SourceCallCache cache;
  cache.InsertLoad(0, *loaded);
  const std::shared_ptr<const ItemSet> sq = cache.DeriveSelect(0, cond, "L");
  ASSERT_NE(sq, nullptr);
  EXPECT_EQ(*sq, *direct_sq);
  bool derived = false;
  const std::shared_ptr<const ItemSet> sjq =
      cache.FindSemiJoin(0, cond, cond.CacheKey(), "L", candidates, &derived);
  ASSERT_NE(sjq, nullptr);
  EXPECT_TRUE(derived);
  EXPECT_EQ(*sjq, *direct_sjq);
}

TEST(CacheContainmentTest, SemiJoinFromCandidateSupersetSemiJoin) {
  SimulatedSource src = ParitySource();
  const Condition cond = Condition::Eq("V", Value("a"));
  const ItemSet superset = Ints({0, 1, 2, 3, 4, 5, 6});
  const ItemSet subset = Ints({2, 3, 4});
  CostLedger scratch;
  const auto direct_superset = src.SemiJoin(cond, "L", superset, &scratch);
  ASSERT_TRUE(direct_superset.ok());
  const auto direct_subset = src.SemiJoin(cond, "L", subset, &scratch);
  ASSERT_TRUE(direct_subset.ok());

  SourceCallCache cache;
  cache.InsertSemiJoin(0, cond.CacheKey(), superset, *direct_superset);
  // Same candidate set: an exact hit, not a derivation.
  bool derived = true;
  std::shared_ptr<const ItemSet> exact =
      cache.FindSemiJoin(0, cond, cond.CacheKey(), "L", superset, &derived);
  ASSERT_NE(exact, nullptr);
  EXPECT_FALSE(derived);
  EXPECT_EQ(*exact, *direct_superset);
  // Subset candidates: sjq(c, R, X) = sjq(c, R, Y) ∩ X for X ⊆ Y.
  std::shared_ptr<const ItemSet> narrowed =
      cache.FindSemiJoin(0, cond, cond.CacheKey(), "L", subset, &derived);
  ASSERT_NE(narrowed, nullptr);
  EXPECT_TRUE(derived);
  EXPECT_EQ(*narrowed, *direct_subset);
  // Non-subset candidates cannot be derived from the stored entry.
  EXPECT_EQ(cache.FindSemiJoin(0, cond, cond.CacheKey(), "L",
                               Ints({0, 100}), &derived),
            nullptr);
}

// ---------------------------------------------------------------------------
// Canonical cache keys
// ---------------------------------------------------------------------------

TEST(CacheKeyTest, CommutativelyEqualConditionsShareOneKey) {
  const Condition a = Condition::Eq("V", Value("a"));
  const Condition b = Condition::Compare("L", CompareOp::kGt, Value(int64_t{5}));
  EXPECT_EQ(Condition::And(a, b).CacheKey(), Condition::And(b, a).CacheKey());
  EXPECT_EQ(Condition::Or(a, b).CacheKey(), Condition::Or(b, a).CacheKey());
  // Duplicated conjuncts collapse.
  EXPECT_EQ(Condition::And(a, Condition::And(b, a)).CacheKey(),
            Condition::And(a, b).CacheKey());
  // Raw text differs — only the canonical key is shared.
  EXPECT_NE(Condition::And(a, b).ToString(), Condition::And(b, a).ToString());
}

TEST(CacheKeyTest, ReorderedConjunctsHitTheCacheAcrossExecutions) {
  // Regression: the cache used to key on raw ToString(), so `a AND b`
  // missed an entry stored under `b AND a` and re-paid the source call.
  SourceCatalog catalog;
  {
    Relation r(ItemSchema());
    for (int64_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(r.Append({Value(i), Value(i < 4 ? "a" : "u")}).ok());
    }
    ASSERT_TRUE(catalog
                    .Add(std::make_unique<SimulatedSource>(
                        "R1", std::move(r), Capabilities{}, NetworkProfile{}))
                    .ok());
  }
  const Condition a = Condition::Eq("V", Value("a"));
  const Condition b = Condition::Compare("L", CompareOp::kLt, Value(int64_t{2}));
  Plan plan;
  plan.SetResult(plan.EmitSelect(0, 0));

  SourceCallCache cache;
  ExecOptions exec;
  exec.cache = &cache;
  const auto first = ExecutePlan(plan, catalog,
                                 FusionQuery("L", {Condition::And(a, b)}), exec);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->ledger.total(), 0.0);
  const auto second = ExecutePlan(
      plan, catalog, FusionQuery("L", {Condition::And(b, a)}), exec);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->answer, first->answer);
  EXPECT_EQ(second->ledger.total(), 0.0);  // answered from the memo
  EXPECT_EQ(second->cache_hits, 1u);
}

// ---------------------------------------------------------------------------
// Emulated semijoins probe through the cache
// ---------------------------------------------------------------------------

TEST(CacheProbeTest, RepeatedProbesAreAnsweredFromTheMemo) {
  // R2 has passed-bindings-only semijoin support, so sjq is emulated as one
  // probe selection per candidate. Growing the candidate set re-pays only
  // the *new* probe: old probes answer from the cache, keyed on the
  // canonical probe condition.
  SourceCatalog catalog;
  {
    Relation r1(ItemSchema());
    Relation r2(ItemSchema());
    for (int64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(r1.Append({Value(i), Value(i < 2 ? "a" : i < 3 ? "b" : "x")})
                      .ok());
      ASSERT_TRUE(r2.Append({Value(i), Value("u")}).ok());
    }
    ASSERT_TRUE(catalog
                    .Add(std::make_unique<SimulatedSource>(
                        "R1", std::move(r1), Capabilities{}, NetworkProfile{}))
                    .ok());
    Capabilities bindings_only;
    bindings_only.semijoin = SemijoinSupport::kPassedBindingsOnly;
    ASSERT_TRUE(catalog
                    .Add(std::make_unique<SimulatedSource>(
                        "R2", std::move(r2), bindings_only, NetworkProfile{}))
                    .ok());
  }
  // Query 1 selects {0, 1} as candidates; query 2 selects {0, 1, 2}. The
  // semijoin condition (c2 = V = 'u') is shared.
  const Condition narrow = Condition::Eq("V", Value("a"));
  const Condition wide =
      Condition::Or(Condition::Eq("V", Value("a")), Condition::Eq("V", Value("b")));
  const Condition probe_cond = Condition::Eq("V", Value("u"));
  Plan plan;
  const int x = plan.EmitSelect(0, 0);
  plan.SetResult(plan.EmitSemiJoin(1, 1, x));

  SourceCallCache cache;
  ExecOptions exec;
  exec.cache = &cache;
  const auto first = ExecutePlan(plan, catalog,
                                 FusionQuery("L", {narrow, probe_cond}), exec);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->emulated_semijoins, 1u);
  EXPECT_EQ(first->answer.ToString(), "{0, 1}");

  const auto second = ExecutePlan(plan, catalog,
                                  FusionQuery("L", {wide, probe_cond}), exec);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->answer.ToString(), "{0, 1, 2}");
  // Probes for candidates 0 and 1 hit the memo; only candidate 2 paid.
  EXPECT_GE(second->cache_hits, 2u);
  size_t probe_charges = 0;
  for (const Charge& c : second->ledger.charges()) {
    if (c.kind == ChargeKind::kEmulatedSemiJoinProbe) ++probe_charges;
  }
  EXPECT_EQ(probe_charges, 1u);
}

// ---------------------------------------------------------------------------
// Concurrency: flights vs Clear/Invalidate vs eviction (run under TSan via
// the `concurrency` label)
// ---------------------------------------------------------------------------

TEST(CacheConcurrencyTest, FlightsSurviveConcurrentClearInvalidateAndEviction) {
  SourceCallCache::Options options;
  options.max_bytes = 6 * OneEntryBytes();
  SourceCallCache cache(options);
  std::atomic<bool> stop{false};
  std::atomic<size_t> budget_violations{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 400; ++i) {
        const std::string key = "c" + std::to_string((t * 7 + i) % 16);
        SourceCallCache::FlightGuard flight =
            cache.BeginFlight(static_cast<size_t>(i % 3), key);
        if (flight.cached() != nullptr) {
          (void)flight.cached()->size();  // must stay readable
        } else if (i % 7 != 0) {          // sometimes abandon the flight
          flight.Fulfill(Ints({i, i + t}));
        }
        bool derived = false;
        (void)cache.FindSemiJoin(static_cast<size_t>(i % 3),
                                 Condition::Eq("V", Value("a")), key, "L",
                                 Ints({1, 2}), &derived);
      }
    });
  }
  std::thread churn([&] {
    while (!stop.load()) {
      cache.Invalidate(1);
      cache.Clear();
      std::this_thread::yield();
    }
  });
  std::thread auditor([&] {
    while (!stop.load()) {
      if (cache.bytes() > options.max_bytes) ++budget_violations;
      (void)cache.StatsSnapshot();
      (void)cache.Lookup(0, "c1");
      std::this_thread::yield();
    }
  });
  for (std::thread& w : workers) w.join();
  stop.store(true);
  churn.join();
  auditor.join();
  EXPECT_EQ(budget_violations.load(), 0u);
  EXPECT_LE(cache.bytes(), options.max_bytes);
}

// ---------------------------------------------------------------------------
// Cache-aware optimization: a repeated session query must get strictly
// cheaper when the optimizer is allowed to plan through the cache.
// ---------------------------------------------------------------------------

/// Two native-semijoin sources whose conditions are *negatively correlated*:
/// c_a ("V = 'a'") matches ~800 items per source, c_u ("V = 'u'") matches
/// 300 per source, and their join overlaps in only 5 items (L = 2000..2004).
/// Shipping item sets is nearly free (cost_per_item_sent = 0.001) while
/// receiving answers is expensive (1.0/item) — the regime where anchoring on
/// the *cached* unselective condition and semijoining the other wins big,
/// but only an optimizer that knows c_a is cached will pick that order.
SourceCatalog CorrelatedCatalog() {
  NetworkProfile net;
  net.query_overhead = 10.0;
  net.cost_per_item_sent = 0.001;
  net.cost_per_item_received = 1.0;
  SourceCatalog catalog;
  Relation r1(ItemSchema());
  for (int64_t i = 0; i < 800; ++i) EXPECT_TRUE(r1.Append({Value(i), Value("a")}).ok());
  for (int64_t i = 2000; i < 2005; ++i) EXPECT_TRUE(r1.Append({Value(i), Value("a")}).ok());
  for (int64_t i = 2800; i < 3100; ++i) EXPECT_TRUE(r1.Append({Value(i), Value("u")}).ok());
  EXPECT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>("R1", std::move(r1),
                                                         Capabilities{}, net))
                  .ok());
  Relation r2(ItemSchema());
  for (int64_t i = 700; i < 1500; ++i) EXPECT_TRUE(r2.Append({Value(i), Value("a")}).ok());
  for (int64_t i = 2000; i < 2005; ++i) EXPECT_TRUE(r2.Append({Value(i), Value("u")}).ok());
  for (int64_t i = 3100; i < 3395; ++i) EXPECT_TRUE(r2.Append({Value(i), Value("u")}).ok());
  EXPECT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>("R2", std::move(r2),
                                                         Capabilities{}, net))
                  .ok());
  return catalog;
}

TEST(CacheAwareOptimizationTest, RepeatedQueryIsStrictlyCheaperThanOblivious) {
  const Condition c_a = Condition::Eq("V", Value("a"));
  const Condition c_u = Condition::Eq("V", Value("u"));
  const FusionQuery warmup("L", {c_a});
  const FusionQuery query("L", {c_a, c_u});

  // Two identical sessions over identical catalogs; only the optimizer's
  // cache awareness differs. Both *execute* with the cache.
  auto run = [&](bool cache_aware) -> std::pair<ItemSet, double> {
    QuerySession::Options options;
    options.strategy = OptimizerStrategy::kSja;
    options.cache_aware_optimization = cache_aware;
    QuerySession session(Mediator(CorrelatedCatalog()), options);
    const auto first = session.Answer(warmup);
    EXPECT_TRUE(first.ok());
    const auto second = session.Answer(query);
    EXPECT_TRUE(second.ok());
    if (!second.ok()) return {ItemSet(), -1.0};
    return {second->items, second->execution.ledger.total()};
  };
  const auto [oblivious_answer, oblivious_cost] = run(false);
  const auto [aware_answer, aware_cost] = run(true);

  // Same answer, byte-identical, with or without cache-aware planning.
  EXPECT_EQ(aware_answer, oblivious_answer);
  EXPECT_EQ(aware_answer,
            Ints({2000, 2001, 2002, 2003, 2004}));
  // The cache-aware plan anchors on the cached c_a union (free) and
  // semijoins c_u against it; the oblivious plan re-derives the cold-cache
  // order and pays the full sq(c_u, ·) union. Strictly cheaper — this is
  // the tentpole acceptance bar.
  ASSERT_GE(oblivious_cost, 0.0);
  ASSERT_GE(aware_cost, 0.0);
  EXPECT_LT(aware_cost, oblivious_cost);
}

TEST(CacheAwareOptimizationTest, CostModelRepricesOnlyCachedCalls) {
  // Unit-level: the decorator zeroes sq/sjq for view-marked pairs and lq
  // for cached sources, leaves everything else alone, and never turns an
  // infinite (unsupported) semijoin finite.
  class FixedModel final : public CostModel {
   public:
    size_t num_conditions() const override { return 2; }
    size_t num_sources() const override { return 2; }
    double universe_size() const override { return 100.0; }
    double SqCost(size_t, size_t) const override { return 5.0; }
    double SjqCost(size_t, size_t source, const SetEstimate&) const override {
      return source == 1 ? std::numeric_limits<double>::infinity() : 3.0;
    }
    double LqCost(size_t) const override { return 7.0; }
    SetEstimate SqResult(size_t, size_t) const override {
      return SetEstimate{10.0};
    }
    SetEstimate SjqResult(size_t, size_t, const SetEstimate& x) const override {
      return x;
    }
    double FetchCost(size_t, double) const override { return 1.0; }
  };
  FixedModel base;
  QueryCacheView view;
  view.sq_answerable = {{1, 1}, {0, 0}};  // c0 cached everywhere, c1 nowhere
  view.lq_cached = {1, 0};
  EXPECT_TRUE(view.AnySet());
  const CacheAwareCostModel model(base, view);
  const SetEstimate x{4.0};
  EXPECT_EQ(model.SqCost(0, 0), 0.0);
  EXPECT_EQ(model.SqCost(1, 0), 5.0);
  EXPECT_EQ(model.SjqCost(0, 0, x), 0.0);
  EXPECT_EQ(model.SjqCost(1, 0, x), 3.0);
  // Cached sq cannot rescue a source that cannot semijoin at all.
  EXPECT_EQ(model.SjqCost(0, 1, x), std::numeric_limits<double>::infinity());
  EXPECT_EQ(model.LqCost(0), 0.0);
  EXPECT_EQ(model.LqCost(1), 7.0);
  EXPECT_EQ(QueryCacheView{}.AnySet(), false);
}

}  // namespace
}  // namespace fusion
