// Tests for the fusion::Client facade (the one client API over the stack)
// and for the unified error taxonomy: every StatusCode must survive a
// serialize→parse round trip through BOTH protocol dialects (FUSIONP/1, the
// wrapper side, and FUSIONQ/1, the client side) with nothing re-coded at a
// boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <thread>

#include "common/status.h"
#include "mediator/client.h"
#include "mediator/service.h"
#include "obs/exposition.h"
#include "protocol/client_protocol.h"
#include "protocol/message.h"
#include "protocol/socket.h"
#include "workload/dmv.h"

namespace fusion {
namespace {

constexpr char kDuiAndSp[] =
    "SELECT u1.L FROM U u1, U u2 "
    "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'";

Result<Client> Figure1Client(ClientOptions options = {}) {
  auto instance = BuildDmvFigure1();
  EXPECT_TRUE(instance.ok());
  return Client::Builder()
      .To(Client::Target::Embedded(std::move(instance->catalog)))
      .Options(options)
      .Statistics(StatisticsMode::kOracle)
      .Build();
}

// ---------------------------------------------------------------------------
// Builder validation
// ---------------------------------------------------------------------------

TEST(ClientBuilderTest, RequiresACatalogOrAnEndpoint) {
  const auto client = Client::Builder().Build();
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClientBuilderTest, RejectsTwoTargets) {
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  const auto client =
      Client::Builder()
          .To(Client::Target::Embedded(std::move(instance->catalog)))
          .To(Client::Target::Remote("127.0.0.1:1"))
          .Build();
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kInvalidArgument);
}

// The deprecated Catalog/Connect shims forward to To(), so mixing them
// still trips the one-target rule.
TEST(ClientBuilderTest, DeprecatedShimsForwardToTargets) {
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  const auto client = Client::Builder()
                          .Catalog(std::move(instance->catalog))
                          .Connect("127.0.0.1:1")
                          .Build();
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClientBuilderTest, RejectsEmptyRemoteEndpointList) {
  const auto client =
      Client::Builder().To(Client::Target::Remote(std::vector<std::string>{}))
          .Build();
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClientBuilderTest, MissingCatalogFileFailsBuild) {
  const auto client =
      Client::Builder()
          .To(Client::Target::EmbeddedFile("/nonexistent/catalog.ini"))
          .Build();
  EXPECT_FALSE(client.ok());
}

// ---------------------------------------------------------------------------
// Embedded queries through the facade
// ---------------------------------------------------------------------------

TEST(ClientTest, AnswersTheRunningExample) {
  auto client = Figure1Client();
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client->connected());
  const auto answer = client->QuerySql(kDuiAndSp);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(answer->items.ToString(), "{'J55', 'T21'}");
  EXPECT_GT(answer->cost, 0.0);
  EXPECT_GT(answer->source_queries, 0u);
  EXPECT_TRUE(answer->complete);
  // Embedded mode ships the full QueryAnswer alongside the summary.
  ASSERT_NE(answer->detail, nullptr);
  EXPECT_DOUBLE_EQ(answer->detail->execution.ledger.total(), answer->cost);
  EXPECT_EQ(answer->detail->execution.ledger.num_queries(),
            answer->source_queries);
}

TEST(ClientTest, PerCallStrategyOverrideChangesThePlan) {
  auto client = Figure1Client();
  ASSERT_TRUE(client.ok());
  CallControls filter;
  filter.strategy = OptimizerStrategy::kFilter;
  const auto baseline = client->QuerySql(kDuiAndSp, filter);
  ASSERT_TRUE(baseline.ok());
  ASSERT_NE(baseline->detail, nullptr);
  EXPECT_EQ(baseline->detail->optimized.plan_class, PlanClass::kFilter);
  // The session default (SJA+) stays in force for plain calls.
  const auto tuned = client->QuerySql(kDuiAndSp);
  ASSERT_TRUE(tuned.ok());
  ASSERT_NE(tuned->detail, nullptr);
  EXPECT_NE(tuned->detail->optimized.plan_class, PlanClass::kFilter);
  EXPECT_EQ(baseline->items, tuned->items);
}

TEST(ClientTest, UseCacheFalseKeepsEveryRunCold) {
  ClientOptions options;
  options.use_cache = false;
  auto client = Figure1Client(options);
  ASSERT_TRUE(client.ok());
  const auto first = client->QuerySql(kDuiAndSp);
  const auto second = client->QuerySql(kDuiAndSp);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_GT(first->cost, 0.0);
  // No memo attached: the rerun pays the full metered cost again.
  EXPECT_DOUBLE_EQ(second->cost, first->cost);
}

TEST(ClientTest, CachedRerunIsNearlyFree) {
  auto client = Figure1Client();  // use_cache defaults to true
  ASSERT_TRUE(client.ok());
  const auto cold = client->QuerySql(kDuiAndSp);
  ASSERT_TRUE(cold.ok());
  ASSERT_GT(cold->cost, 0.0);
  const auto warm = client->QuerySql(kDuiAndSp);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->items, cold->items);
  EXPECT_LE(warm->cost, 0.1 * cold->cost);
}

TEST(ClientTest, EmbeddedExplainAnnotatesTheExecutedPlan) {
  auto client = Figure1Client();
  ASSERT_TRUE(client.ok());
  const auto answer = client->QuerySqlExplained(kDuiAndSp);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items.ToString(), "{'J55', 'T21'}");
  ASSERT_FALSE(answer->explain_lines.empty());
  EXPECT_NE(answer->explain_lines[0].find("plan "), std::string::npos);
  EXPECT_NE(answer->explain_lines[0].find("estimated cost"),
            std::string::npos);
  // At least one op line carries the [cost, ms, cache] annotation.
  bool annotated = false;
  for (const std::string& line : answer->explain_lines) {
    if (line.find("cache") != std::string::npos) annotated = true;
  }
  EXPECT_TRUE(annotated);
  // The plain path stays unannotated.
  const auto plain = client->QuerySql(kDuiAndSp);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->explain_lines.empty());
}

TEST(ClientTest, EmbeddedStatsRendersParseableExposition) {
  auto client = Figure1Client();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->QuerySql(kDuiAndSp).ok());
  const auto text = client->Stats();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  const auto exposition = ParseStatsText(*text);
  ASSERT_TRUE(exposition.ok()) << exposition.status().ToString();
  EXPECT_EQ(exposition->schema, kStatsSchemaVersion);
  EXPECT_GT(exposition->samples.size(), 0u);
}

TEST(ClientTest, RemoteClientNegotiatesObservabilityFeatures) {
  auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  QueryService::Options options;
  options.client.statistics = StatisticsMode::kOracle;
  QueryService service(Mediator(std::move(instance->catalog)), options);
  auto listener = TcpListener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(listener->port());
  std::thread server([&] {
    auto accepted = listener->Accept();
    if (accepted.ok()) {
      service.ServeConnection(std::move(accepted).value());
    }
  });
  {
    auto client = Client::Builder()
                      .To(Client::Target::Remote(endpoint))
                      .ClientId("negotiator")
                      .Build();
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    EXPECT_TRUE(client->connected());
    // HELLO negotiated the observability features (typed registry — no raw
    // string literals at the negotiation site).
    const FeatureSet features = FeatureSet::FromNames(client->server_features());
    EXPECT_TRUE(features.Has(Feature::kTrace));
    EXPECT_TRUE(features.Has(Feature::kStats));
    EXPECT_TRUE(features.Has(Feature::kExplain));
    // EXPLAIN over the wire: annotated executed plan rides the response.
    const auto explained = client->QuerySqlExplained(kDuiAndSp);
    ASSERT_TRUE(explained.ok()) << explained.status().ToString();
    EXPECT_EQ(explained->items.ToString(), "{'J55', 'T21'}");
    EXPECT_FALSE(explained->explain_lines.empty());
    // STATS over the wire parses and names this client as a tenant.
    const auto text = client->Stats();
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    const auto exposition = ParseStatsText(*text);
    ASSERT_TRUE(exposition.ok());
    EXPECT_NE(exposition->Find("tenant_requests_total", "negotiator"),
              nullptr);
    // Server-side cache counters surfaced on the wire answer.
    const auto warm = client->QuerySql(kDuiAndSp);
    ASSERT_TRUE(warm.ok());
    EXPECT_GT(warm->cache_hits + warm->cache_containment_hits, 0u);
  }
  server.join();
}

TEST(ClientTest, CancelledTokenFailsTheCall) {
  auto client = Figure1Client();
  ASSERT_TRUE(client.ok());
  std::atomic<bool> cancel{true};  // already cancelled at admission
  CallControls controls;
  controls.cancel = &cancel;
  const auto answer = client->QuerySql(kDuiAndSp, controls);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kCancelled);
}

TEST(ClientTest, SummarizeAnswerMapsTheLedger) {
  auto client = Figure1Client();
  ASSERT_TRUE(client.ok());
  const auto answer = client->QuerySql(kDuiAndSp);
  ASSERT_TRUE(answer.ok());
  const ClientAnswer summary = SummarizeAnswer(*answer->detail);
  EXPECT_EQ(summary.items, answer->items);
  EXPECT_DOUBLE_EQ(summary.cost, answer->cost);
  EXPECT_EQ(summary.source_queries, answer->source_queries);
  EXPECT_EQ(summary.complete, answer->complete);
}

// ---------------------------------------------------------------------------
// The unified error taxonomy: every code survives both wire dialects
// ---------------------------------------------------------------------------

TEST(ErrorTaxonomyTest, EveryCodeRoundTripsThroughItsName) {
  for (const StatusCode code : kAllStatusCodes) {
    const auto parsed = StatusCodeFromName(StatusCodeName(code));
    ASSERT_TRUE(parsed.ok()) << StatusCodeName(code);
    EXPECT_EQ(*parsed, code);
  }
}

TEST(ErrorTaxonomyTest, EveryCodeSurvivesTheWrapperDialect) {
  for (const StatusCode code : kAllStatusCodes) {
    if (code == StatusCode::kOk) continue;  // OK is not an error response
    SourceResponse response;
    response.ok = false;
    response.error_code = code;
    response.error_message = "boom: details & 'quotes'\nsecond line";
    const auto parsed = ParseResponse(SerializeResponse(response));
    ASSERT_TRUE(parsed.ok()) << StatusCodeName(code);
    EXPECT_FALSE(parsed->ok);
    EXPECT_EQ(parsed->error_code, code) << StatusCodeName(code);
    EXPECT_EQ(parsed->error_message, response.error_message);
  }
}

TEST(ErrorTaxonomyTest, EveryCodeSurvivesTheClientDialect) {
  for (const StatusCode code : kAllStatusCodes) {
    if (code == StatusCode::kOk) continue;
    const ClientResponse error =
        ClientErrorResponse(Status(code, "op failed\nwith detail"));
    const auto parsed = ParseClientResponse(SerializeClientResponse(error));
    ASSERT_TRUE(parsed.ok()) << StatusCodeName(code);
    EXPECT_FALSE(parsed->ok);
    EXPECT_EQ(parsed->error_code, code) << StatusCodeName(code);
    EXPECT_EQ(parsed->error_message, "op failed\nwith detail");
  }
}

TEST(ErrorTaxonomyTest, UnknownCodeNameIsAParseError) {
  const auto parsed = StatusCodeFromName("NotACode");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// FUSIONQ/1 request / response serde
// ---------------------------------------------------------------------------

TEST(ClientProtocolTest, SubmitRequestRoundTrips) {
  ClientRequest request;
  request.kind = ClientRequest::Kind::kSubmit;
  request.client_id = "investigator-7";
  request.sql = kDuiAndSp;
  request.wait = false;
  const auto parsed = ParseClientRequest(SerializeClientRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->kind, ClientRequest::Kind::kSubmit);
  EXPECT_EQ(parsed->client_id, "investigator-7");
  EXPECT_EQ(parsed->sql, request.sql);
  EXPECT_FALSE(parsed->wait);
}

TEST(ClientProtocolTest, SqlWithNewlinesAndEscapesRoundTrips) {
  ClientRequest request;
  request.kind = ClientRequest::Kind::kSubmit;
  request.sql = "SELECT x\nFROM y\\z WHERE a = 'b c'";
  const auto parsed = ParseClientRequest(SerializeClientRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->sql, request.sql);
}

TEST(ClientProtocolTest, StatusAndCancelCarryTheTicket) {
  for (const auto kind :
       {ClientRequest::Kind::kStatus, ClientRequest::Kind::kCancel}) {
    ClientRequest request;
    request.kind = kind;
    request.ticket = 4631;
    const auto parsed = ParseClientRequest(SerializeClientRequest(request));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->kind, kind);
    EXPECT_EQ(parsed->ticket, 4631u);
  }
}

TEST(ClientProtocolTest, ResultResponseRoundTrips) {
  ClientResponse response;
  response.ticket = 9;
  response.state = "done";
  response.items = {Value("J55"), Value("T21")};
  response.cost = 65.62;
  response.source_queries = 3;
  response.cache_hits = 2;
  response.cache_misses = 1;
  response.calibration_cost = 4.5;
  response.complete = false;
  const auto parsed = ParseClientResponse(SerializeClientResponse(response));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->ticket, 9u);
  EXPECT_EQ(parsed->state, "done");
  EXPECT_EQ(parsed->items, response.items);
  EXPECT_DOUBLE_EQ(parsed->cost, 65.62);
  EXPECT_EQ(parsed->source_queries, 3u);
  EXPECT_EQ(parsed->cache_hits, 2u);
  EXPECT_EQ(parsed->cache_misses, 1u);
  EXPECT_DOUBLE_EQ(parsed->calibration_cost, 4.5);
  EXPECT_FALSE(parsed->complete);
}

TEST(ClientProtocolTest, MalformedTextIsAParseError) {
  EXPECT_FALSE(ParseClientRequest("HTTP/1.1 GET /\nend\n").ok());
  EXPECT_FALSE(ParseClientRequest("FUSIONQ/1 SUBMIT\n").ok());  // no end
  EXPECT_FALSE(ParseClientResponse("FUSIONQ/1 MAYBE\nend\n").ok());
}

TEST(ClientProtocolTest, ObservabilityFieldsRoundTrip) {
  // The tracing/negotiation fields added for distributed observability:
  // trace-id / parent-span / explain on requests, features / stats /
  // explain / cache-containment on responses.
  ClientRequest request;
  request.kind = ClientRequest::Kind::kSubmit;
  request.client_id = "traced";
  request.sql = kDuiAndSp;
  request.wait = true;
  request.explain = true;
  request.trace_id = 0xdeadbeefcafef00dULL;
  request.parent_span = 42;
  const std::string wire = SerializeClientRequest(request);
  const auto parsed = ParseClientRequest(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->explain);
  EXPECT_EQ(parsed->trace_id, request.trace_id);
  EXPECT_EQ(parsed->parent_span, request.parent_span);
  // A zero trace id stays off the wire entirely.
  request.trace_id = 0;
  EXPECT_EQ(SerializeClientRequest(request).find("trace-id"),
            std::string::npos);

  ClientRequest hello;
  hello.kind = ClientRequest::Kind::kHello;
  hello.features = ClientProtocolFeatures();
  const auto hello_parsed = ParseClientRequest(SerializeClientRequest(hello));
  ASSERT_TRUE(hello_parsed.ok());
  EXPECT_EQ(hello_parsed->features, ClientProtocolFeatures());

  ClientRequest stats;
  stats.kind = ClientRequest::Kind::kStats;
  stats.client_id = "watcher";
  const auto stats_parsed = ParseClientRequest(SerializeClientRequest(stats));
  ASSERT_TRUE(stats_parsed.ok());
  EXPECT_EQ(stats_parsed->kind, ClientRequest::Kind::kStats);

  ClientResponse response;
  response.ticket = 3;
  response.state = "done";
  response.features = ClientProtocolFeatures();
  response.cache_containment_hits = 5;
  response.stats_lines = {"# fusionq-stats schema 1", "requests_total 7"};
  response.explain_lines = {"plan SJA+ (simple), estimated cost 1.000",
                           "  op 0: sq source=0 [cost 1.000, 0.2 ms, "
                           "cache miss]"};
  const auto response_parsed =
      ParseClientResponse(SerializeClientResponse(response));
  ASSERT_TRUE(response_parsed.ok());
  EXPECT_EQ(response_parsed->features, ClientProtocolFeatures());
  EXPECT_EQ(response_parsed->cache_containment_hits, 5u);
  EXPECT_EQ(response_parsed->stats_lines, response.stats_lines);
  EXPECT_EQ(response_parsed->explain_lines, response.explain_lines);
}

TEST(ClientProtocolTest, UnknownFieldsAreIgnoredForForwardCompat) {
  // A newer peer may send fields this build has never heard of; they must
  // parse as a valid frame, not an error — that is what lets HELLO feature
  // negotiation evolve the protocol without breaking old binaries.
  const auto request = ParseClientRequest(
      "FUSIONQ/1 SUBMIT\nclient shiny\nsql SELECT 1\n"
      "brand-new-field value with spaces\nend\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->client_id, "shiny");
  const auto response = ParseClientResponse(
      "FUSIONQ/1 OK\nticket 1\nstate done\nfuture-field 9\nend\n");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->state, "done");
}

}  // namespace
}  // namespace fusion
