#include <gtest/gtest.h>

#include "plan/classifier.h"
#include "plan/cost_estimator.h"
#include "plan/plan.h"
#include "plan/plan_serde.h"
#include "optimizer/postopt.h"
#include "cost/parametric_cost_model.h"

namespace fusion {
namespace {

/// Two homogeneous sources, two conditions; hand-checkable numbers.
ParametricCostModel SimpleModel() {
  SourceParams p;
  p.capabilities.semijoin = SemijoinSupport::kNative;
  p.network.query_overhead = 10;
  p.network.cost_per_item_sent = 1;
  p.network.cost_per_item_received = 1;
  p.network.processing_per_tuple = 0;
  p.network.record_width_factor = 2;
  p.cardinality = 100;
  p.result_size = {40, 10};
  return ParametricCostModel({p, p}, /*universe_size=*/100);
}

// ---------------------------------------------------------------------------
// Builder & validation
// ---------------------------------------------------------------------------

TEST(PlanBuilderTest, EmitsOpsAndVars) {
  Plan plan;
  const int a = plan.EmitSelect(0, 0, "X11");
  const int b = plan.EmitSelect(0, 1, "X12");
  const int u = plan.EmitUnion({a, b}, "X1");
  const int s = plan.EmitSemiJoin(1, 0, u, "X21");
  plan.SetResult(s);
  EXPECT_EQ(plan.num_ops(), 4u);
  EXPECT_EQ(plan.num_source_queries(), 3u);
  EXPECT_EQ(plan.var(a).name, "X11");
  EXPECT_TRUE(plan.Validate(2, 2).ok());
}

TEST(PlanBuilderTest, DefaultVarNames) {
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  EXPECT_FALSE(plan.var(a).name.empty());
}

TEST(PlanValidateTest, RejectsUndefinedVariableUse) {
  Plan plan;
  plan.EmitSemiJoin(0, 0, /*input_var=*/5, "X");
  plan.SetResult(0);
  EXPECT_FALSE(plan.Validate(1, 1).ok());
}

TEST(PlanValidateTest, RejectsOutOfRangeIndices) {
  {
    Plan plan;
    const int a = plan.EmitSelect(3, 0);  // cond 3 of 1
    plan.SetResult(a);
    EXPECT_FALSE(plan.Validate(1, 1).ok());
  }
  {
    Plan plan;
    const int a = plan.EmitSelect(0, 9);  // source 9 of 1
    plan.SetResult(a);
    EXPECT_FALSE(plan.Validate(1, 1).ok());
  }
}

TEST(PlanValidateTest, RejectsMissingOrWrongTypedResult) {
  {
    Plan plan;
    plan.EmitSelect(0, 0);
    EXPECT_FALSE(plan.Validate(1, 1).ok());  // no result set
  }
  {
    Plan plan;
    const int y = plan.EmitLoad(0, "Y");
    plan.SetResult(y);  // result is a relation, not items
    EXPECT_FALSE(plan.Validate(1, 1).ok());
  }
}

TEST(PlanValidateTest, RejectsLocalSelectOverItemsVar) {
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  const int l = plan.EmitLocalSelect(0, a);
  plan.SetResult(l);
  EXPECT_FALSE(plan.Validate(1, 1).ok());
}

TEST(PlanValidateTest, RejectsEmptyUnionAndBadDifference) {
  {
    Plan plan;
    const int u = plan.EmitUnion({});
    plan.SetResult(u);
    EXPECT_FALSE(plan.Validate(1, 1).ok());
  }
  {
    // EmitDifference always produces exactly two operands, which validate.
    Plan plan;
    const int a = plan.EmitSelect(0, 0);
    const int d = plan.EmitDifference(a, a);
    plan.SetResult(d);
    EXPECT_TRUE(plan.Validate(1, 1).ok());
  }
}

TEST(PlanValidateTest, AcceptsLoadLocalSelectFlow) {
  Plan plan;
  const int y = plan.EmitLoad(0, "Y1");
  const int a = plan.EmitLocalSelect(0, y, "X11");
  plan.SetResult(a);
  EXPECT_TRUE(plan.Validate(1, 1).ok());
}

// ---------------------------------------------------------------------------
// Printing (paper notation)
// ---------------------------------------------------------------------------

TEST(PlanPrintTest, MatchesPaperNotation) {
  Plan plan;
  const int a = plan.EmitSelect(0, 0, "X11");
  const int b = plan.EmitSelect(0, 1, "X12");
  const int u = plan.EmitUnion({a, b}, "X1");
  const int s = plan.EmitSemiJoin(1, 0, u, "X21");
  plan.SetResult(s);
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("X11 := sq(c1, R1)"), std::string::npos);
  EXPECT_NE(text.find("X1 := X11 ∪ X12"), std::string::npos);
  EXPECT_NE(text.find("X21 := sjq(c2, R1, X1)"), std::string::npos);
  EXPECT_NE(text.find("result: X21"), std::string::npos);
}

TEST(PlanPrintTest, CustomNames) {
  Plan plan;
  const int a = plan.EmitSelect(0, 0, "X11");
  plan.SetResult(a);
  PlanPrintNames names;
  names.conditions = {"V = 'dui'"};
  names.sources = {"CA-DMV"};
  const std::string text = plan.ToString(names);
  EXPECT_NE(text.find("sq(V = 'dui', CA-DMV)"), std::string::npos);
}

TEST(PlanPrintTest, LoadDifferenceLocalSelect) {
  Plan plan;
  const int y = plan.EmitLoad(2, "Y3");
  const int a = plan.EmitLocalSelect(0, y, "X13");
  const int b = plan.EmitSelect(0, 0, "X11");
  const int d = plan.EmitDifference(b, a, "D1");
  plan.SetResult(d);
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("Y3 := lq(R3)"), std::string::npos);
  EXPECT_NE(text.find("X13 := sq(c1, Y3)"), std::string::npos);
  EXPECT_NE(text.find("D1 := X11 − X13"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

TEST(ClassifierTest, FilterPlan) {
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  const int b = plan.EmitSelect(1, 0);
  const int i = plan.EmitIntersect({a, b});
  plan.SetResult(i);
  EXPECT_EQ(ClassifyPlan(plan), PlanClass::kFilter);
}

TEST(ClassifierTest, SemijoinPlan) {
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  const int b = plan.EmitSelect(0, 1);
  const int u = plan.EmitUnion({a, b});
  const int s1 = plan.EmitSemiJoin(1, 0, u);
  const int s2 = plan.EmitSemiJoin(1, 1, u);
  const int r = plan.EmitUnion({s1, s2});
  plan.SetResult(r);
  EXPECT_EQ(ClassifyPlan(plan), PlanClass::kSemijoin);
}

TEST(ClassifierTest, SemijoinAdaptivePlan) {
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  const int s1 = plan.EmitSemiJoin(1, 0, a);   // c2 by sjq at R1
  const int s2 = plan.EmitSelect(1, 1);        // c2 by sq at R2
  const int u = plan.EmitUnion({s1, s2});
  const int i = plan.EmitIntersect({a, u});
  plan.SetResult(i);
  EXPECT_EQ(ClassifyPlan(plan), PlanClass::kSemijoinAdaptive);
}

TEST(ClassifierTest, NonSimpleOnPostoptOps) {
  {
    Plan plan;
    const int y = plan.EmitLoad(0);
    const int a = plan.EmitLocalSelect(0, y);
    plan.SetResult(a);
    EXPECT_EQ(ClassifyPlan(plan), PlanClass::kNonSimple);
  }
  {
    Plan plan;
    const int a = plan.EmitSelect(0, 0);
    const int b = plan.EmitSelect(1, 0);
    const int d = plan.EmitDifference(a, b);
    plan.SetResult(d);
    EXPECT_EQ(ClassifyPlan(plan), PlanClass::kNonSimple);
  }
}

TEST(ClassifierTest, ClassNames) {
  EXPECT_STREQ(PlanClassName(PlanClass::kFilter), "filter");
  EXPECT_STREQ(PlanClassName(PlanClass::kNonSimple), "non-simple");
}

// ---------------------------------------------------------------------------
// Cost estimation
// ---------------------------------------------------------------------------

TEST(EstimatorTest, FilterPlanCost) {
  const ParametricCostModel m = SimpleModel();
  Plan plan;
  const int a = plan.EmitSelect(0, 0);  // 10 + 40 = 50
  const int b = plan.EmitSelect(0, 1);  // 50
  const int u = plan.EmitUnion({a, b});
  const int c = plan.EmitSelect(1, 0);  // 10 + 10 = 20
  const int d = plan.EmitSelect(1, 1);  // 20
  const int u2 = plan.EmitUnion({c, d});
  const int i = plan.EmitIntersect({u, u2});
  plan.SetResult(i);
  const auto breakdown = EstimatePlanCost(plan, m);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_DOUBLE_EQ(breakdown->total, 140.0);
  // Local ops are free.
  EXPECT_DOUBLE_EQ(breakdown->per_op[2], 0.0);
  EXPECT_DOUBLE_EQ(breakdown->per_op[6], 0.0);
}

TEST(EstimatorTest, CardinalityPropagation) {
  const ParametricCostModel m = SimpleModel();
  Plan plan;
  const int a = plan.EmitSelect(0, 0);  // |40|
  const int b = plan.EmitSelect(0, 1);  // |40|
  const int u = plan.EmitUnion({a, b});  // 40+40-16=64
  plan.SetResult(u);
  const auto breakdown = EstimatePlanCost(plan, m);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_DOUBLE_EQ(breakdown->result.size, 64.0);
}

TEST(EstimatorTest, SemijoinUsesPropagatedInputSize) {
  const ParametricCostModel m = SimpleModel();
  Plan plan;
  const int a = plan.EmitSelect(0, 0);          // |40|, cost 50
  const int s = plan.EmitSemiJoin(1, 0, a);     // sjq cost 10 + 40 + result
  plan.SetResult(s);
  const auto breakdown = EstimatePlanCost(plan, m);
  ASSERT_TRUE(breakdown.ok());
  // result = 40 * 10/100 = 4; sjq = 10 + 40*1 + 4*1 = 54; total 104.
  EXPECT_DOUBLE_EQ(breakdown->total, 104.0);
  EXPECT_DOUBLE_EQ(breakdown->result.size, 4.0);
}

TEST(EstimatorTest, LoadIsChargedLocalSelectIsFree) {
  const ParametricCostModel m = SimpleModel();
  Plan plan;
  const int y = plan.EmitLoad(0);               // 10 + 1*2*100 = 210
  const int a = plan.EmitLocalSelect(0, y);     // free, |40|
  plan.SetResult(a);
  const auto breakdown = EstimatePlanCost(plan, m);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_DOUBLE_EQ(breakdown->total, 210.0);
  EXPECT_DOUBLE_EQ(breakdown->result.size, 40.0);
}

TEST(EstimatorTest, RejectsInvalidPlan) {
  const ParametricCostModel m = SimpleModel();
  Plan plan;
  plan.EmitSelect(0, 5);  // bad source
  plan.SetResult(0);
  EXPECT_FALSE(EstimatePlanCost(plan, m).ok());
}

TEST(EstimatorTest, DifferenceEstimation) {
  const ParametricCostModel m = SimpleModel();
  Plan plan;
  const int a = plan.EmitSelect(0, 0);   // |40|
  const int b = plan.EmitSelect(1, 0);   // |10|
  const int d = plan.EmitDifference(a, b);  // 40 * (1 - 10/100) = 36
  plan.SetResult(d);
  const auto breakdown = EstimatePlanCost(plan, m);
  ASSERT_TRUE(breakdown.ok());
  EXPECT_DOUBLE_EQ(breakdown->result.size, 36.0);
}


// ---------------------------------------------------------------------------
// Plan serialization (FPLAN/1)
// ---------------------------------------------------------------------------

TEST(PlanSerdeTest, RoundTripsEveryOpKind) {
  Plan plan;
  const int a = plan.EmitSelect(0, 0, "X11");
  const int b = plan.EmitSelect(0, 1, "X12");
  const int u = plan.EmitUnion({a, b}, "X1");
  const int s = plan.EmitSemiJoin(1, 0, u, "X21");
  const int y = plan.EmitLoad(1, "Y2");
  const int l = plan.EmitLocalSelect(1, y, "X22");
  const int d = plan.EmitDifference(s, l, "D");
  const int i = plan.EmitIntersect({u, d}, "X2");
  plan.SetResult(i);

  const std::string text = SerializePlan(plan);
  const auto back = ParsePlan(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_ops(), plan.num_ops());
  EXPECT_EQ(back->result(), plan.result());
  EXPECT_EQ(SerializePlan(*back), text);  // byte-stable fixpoint
  // Pretty-printed forms agree too (names survive).
  EXPECT_EQ(back->ToString(), plan.ToString());
  EXPECT_TRUE(back->Validate(2, 2).ok());
}

TEST(PlanSerdeTest, RoundTripsOptimizerOutput) {
  const ParametricCostModel m = SimpleModel();
  const auto sja = OptimizeSjaPlus(m);
  ASSERT_TRUE(sja.ok());
  const auto back = ParsePlan(SerializePlan(sja->plan));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ToString(), sja->plan.ToString());
  const auto cost_original = EstimatePlanCost(sja->plan, m);
  const auto cost_back = EstimatePlanCost(*back, m);
  ASSERT_TRUE(cost_original.ok());
  ASSERT_TRUE(cost_back.ok());
  EXPECT_DOUBLE_EQ(cost_back->total, cost_original->total);
}

TEST(PlanSerdeTest, RejectsMalformedPlans) {
  EXPECT_FALSE(ParsePlan("").ok());
  EXPECT_FALSE(ParsePlan("NOPE/9\nend\n").ok());
  EXPECT_FALSE(ParsePlan("FPLAN/1\nvar 5 items X\nend\n").ok());
  EXPECT_FALSE(ParsePlan("FPLAN/1\nvar 0 items X\nop select 0 0 0\n").ok());
  EXPECT_FALSE(
      ParsePlan("FPLAN/1\nvar 0 items X\nop warp 0 0 0\nresult 0\nend\n")
          .ok());
  EXPECT_FALSE(
      ParsePlan("FPLAN/1\nvar 0 items X\nop select 0 0 0\nend\n").ok());
}

}  // namespace
}  // namespace fusion
