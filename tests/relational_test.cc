#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "relational/column_index.h"
#include "relational/condition.h"
#include "relational/reference_evaluator.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace fusion {
namespace {

Schema DmvSchema() {
  return Schema({{"L", ValueType::kString},
                 {"V", ValueType::kString},
                 {"D", ValueType::kInt64}});
}

Relation Figure1R1() {
  Relation r(DmvSchema());
  EXPECT_TRUE(r.Append({Value("J55"), Value("dui"), Value(int64_t{1993})}).ok());
  EXPECT_TRUE(r.Append({Value("T21"), Value("sp"), Value(int64_t{1994})}).ok());
  EXPECT_TRUE(r.Append({Value("T80"), Value("dui"), Value(int64_t{1993})}).ok());
  return r;
}

// ---------------------------------------------------------------------------
// Schema / Tuple
// ---------------------------------------------------------------------------

TEST(SchemaTest, IndexLookup) {
  const Schema s = DmvSchema();
  EXPECT_EQ(*s.IndexOf("L"), 0u);
  EXPECT_EQ(*s.IndexOf("D"), 2u);
  EXPECT_FALSE(s.IndexOf("Z").ok());
  EXPECT_TRUE(s.HasColumn("V"));
  EXPECT_FALSE(s.HasColumn("v"));  // case-sensitive
}

TEST(SchemaTest, EqualityAndToString) {
  EXPECT_EQ(DmvSchema(), DmvSchema());
  EXPECT_NE(DmvSchema(), Schema({{"L", ValueType::kString}}));
  EXPECT_EQ(DmvSchema().ToString(), "(L:string, V:string, D:int64)");
}

TEST(SchemaTest, TupleValidation) {
  const Schema s = DmvSchema();
  EXPECT_TRUE(ValidateTuple(s, {Value("a"), Value("b"), Value(int64_t{1})}).ok());
  // NULLs allowed anywhere.
  EXPECT_TRUE(ValidateTuple(s, {Value(), Value(), Value()}).ok());
  // Arity mismatch.
  EXPECT_FALSE(ValidateTuple(s, {Value("a")}).ok());
  // Type mismatch.
  EXPECT_FALSE(
      ValidateTuple(s, {Value("a"), Value("b"), Value("not-an-int")}).ok());
}

// ---------------------------------------------------------------------------
// Condition construction & evaluation
// ---------------------------------------------------------------------------

TEST(ConditionTest, CompareEvaluation) {
  const Schema s = DmvSchema();
  const Tuple t = {Value("J55"), Value("dui"), Value(int64_t{1993})};
  EXPECT_TRUE(*Condition::Eq("V", Value("dui")).Evaluate(s, t));
  EXPECT_FALSE(*Condition::Eq("V", Value("sp")).Evaluate(s, t));
  EXPECT_TRUE(*Condition::Compare("D", CompareOp::kGe, Value(int64_t{1993}))
                   .Evaluate(s, t));
  EXPECT_FALSE(*Condition::Compare("D", CompareOp::kLt, Value(int64_t{1993}))
                    .Evaluate(s, t));
  EXPECT_TRUE(*Condition::Compare("V", CompareOp::kNe, Value("sp"))
                  .Evaluate(s, t));
}

TEST(ConditionTest, BetweenAndIn) {
  const Schema s = DmvSchema();
  const Tuple t = {Value("J55"), Value("dui"), Value(int64_t{1993})};
  EXPECT_TRUE(*Condition::Between("D", Value(int64_t{1990}),
                                  Value(int64_t{1995}))
                   .Evaluate(s, t));
  EXPECT_FALSE(*Condition::Between("D", Value(int64_t{1994}),
                                   Value(int64_t{1995}))
                    .Evaluate(s, t));
  EXPECT_TRUE(*Condition::In("V", {Value("dui"), Value("sp")}).Evaluate(s, t));
  EXPECT_FALSE(*Condition::In("V", {Value("sp")}).Evaluate(s, t));
}

TEST(ConditionTest, BooleanCombinators) {
  const Schema s = DmvSchema();
  const Tuple t = {Value("J55"), Value("dui"), Value(int64_t{1993})};
  const Condition dui = Condition::Eq("V", Value("dui"));
  const Condition recent =
      Condition::Compare("D", CompareOp::kGe, Value(int64_t{1995}));
  EXPECT_FALSE(*Condition::And(dui, recent).Evaluate(s, t));
  EXPECT_TRUE(*Condition::Or(dui, recent).Evaluate(s, t));
  EXPECT_FALSE(*Condition::Not(dui).Evaluate(s, t));
  EXPECT_TRUE(*Condition::True().Evaluate(s, t));
}

TEST(ConditionTest, NullNeverSatisfiesAtoms) {
  const Schema s = DmvSchema();
  const Tuple t = {Value("J55"), Value(), Value()};
  EXPECT_FALSE(*Condition::Eq("V", Value("dui")).Evaluate(s, t));
  EXPECT_FALSE(
      *Condition::Compare("D", CompareOp::kLt, Value(int64_t{2000}))
           .Evaluate(s, t));
  EXPECT_FALSE(*Condition::In("V", {Value("dui")}).Evaluate(s, t));
  // But NOT flips the false.
  EXPECT_TRUE(*Condition::Not(Condition::Eq("V", Value("dui"))).Evaluate(s, t));
}

TEST(ConditionTest, UnknownAttributeErrors) {
  const Schema s = DmvSchema();
  const Tuple t = {Value("a"), Value("b"), Value(int64_t{1})};
  EXPECT_FALSE(Condition::Eq("NOPE", Value("x")).Evaluate(s, t).ok());
  EXPECT_FALSE(Condition::Eq("NOPE", Value("x")).Validate(s).ok());
  EXPECT_TRUE(Condition::Eq("V", Value("x")).Validate(s).ok());
}

TEST(ConditionTest, ReferencedAttributes) {
  const Condition c = Condition::And(
      Condition::Eq("V", Value("dui")),
      Condition::Or(Condition::Eq("L", Value("x")),
                    Condition::Eq("V", Value("sp"))));
  const std::vector<std::string> attrs = c.ReferencedAttributes();
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0], "V");
  EXPECT_EQ(attrs[1], "L");
}

TEST(ConditionTest, ToStringRendering) {
  EXPECT_EQ(Condition::Eq("V", Value("dui")).ToString(), "V = 'dui'");
  EXPECT_EQ(Condition::Between("D", Value(int64_t{1}), Value(int64_t{2}))
                .ToString(),
            "D BETWEEN 1 AND 2");
  EXPECT_EQ(Condition::And(Condition::Eq("A", Value(int64_t{1})),
                           Condition::Eq("B", Value(int64_t{2})))
                .ToString(),
            "(A = 1 AND B = 2)");
}

TEST(ConditionTest, StructuralEquality) {
  EXPECT_TRUE(Condition::Eq("V", Value("dui"))
                  .Equals(Condition::Eq("V", Value("dui"))));
  EXPECT_FALSE(Condition::Eq("V", Value("dui"))
                   .Equals(Condition::Eq("V", Value("sp"))));
  EXPECT_TRUE(Condition::True().Equals(Condition()));
}

// ---------------------------------------------------------------------------
// Condition parsing
// ---------------------------------------------------------------------------

TEST(ConditionParseTest, SimpleComparisons) {
  const Schema s = DmvSchema();
  const Tuple t = {Value("J55"), Value("dui"), Value(int64_t{1993})};
  EXPECT_TRUE(*ParseCondition("V = 'dui'")->Evaluate(s, t));
  EXPECT_TRUE(*ParseCondition("D >= 1990")->Evaluate(s, t));
  EXPECT_TRUE(*ParseCondition("D <> 2000")->Evaluate(s, t));
  EXPECT_FALSE(*ParseCondition("D < 1993")->Evaluate(s, t));
}

TEST(ConditionParseTest, BetweenInNotParens) {
  const Schema s = DmvSchema();
  const Tuple t = {Value("J55"), Value("dui"), Value(int64_t{1993})};
  EXPECT_TRUE(*ParseCondition("D BETWEEN 1990 AND 1995")->Evaluate(s, t));
  EXPECT_TRUE(*ParseCondition("V IN ('dui', 'sp')")->Evaluate(s, t));
  EXPECT_TRUE(
      *ParseCondition("NOT (V = 'sp') AND (D = 1993 OR D = 1994)")
            ->Evaluate(s, t));
}

TEST(ConditionParseTest, PrecedenceAndBindsTighter) {
  // a OR b AND c parses as a OR (b AND c).
  const Condition c = *ParseCondition("V = 'x' OR V = 'dui' AND D = 1993");
  const Schema s = DmvSchema();
  EXPECT_TRUE(*c.Evaluate(s, {Value("a"), Value("dui"), Value(int64_t{1993})}));
  EXPECT_FALSE(
      *c.Evaluate(s, {Value("a"), Value("dui"), Value(int64_t{1999})}));
  EXPECT_TRUE(*c.Evaluate(s, {Value("a"), Value("x"), Value(int64_t{1999})}));
}

TEST(ConditionParseTest, QuotedStringEscapes) {
  const Condition c = *ParseCondition("V = 'it''s'");
  const Schema s = DmvSchema();
  EXPECT_TRUE(*c.Evaluate(s, {Value("a"), Value("it's"), Value(int64_t{1})}));
}

TEST(ConditionParseTest, NumericLiteralTypes) {
  const Condition ci = *ParseCondition("D = 3");
  const Condition cd = *ParseCondition("D = 3.5");
  EXPECT_EQ(ci.ToString(), "D = 3");
  EXPECT_EQ(cd.ToString(), "D = 3.5");
}

TEST(ConditionParseTest, Errors) {
  EXPECT_FALSE(ParseCondition("").ok());
  EXPECT_FALSE(ParseCondition("V =").ok());
  EXPECT_FALSE(ParseCondition("V = 'unterminated").ok());
  EXPECT_FALSE(ParseCondition("(V = 'x'").ok());
  EXPECT_FALSE(ParseCondition("V = 'x' extra").ok());
  EXPECT_FALSE(ParseCondition("V BETWEEN 1").ok());
  EXPECT_FALSE(ParseCondition("V IN (1,").ok());
}

// ---------------------------------------------------------------------------
// Relation operations
// ---------------------------------------------------------------------------

TEST(RelationTest, AppendValidates) {
  Relation r(DmvSchema());
  EXPECT_TRUE(r.Append({Value("a"), Value("b"), Value(int64_t{1})}).ok());
  EXPECT_FALSE(r.Append({Value("a")}).ok());
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, SelectFiltersTuples) {
  const Relation r1 = Figure1R1();
  const Relation dui = *r1.Select(Condition::Eq("V", Value("dui")));
  EXPECT_EQ(dui.size(), 2u);
  const Relation none = *r1.Select(Condition::Eq("V", Value("zzz")));
  EXPECT_TRUE(none.empty());
}

TEST(RelationTest, SelectItemsProjectsDistinctMergeValues) {
  const Relation r1 = Figure1R1();
  const ItemSet dui = *r1.SelectItems(Condition::Eq("V", Value("dui")), "L");
  EXPECT_EQ(dui.ToString(), "{'J55', 'T80'}");
  const ItemSet all = *r1.SelectItems(Condition::True(), "L");
  EXPECT_EQ(all.size(), 3u);
}

TEST(RelationTest, SelectItemsSkipsNullMergeValues) {
  Relation r(DmvSchema());
  ASSERT_TRUE(r.Append({Value(), Value("dui"), Value(int64_t{1})}).ok());
  ASSERT_TRUE(r.Append({Value("X1"), Value("dui"), Value(int64_t{1})}).ok());
  const ItemSet items = *r.SelectItems(Condition::Eq("V", Value("dui")), "L");
  EXPECT_EQ(items.size(), 1u);
}

TEST(RelationTest, SemiJoinItems) {
  const Relation r1 = Figure1R1();
  ItemSet candidates({Value("J55"), Value("T21"), Value("ZZZ")});
  const ItemSet sp =
      *r1.SemiJoinItems(Condition::Eq("V", Value("sp")), "L", candidates);
  EXPECT_EQ(sp.ToString(), "{'T21'}");
  // Semijoin result is always a subset of the candidates.
  EXPECT_TRUE(sp.IsSubsetOf(candidates));
}

TEST(RelationTest, CountWhere) {
  const Relation r1 = Figure1R1();
  EXPECT_EQ(*r1.CountWhere(Condition::Eq("V", Value("dui"))), 2u);
  EXPECT_EQ(*r1.CountWhere(Condition::True()), 3u);
}

TEST(RelationTest, UnionRequiresSameSchema) {
  const Relation r1 = Figure1R1();
  Relation other{Schema({{"X", ValueType::kInt64}})};
  EXPECT_FALSE(Relation::Union(r1, other).ok());
  const Relation u = *Relation::Union(r1, r1);
  EXPECT_EQ(u.size(), 6u);  // bag semantics
}

TEST(RelationTest, ToStringAligned) {
  const std::string s = Figure1R1().ToString();
  EXPECT_NE(s.find("L"), std::string::npos);
  EXPECT_NE(s.find("'J55'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CSV round trip
// ---------------------------------------------------------------------------

TEST(CsvTest, RoundTripPreservesData) {
  const Relation r1 = Figure1R1();
  const std::string csv = RelationToCsv(r1);
  const Relation back = *RelationFromCsv(csv);
  EXPECT_EQ(back.schema(), r1.schema());
  ASSERT_EQ(back.size(), r1.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(back.tuple(i), r1.tuple(i));
  }
}

TEST(CsvTest, HandlesNullsAndSpecialChars) {
  Relation r{Schema({{"M", ValueType::kInt64}, {"S", ValueType::kString}})};
  ASSERT_TRUE(r.Append({Value(int64_t{1}), Value("a,b")}).ok());
  ASSERT_TRUE(r.Append({Value(), Value("say \"hi\"")}).ok());
  const Relation back = *RelationFromCsv(RelationToCsv(r));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.tuple(0)[1], Value("a,b"));
  EXPECT_TRUE(back.tuple(1)[0].is_null());
  EXPECT_EQ(back.tuple(1)[1], Value("say \"hi\""));
}

TEST(CsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(RelationFromCsv("").ok());
  EXPECT_FALSE(RelationFromCsv("A\n1\n").ok());          // header missing type
  EXPECT_FALSE(RelationFromCsv("A:int64\nxyz\n").ok());  // bad int
  EXPECT_FALSE(RelationFromCsv("A:int64,B:string\n1\n").ok());  // arity
}

// ---------------------------------------------------------------------------
// Reference fusion evaluator
// ---------------------------------------------------------------------------

TEST(ReferenceEvaluatorTest, PaperExampleAnswer) {
  // Figure 1: drivers with both dui and sp across three DMVs -> {J55, T21}.
  const Relation r1 = Figure1R1();
  Relation r2(DmvSchema());
  ASSERT_TRUE(r2.Append({Value("T21"), Value("dui"), Value(int64_t{1996})}).ok());
  ASSERT_TRUE(r2.Append({Value("J55"), Value("sp"), Value(int64_t{1996})}).ok());
  ASSERT_TRUE(r2.Append({Value("T11"), Value("sp"), Value(int64_t{1993})}).ok());
  Relation r3(DmvSchema());
  ASSERT_TRUE(r3.Append({Value("T21"), Value("sp"), Value(int64_t{1993})}).ok());
  ASSERT_TRUE(r3.Append({Value("S07"), Value("sp"), Value(int64_t{1996})}).ok());
  ASSERT_TRUE(r3.Append({Value("S07"), Value("sp"), Value(int64_t{1993})}).ok());

  const ItemSet answer = *ReferenceFusionAnswer(
      {&r1, &r2, &r3}, "L",
      {Condition::Eq("V", Value("dui")), Condition::Eq("V", Value("sp"))});
  EXPECT_EQ(answer.ToString(), "{'J55', 'T21'}");
}

TEST(ReferenceEvaluatorTest, SingleConditionIsUnionOfSources) {
  const Relation r1 = Figure1R1();
  const ItemSet answer = *ReferenceFusionAnswer(
      {&r1}, "L", {Condition::Eq("V", Value("dui"))});
  EXPECT_EQ(answer.ToString(), "{'J55', 'T80'}");
}

TEST(ReferenceEvaluatorTest, ErrorsOnEmptyInputs) {
  const Relation r1 = Figure1R1();
  EXPECT_FALSE(ReferenceFusionAnswer({}, "L", {Condition::True()}).ok());
  EXPECT_FALSE(ReferenceFusionAnswer({&r1}, "L", {}).ok());
}

TEST(ReferenceEvaluatorTest, ConditionsMaySatisfyAtDifferentSources) {
  // Entity 1 satisfies c1 only at rA and c2 only at rB: still an answer.
  const Schema s({{"M", ValueType::kInt64},
                  {"A", ValueType::kInt64},
                  {"B", ValueType::kInt64}});
  Relation ra(s), rb(s);
  ASSERT_TRUE(ra.Append({Value(int64_t{1}), Value(int64_t{1}),
                         Value(int64_t{0})}).ok());
  ASSERT_TRUE(rb.Append({Value(int64_t{1}), Value(int64_t{0}),
                         Value(int64_t{1})}).ok());
  const ItemSet answer = *ReferenceFusionAnswer(
      {&ra, &rb}, "M",
      {Condition::Eq("A", Value(int64_t{1})),
       Condition::Eq("B", Value(int64_t{1}))});
  EXPECT_EQ(answer.size(), 1u);
  EXPECT_TRUE(answer.Contains(Value(int64_t{1})));
}

// ---------------------------------------------------------------------------
// Condition simplification
// ---------------------------------------------------------------------------

TEST(ConditionSimplifyTest, AtomsPassThrough) {
  EXPECT_EQ(Condition::Eq("V", Value("dui")).Simplified().ToString(),
            "V = 'dui'");
  EXPECT_TRUE(Condition::True().Simplified().IsTrue());
  EXPECT_TRUE(Condition::False().Simplified().IsFalse());
}

TEST(ConditionSimplifyTest, TrueFalsePropagation) {
  const Condition atom = Condition::Eq("V", Value("dui"));
  EXPECT_EQ(Condition::And(atom, Condition::True()).Simplified().ToString(),
            "V = 'dui'");
  EXPECT_TRUE(
      Condition::And(atom, Condition::False()).Simplified().IsFalse());
  EXPECT_TRUE(Condition::Or(atom, Condition::True()).Simplified().IsTrue());
  EXPECT_EQ(Condition::Or(atom, Condition::False()).Simplified().ToString(),
            "V = 'dui'");
}

TEST(ConditionSimplifyTest, NegationRules) {
  const Condition atom = Condition::Eq("V", Value("dui"));
  EXPECT_TRUE(Condition::Not(Condition::True()).Simplified().IsFalse());
  EXPECT_TRUE(Condition::Not(Condition::False()).Simplified().IsTrue());
  EXPECT_EQ(Condition::Not(Condition::Not(atom)).Simplified().ToString(),
            "V = 'dui'");
}

TEST(ConditionSimplifyTest, FlattenDedupAndSort) {
  const Condition a = Condition::Eq("B", Value(int64_t{2}));
  const Condition b = Condition::Eq("A", Value(int64_t{1}));
  const Condition nested =
      Condition::And(Condition::And(a, b), Condition::And(b, a));
  EXPECT_EQ(nested.Simplified().ToString(), "(A = 1 AND B = 2)");
}

TEST(ConditionSimplifyTest, ConjunctionContradictions) {
  // Two different equalities on the same attribute.
  EXPECT_TRUE(Condition::And(Condition::Eq("V", Value("dui")),
                             Condition::Eq("V", Value("sp")))
                  .Simplified()
                  .IsFalse());
  // Equality outside a BETWEEN on the same attribute.
  EXPECT_TRUE(Condition::And(
                  Condition::Eq("D", Value(int64_t{2000})),
                  Condition::Between("D", Value(int64_t{1990}),
                                     Value(int64_t{1995})))
                  .Simplified()
                  .IsFalse());
  // Equality not contained in an IN on the same attribute.
  EXPECT_TRUE(Condition::And(Condition::Eq("V", Value("dui")),
                             Condition::In("V", {Value("sp"), Value("x")}))
                  .Simplified()
                  .IsFalse());
  // Consistent combinations survive.
  EXPECT_FALSE(Condition::And(Condition::Eq("V", Value("dui")),
                              Condition::In("V", {Value("dui"), Value("sp")}))
                   .Simplified()
                   .IsFalse());
}

TEST(ConditionSimplifyTest, DegenerateAtoms) {
  EXPECT_TRUE(Condition::In("V", {}).Simplified().IsFalse());
  EXPECT_EQ(Condition::In("V", {Value("x")}).Simplified().ToString(),
            "V = 'x'");
  EXPECT_TRUE(Condition::Between("D", Value(int64_t{5}), Value(int64_t{1}))
                  .Simplified()
                  .IsFalse());
  EXPECT_EQ(Condition::Between("D", Value(int64_t{5}), Value(int64_t{5}))
                .Simplified()
                .ToString(),
            "D = 5");
  // IN dedups and sorts.
  EXPECT_EQ(Condition::In("V", {Value("b"), Value("a"), Value("b")})
                .Simplified()
                .ToString(),
            "V IN ('a', 'b')");
}

TEST(ConditionSimplifyTest, DisjunctionOfEqualitiesBecomesIn) {
  const Condition c = Condition::Or(
      Condition::Eq("V", Value("sp")),
      Condition::Or(Condition::Eq("V", Value("dui")),
                    Condition::Eq("V", Value("sp"))));
  EXPECT_EQ(c.Simplified().ToString(), "V IN ('dui', 'sp')");
}

TEST(ConditionSimplifyTest, PreservesSemanticsOnRandomData) {
  // Property: simplified conditions evaluate identically on random tuples.
  const Schema s({{"A", ValueType::kInt64}, {"B", ValueType::kInt64}});
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    // Random small condition tree.
    std::function<Condition(int)> random_cond = [&](int depth) -> Condition {
      const int64_t pick = rng.Uniform(0, depth > 2 ? 3 : 5);
      const std::string attr = rng.Bernoulli(0.5) ? "A" : "B";
      switch (pick) {
        case 0:
          return Condition::Eq(attr, Value(rng.Uniform(0, 3)));
        case 1:
          return Condition::Between(attr, Value(rng.Uniform(0, 3)),
                                    Value(rng.Uniform(0, 3)));
        case 2:
          return Condition::In(attr, {Value(rng.Uniform(0, 3)),
                                      Value(rng.Uniform(0, 3))});
        case 3:
          return rng.Bernoulli(0.5) ? Condition::True() : Condition::False();
        case 4:
          return Condition::Not(random_cond(depth + 1));
        default:
          return rng.Bernoulli(0.5)
                     ? Condition::And(random_cond(depth + 1),
                                      random_cond(depth + 1))
                     : Condition::Or(random_cond(depth + 1),
                                     random_cond(depth + 1));
      }
    };
    const Condition original = random_cond(0);
    const Condition simplified = original.Simplified();
    for (int i = 0; i < 10; ++i) {
      const Tuple t = {Value(rng.Uniform(0, 3)), Value(rng.Uniform(0, 3))};
      EXPECT_EQ(*original.Evaluate(s, t), *simplified.Evaluate(s, t))
          << original.ToString() << "  vs  " << simplified.ToString();
    }
  }
}

TEST(ConditionSimplifyTest, IdempotentAndParsesFalse) {
  const Condition c =
      Condition::And(Condition::Eq("A", Value(int64_t{1})),
                     Condition::Or(Condition::Eq("B", Value(int64_t{2})),
                                   Condition::Eq("B", Value(int64_t{3}))));
  const Condition once = c.Simplified();
  EXPECT_TRUE(once.Simplified().Equals(once));
  // FALSE round-trips through the parser.
  const auto parsed = ParseCondition("FALSE");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->IsFalse());
}


// ---------------------------------------------------------------------------
// ColumnIndex
// ---------------------------------------------------------------------------

TEST(ColumnIndexTest, LooksUpRowsByValue) {
  const Relation r1 = Figure1R1();
  const auto index = ColumnIndex::Build(r1, "L");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->distinct_values(), 3u);
  const std::vector<size_t>* rows = index->Rows(Value("J55"));
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(*rows, std::vector<size_t>{0});
  EXPECT_EQ(index->Rows(Value("NOPE")), nullptr);
}

TEST(ColumnIndexTest, GroupsDuplicatesAndSkipsNulls) {
  Relation r(DmvSchema());
  ASSERT_TRUE(r.Append({Value("A"), Value("x"), Value(int64_t{1})}).ok());
  ASSERT_TRUE(r.Append({Value(), Value("x"), Value(int64_t{2})}).ok());
  ASSERT_TRUE(r.Append({Value("A"), Value("y"), Value(int64_t{3})}).ok());
  const auto index = ColumnIndex::Build(r, "L");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->distinct_values(), 1u);
  const std::vector<size_t>* rows = index->Rows(Value("A"));
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(*rows, (std::vector<size_t>{0, 2}));
}

TEST(ColumnIndexTest, RejectsUnknownColumn) {
  EXPECT_FALSE(ColumnIndex::Build(Figure1R1(), "Z").ok());
}

TEST(ColumnIndexTest, IndexedSemijoinMatchesScanSemantics) {
  // Property: Relation::SemiJoinItems (scan) agrees with the index-based
  // evaluation on random data.
  Rng rng(123);
  const Schema schema({{"M", ValueType::kInt64}, {"F", ValueType::kInt64}});
  for (int trial = 0; trial < 20; ++trial) {
    Relation r(schema);
    const int rows = static_cast<int>(rng.Uniform(0, 60));
    for (int i = 0; i < rows; ++i) {
      r.AppendUnchecked(
          {Value(rng.Uniform(0, 25)), Value(rng.Uniform(0, 1))});
    }
    std::vector<Value> candidate_values;
    const int k = static_cast<int>(rng.Uniform(0, 15));
    for (int i = 0; i < k; ++i) {
      candidate_values.push_back(Value(rng.Uniform(0, 25)));
    }
    const ItemSet candidates(std::move(candidate_values));
    const Condition cond = Condition::Eq("F", Value(int64_t{1}));
    const ItemSet scan = *r.SemiJoinItems(cond, "M", candidates);
    const auto index = ColumnIndex::Build(r, "M");
    ASSERT_TRUE(index.ok());
    std::vector<Value> via_index;
    for (const Value& c : candidates) {
      const std::vector<size_t>* hits = index->Rows(c);
      if (hits == nullptr) continue;
      for (size_t row : *hits) {
        if (*cond.Evaluate(schema, r.tuple(row))) {
          via_index.push_back(c);
          break;
        }
      }
    }
    EXPECT_EQ(ItemSet(std::move(via_index)), scan) << "trial " << trial;
  }
}


TEST(ConditionSimplifyTest, RangeFoldingTightensIntervals) {
  // D >= 1990 AND D <= 1995 AND D BETWEEN 1992 AND 1999 → D BETWEEN 1992 AND 1995.
  const Condition c = Condition::And(
      Condition::And(
          Condition::Compare("D", CompareOp::kGe, Value(int64_t{1990})),
          Condition::Compare("D", CompareOp::kLe, Value(int64_t{1995}))),
      Condition::Between("D", Value(int64_t{1992}), Value(int64_t{1999})));
  EXPECT_EQ(c.Simplified().ToString(), "D BETWEEN 1992 AND 1995");
}

TEST(ConditionSimplifyTest, RangeFoldingDetectsEmptyIntervals) {
  // D > 5 AND D < 5 is empty; so is D >= 5 AND D < 5.
  EXPECT_TRUE(Condition::And(
                  Condition::Compare("D", CompareOp::kGt, Value(int64_t{5})),
                  Condition::Compare("D", CompareOp::kLt, Value(int64_t{5})))
                  .Simplified()
                  .IsFalse());
  EXPECT_TRUE(Condition::And(
                  Condition::Compare("D", CompareOp::kGe, Value(int64_t{5})),
                  Condition::Compare("D", CompareOp::kLt, Value(int64_t{5})))
                  .Simplified()
                  .IsFalse());
}

TEST(ConditionSimplifyTest, RangeFoldingCollapsesToEquality) {
  const Condition c = Condition::And(
      Condition::Compare("D", CompareOp::kGe, Value(int64_t{7})),
      Condition::Compare("D", CompareOp::kLe, Value(int64_t{7})));
  EXPECT_EQ(c.Simplified().ToString(), "D = 7");
}

TEST(ConditionSimplifyTest, RangeFoldingKeepsStrictBounds) {
  const Condition c = Condition::And(
      Condition::Compare("D", CompareOp::kGt, Value(int64_t{3})),
      Condition::Compare("D", CompareOp::kLe, Value(int64_t{9})));
  EXPECT_EQ(c.Simplified().ToString(), "(D <= 9 AND D > 3)");
}

TEST(ConditionSimplifyTest, RangeFoldingSkipsMixedTypesAndNe) {
  // Mixed numeric/string constants on one attribute: left untouched.
  const Condition mixed = Condition::And(
      Condition::Compare("V", CompareOp::kGe, Value("a")),
      Condition::Compare("V", CompareOp::kLe, Value(int64_t{5})));
  EXPECT_FALSE(mixed.Simplified().IsFalse());
  // != atoms are preserved verbatim next to a folded range.
  const Condition with_ne = Condition::And(
      Condition::And(
          Condition::Compare("D", CompareOp::kGe, Value(int64_t{1})),
          Condition::Compare("D", CompareOp::kLe, Value(int64_t{9}))),
      Condition::Compare("D", CompareOp::kNe, Value(int64_t{4})));
  const std::string text = with_ne.Simplified().ToString();
  EXPECT_NE(text.find("D != 4"), std::string::npos);
  EXPECT_NE(text.find("D BETWEEN 1 AND 9"), std::string::npos);
}

TEST(ConditionSimplifyTest, RangeFoldingSemanticsPreserved) {
  const Schema s({{"D", ValueType::kInt64}});
  Rng rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Condition> atoms;
    const int k = 2 + static_cast<int>(rng.Uniform(0, 2));
    for (int i = 0; i < k; ++i) {
      const int64_t v = rng.Uniform(0, 10);
      switch (rng.Uniform(0, 4)) {
        case 0:
          atoms.push_back(Condition::Compare("D", CompareOp::kGe, Value(v)));
          break;
        case 1:
          atoms.push_back(Condition::Compare("D", CompareOp::kLe, Value(v)));
          break;
        case 2:
          atoms.push_back(Condition::Compare("D", CompareOp::kGt, Value(v)));
          break;
        case 3:
          atoms.push_back(Condition::Compare("D", CompareOp::kLt, Value(v)));
          break;
        default:
          atoms.push_back(
              Condition::Between("D", Value(v), Value(v + 3)));
          break;
      }
    }
    Condition all = atoms[0];
    for (size_t i = 1; i < atoms.size(); ++i) {
      all = Condition::And(all, atoms[i]);
    }
    const Condition simplified = all.Simplified();
    for (int64_t d = -1; d <= 11; ++d) {
      const Tuple t = {Value(d)};
      EXPECT_EQ(*all.Evaluate(s, t), *simplified.Evaluate(s, t))
          << all.ToString() << " vs " << simplified.ToString() << " at d="
          << d;
    }
  }
}

}  // namespace
}  // namespace fusion
