// The kitchen-sink invariance matrix: every combination of workload regime
// (overlapping / partitioned / correlated / capability-poor), optimizer
// strategy, and runtime option (eager / lazy, cache on/off, flaky sources
// with retries) must compute exactly the reference fusion answer, and the
// runtime options may only reduce metered cost. One parameterized suite
// covers the cross-product so regressions in any layer surface as a wrong
// answer, not a silent cost anomaly.
#include <gtest/gtest.h>

#include <memory>

#include "exec/source_call_cache.h"
#include "mediator/mediator.h"
#include "relational/reference_evaluator.h"
#include "source/flaky_source.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

struct Regime {
  const char* name;
  double native;
  double bindings;
  bool partitioned;
  double correlation;
  double zipf;
};

const Regime kRegimes[] = {
    {"plain", 1.0, 0.0, false, 0.0, 0.0},
    {"mixed-capabilities", 0.5, 0.3, false, 0.0, 0.0},
    {"no-semijoins", 0.0, 0.5, false, 0.0, 0.0},
    {"partitioned", 0.7, 0.3, true, 0.0, 0.5},
    {"correlated", 0.8, 0.2, false, 0.9, 0.0},
    {"skewed", 0.6, 0.4, false, 0.3, 1.5},
};

class MatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(MatrixTest, EveryConfigurationComputesTheReferenceAnswer) {
  const auto [regime_idx, strategy_idx, seed] = GetParam();
  const Regime& regime = kRegimes[regime_idx];
  const OptimizerStrategy strategy = static_cast<OptimizerStrategy>(
      strategy_idx);

  SyntheticSpec spec;
  spec.universe_size = 250;
  spec.num_sources = 4;
  spec.num_conditions = 3;
  spec.coverage = 0.4;
  spec.selectivity = {0.08, 0.25, 0.3};
  spec.selectivity_jitter = 0.7;
  spec.frac_native_semijoin = regime.native;
  spec.frac_passed_bindings = regime.bindings;
  spec.partition_entities = regime.partitioned;
  spec.condition_correlation = regime.correlation;
  spec.zipf_theta = regime.zipf;
  spec.seed = seed;
  auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const FusionQuery query = instance->query;
  const ItemSet expected = *ReferenceFusionAnswer(
      RelationsOf(*instance), "M", query.conditions());

  Mediator mediator(std::move(instance->catalog));
  MediatorOptions base;
  base.strategy = strategy;
  base.statistics = StatisticsMode::kOracle;

  // 1. Plain eager execution.
  const auto plain = mediator.Answer(query, base);
  ASSERT_TRUE(plain.ok()) << regime.name << "/"
                          << OptimizerStrategyName(strategy) << ": "
                          << plain.status().ToString();
  EXPECT_EQ(plain->items, expected);
  const double plain_cost = plain->execution.ledger.total();

  // 2. Lazy execution: same answer, never more cost.
  MediatorOptions lazy = base;
  lazy.execution.lazy_short_circuit = true;
  const auto lazy_answer = mediator.Answer(query, lazy);
  ASSERT_TRUE(lazy_answer.ok());
  EXPECT_EQ(lazy_answer->items, expected);
  EXPECT_LE(lazy_answer->execution.ledger.total(), plain_cost + 1e-9);

  // 3. Cached re-execution: same answer, strictly cheaper second run.
  SourceCallCache cache;
  MediatorOptions cached = base;
  cached.execution.cache = &cache;
  const auto first = mediator.Answer(query, cached);
  const auto second = mediator.Answer(query, cached);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->items, expected);
  EXPECT_EQ(second->items, expected);
  EXPECT_LE(second->execution.ledger.total(),
            first->execution.ledger.total() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Everything, MatrixTest,
    ::testing::Combine(
        ::testing::Range(0, 6),                     // regimes
        ::testing::Values(
            static_cast<int>(OptimizerStrategy::kFilter),
            static_cast<int>(OptimizerStrategy::kSja),
            static_cast<int>(OptimizerStrategy::kSjaPlus),
            static_cast<int>(OptimizerStrategy::kGreedySjaPlus)),
        ::testing::Values<uint64_t>(11, 29)));      // seeds

// Flaky federation sweep: every strategy recovers with retries.
class FlakyMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(FlakyMatrixTest, RetriesKeepAnswersCorrectUnderTransientFailures) {
  const OptimizerStrategy strategy =
      static_cast<OptimizerStrategy>(GetParam());
  SyntheticSpec spec;
  spec.universe_size = 200;
  spec.num_sources = 3;
  spec.num_conditions = 2;
  spec.selectivity = {0.1, 0.3};
  spec.seed = 31;
  auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const FusionQuery query = instance->query;
  const ItemSet expected = *ReferenceFusionAnswer(
      RelationsOf(*instance), "M", query.conditions());

  SourceCatalog flaky;
  for (size_t j = 0; j < 3; ++j) {
    const SimulatedSource* sim = instance->catalog.source(j).AsSimulated();
    ASSERT_NE(sim, nullptr);
    FlakySource::Options options;
    options.failure_probability = 0.15;
    options.seed = 500 + j;
    ASSERT_TRUE(flaky
                    .Add(std::make_unique<FlakySource>(
                        std::make_unique<SimulatedSource>(*sim), options))
                    .ok());
  }
  Mediator mediator(std::move(flaky));
  MediatorOptions options;
  options.strategy = strategy;
  options.statistics = StatisticsMode::kOracle;
  options.execution.retry.max_attempts = 8;
  const auto answer = mediator.Answer(query, options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, FlakyMatrixTest,
    ::testing::Values(static_cast<int>(OptimizerStrategy::kFilter),
                      static_cast<int>(OptimizerStrategy::kSja),
                      static_cast<int>(OptimizerStrategy::kSjaPlus),
                      static_cast<int>(OptimizerStrategy::kGreedySja)));

}  // namespace
}  // namespace fusion
