#include <gtest/gtest.h>

#include "query/fusion_query.h"
#include "query/parser.h"

namespace fusion {
namespace {

Schema DmvSchema() {
  return Schema({{"L", ValueType::kString},
                 {"V", ValueType::kString},
                 {"D", ValueType::kInt64}});
}

// ---------------------------------------------------------------------------
// FusionQuery
// ---------------------------------------------------------------------------

TEST(FusionQueryTest, ValidateAcceptsWellFormed) {
  const FusionQuery q("L", {Condition::Eq("V", Value("dui")),
                            Condition::Eq("V", Value("sp"))});
  EXPECT_TRUE(q.Validate(DmvSchema()).ok());
  EXPECT_EQ(q.num_conditions(), 2u);
  EXPECT_EQ(q.merge_attribute(), "L");
}

TEST(FusionQueryTest, ValidateRejectsBadMergeAttribute) {
  const FusionQuery q("Z", {Condition::Eq("V", Value("dui"))});
  EXPECT_FALSE(q.Validate(DmvSchema()).ok());
}

TEST(FusionQueryTest, ValidateRejectsEmptyConditions) {
  const FusionQuery q("L", {});
  EXPECT_FALSE(q.Validate(DmvSchema()).ok());
}

TEST(FusionQueryTest, ValidateRejectsUnknownConditionAttribute) {
  const FusionQuery q("L", {Condition::Eq("NOPE", Value("x"))});
  const Status s = q.Validate(DmvSchema());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("c1"), std::string::npos);
}

TEST(FusionQueryTest, ToSqlMentionsAllParts) {
  const FusionQuery q("L", {Condition::Eq("V", Value("dui")),
                            Condition::Eq("V", Value("sp"))});
  const std::string sql = q.ToSql();
  EXPECT_NE(sql.find("SELECT u1.L"), std::string::npos);
  EXPECT_NE(sql.find("U u2"), std::string::npos);
  EXPECT_NE(sql.find("u1.L = u2.L"), std::string::npos);
  EXPECT_NE(sql.find("'dui'"), std::string::npos);
  EXPECT_NE(sql.find("'sp'"), std::string::npos);
}

TEST(FusionQueryTest, ToSqlRoundTrips) {
  // ToSql output must re-parse to the same query — it is the wire form a
  // connected Client sends to a fusionqd for Query(FusionQuery) calls.
  const std::vector<FusionQuery> queries = {
      FusionQuery("L", {Condition::Eq("V", Value("dui")),
                        Condition::Eq("V", Value("sp"))}),
      FusionQuery("M", {Condition::Eq("A1", Value(int64_t{1}))}),
      FusionQuery("M",
                  {Condition::And(
                       Condition::Eq("A2", Value(int64_t{1})),
                       Condition::Compare("M", CompareOp::kGe,
                                          Value(int64_t{100}))),
                   Condition::Between("M", Value(int64_t{0}),
                                      Value(int64_t{5000})),
                   Condition::In("A1", {Value(int64_t{0}),
                                        Value(int64_t{1})})}),
      FusionQuery("M", {Condition::True()}),
      FusionQuery("M", {Condition::Eq("A1", Value(int64_t{1})),
                        Condition::True()}),
  };
  for (const FusionQuery& q : queries) {
    const auto reparsed = ParseFusionQuery(q.ToSql());
    ASSERT_TRUE(reparsed.ok()) << q.ToSql() << "\n"
                               << reparsed.status().ToString();
    EXPECT_EQ(reparsed->merge_attribute(), q.merge_attribute());
    ASSERT_EQ(reparsed->num_conditions(), q.num_conditions()) << q.ToSql();
    for (size_t i = 0; i < q.num_conditions(); ++i) {
      EXPECT_TRUE(reparsed->conditions()[i].Simplified().Equals(
          q.conditions()[i].Simplified()))
          << q.ToSql();
    }
  }
}

// ---------------------------------------------------------------------------
// SQL parsing — the paper's running example and variants
// ---------------------------------------------------------------------------

TEST(ParseFusionQueryTest, PaperExample) {
  const auto q = ParseFusionQuery(
      "SELECT u1.L FROM U u1, U u2 "
      "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->merge_attribute(), "L");
  ASSERT_EQ(q->num_conditions(), 2u);
  EXPECT_EQ(q->conditions()[0].ToString(), "V = 'dui'");
  EXPECT_EQ(q->conditions()[1].ToString(), "V = 'sp'");
}

TEST(ParseFusionQueryTest, SingleVariableNoMergeEquality) {
  const auto q =
      ParseFusionQuery("SELECT u.L FROM U u WHERE u.V = 'dui'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_conditions(), 1u);
}

TEST(ParseFusionQueryTest, ThreeVariablesChainedEqualities) {
  const auto q = ParseFusionQuery(
      "SELECT a.M FROM U a, U b, U c "
      "WHERE a.M = b.M AND b.M = c.M AND a.X = 1 AND b.X = 2 AND c.X = 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_conditions(), 3u);
}

TEST(ParseFusionQueryTest, MultipleClausesPerVariableAreAnded) {
  const auto q = ParseFusionQuery(
      "SELECT a.M FROM U a, U b "
      "WHERE a.M = b.M AND a.X = 1 AND a.Y = 2 AND b.Z = 3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->num_conditions(), 2u);
  EXPECT_EQ(q->conditions()[0].ToString(), "(X = 1 AND Y = 2)");
}

TEST(ParseFusionQueryTest, VariableWithoutConditionGetsTrue) {
  const auto q = ParseFusionQuery(
      "SELECT a.M FROM U a, U b WHERE a.M = b.M AND a.X = 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->num_conditions(), 2u);
  EXPECT_TRUE(q->conditions()[1].IsTrue());
}

TEST(ParseFusionQueryTest, BetweenInsideConditionClause) {
  const auto q = ParseFusionQuery(
      "SELECT u1.L FROM U u1, U u2 "
      "WHERE u1.L = u2.L AND u1.D BETWEEN 1990 AND 1995 AND u2.V = 'sp'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->conditions()[0].ToString(), "D BETWEEN 1990 AND 1995");
}

TEST(ParseFusionQueryTest, ParenthesizedOrClause) {
  const auto q = ParseFusionQuery(
      "SELECT u1.L FROM U u1, U u2 "
      "WHERE u1.L = u2.L AND (u1.V = 'dui' OR u1.V = 'reckless') "
      "AND u2.V = 'sp'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->conditions()[0].ToString(), "(V = 'dui' OR V = 'reckless')");
}

TEST(ParseFusionQueryTest, CaseInsensitiveKeywords) {
  const auto q = ParseFusionQuery(
      "select u1.L from U u1, U u2 "
      "where u1.L = u2.L and u1.V = 'dui' and u2.V = 'sp'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST(ParseFusionQueryTest, KeywordInsideStringLiteralIsIgnored) {
  const auto q = ParseFusionQuery(
      "SELECT u.L FROM U u WHERE u.V = 'select and where'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->conditions()[0].ToString(), "V = 'select and where'");
}

// Error cases.

TEST(ParseFusionQueryTest, RejectsMissingStructure) {
  EXPECT_FALSE(ParseFusionQuery("SELECT u.L FROM U u").ok());
  EXPECT_FALSE(ParseFusionQuery("FROM U u WHERE u.V = 1").ok());
  EXPECT_FALSE(ParseFusionQuery("").ok());
}

TEST(ParseFusionQueryTest, RejectsUnqualifiedSelect) {
  EXPECT_FALSE(
      ParseFusionQuery("SELECT L FROM U u WHERE u.V = 'x'").ok());
}

TEST(ParseFusionQueryTest, RejectsDisconnectedVariables) {
  EXPECT_FALSE(ParseFusionQuery(
                   "SELECT a.M FROM U a, U b, U c "
                   "WHERE a.M = b.M AND a.X = 1 AND b.X = 1 AND c.X = 1")
                   .ok());
}

TEST(ParseFusionQueryTest, RejectsMergeEqualityOnWrongAttribute) {
  EXPECT_FALSE(ParseFusionQuery(
                   "SELECT a.M FROM U a, U b "
                   "WHERE a.Z = b.Z AND a.X = 1 AND b.X = 1")
                   .ok());
}

TEST(ParseFusionQueryTest, RejectsConditionSpanningTwoVariables) {
  EXPECT_FALSE(ParseFusionQuery(
                   "SELECT a.M FROM U a, U b "
                   "WHERE a.M = b.M AND a.X = 1 AND (a.Y = 1 OR b.Y = 2)")
                   .ok());
}

TEST(ParseFusionQueryTest, RejectsUnknownVariable) {
  EXPECT_FALSE(ParseFusionQuery(
                   "SELECT a.M FROM U a WHERE z.X = 1")
                   .ok());
}

TEST(ParseFusionQueryTest, RejectsDuplicateVariables) {
  EXPECT_FALSE(ParseFusionQuery(
                   "SELECT a.M FROM U a, U a WHERE a.X = 1")
                   .ok());
}

TEST(ParseFusionQueryTest, RejectsUnqualifiedConditionAttribute) {
  EXPECT_FALSE(ParseFusionQuery(
                   "SELECT a.M FROM U a, U b WHERE a.M = b.M AND X = 1")
                   .ok());
}

TEST(ParseFusionQueryTest, RejectsMissingMergeEqualities) {
  EXPECT_FALSE(ParseFusionQuery(
                   "SELECT a.M FROM U a, U b WHERE a.X = 1 AND b.X = 1")
                   .ok());
}

}  // namespace
}  // namespace fusion
