// Failure-injection tests: transient source failures (FlakySource) and the
// executor's retry policy, including the cost accounting of failed attempts.
#include <gtest/gtest.h>

#include <memory>

#include "exec/executor.h"
#include "mediator/mediator.h"
#include "optimizer/filter.h"
#include "relational/reference_evaluator.h"
#include "source/flaky_source.h"
#include "source/simulated_source.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

Schema DmvSchema() {
  return Schema({{"L", ValueType::kString},
                 {"V", ValueType::kString},
                 {"D", ValueType::kInt64}});
}

Relation SmallRelation() {
  Relation r(DmvSchema());
  EXPECT_TRUE(r.Append({Value("J55"), Value("dui"), Value(int64_t{1993})}).ok());
  EXPECT_TRUE(r.Append({Value("T21"), Value("sp"), Value(int64_t{1994})}).ok());
  return r;
}

std::unique_ptr<FlakySource> MakeFlaky(FlakySource::Options options) {
  NetworkProfile net;
  net.query_overhead = 10.0;
  return std::make_unique<FlakySource>(
      std::make_unique<SimulatedSource>("R1", SmallRelation(), Capabilities{},
                                        net),
      options);
}

// ---------------------------------------------------------------------------
// FlakySource behaviour
// ---------------------------------------------------------------------------

TEST(FlakySourceTest, FailFirstKThenSucceeds) {
  FlakySource::Options options;
  options.fail_first_k = 2;
  auto src = MakeFlaky(options);
  CostLedger ledger;
  EXPECT_FALSE(src->Select(Condition::True(), "L", &ledger).ok());
  EXPECT_FALSE(src->Select(Condition::True(), "L", &ledger).ok());
  EXPECT_TRUE(src->Select(Condition::True(), "L", &ledger).ok());
  EXPECT_EQ(src->calls_attempted(), 3u);
  EXPECT_EQ(src->calls_failed(), 2u);
}

TEST(FlakySourceTest, FailedCallsChargeOverhead) {
  FlakySource::Options options;
  options.fail_first_k = 1;
  auto src = MakeFlaky(options);
  CostLedger ledger;
  EXPECT_FALSE(src->Select(Condition::True(), "L", &ledger).ok());
  ASSERT_EQ(ledger.num_queries(), 1u);
  EXPECT_DOUBLE_EQ(ledger.total(), 10.0);  // the wasted round trip
  EXPECT_NE(ledger.charges()[0].detail.find("FAILED"), std::string::npos);
}

TEST(FlakySourceTest, ZeroProbabilityNeverFails) {
  auto src = MakeFlaky({});
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(src->Select(Condition::True(), "L", nullptr).ok());
  }
  EXPECT_EQ(src->calls_failed(), 0u);
}

TEST(FlakySourceTest, DelegatesMetadata) {
  auto src = MakeFlaky({});
  EXPECT_EQ(src->name(), "R1");
  EXPECT_EQ(src->schema(), DmvSchema());
  EXPECT_NE(src->AsSimulated(), nullptr);
}

TEST(FlakySourceTest, FailuresAreSeedDeterministic) {
  FlakySource::Options options;
  options.failure_probability = 0.5;
  options.seed = 99;
  auto a = MakeFlaky(options);
  auto b = MakeFlaky(options);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(a->Select(Condition::True(), "L", nullptr).ok(),
              b->Select(Condition::True(), "L", nullptr).ok());
  }
}

// ---------------------------------------------------------------------------
// Executor retries
// ---------------------------------------------------------------------------

/// Builds a catalog with one flaky and one reliable source.
SourceCatalog FlakyCatalog(FlakySource::Options options) {
  SourceCatalog catalog;
  EXPECT_TRUE(catalog.Add(MakeFlaky(options)).ok());
  NetworkProfile net;
  net.query_overhead = 10.0;
  Relation r2(DmvSchema());
  EXPECT_TRUE(
      r2.Append({Value("J55"), Value("sp"), Value(int64_t{1996})}).ok());
  EXPECT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "R2", std::move(r2), Capabilities{}, net))
                  .ok());
  return catalog;
}

FusionQuery DuiSpQuery() {
  return FusionQuery("L", {Condition::Eq("V", Value("dui")),
                           Condition::Eq("V", Value("sp"))});
}

Plan FilterPlanFor2x2() {
  Plan plan;
  const int a0 = plan.EmitSelect(0, 0);
  const int a1 = plan.EmitSelect(0, 1);
  const int x1 = plan.EmitUnion({a0, a1});
  const int b0 = plan.EmitSelect(1, 0);
  const int b1 = plan.EmitSelect(1, 1);
  const int u2 = plan.EmitUnion({b0, b1});
  const int x2 = plan.EmitIntersect({x1, u2});
  plan.SetResult(x2);
  return plan;
}

TEST(RetryTest, WithoutRetriesTransientFailureKillsTheQuery) {
  FlakySource::Options options;
  options.fail_first_k = 1;
  const SourceCatalog catalog = FlakyCatalog(options);
  const auto report = ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

TEST(RetryTest, RetriesRecoverFromTransientFailures) {
  FlakySource::Options options;
  options.fail_first_k = 1;
  const SourceCatalog catalog = FlakyCatalog(options);
  ExecOptions exec;
  exec.max_attempts = 3;
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->answer.ToString(), "{'J55'}");
  // The failed attempt's overhead is on the ledger alongside the retries.
  bool saw_failed_charge = false;
  for (const Charge& c : report->ledger.charges()) {
    if (c.detail.find("FAILED") != std::string::npos) saw_failed_charge = true;
  }
  EXPECT_TRUE(saw_failed_charge);
}

TEST(RetryTest, RetriesExhaustEventually) {
  FlakySource::Options options;
  options.fail_first_k = 100;  // fails more times than we retry
  const SourceCatalog catalog = FlakyCatalog(options);
  ExecOptions exec;
  exec.max_attempts = 3;
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  EXPECT_FALSE(report.ok());
}

TEST(RetryTest, PermanentErrorsAreNotRetried) {
  // A semijoin against an unsupported source is permanent: the executor must
  // not burn attempts on it.
  SourceCatalog catalog;
  Capabilities none;
  none.semijoin = SemijoinSupport::kUnsupported;
  NetworkProfile net;
  EXPECT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "R1", SmallRelation(), none, net))
                  .ok());
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  const int s = plan.EmitSemiJoin(1, 0, a);
  plan.SetResult(s);
  ExecOptions exec;
  exec.max_attempts = 5;
  const auto report = ExecutePlan(plan, catalog, DuiSpQuery(), exec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnsupported);
}

TEST(RetryTest, EndToEndThroughMediatorOnFlakyFederation) {
  // Random failures at 20% with 4 attempts: the query should almost surely
  // succeed and still compute the right answer.
  SyntheticSpec spec;
  spec.universe_size = 200;
  spec.num_sources = 4;
  spec.num_conditions = 2;
  spec.seed = 5;
  auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const ItemSet expected = *ReferenceFusionAnswer(
      RelationsOf(*instance), "M", instance->query.conditions());
  const FusionQuery query = instance->query;

  // Rewrap every source in a flaky decorator.
  SourceCatalog flaky;
  SourceCatalog original = std::move(instance->catalog);
  for (size_t j = 0; j < 4; ++j) {
    const SimulatedSource* sim = original.source(j).AsSimulated();
    ASSERT_NE(sim, nullptr);
    FlakySource::Options options;
    options.failure_probability = 0.2;
    options.seed = 100 + j;
    ASSERT_TRUE(flaky
                    .Add(std::make_unique<FlakySource>(
                        std::make_unique<SimulatedSource>(*sim), options))
                    .ok());
  }
  Mediator mediator(std::move(flaky));
  MediatorOptions options;
  options.statistics = StatisticsMode::kOracle;
  options.execution.max_attempts = 6;
  const auto answer = mediator.Answer(query, options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items, expected);
}

}  // namespace
}  // namespace fusion
