// Failure-injection tests: transient source failures (FlakySource), the
// executor's retry/backoff policy, option validation, and the retry × cache
// interaction — including the cost accounting of failed attempts.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "exec/executor.h"
#include "exec/source_call_cache.h"
#include "mediator/mediator.h"
#include "optimizer/filter.h"
#include "relational/reference_evaluator.h"
#include "source/flaky_source.h"
#include "source/simulated_source.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

Schema DmvSchema() {
  return Schema({{"L", ValueType::kString},
                 {"V", ValueType::kString},
                 {"D", ValueType::kInt64}});
}

Relation SmallRelation() {
  Relation r(DmvSchema());
  EXPECT_TRUE(r.Append({Value("J55"), Value("dui"), Value(int64_t{1993})}).ok());
  EXPECT_TRUE(r.Append({Value("T21"), Value("sp"), Value(int64_t{1994})}).ok());
  return r;
}

std::unique_ptr<FlakySource> MakeFlaky(FlakySource::Options options) {
  NetworkProfile net;
  net.query_overhead = 10.0;
  return std::make_unique<FlakySource>(
      std::make_unique<SimulatedSource>("R1", SmallRelation(), Capabilities{},
                                        net),
      options);
}

// ---------------------------------------------------------------------------
// FlakySource behaviour
// ---------------------------------------------------------------------------

TEST(FlakySourceTest, FailFirstKThenSucceeds) {
  FlakySource::Options options;
  options.fail_first_k = 2;
  auto src = MakeFlaky(options);
  CostLedger ledger;
  EXPECT_FALSE(src->Select(Condition::True(), "L", &ledger).ok());
  EXPECT_FALSE(src->Select(Condition::True(), "L", &ledger).ok());
  EXPECT_TRUE(src->Select(Condition::True(), "L", &ledger).ok());
  EXPECT_EQ(src->calls_attempted(), 3u);
  EXPECT_EQ(src->calls_failed(), 2u);
}

TEST(FlakySourceTest, FailedCallsChargeOverhead) {
  FlakySource::Options options;
  options.fail_first_k = 1;
  auto src = MakeFlaky(options);
  CostLedger ledger;
  EXPECT_FALSE(src->Select(Condition::True(), "L", &ledger).ok());
  ASSERT_EQ(ledger.num_queries(), 1u);
  EXPECT_DOUBLE_EQ(ledger.total(), 10.0);  // the wasted round trip
  EXPECT_NE(ledger.charges()[0].detail.find("FAILED"), std::string::npos);
}

TEST(FlakySourceTest, ZeroProbabilityNeverFails) {
  auto src = MakeFlaky({});
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(src->Select(Condition::True(), "L", nullptr).ok());
  }
  EXPECT_EQ(src->calls_failed(), 0u);
}

TEST(FlakySourceTest, DelegatesMetadata) {
  auto src = MakeFlaky({});
  EXPECT_EQ(src->name(), "R1");
  EXPECT_EQ(src->schema(), DmvSchema());
  EXPECT_NE(src->AsSimulated(), nullptr);
}

TEST(FlakySourceTest, FailuresAreSeedDeterministic) {
  FlakySource::Options options;
  options.failure_probability = 0.5;
  options.seed = 99;
  auto a = MakeFlaky(options);
  auto b = MakeFlaky(options);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(a->Select(Condition::True(), "L", nullptr).ok(),
              b->Select(Condition::True(), "L", nullptr).ok());
  }
}

TEST(FlakySourceTest, OutageWindowFailsPermanently) {
  FlakySource::Options options;
  options.outage_start = 1;
  options.outage_end = 3;  // calls 1 and 2 are down; 0 and 3+ are fine
  auto src = MakeFlaky(options);
  EXPECT_TRUE(src->Select(Condition::True(), "L", nullptr).ok());
  const auto down = src->Select(Condition::True(), "L", nullptr);
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(src->Select(Condition::True(), "L", nullptr).ok());
  EXPECT_TRUE(src->Select(Condition::True(), "L", nullptr).ok());
}

TEST(FlakySourceTest, TransientAndOutageCodesAreDistinct) {
  FlakySource::Options transient;
  transient.fail_first_k = 1;
  auto a = MakeFlaky(transient);
  EXPECT_EQ(a->Select(Condition::True(), "L", nullptr).status().code(),
            StatusCode::kInternal);

  FlakySource::Options outage;
  outage.outage_end = std::numeric_limits<size_t>::max();
  auto b = MakeFlaky(outage);
  EXPECT_EQ(b->Select(Condition::True(), "L", nullptr).status().code(),
            StatusCode::kUnavailable);
}

TEST(FlakySourceTest, TargetedOperationLeavesOthersAlone) {
  FlakySource::Options options;
  options.fail_first_k = 100;
  options.target_operation = "lq";
  auto src = MakeFlaky(options);
  // sq passes untouched and consumes no failure decision...
  EXPECT_TRUE(src->Select(Condition::True(), "L", nullptr).ok());
  EXPECT_EQ(src->calls_attempted(), 0u);
  // ...while lq is on the failure budget.
  EXPECT_FALSE(src->Load(nullptr).ok());
  EXPECT_EQ(src->calls_attempted(), 1u);
}

TEST(FlakySourceTest, InjectedLatencyDelaysCalls) {
  FlakySource::Options options;
  options.injected_latency_seconds = 0.02;
  auto src = MakeFlaky(options);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(src->Select(Condition::True(), "L", nullptr).ok());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed, 0.02);
}

// ---------------------------------------------------------------------------
// Executor retries
// ---------------------------------------------------------------------------

/// Builds a catalog with one flaky and one reliable source.
SourceCatalog FlakyCatalog(FlakySource::Options options) {
  SourceCatalog catalog;
  EXPECT_TRUE(catalog.Add(MakeFlaky(options)).ok());
  NetworkProfile net;
  net.query_overhead = 10.0;
  Relation r2(DmvSchema());
  EXPECT_TRUE(
      r2.Append({Value("J55"), Value("sp"), Value(int64_t{1996})}).ok());
  EXPECT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "R2", std::move(r2), Capabilities{}, net))
                  .ok());
  return catalog;
}

FusionQuery DuiSpQuery() {
  return FusionQuery("L", {Condition::Eq("V", Value("dui")),
                           Condition::Eq("V", Value("sp"))});
}

Plan FilterPlanFor2x2() {
  Plan plan;
  const int a0 = plan.EmitSelect(0, 0);
  const int a1 = plan.EmitSelect(0, 1);
  const int x1 = plan.EmitUnion({a0, a1});
  const int b0 = plan.EmitSelect(1, 0);
  const int b1 = plan.EmitSelect(1, 1);
  const int u2 = plan.EmitUnion({b0, b1});
  const int x2 = plan.EmitIntersect({x1, u2});
  plan.SetResult(x2);
  return plan;
}

TEST(RetryTest, WithoutRetriesTransientFailureKillsTheQuery) {
  FlakySource::Options options;
  options.fail_first_k = 1;
  const SourceCatalog catalog = FlakyCatalog(options);
  const auto report = ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInternal);
}

TEST(RetryTest, RetriesRecoverFromTransientFailures) {
  FlakySource::Options options;
  options.fail_first_k = 1;
  const SourceCatalog catalog = FlakyCatalog(options);
  ExecOptions exec;
  exec.retry.max_attempts = 3;
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->answer.ToString(), "{'J55'}");
  // The failed attempt's overhead is on the ledger alongside the retries.
  bool saw_failed_charge = false;
  for (const Charge& c : report->ledger.charges()) {
    if (c.detail.find("FAILED") != std::string::npos) saw_failed_charge = true;
  }
  EXPECT_TRUE(saw_failed_charge);
}

TEST(RetryTest, RetriesExhaustEventually) {
  FlakySource::Options options;
  options.fail_first_k = 100;  // fails more times than we retry
  const SourceCatalog catalog = FlakyCatalog(options);
  ExecOptions exec;
  exec.retry.max_attempts = 3;
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  EXPECT_FALSE(report.ok());
}

TEST(RetryTest, PermanentErrorsAreNotRetried) {
  // A semijoin against an unsupported source is permanent: the executor must
  // not burn attempts on it.
  SourceCatalog catalog;
  Capabilities none;
  none.semijoin = SemijoinSupport::kUnsupported;
  NetworkProfile net;
  EXPECT_TRUE(catalog
                  .Add(std::make_unique<SimulatedSource>(
                      "R1", SmallRelation(), none, net))
                  .ok());
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  const int s = plan.EmitSemiJoin(1, 0, a);
  plan.SetResult(s);
  ExecOptions exec;
  exec.retry.max_attempts = 5;
  const auto report = ExecutePlan(plan, catalog, DuiSpQuery(), exec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnsupported);
}

TEST(RetryTest, PermanentUnavailableIsNotRetried) {
  // A source in outage fails with kUnavailable: retrying cannot help, so the
  // executor must not burn the retry ladder (one attempt, one wasted charge).
  FlakySource::Options options;
  options.outage_end = std::numeric_limits<size_t>::max();
  SourceCatalog catalog = FlakyCatalog(options);
  ExecOptions exec;
  exec.retry.max_attempts = 5;
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable);
  const auto* flaky = dynamic_cast<const FlakySource*>(&catalog.source(0));
  ASSERT_NE(flaky, nullptr);
  EXPECT_EQ(flaky->calls_attempted(), 1u);
}

// ---------------------------------------------------------------------------
// ExecOptions validation
// ---------------------------------------------------------------------------

TEST(ValidateOptionsTest, RejectsBadOptionsBeforeContactingSources) {
  const SourceCatalog catalog = FlakyCatalog({});
  const Plan plan = FilterPlanFor2x2();
  const FusionQuery query = DuiSpQuery();
  auto expect_invalid = [&](const ExecOptions& exec) {
    const auto report = ExecutePlan(plan, catalog, query, exec);
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
    // Rejected before any call: the flaky source saw nothing.
    const auto* flaky = dynamic_cast<const FlakySource*>(&catalog.source(0));
    ASSERT_NE(flaky, nullptr);
    EXPECT_EQ(flaky->calls_attempted(), 0u);
  };
  ExecOptions exec;
  exec.retry.max_attempts = 0;
  expect_invalid(exec);
  exec = ExecOptions{};
  exec.retry.max_attempts = -3;
  expect_invalid(exec);
  exec = ExecOptions{};
  exec.parallelism = 0;
  expect_invalid(exec);
  exec = ExecOptions{};
  exec.simulated_seconds_per_cost = -0.5;
  expect_invalid(exec);
  exec = ExecOptions{};
  exec.retry.jitter_fraction = 1.0;
  expect_invalid(exec);
  exec = ExecOptions{};
  exec.retry.backoff_multiplier = 0.5;
  expect_invalid(exec);
  exec = ExecOptions{};
  exec.deadline_seconds = -1.0;
  expect_invalid(exec);
  exec = ExecOptions{};
  exec.cost_budget = -1.0;
  expect_invalid(exec);
}

TEST(ValidateOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateExecOptions(ExecOptions{}).ok());
}

// ---------------------------------------------------------------------------
// Backoff schedule
// ---------------------------------------------------------------------------

TEST(BackoffTest, ExponentialGrowthWithCap) {
  RetryPolicy retry;
  retry.initial_backoff_seconds = 0.1;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff_seconds = 0.5;
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(0, 2), 0.2);
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(0, 3), 0.4);
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(0, 4), 0.5);  // capped
  EXPECT_DOUBLE_EQ(retry.BackoffSeconds(0, 9), 0.5);
}

TEST(BackoffTest, NoBackoffByDefault) {
  EXPECT_DOUBLE_EQ(RetryPolicy{}.BackoffSeconds(0, 1), 0.0);
}

TEST(BackoffTest, JitterIsDeterministicPerSeedSourceAndAttempt) {
  RetryPolicy retry;
  retry.initial_backoff_seconds = 0.1;
  retry.jitter_fraction = 0.3;
  retry.jitter_seed = 42;
  RetryPolicy same = retry;
  RetryPolicy other = retry;
  other.jitter_seed = 43;
  bool any_differs_across_seeds = false;
  for (size_t source = 0; source < 4; ++source) {
    double base = retry.initial_backoff_seconds;
    for (int attempt = 1; attempt <= 5; ++attempt) {
      const double a = retry.BackoffSeconds(source, attempt);
      // Identical policy ⇒ identical schedule, every time (pure function).
      EXPECT_DOUBLE_EQ(a, same.BackoffSeconds(source, attempt));
      EXPECT_DOUBLE_EQ(a, retry.BackoffSeconds(source, attempt));
      // Jitter stays inside the symmetric band around the capped base.
      const double capped = std::min(base, retry.max_backoff_seconds);
      EXPECT_GE(a, capped * (1.0 - retry.jitter_fraction) - 1e-12);
      EXPECT_LE(a, capped * (1.0 + retry.jitter_fraction) + 1e-12);
      if (a != other.BackoffSeconds(source, attempt)) {
        any_differs_across_seeds = true;
      }
      base *= retry.backoff_multiplier;
    }
  }
  EXPECT_TRUE(any_differs_across_seeds);
}

TEST(BackoffTest, RetriesActuallySleep) {
  FlakySource::Options options;
  options.fail_first_k = 2;
  const SourceCatalog catalog = FlakyCatalog(options);
  ExecOptions exec;
  exec.retry.max_attempts = 3;
  exec.retry.initial_backoff_seconds = 0.02;
  const auto start = std::chrono::steady_clock::now();
  const auto report =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->answer.ToString(), "{'J55'}");
  // Two transient failures ⇒ two backoff sleeps: 0.02 + 0.04.
  EXPECT_GE(elapsed, 0.06);
  EXPECT_EQ(report->retries_total, 2u);
}

// ---------------------------------------------------------------------------
// Retry × cache
// ---------------------------------------------------------------------------

TEST(RetryCacheTest, RetriedSuccessPopulatesCacheExactlyOnce) {
  FlakySource::Options options;
  options.fail_first_k = 1;
  SourceCatalog catalog = FlakyCatalog(options);
  SourceCallCache cache;
  ExecOptions exec;
  exec.retry.max_attempts = 3;
  exec.cache = &cache;
  const auto first =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->retries_total, 1u);
  const auto* flaky = dynamic_cast<const FlakySource*>(&catalog.source(0));
  ASSERT_NE(flaky, nullptr);
  const size_t calls_after_first = flaky->calls_attempted();

  // The retried success was published: a second run answers every selection
  // from the memo and issues no further source calls.
  const auto second =
      ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->answer, first->answer);
  EXPECT_EQ(second->cache_hits, 4u);
  EXPECT_EQ(second->ledger.num_queries(), 0u);
  EXPECT_EQ(flaky->calls_attempted(), calls_after_first);
}

TEST(RetryCacheTest, ConcurrentExecutionsShareTheRetriedAnswer) {
  // Several executions race on the same cache against a source whose first
  // call fails. Single-flight: whoever leads a given (source, cond) flight
  // retries through the failure; waiters inherit the retried success. All
  // executions must agree on the answer. (Run under TSan via the
  // concurrency label.)
  FlakySource::Options options;
  options.fail_first_k = 1;
  SourceCatalog catalog = FlakyCatalog(options);
  SourceCallCache cache;
  constexpr int kThreads = 4;
  std::vector<Result<ExecutionReport>> results(
      kThreads, Status(StatusCode::kInternal, "never ran"));
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ExecOptions exec;
        exec.retry.max_attempts = 3;
        exec.cache = &cache;
        results[static_cast<size_t>(t)] =
            ExecutePlan(FilterPlanFor2x2(), catalog, DuiSpQuery(), exec);
      });
    }
    for (std::thread& th : threads) th.join();
  }
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->answer.ToString(), "{'J55'}");
  }
  // Exactly one failure was injected (fail_first_k = 1), so exactly one
  // flight retried; every other consumer either waited on a flight or hit
  // the memo.
  const auto* flaky = dynamic_cast<const FlakySource*>(&catalog.source(0));
  ASSERT_NE(flaky, nullptr);
  EXPECT_EQ(flaky->calls_failed(), 1u);
}

TEST(RetryTest, EndToEndThroughMediatorOnFlakyFederation) {
  // Random failures at 20% with 4 attempts: the query should almost surely
  // succeed and still compute the right answer.
  SyntheticSpec spec;
  spec.universe_size = 200;
  spec.num_sources = 4;
  spec.num_conditions = 2;
  spec.seed = 5;
  auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const ItemSet expected = *ReferenceFusionAnswer(
      RelationsOf(*instance), "M", instance->query.conditions());
  const FusionQuery query = instance->query;

  // Rewrap every source in a flaky decorator.
  SourceCatalog flaky;
  SourceCatalog original = std::move(instance->catalog);
  for (size_t j = 0; j < 4; ++j) {
    const SimulatedSource* sim = original.source(j).AsSimulated();
    ASSERT_NE(sim, nullptr);
    FlakySource::Options options;
    options.failure_probability = 0.2;
    options.seed = 100 + j;
    ASSERT_TRUE(flaky
                    .Add(std::make_unique<FlakySource>(
                        std::make_unique<SimulatedSource>(*sim), options))
                    .ok());
  }
  Mediator mediator(std::move(flaky));
  MediatorOptions options;
  options.statistics = StatisticsMode::kOracle;
  options.execution.retry.max_attempts = 6;
  const auto answer = mediator.Answer(query, options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items, expected);
}

}  // namespace
}  // namespace fusion
