// Tests for the extensions built on top of the paper's core: the
// response-time (parallel) cost analysis and SJA-RT optimizer, lazy
// short-circuit execution, witness-based second-phase fetch planning,
// yield-ordered semijoin pruning, and the partitioned-data contrast regime.
#include <gtest/gtest.h>

#include "cost/oracle_cost_model.h"
#include "exec/executor.h"
#include "mediator/fetch_planner.h"
#include "mediator/mediator.h"
#include "optimizer/brute_force.h"
#include "optimizer/filter.h"
#include "optimizer/postopt.h"
#include "optimizer/sja.h"
#include "optimizer/sja_rt.h"
#include "plan/response_time.h"
#include "relational/reference_evaluator.h"
#include "workload/synthetic.h"

namespace fusion {
namespace {

// ---------------------------------------------------------------------------
// Response-time analysis
// ---------------------------------------------------------------------------

TEST(ResponseTimeTest, ParallelSelectionsOverlap) {
  // Two selections against different sources run concurrently: the makespan
  // is the max, not the sum.
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  const int b = plan.EmitSelect(0, 1);
  const int u = plan.EmitUnion({a, b});
  plan.SetResult(u);
  const auto rt = ComputeResponseTime(plan, {30.0, 50.0, 0.0});
  ASSERT_TRUE(rt.ok());
  EXPECT_DOUBLE_EQ(rt->response_time, 50.0);
  EXPECT_DOUBLE_EQ(rt->total_work, 80.0);
}

TEST(ResponseTimeTest, SemijoinChainsSerialize) {
  // sq -> sjq -> sjq must run in sequence (data dependencies).
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  const int s1 = plan.EmitSemiJoin(1, 1, a);
  const int s2 = plan.EmitSemiJoin(2, 2, s1);
  plan.SetResult(s2);
  const auto rt = ComputeResponseTime(plan, {10.0, 20.0, 30.0});
  ASSERT_TRUE(rt.ok());
  EXPECT_DOUBLE_EQ(rt->response_time, 60.0);
}

TEST(ResponseTimeTest, SameSourceQueriesSerialize) {
  // Two independent selections against the SAME source queue up.
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  const int b = plan.EmitSelect(1, 0);
  const int u = plan.EmitUnion({a, b});
  plan.SetResult(u);
  const auto rt = ComputeResponseTime(plan, {30.0, 50.0, 0.0});
  ASSERT_TRUE(rt.ok());
  EXPECT_DOUBLE_EQ(rt->response_time, 80.0);
}

TEST(ResponseTimeTest, LocalOpsAreInstant) {
  Plan plan;
  const int y = plan.EmitLoad(0);
  const int a = plan.EmitLocalSelect(0, y);
  const int b = plan.EmitLocalSelect(1, y);
  const int i = plan.EmitIntersect({a, b});
  plan.SetResult(i);
  const auto rt = ComputeResponseTime(plan, {100.0, 0.0, 0.0, 0.0});
  ASSERT_TRUE(rt.ok());
  EXPECT_DOUBLE_EQ(rt->response_time, 100.0);
}

TEST(ResponseTimeTest, RejectsWrongCostVectorLength) {
  Plan plan;
  const int a = plan.EmitSelect(0, 0);
  plan.SetResult(a);
  EXPECT_FALSE(ComputeResponseTime(plan, {1.0, 2.0}).ok());
}

TEST(ResponseTimeTest, FilterPlanResponseTimeIsMaxPerSource) {
  // A filter plan's makespan is governed by the slowest source's two queries
  // in sequence, not by the total over all sources.
  SyntheticSpec spec;
  spec.universe_size = 300;
  spec.num_sources = 6;
  spec.num_conditions = 2;
  spec.seed = 12;
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const auto model =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(model.ok());
  const auto filter = OptimizeFilter(*model);
  ASSERT_TRUE(filter.ok());
  const auto rt = EstimateResponseTime(filter->plan, *model);
  ASSERT_TRUE(rt.ok());
  EXPECT_LT(rt->response_time, rt->total_work);
  // Lower bound: the slowest single source query.
  double slowest = 0;
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      slowest = std::max(slowest, model->SqCost(i, j));
    }
  }
  EXPECT_GE(rt->response_time, slowest);
}

// ---------------------------------------------------------------------------
// SJA-RT
// ---------------------------------------------------------------------------

class SjaRtTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SjaRtTest, ProducesCorrectAnswersAndBeatsWorkOptimalOnRt) {
  SyntheticSpec spec;
  spec.universe_size = 300;
  spec.num_sources = 3;
  spec.num_conditions = 3;
  spec.coverage = 0.4;
  spec.selectivity_jitter = 0.8;
  spec.frac_native_semijoin = 0.7;
  spec.frac_passed_bindings = 0.3;
  spec.seed = GetParam();
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const auto model =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(model.ok());

  const auto sja_rt = OptimizeSjaResponseTime(*model);
  ASSERT_TRUE(sja_rt.ok()) << sja_rt.status().ToString();
  // Correct answer.
  const ItemSet expected = *ReferenceFusionAnswer(
      RelationsOf(*instance), "M", instance->query.conditions());
  const auto report =
      ExecutePlan(sja_rt->plan, instance->catalog, instance->query);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->answer, expected);

  // Its declared cost is the exact response-time estimate of its plan.
  const auto rt = EstimateResponseTime(sja_rt->plan, *model);
  ASSERT_TRUE(rt.ok());
  EXPECT_NEAR(rt->response_time, sja_rt->estimated_cost,
              1e-9 * (1 + sja_rt->estimated_cost));

  // Never worse on RT than the work-optimal SJA plan (it considers SJA's
  // candidate and more within each ordering... heuristic per round, so
  // allow equality with the SJA plan's RT as the weakest acceptable bound).
  const auto sja = OptimizeSja(*model);
  ASSERT_TRUE(sja.ok());
  const auto sja_rt_of_work_plan = EstimateResponseTime(sja->plan, *model);
  ASSERT_TRUE(sja_rt_of_work_plan.ok());
  EXPECT_LE(sja_rt->estimated_cost,
            sja_rt_of_work_plan->response_time * 1.2 + 1e-9)
      << "RT optimizer much worse than work-optimal plan's RT";

  // Against the RT brute force: never better, usually equal.
  const auto brute =
      BruteForceSemijoinAdaptive(*model, 1 << 20,
                                 PlanObjective::kResponseTime);
  ASSERT_TRUE(brute.ok());
  EXPECT_GE(sja_rt->estimated_cost, brute->estimated_cost - 1e-9);
  EXPECT_LE(sja_rt->estimated_cost, brute->estimated_cost * 1.5 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SjaRtTest, ::testing::Range<uint64_t>(0, 10));

TEST(SjaRtTest, PrefersParallelismOverMinimalWork) {
  // One source is slow but cheap to query; total-work SJA may chain
  // semijoins through it while SJA-RT avoids long chains. At minimum the
  // two objectives must rank these hand-built plans consistently.
  SourceParams fast;
  fast.capabilities.semijoin = SemijoinSupport::kNative;
  fast.network.query_overhead = 1;
  fast.network.cost_per_item_sent = 0.01;
  fast.network.cost_per_item_received = 0.01;
  fast.cardinality = 100;
  fast.result_size = {50, 50};
  SourceParams slow = fast;
  slow.network.query_overhead = 500;  // dominates any data transfer
  const ParametricCostModel model({fast, slow}, 200);

  // Chain plan: both rounds' queries at the slow source serialize.
  ConditionOrderPlan chain = MakeStructure({0, 1}, 2);
  chain.use_semijoin[1] = {true, true};
  const auto built = BuildStructuredPlan(model, chain, {}, false);
  ASSERT_TRUE(built.ok());
  const auto rt = EstimateResponseTime(built->plan, model);
  ASSERT_TRUE(rt.ok());
  // Slow source answers c1 (500) then its c2 semijoin waits for X1 → 1000+.
  EXPECT_GE(rt->response_time, 1000.0);
  EXPECT_LT(rt->response_time, rt->total_work);
}

// ---------------------------------------------------------------------------
// Metered per-op costs & measured response time
// ---------------------------------------------------------------------------

class MeteredRtTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MeteredRtTest, PerOpCostsSumToLedgerAndMatchEstimates) {
  SyntheticSpec spec;
  spec.universe_size = 300;
  spec.num_sources = 4;
  spec.num_conditions = 3;
  spec.frac_native_semijoin = 0.7;
  spec.frac_passed_bindings = 0.3;
  spec.selectivity_jitter = 0.8;
  spec.seed = GetParam();
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const auto model =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(model.ok());
  const auto sja = OptimizeSja(*model);
  ASSERT_TRUE(sja.ok());

  for (const bool lazy : {false, true}) {
    ExecOptions options;
    options.lazy_short_circuit = lazy;
    const auto report = ExecutePlan(sja->plan, instance->catalog,
                                    instance->query, options);
    ASSERT_TRUE(report.ok());
    double sum = 0;
    for (double c : report->per_op_cost) sum += c;
    EXPECT_NEAR(sum, report->ledger.total(), 1e-9)
        << "per-op attribution must cover the whole ledger (lazy=" << lazy
        << ")";
    // Measured makespan from metered costs equals the oracle estimate.
    const auto measured = ComputeResponseTime(sja->plan, report->per_op_cost);
    const auto estimated = EstimateResponseTime(sja->plan, *model);
    ASSERT_TRUE(measured.ok());
    ASSERT_TRUE(estimated.ok());
    if (!lazy) {
      EXPECT_NEAR(measured->response_time, estimated->response_time,
                  1e-6 * (1 + estimated->response_time));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeteredRtTest,
                         ::testing::Range<uint64_t>(40, 48));

// ---------------------------------------------------------------------------
// Lazy short-circuit execution
// ---------------------------------------------------------------------------

TEST(LazyExecTest, EmptyAnchorConditionSkipsDownstreamQueries) {
  // Condition 1 matches nothing anywhere: once X1 = ∅, a lazy executor
  // answers without touching the remaining rounds' sources.
  SyntheticSpec spec;
  spec.universe_size = 200;
  spec.num_sources = 4;
  spec.num_conditions = 3;
  spec.selectivity = {0.0, 0.3, 0.3};  // first condition unsatisfiable
  spec.seed = 3;
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const auto model =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(model.ok());
  const auto sja = OptimizeSja(*model);
  ASSERT_TRUE(sja.ok());

  const auto eager =
      ExecutePlan(sja->plan, instance->catalog, instance->query);
  ExecOptions lazy_options;
  lazy_options.lazy_short_circuit = true;
  const auto lazy = ExecutePlan(sja->plan, instance->catalog,
                                instance->query, lazy_options);
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(lazy.ok());
  EXPECT_TRUE(lazy->answer.empty());
  EXPECT_EQ(lazy->answer, eager->answer);
  EXPECT_LT(lazy->ledger.total(), eager->ledger.total());
  EXPECT_GT(lazy->skipped_ops, 0u);
}

class LazyEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LazyEquivalenceTest, LazyMatchesEagerNeverCostsMore) {
  SyntheticSpec spec;
  spec.universe_size = 300;
  spec.num_sources = 4;
  spec.num_conditions = 3;
  spec.selectivity_default = 0.1;
  spec.selectivity_jitter = 0.9;
  spec.frac_native_semijoin = 0.6;
  spec.frac_passed_bindings = 0.4;
  spec.seed = GetParam();
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const auto model =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(model.ok());
  for (const bool postopt : {false, true}) {
    const auto opt = postopt ? OptimizeSjaPlus(*model) : OptimizeSja(*model);
    ASSERT_TRUE(opt.ok());
    const auto eager =
        ExecutePlan(opt->plan, instance->catalog, instance->query);
    ExecOptions options;
    options.lazy_short_circuit = true;
    const auto lazy =
        ExecutePlan(opt->plan, instance->catalog, instance->query, options);
    ASSERT_TRUE(eager.ok());
    ASSERT_TRUE(lazy.ok());
    EXPECT_EQ(lazy->answer, eager->answer);
    EXPECT_LE(lazy->ledger.total(), eager->ledger.total() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 12));

// ---------------------------------------------------------------------------
// Witness-based fetch planning
// ---------------------------------------------------------------------------

ItemSet Ints(std::initializer_list<int64_t> xs) {
  std::vector<Value> v;
  for (int64_t x : xs) v.push_back(Value(x));
  return ItemSet(std::move(v));
}

TEST(FetchPlannerTest, GreedyCoverPicksLargestFirst) {
  const std::vector<ItemSet> witnesses = {
      Ints({1, 2, 3, 4}), Ints({4, 5}), Ints({5})};
  const auto plan = PlanWitnessFetch(witnesses, Ints({1, 2, 3, 4, 5}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->size(), 2u);
  EXPECT_EQ((*plan)[0].source, 0u);
  EXPECT_EQ((*plan)[0].items, Ints({1, 2, 3, 4}));
  EXPECT_EQ((*plan)[1].source, 1u);
  EXPECT_EQ((*plan)[1].items, Ints({5}));
}

TEST(FetchPlannerTest, EmptyAnswerNeedsNoFetches) {
  const auto plan = PlanWitnessFetch({Ints({1})}, ItemSet());
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
}

TEST(FetchPlannerTest, ErrorsWhenAnswerLacksWitness) {
  const auto plan = PlanWitnessFetch({Ints({1})}, Ints({2}));
  EXPECT_FALSE(plan.ok());
}

TEST(FetchPlannerTest, WitnessFetchCheaperThanBroadcastEndToEnd) {
  SyntheticSpec spec;
  spec.universe_size = 500;
  spec.num_sources = 6;
  spec.num_conditions = 2;
  spec.selectivity = {0.1, 0.3};
  spec.seed = 9;
  auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const FusionQuery query = instance->query;
  Mediator mediator(std::move(instance->catalog));
  MediatorOptions options;
  options.statistics = StatisticsMode::kOracle;
  const auto answer = mediator.Answer(query, options);
  ASSERT_TRUE(answer.ok());
  if (answer->items.empty()) GTEST_SKIP() << "empty answer";

  CostLedger broadcast_ledger, witness_ledger;
  const auto broadcast =
      mediator.FetchRecords(query, answer->items, &broadcast_ledger);
  const auto witness = mediator.FetchRecordsFromWitnesses(
      query, answer->execution, &witness_ledger);
  ASSERT_TRUE(broadcast.ok());
  ASSERT_TRUE(witness.ok()) << witness.status().ToString();
  EXPECT_LE(witness_ledger.total(), broadcast_ledger.total());
  // Every answered item has at least one fetched record.
  const size_t idx = *witness->schema().IndexOf("M");
  ItemSet fetched;
  for (const Tuple& t : witness->tuples()) fetched.Insert(t[idx]);
  EXPECT_TRUE(answer->items.IsSubsetOf(fetched));
  // And witness records are a subset of broadcast records per item count.
  EXPECT_LE(witness->size(), broadcast->size());
}

// ---------------------------------------------------------------------------
// Yield-ordered semijoin pruning
// ---------------------------------------------------------------------------

TEST(OrderedPruningTest, HighYieldFirstShipsFewerItems) {
  // Source 0 confirms almost nothing for c2; source 1 confirms a lot.
  // Index order queries 0 first (no pruning benefit); yield order queries 1
  // first, shrinking what 0 receives.
  SourceParams low;
  low.capabilities.semijoin = SemijoinSupport::kNative;
  low.network.query_overhead = 1;
  low.network.cost_per_item_sent = 5;  // shipping dominates
  low.network.cost_per_item_received = 0.1;
  low.cardinality = 1000;
  low.result_size = {400, 20};
  SourceParams high = low;
  high.result_size = {400, 600};
  const ParametricCostModel model({low, high}, 1000);

  ConditionOrderPlan s = MakeStructure({0, 1}, 2);
  s.use_semijoin[1] = {true, true};
  const auto unordered = BuildStructuredPlan(model, s, {}, true, false);
  const auto ordered = BuildStructuredPlan(model, s, {}, true, true);
  ASSERT_TRUE(unordered.ok());
  ASSERT_TRUE(ordered.ok());
  EXPECT_LT(ordered->total_cost, unordered->total_cost);
}

TEST(OrderedPruningTest, AnswerUnchangedOnRealData) {
  SyntheticSpec spec;
  spec.universe_size = 400;
  spec.num_sources = 5;
  spec.num_conditions = 3;
  spec.selectivity = {0.05, 0.4, 0.4};
  spec.selectivity_jitter = 0.9;
  spec.seed = 21;
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const auto model =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(model.ok());
  const auto sja = OptimizeSja(*model);
  ASSERT_TRUE(sja.ok());
  PostOptOptions ordered;
  ordered.order_semijoins_by_yield = true;
  const auto plus =
      PostOptimizeStructure(*model, sja->structure, ordered, "SJA");
  ASSERT_TRUE(plus.ok());
  const auto expected = *ReferenceFusionAnswer(
      RelationsOf(*instance), "M", instance->query.conditions());
  const auto report =
      ExecutePlan(plus->plan, instance->catalog, instance->query);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->answer, expected);
  // Oracle estimates remain exact under reordering.
  EXPECT_NEAR(report->ledger.total(), plus->estimated_cost,
              1e-6 * (1 + plus->estimated_cost));
}

// ---------------------------------------------------------------------------
// Partitioned-data regime
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Correlated conditions
// ---------------------------------------------------------------------------

TEST(CorrelationTest, HighCorrelationCouplesConditionFlags) {
  auto joint_vs_product = [](double corr) {
    SyntheticSpec spec;
    spec.universe_size = 4000;
    spec.num_sources = 1;
    spec.num_conditions = 2;
    spec.coverage = 1.0;
    spec.selectivity = {0.3, 0.3};
    spec.selectivity_jitter = 0.0;
    spec.condition_correlation = corr;
    spec.seed = 99;
    const auto instance = GenerateSynthetic(spec);
    EXPECT_TRUE(instance.ok());
    const Relation& r = instance->simulated[0]->relation();
    double a = 0, b = 0, ab = 0;
    for (const Tuple& t : r.tuples()) {
      const bool fa = t[1].int64() == 1;
      const bool fb = t[2].int64() == 1;
      a += fa;
      b += fb;
      ab += fa && fb;
    }
    const double total = static_cast<double>(r.size());
    return (ab / total) / ((a / total) * (b / total));
  };
  // Independent flags: joint ≈ product. Correlated: joint clearly above.
  EXPECT_NEAR(joint_vs_product(0.0), 1.0, 0.15);
  EXPECT_GT(joint_vs_product(1.0), 1.2);
}

TEST(CorrelationTest, MarginalSelectivityPreserved) {
  for (const double corr : {0.0, 1.0}) {
    SyntheticSpec spec;
    spec.universe_size = 5000;
    spec.num_sources = 1;
    spec.num_conditions = 1;
    spec.coverage = 1.0;
    spec.selectivity = {0.2};
    spec.selectivity_jitter = 0.0;
    spec.condition_correlation = corr;
    spec.seed = 7;
    const auto instance = GenerateSynthetic(spec);
    ASSERT_TRUE(instance.ok());
    const auto count = instance->simulated[0]->relation().CountWhere(
        Condition::Eq("A1", Value(int64_t{1})));
    ASSERT_TRUE(count.ok());
    EXPECT_NEAR(static_cast<double>(*count) / 5000.0, 0.2, 0.03)
        << "corr " << corr;
  }
}

TEST(CorrelationTest, AnswersStayCorrectUnderCorrelation) {
  SyntheticSpec spec;
  spec.universe_size = 400;
  spec.num_sources = 4;
  spec.num_conditions = 3;
  spec.condition_correlation = 0.8;
  spec.seed = 13;
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const auto model =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(model.ok());
  const auto sja = OptimizeSja(*model);
  ASSERT_TRUE(sja.ok());
  const auto report =
      ExecutePlan(sja->plan, instance->catalog, instance->query);
  ASSERT_TRUE(report.ok());
  const auto expected = *ReferenceFusionAnswer(
      RelationsOf(*instance), "M", instance->query.conditions());
  EXPECT_EQ(report->answer, expected);
}

TEST(PartitionedTest, EveryEntityLivesInExactlyOneSource) {
  SyntheticSpec spec;
  spec.universe_size = 300;
  spec.num_sources = 5;
  spec.num_conditions = 2;
  spec.partition_entities = true;
  spec.seed = 8;
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  size_t total = 0;
  ItemSet all;
  for (const SimulatedSource* s : instance->simulated) {
    const ItemSet mine =
        *s->relation().SelectItems(Condition::True(), "M");
    EXPECT_TRUE(ItemSet::Intersect(all, mine).empty())
        << "entity duplicated across sources";
    all = ItemSet::Union(all, mine);
    total += s->relation().size();
  }
  EXPECT_EQ(total, 300u);
  EXPECT_EQ(all.size(), 300u);
}

TEST(PartitionedTest, FusionAnswerStillCorrect) {
  SyntheticSpec spec;
  spec.universe_size = 400;
  spec.num_sources = 4;
  spec.num_conditions = 2;
  spec.selectivity = {0.4, 0.4};
  spec.partition_entities = true;
  spec.seed = 10;
  const auto instance = GenerateSynthetic(spec);
  ASSERT_TRUE(instance.ok());
  const auto model =
      OracleCostModel::Create(instance->simulated, instance->query);
  ASSERT_TRUE(model.ok());
  const auto sja = OptimizeSja(*model);
  ASSERT_TRUE(sja.ok());
  const auto report =
      ExecutePlan(sja->plan, instance->catalog, instance->query);
  ASSERT_TRUE(report.ok());
  const auto expected = *ReferenceFusionAnswer(
      RelationsOf(*instance), "M", instance->query.conditions());
  EXPECT_EQ(report->answer, expected);
  // With partitioned data every answer entity satisfied both conditions at
  // its single home source.
  for (const Value& v : report->answer) {
    size_t holders = 0;
    for (const SimulatedSource* s : instance->simulated) {
      const ItemSet mine = *s->relation().SelectItems(Condition::True(), "M");
      holders += mine.Contains(v);
    }
    EXPECT_EQ(holders, 1u);
  }
}

}  // namespace
}  // namespace fusion
