// Observability layer tests: tracer/span mechanics, metric primitives and
// registry stability, Chrome-trace export validity, and the end-to-end
// invariants the instrumentation promises — one `source_call` span per
// ledger charge (retries and cache effects included), per-op spans from both
// executors, and real wall-clock overlap on distinct thread ids under the
// parallel executor (run this suite under TSan via the `concurrency` label).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "exec/executor.h"
#include "exec/source_call_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "source/flaky_source.h"
#include "source/simulated_source.h"
#include "workload/dmv.h"

namespace fusion {
namespace {

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds everything <= 1; bucket i holds (2^(i-1), 2^i].
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.5), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1.5), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2.0001), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4.0), 2u);
  EXPECT_EQ(Histogram::BucketIndex(1000.0), 10u);  // 2^9 < 1000 <= 2^10
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);

  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(1), 2.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(5), 32.0);
  EXPECT_TRUE(std::isinf(Histogram::BucketUpperBound(
      Histogram::kNumBuckets - 1)));

  // Every observation lands in the bucket whose bound covers it.
  for (double v : {0.1, 1.0, 3.0, 17.5, 1024.0}) {
    const size_t i = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << v;
    if (i > 0) EXPECT_GT(v, Histogram::BucketUpperBound(i - 1)) << v;
  }
}

TEST(MetricsTest, HistogramObserveAndSnapshot) {
  Histogram h;
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(1.7);
  h.Observe(100.0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 103.7);
  EXPECT_DOUBLE_EQ(snap.mean(), 103.7 / 4);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(100.0)], 1u);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
}

TEST(MetricsTest, RegistryReferencesSurviveResetAll) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& c = registry.counter("obs_test.stable_counter");
  Gauge& g = registry.gauge("obs_test.stable_gauge");
  c.Increment(7);
  g.Set(2.5);
  registry.ResetAll();
  // Same objects, zeroed values: cached references stay usable.
  EXPECT_EQ(&c, &registry.counter("obs_test.stable_counter"));
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  c.Increment();
  EXPECT_EQ(registry.counter("obs_test.stable_counter").value(), 1u);
}

TEST(MetricsTest, SnapshotAndDumpAreDeterministic) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.counter("obs_test.snap_counter").Increment(3);
  registry.histogram("obs_test.snap_hist").Observe(5.0);
  const MetricsSnapshot a = registry.Snapshot();
  const MetricsSnapshot b = registry.Snapshot();
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  EXPECT_EQ(a.counters.at("obs_test.snap_counter"), 3u);
  EXPECT_EQ(registry.DumpText(), registry.DumpText());
  EXPECT_NE(registry.DumpText().find("obs_test.snap_counter"),
            std::string::npos);
}

TEST(MetricsTest, SourceCallCounterNameMapping) {
  EXPECT_STREQ(metrics::SourceCallCounterName("sq"), metrics::kSourceCallsSq);
  EXPECT_STREQ(metrics::SourceCallCounterName("sjq"),
               metrics::kSourceCallsSjq);
  EXPECT_STREQ(metrics::SourceCallCounterName("probe"),
               metrics::kSourceCallsProbe);
  EXPECT_STREQ(metrics::SourceCallCounterName("lq"), metrics::kSourceCallsLq);
  EXPECT_STREQ(metrics::SourceCallCounterName("fetch"),
               metrics::kSourceCallsFetch);
}

// ---------------------------------------------------------------------------
// Tracer mechanics
// ---------------------------------------------------------------------------

/// Enables the global tracer for one test and restores the disabled default
/// (draining any leftovers) on exit, so tests cannot leak spans into each
/// other.
class ScopedTracing {
 public:
  ScopedTracing() {
    Tracer::Global().Clear();
    Tracer::Global().Enable();
  }
  ~ScopedTracing() {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer::Global().Disable();
  Tracer::Global().Clear();
  {
    ScopedSpan span(SpanCategory::kPlanOp, "ignored");
    EXPECT_FALSE(span.active());
    span.AddAttr("key", "value");  // must be a safe no-op
  }
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

TEST(TracerTest, NestedSpansOrderAndContainment) {
  ScopedTracing tracing;
  {
    ScopedSpan outer(SpanCategory::kPhase, "outer");
    EXPECT_TRUE(outer.active());
    outer.AddAttr("detail", "top");
    {
      ScopedSpan inner(SpanCategory::kPlanOp, "inner");
      inner.AddAttr("op", static_cast<int64_t>(0));
    }
  }
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: the enclosing span first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[0].thread_id, spans[1].thread_id);
  EXPECT_LE(spans[0].start_us, spans[1].start_us);
  EXPECT_GE(spans[0].end_us, spans[1].end_us);
  ASSERT_EQ(spans[0].attributes.size(), 1u);
  EXPECT_EQ(spans[0].attributes[0].first, "detail");
  EXPECT_EQ(spans[0].attributes[0].second, "top");
}

TEST(TracerTest, DrainEmptiesTheBuffer) {
  ScopedTracing tracing;
  { ScopedSpan span(SpanCategory::kCache, "once"); }
  EXPECT_EQ(Tracer::Global().Drain().size(), 1u);
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

TEST(TracerTest, TraceHandleWindowFiltersSpans) {
  ScopedTracing tracing;
  Tracer& tracer = Tracer::Global();
  { ScopedSpan span(SpanCategory::kPhase, "before"); }
  TraceHandle handle;
  handle.enabled = true;
  handle.start_us = tracer.NowMicros();
  { ScopedSpan span(SpanCategory::kPhase, "inside"); }
  handle.end_us = tracer.NowMicros();
  { ScopedSpan span(SpanCategory::kPhase, "after"); }
  const std::vector<SpanRecord> windowed = handle.Spans();
  ASSERT_EQ(windowed.size(), 1u);
  EXPECT_EQ(windowed[0].name, "inside");
}

TEST(TracerTest, ParallelSpansLandOnDistinctThreadIds) {
  ScopedTracing tracing;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      ScopedSpan span(SpanCategory::kPlanOp, "worker");
      span.AddAttr("index", static_cast<int64_t>(t));
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads));
  std::vector<uint32_t> tids;
  for (const SpanRecord& s : spans) tids.push_back(s.thread_id);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end())
      << "each OS thread must get its own dense id";
}

// ---------------------------------------------------------------------------
// Chrome-trace export
// ---------------------------------------------------------------------------

/// Minimal structural JSON check: balanced braces/brackets outside strings,
/// proper string termination, no trailing garbage. Not a full parser — just
/// enough to catch broken escaping or truncation in the exporter.
bool JsonLooksValid(const std::string& json) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (c == '\n') {
        return false;  // raw newline inside a string literal
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(TraceExportTest, ChromeTraceJsonIsStructurallyValid) {
  SpanRecord span;
  span.name = "needs \"escaping\"\n\tand control\x01 chars";
  span.category = SpanCategory::kSourceCall;
  span.start_us = 10.0;
  span.end_us = 32.5;
  span.thread_id = 3;
  span.attributes = {{"source", "DMV\\1"}, {"cost", "12.5"}};
  const std::string json = ChromeTraceJson({span});
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"source_call\""), std::string::npos);
  EXPECT_NE(json.find("\\\"escaping\\\""), std::string::npos);
}

TEST(TraceExportTest, ExecutionTraceContainsExpectedCategories) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  Plan plan;
  std::vector<int> dui, sp;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSemiJoin(1, j, x1));
  plan.SetResult(plan.EmitUnion(sp, "X2"));

  ScopedTracing tracing;
  const auto report =
      ExecutePlan(plan, instance->catalog, instance->query, ExecOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string json = ChromeTraceJson(Tracer::Global().Snapshot());
  EXPECT_TRUE(JsonLooksValid(json));
  EXPECT_NE(json.find("\"cat\":\"plan_op\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"source_call\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sq\""), std::string::npos);
  // The flame summary covers every category that appeared.
  const std::string summary = FlameSummary(Tracer::Global().Snapshot());
  EXPECT_NE(summary.find("plan_op"), std::string::npos);
  EXPECT_NE(summary.find("source_call"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end executor invariants
// ---------------------------------------------------------------------------

size_t CountCategory(const std::vector<SpanRecord>& spans, SpanCategory cat) {
  size_t n = 0;
  for (const SpanRecord& s : spans) {
    if (s.category == cat) ++n;
  }
  return n;
}

TEST(ObsExecutionTest, SequentialSpanCountsMatchPlanAndLedger) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  Plan plan;
  std::vector<int> dui, sp;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSelect(1, j));
  const int u2 = plan.EmitUnion(sp, "U2");
  plan.SetResult(plan.EmitIntersect({x1, u2}, "X2"));

  ScopedTracing tracing;
  const auto report =
      ExecutePlan(plan, instance->catalog, instance->query, ExecOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  EXPECT_EQ(CountCategory(spans, SpanCategory::kPlanOp), plan.num_ops());
  EXPECT_EQ(CountCategory(spans, SpanCategory::kSourceCall),
            report->ledger.num_queries());
  EXPECT_TRUE(report->trace.enabled);
  EXPECT_EQ(report->trace.Spans().size(), spans.size())
      << "every span of this execution falls inside the report's window";
}

TEST(ObsExecutionTest, ParallelRunOverlapsSpansOnDistinctThreads) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  Plan plan;
  std::vector<int> dui, sp;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSelect(1, j));
  const int u2 = plan.EmitUnion(sp, "U2");
  plan.SetResult(plan.EmitIntersect({x1, u2}, "X2"));

  ScopedTracing tracing;
  ExecOptions options;
  options.parallelism = 4;
  options.simulated_seconds_per_cost = 2e-4;  // make overlap observable
  const auto report =
      ExecutePlan(plan, instance->catalog, instance->query, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  EXPECT_EQ(CountCategory(spans, SpanCategory::kPlanOp), plan.num_ops());
  EXPECT_EQ(CountCategory(spans, SpanCategory::kSourceCall),
            report->ledger.num_queries());

  // The two sources' select chains are data-independent, so with >= 2
  // workers some pair of plan-op spans must overlap in time on different
  // thread ids.
  bool overlap_across_threads = false;
  for (size_t a = 0; a < spans.size() && !overlap_across_threads; ++a) {
    if (spans[a].category != SpanCategory::kPlanOp) continue;
    for (size_t b = a + 1; b < spans.size(); ++b) {
      if (spans[b].category != SpanCategory::kPlanOp) continue;
      if (spans[a].thread_id == spans[b].thread_id) continue;
      if (spans[b].start_us < spans[a].end_us &&
          spans[a].start_us < spans[b].end_us) {
        overlap_across_threads = true;
        break;
      }
    }
  }
  EXPECT_TRUE(overlap_across_threads)
      << "parallel execution produced no concurrent plan-op spans";
}

TEST(ObsExecutionTest, RetriesSurfaceOnReportAndKeepSpanInvariant) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  SourceCatalog flaky;
  for (size_t j = 0; j < instance->catalog.size(); ++j) {
    const SimulatedSource* sim = instance->catalog.source(j).AsSimulated();
    ASSERT_NE(sim, nullptr);
    FlakySource::Options options;
    options.fail_first_k = j == 0 ? 2 : 0;  // source 0: first two calls fail
    ASSERT_TRUE(flaky
                    .Add(std::make_unique<FlakySource>(
                        std::make_unique<SimulatedSource>(*sim), options))
                    .ok());
  }
  Plan plan;
  plan.SetResult(plan.EmitSelect(0, 0));

  ScopedTracing tracing;
  ExecOptions options;
  options.retry.max_attempts = 4;
  const auto report = ExecutePlan(plan, flaky, instance->query, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->retries_total, 2u);
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  // 3 attempts = 3 ledger charges = 3 source_call spans, plus 2 retry spans.
  EXPECT_EQ(report->ledger.num_queries(), 3u);
  EXPECT_EQ(CountCategory(spans, SpanCategory::kSourceCall), 3u);
  EXPECT_EQ(CountCategory(spans, SpanCategory::kRetry), 2u);
}

TEST(ObsExecutionTest, CacheHitsAndMissesSurfaceOnReport) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  Plan plan;
  std::vector<int> dui;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  plan.SetResult(plan.EmitUnion(dui, "X1"));

  SourceCallCache cache;
  ExecOptions options;
  options.cache = &cache;
  const auto first =
      ExecutePlan(plan, instance->catalog, instance->query, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->cache_hits, 0u);
  EXPECT_EQ(first->cache_misses, 3u);

  ScopedTracing tracing;
  const auto second =
      ExecutePlan(plan, instance->catalog, instance->query, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->cache_hits, 3u);
  EXPECT_EQ(second->cache_misses, 0u);
  // Cache hits issue no source call: zero charges, zero source_call spans —
  // the 1:1 invariant holds — and each hit leaves a cache span instead.
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  EXPECT_EQ(second->ledger.num_queries(), 0u);
  EXPECT_EQ(CountCategory(spans, SpanCategory::kSourceCall), 0u);
  EXPECT_EQ(CountCategory(spans, SpanCategory::kCache), 3u);
}

// ---------------------------------------------------------------------------
// Logging thread safety
// ---------------------------------------------------------------------------

TEST(LoggingTest, ConcurrentSeverityChangesAreSafe) {
  using internal_logging::LogSeverity;
  const LogSeverity original = internal_logging::MinLogSeverity();
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    for (int i = 0; i < 500; ++i) {
      internal_logging::SetMinLogSeverity(i % 2 == 0 ? LogSeverity::kError
                                                     : LogSeverity::kWarning);
    }
    stop.store(true);
  });
  std::vector<std::thread> loggers;
  for (int t = 0; t < 3; ++t) {
    loggers.emplace_back([&] {
      while (!stop.load()) {
        FUSION_LOG(Info) << "swallowed below the minimum severity";
      }
    });
  }
  toggler.join();
  for (std::thread& t : loggers) t.join();
  internal_logging::SetMinLogSeverity(original);
}

}  // namespace
}  // namespace fusion
