// Observability layer tests: tracer/span mechanics, metric primitives and
// registry stability, Chrome-trace export validity, and the end-to-end
// invariants the instrumentation promises — one `source_call` span per
// ledger charge (retries and cache effects included), per-op spans from both
// executors, and real wall-clock overlap on distinct thread ids under the
// parallel executor (run this suite under TSan via the `concurrency` label).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "exec/executor.h"
#include "exec/source_call_cache.h"
#include "exec/thread_pool.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "source/flaky_source.h"
#include "source/simulated_source.h"
#include "workload/dmv.h"

namespace fusion {
namespace {

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds everything <= 1; bucket i holds (2^(i-1), 2^i].
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.5), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1.5), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2.0001), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4.0), 2u);
  EXPECT_EQ(Histogram::BucketIndex(1000.0), 10u);  // 2^9 < 1000 <= 2^10
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);

  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(1), 2.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(5), 32.0);
  EXPECT_TRUE(std::isinf(Histogram::BucketUpperBound(
      Histogram::kNumBuckets - 1)));

  // Every observation lands in the bucket whose bound covers it.
  for (double v : {0.1, 1.0, 3.0, 17.5, 1024.0}) {
    const size_t i = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << v;
    if (i > 0) EXPECT_GT(v, Histogram::BucketUpperBound(i - 1)) << v;
  }
}

TEST(MetricsTest, HistogramObserveAndSnapshot) {
  Histogram h;
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(1.7);
  h.Observe(100.0);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 103.7);
  EXPECT_DOUBLE_EQ(snap.mean(), 103.7 / 4);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(100.0)], 1u);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0u);
}

TEST(MetricsTest, QuantileInterpolatesInsideLogBuckets) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.5), 0.0);  // empty histogram
  // Four observations in bucket 0 ([0, 1]): quantiles interpolate linearly
  // across the bucket's value range.
  for (int i = 0; i < 4; ++i) h.Observe(0.5);
  const HistogramSnapshot one_bucket = h.Snapshot();
  EXPECT_DOUBLE_EQ(one_bucket.Quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(one_bucket.Quantile(1.0), 1.0);
  EXPECT_DOUBLE_EQ(one_bucket.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(one_bucket.Quantile(-3.0), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(one_bucket.Quantile(7.0), 1.0);   // clamped

  // Two in (1, 2], two in (2, 4]: the median lands exactly on the first
  // bucket's upper bound, p75 halfway through the second.
  Histogram two;
  two.Observe(1.5);
  two.Observe(2.0);
  two.Observe(3.0);
  two.Observe(4.0);
  const HistogramSnapshot two_buckets = two.Snapshot();
  EXPECT_DOUBLE_EQ(two_buckets.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(two_buckets.Quantile(0.75), 3.0);

  // The unbounded last bucket reports its finite lower boundary instead of
  // extrapolating to infinity.
  Histogram top;
  top.Observe(1e300);
  EXPECT_DOUBLE_EQ(top.Snapshot().Quantile(0.99),
                   Histogram::BucketUpperBound(Histogram::kNumBuckets - 2));
}

// Golden values for the quantile endpoints and degenerate shapes. These pin
// the exact interpolation arithmetic (rank = q*count walked against
// cumulative bucket counts), so any future rebucketing or off-by-one in the
// rank math shows up as a golden diff rather than a silent p99 shift.
TEST(MetricsTest, QuantileEndpointAndSingleBucketGoldens) {
  // Empty snapshot: every quantile is 0 by definition.
  EXPECT_DOUBLE_EQ(Histogram().Snapshot().Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Histogram().Snapshot().Quantile(1.0), 0.0);

  // All mass in one interior bucket: three observations of 3 land in bucket
  // 2 = (2, 4]. q=0 pins the bucket's lower bound, q=1 its upper bound, and
  // q=0.5 the exact midpoint of the value range.
  Histogram mid;
  for (int i = 0; i < 3; ++i) mid.Observe(3.0);
  const HistogramSnapshot single = mid.Snapshot();
  EXPECT_DOUBLE_EQ(single.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(single.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(single.Quantile(1.0), 4.0);

  // count == 1 in the first bucket [0, 1]: endpoints span the whole bucket.
  Histogram one;
  one.Observe(0.5);
  EXPECT_DOUBLE_EQ(one.Snapshot().Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(one.Snapshot().Quantile(1.0), 1.0);

  // Single observation in the unbounded last bucket: every quantile reports
  // the finite lower boundary 2^30 instead of extrapolating to infinity.
  Histogram huge;
  huge.Observe(1e12);
  const HistogramSnapshot top = huge.Snapshot();
  const double lower = Histogram::BucketUpperBound(Histogram::kNumBuckets - 2);
  EXPECT_DOUBLE_EQ(top.Quantile(0.0), lower);
  EXPECT_DOUBLE_EQ(top.Quantile(0.5), lower);
  EXPECT_DOUBLE_EQ(top.Quantile(1.0), lower);

  // Mass split across non-adjacent buckets (two in [0,1], two in (2,4]):
  // the median lands exactly on the first bucket's upper bound, and q=1 on
  // the occupied top bucket's upper bound — no bleed into the empty gap.
  Histogram split;
  split.Observe(0.5);
  split.Observe(1.0);
  split.Observe(3.0);
  split.Observe(4.0);
  const HistogramSnapshot gap = split.Snapshot();
  EXPECT_DOUBLE_EQ(gap.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(gap.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(gap.Quantile(1.0), 4.0);

  // Out-of-range q clamps to the endpoints rather than misindexing.
  EXPECT_DOUBLE_EQ(gap.Quantile(-0.5), gap.Quantile(0.0));
  EXPECT_DOUBLE_EQ(gap.Quantile(2.0), gap.Quantile(1.0));
}

TEST(MetricsTest, QuantileIsMonotoneInQ) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(static_cast<double>(i));
  const HistogramSnapshot snap = h.Snapshot();
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = snap.Quantile(q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
  // Sanity: p50 of 1..1000 must land in the right log bucket, i.e. within
  // (256, 1024] — bucket resolution, not exact-rank, accuracy.
  EXPECT_GT(snap.Quantile(0.5), 256.0);
  EXPECT_LE(snap.Quantile(0.5), 1024.0);
}

TEST(MetricsTest, RegistryReferencesSurviveResetAll) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& c = registry.counter("obs_test.stable_counter");
  Gauge& g = registry.gauge("obs_test.stable_gauge");
  c.Increment(7);
  g.Set(2.5);
  registry.ResetAll();
  // Same objects, zeroed values: cached references stay usable.
  EXPECT_EQ(&c, &registry.counter("obs_test.stable_counter"));
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  c.Increment();
  EXPECT_EQ(registry.counter("obs_test.stable_counter").value(), 1u);
}

TEST(MetricsTest, SnapshotAndDumpAreDeterministic) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.counter("obs_test.snap_counter").Increment(3);
  registry.histogram("obs_test.snap_hist").Observe(5.0);
  const MetricsSnapshot a = registry.Snapshot();
  const MetricsSnapshot b = registry.Snapshot();
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  EXPECT_EQ(a.counters.at("obs_test.snap_counter"), 3u);
  EXPECT_EQ(registry.DumpText(), registry.DumpText());
  EXPECT_NE(registry.DumpText().find("obs_test.snap_counter"),
            std::string::npos);
}

TEST(MetricsTest, SourceCallCounterNameMapping) {
  EXPECT_STREQ(metrics::SourceCallCounterName("sq"), metrics::kSourceCallsSq);
  EXPECT_STREQ(metrics::SourceCallCounterName("sjq"),
               metrics::kSourceCallsSjq);
  EXPECT_STREQ(metrics::SourceCallCounterName("probe"),
               metrics::kSourceCallsProbe);
  EXPECT_STREQ(metrics::SourceCallCounterName("lq"), metrics::kSourceCallsLq);
  EXPECT_STREQ(metrics::SourceCallCounterName("fetch"),
               metrics::kSourceCallsFetch);
}

// ---------------------------------------------------------------------------
// Tracer mechanics
// ---------------------------------------------------------------------------

/// Enables the global tracer for one test and restores the disabled default
/// (draining any leftovers) on exit, so tests cannot leak spans into each
/// other.
class ScopedTracing {
 public:
  ScopedTracing() {
    Tracer::Global().Clear();
    Tracer::Global().Enable();
  }
  ~ScopedTracing() {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer::Global().Disable();
  Tracer::Global().Clear();
  {
    ScopedSpan span(SpanCategory::kPlanOp, "ignored");
    EXPECT_FALSE(span.active());
    span.AddAttr("key", "value");  // must be a safe no-op
  }
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

TEST(TracerTest, NestedSpansOrderAndContainment) {
  ScopedTracing tracing;
  {
    ScopedSpan outer(SpanCategory::kPhase, "outer");
    EXPECT_TRUE(outer.active());
    outer.AddAttr("detail", "top");
    {
      ScopedSpan inner(SpanCategory::kPlanOp, "inner");
      inner.AddAttr("op", static_cast<int64_t>(0));
    }
  }
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: the enclosing span first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[0].thread_id, spans[1].thread_id);
  EXPECT_LE(spans[0].start_us, spans[1].start_us);
  EXPECT_GE(spans[0].end_us, spans[1].end_us);
  ASSERT_EQ(spans[0].attributes.size(), 1u);
  EXPECT_EQ(spans[0].attributes[0].first, "detail");
  EXPECT_EQ(spans[0].attributes[0].second, "top");
}

TEST(TracerTest, DrainEmptiesTheBuffer) {
  ScopedTracing tracing;
  { ScopedSpan span(SpanCategory::kCache, "once"); }
  EXPECT_EQ(Tracer::Global().Drain().size(), 1u);
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

TEST(TracerTest, TraceHandleWindowFiltersSpans) {
  ScopedTracing tracing;
  Tracer& tracer = Tracer::Global();
  { ScopedSpan span(SpanCategory::kPhase, "before"); }
  TraceHandle handle;
  handle.enabled = true;
  handle.start_us = tracer.NowMicros();
  { ScopedSpan span(SpanCategory::kPhase, "inside"); }
  handle.end_us = tracer.NowMicros();
  { ScopedSpan span(SpanCategory::kPhase, "after"); }
  const std::vector<SpanRecord> windowed = handle.Spans();
  ASSERT_EQ(windowed.size(), 1u);
  EXPECT_EQ(windowed[0].name, "inside");
}

TEST(TracerTest, ParallelSpansLandOnDistinctThreadIds) {
  ScopedTracing tracing;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      ScopedSpan span(SpanCategory::kPlanOp, "worker");
      span.AddAttr("index", static_cast<int64_t>(t));
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads));
  std::vector<uint32_t> tids;
  for (const SpanRecord& s : spans) tids.push_back(s.thread_id);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end())
      << "each OS thread must get its own dense id";
}

// ---------------------------------------------------------------------------
// Distributed trace context
// ---------------------------------------------------------------------------

TEST(TraceContextTest, MintIdIsNonZeroAndDistinct) {
  const uint64_t a = Tracer::MintId();
  const uint64_t b = Tracer::MintId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(TraceContextTest, ScopeInstallsAndRestoresContext) {
  EXPECT_FALSE(Tracer::CurrentContext().valid());
  {
    TraceContextScope scope(TraceContext{7, 9});
    EXPECT_EQ(Tracer::CurrentContext().trace_id, 7u);
    EXPECT_EQ(Tracer::CurrentContext().span_id, 9u);
    {
      // An invalid inbound context must NOT clobber the ambient one: a
      // request with no trace fields leaves the local trace in place.
      TraceContextScope noop(TraceContext{});
      EXPECT_EQ(Tracer::CurrentContext().trace_id, 7u);
    }
    EXPECT_EQ(Tracer::CurrentContext().trace_id, 7u);
  }
  EXPECT_FALSE(Tracer::CurrentContext().valid());
}

TEST(TraceContextTest, SpansJoinTheAmbientTraceAndParentEachOther) {
  ScopedTracing tracing;
  const TraceContext inbound{0xfeedULL, 0xbeefULL};
  {
    TraceContextScope scope(inbound);
    ScopedSpan outer(SpanCategory::kRpc, "outer");
    { ScopedSpan inner(SpanCategory::kPlanOp, "inner"); }
  }
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& outer = spans[0].name == "outer" ? spans[0] : spans[1];
  const SpanRecord& inner = spans[0].name == "inner" ? spans[0] : spans[1];
  // Both spans join the adopted trace; the outer span's parent is the
  // inbound span id, the inner span's parent is the outer span itself.
  EXPECT_EQ(outer.trace_id, inbound.trace_id);
  EXPECT_EQ(inner.trace_id, inbound.trace_id);
  EXPECT_EQ(outer.parent_id, inbound.span_id);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_NE(outer.span_id, 0u);
  EXPECT_NE(inner.span_id, 0u);
  EXPECT_NE(outer.span_id, inner.span_id);
}

TEST(TraceContextTest, RootSpanMintsItsOwnTraceId) {
  ScopedTracing tracing;
  { ScopedSpan root(SpanCategory::kPhase, "root"); }
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_NE(spans[0].trace_id, 0u);
  EXPECT_EQ(spans[0].parent_id, 0u);
}

TEST(TraceContextTest, ThreadPoolTasksInheritTheSubmittersContext) {
  ScopedTracing tracing;
  const TraceContext inbound{0xabcULL, 0x123ULL};
  {
    TraceContextScope scope(inbound);
    ThreadPool pool(2);
    for (int i = 0; i < 4; ++i) {
      pool.Submit([] { ScopedSpan span(SpanCategory::kPlanOp, "task"); });
    }
    // Pool destructor drains and joins all tasks.
  }
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (const SpanRecord& span : spans) {
    EXPECT_EQ(span.trace_id, inbound.trace_id)
        << "task span escaped the submitter's trace";
    EXPECT_EQ(span.parent_id, inbound.span_id);
  }
}

TEST(TraceContextTest, ContextFlowsEvenWithTracingDisabled) {
  Tracer::Global().Disable();
  TraceContextScope scope(TraceContext{11, 22});
  // No spans are recorded, but the ambient context must still be visible —
  // this is what lets an untraced daemon forward the client's ids to a
  // traced source server.
  EXPECT_EQ(Tracer::CurrentContext().trace_id, 11u);
  EXPECT_EQ(Tracer::CurrentContext().span_id, 22u);
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

// ---------------------------------------------------------------------------
// Chrome-trace export
// ---------------------------------------------------------------------------

/// Minimal structural JSON check: balanced braces/brackets outside strings,
/// proper string termination, no trailing garbage. Not a full parser — just
/// enough to catch broken escaping or truncation in the exporter.
bool JsonLooksValid(const std::string& json) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (c == '\n') {
        return false;  // raw newline inside a string literal
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(TraceExportTest, ChromeTraceJsonIsStructurallyValid) {
  SpanRecord span;
  span.name = "needs \"escaping\"\n\tand control\x01 chars";
  span.category = SpanCategory::kSourceCall;
  span.start_us = 10.0;
  span.end_us = 32.5;
  span.thread_id = 3;
  span.attributes = {{"source", "DMV\\1"}, {"cost", "12.5"}};
  const std::string json = ChromeTraceJson({span});
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"source_call\""), std::string::npos);
  EXPECT_NE(json.find("\\\"escaping\\\""), std::string::npos);
}

TEST(TraceExportTest, ExportCarriesDistributedIdsAsHex) {
  SpanRecord span;
  span.name = "rpc";
  span.category = SpanCategory::kRpc;
  span.start_us = 1.0;
  span.end_us = 2.0;
  span.trace_id = 0xdeadbeefcafef00dULL;
  span.span_id = 0x42;
  span.parent_id = 0x17;
  const std::string json = ChromeTraceJson({span});
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  // Fixed-width hex strings: what tools/trace_merge.py keys its shared
  // trace-id / unique span-id checks on.
  EXPECT_NE(json.find("\"trace_id\":\"deadbeefcafef00d\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"span_id\":\"0000000000000042\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_id\":\"0000000000000017\""),
            std::string::npos);
}

TEST(TraceExportTest, ExecutionTraceContainsExpectedCategories) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  Plan plan;
  std::vector<int> dui, sp;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSemiJoin(1, j, x1));
  plan.SetResult(plan.EmitUnion(sp, "X2"));

  ScopedTracing tracing;
  const auto report =
      ExecutePlan(plan, instance->catalog, instance->query, ExecOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string json = ChromeTraceJson(Tracer::Global().Snapshot());
  EXPECT_TRUE(JsonLooksValid(json));
  EXPECT_NE(json.find("\"cat\":\"plan_op\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"source_call\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sq\""), std::string::npos);
  // The flame summary covers every category that appeared.
  const std::string summary = FlameSummary(Tracer::Global().Snapshot());
  EXPECT_NE(summary.find("plan_op"), std::string::npos);
  EXPECT_NE(summary.find("source_call"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end executor invariants
// ---------------------------------------------------------------------------

size_t CountCategory(const std::vector<SpanRecord>& spans, SpanCategory cat) {
  size_t n = 0;
  for (const SpanRecord& s : spans) {
    if (s.category == cat) ++n;
  }
  return n;
}

TEST(ObsExecutionTest, SequentialSpanCountsMatchPlanAndLedger) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  Plan plan;
  std::vector<int> dui, sp;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSelect(1, j));
  const int u2 = plan.EmitUnion(sp, "U2");
  plan.SetResult(plan.EmitIntersect({x1, u2}, "X2"));

  ScopedTracing tracing;
  const auto report =
      ExecutePlan(plan, instance->catalog, instance->query, ExecOptions{});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  EXPECT_EQ(CountCategory(spans, SpanCategory::kPlanOp), plan.num_ops());
  EXPECT_EQ(CountCategory(spans, SpanCategory::kSourceCall),
            report->ledger.num_queries());
  EXPECT_TRUE(report->trace.enabled);
  EXPECT_EQ(report->trace.Spans().size(), spans.size())
      << "every span of this execution falls inside the report's window";
}

TEST(ObsExecutionTest, ParallelRunOverlapsSpansOnDistinctThreads) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  Plan plan;
  std::vector<int> dui, sp;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  const int x1 = plan.EmitUnion(dui, "X1");
  for (int j = 0; j < 3; ++j) sp.push_back(plan.EmitSelect(1, j));
  const int u2 = plan.EmitUnion(sp, "U2");
  plan.SetResult(plan.EmitIntersect({x1, u2}, "X2"));

  ScopedTracing tracing;
  ExecOptions options;
  options.parallelism = 4;
  options.simulated_seconds_per_cost = 2e-4;  // make overlap observable
  const auto report =
      ExecutePlan(plan, instance->catalog, instance->query, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  EXPECT_EQ(CountCategory(spans, SpanCategory::kPlanOp), plan.num_ops());
  EXPECT_EQ(CountCategory(spans, SpanCategory::kSourceCall),
            report->ledger.num_queries());

  // The two sources' select chains are data-independent, so with >= 2
  // workers some pair of plan-op spans must overlap in time on different
  // thread ids.
  bool overlap_across_threads = false;
  for (size_t a = 0; a < spans.size() && !overlap_across_threads; ++a) {
    if (spans[a].category != SpanCategory::kPlanOp) continue;
    for (size_t b = a + 1; b < spans.size(); ++b) {
      if (spans[b].category != SpanCategory::kPlanOp) continue;
      if (spans[a].thread_id == spans[b].thread_id) continue;
      if (spans[b].start_us < spans[a].end_us &&
          spans[a].start_us < spans[b].end_us) {
        overlap_across_threads = true;
        break;
      }
    }
  }
  EXPECT_TRUE(overlap_across_threads)
      << "parallel execution produced no concurrent plan-op spans";
}

TEST(ObsExecutionTest, RetriesSurfaceOnReportAndKeepSpanInvariant) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  SourceCatalog flaky;
  for (size_t j = 0; j < instance->catalog.size(); ++j) {
    const SimulatedSource* sim = instance->catalog.source(j).AsSimulated();
    ASSERT_NE(sim, nullptr);
    FlakySource::Options options;
    options.fail_first_k = j == 0 ? 2 : 0;  // source 0: first two calls fail
    ASSERT_TRUE(flaky
                    .Add(std::make_unique<FlakySource>(
                        std::make_unique<SimulatedSource>(*sim), options))
                    .ok());
  }
  Plan plan;
  plan.SetResult(plan.EmitSelect(0, 0));

  ScopedTracing tracing;
  ExecOptions options;
  options.retry.max_attempts = 4;
  const auto report = ExecutePlan(plan, flaky, instance->query, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->retries_total, 2u);
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  // 3 attempts = 3 ledger charges = 3 source_call spans, plus 2 retry spans.
  EXPECT_EQ(report->ledger.num_queries(), 3u);
  EXPECT_EQ(CountCategory(spans, SpanCategory::kSourceCall), 3u);
  EXPECT_EQ(CountCategory(spans, SpanCategory::kRetry), 2u);
}

TEST(ObsExecutionTest, CacheHitsAndMissesSurfaceOnReport) {
  const auto instance = BuildDmvFigure1();
  ASSERT_TRUE(instance.ok());
  Plan plan;
  std::vector<int> dui;
  for (int j = 0; j < 3; ++j) dui.push_back(plan.EmitSelect(0, j));
  plan.SetResult(plan.EmitUnion(dui, "X1"));

  SourceCallCache cache;
  ExecOptions options;
  options.cache = &cache;
  const auto first =
      ExecutePlan(plan, instance->catalog, instance->query, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->cache_hits, 0u);
  EXPECT_EQ(first->cache_misses, 3u);

  ScopedTracing tracing;
  const auto second =
      ExecutePlan(plan, instance->catalog, instance->query, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->cache_hits, 3u);
  EXPECT_EQ(second->cache_misses, 0u);
  // Cache hits issue no source call: zero charges, zero source_call spans —
  // the 1:1 invariant holds — and each hit leaves a cache span instead.
  const std::vector<SpanRecord> spans = Tracer::Global().Snapshot();
  EXPECT_EQ(second->ledger.num_queries(), 0u);
  EXPECT_EQ(CountCategory(spans, SpanCategory::kSourceCall), 0u);
  EXPECT_EQ(CountCategory(spans, SpanCategory::kCache), 3u);
}

// ---------------------------------------------------------------------------
// STATS exposition grammar (golden) and SLO registry
// ---------------------------------------------------------------------------

TEST(ExpositionTest, GoldenRenderPinsTheGrammar) {
  // A hand-built snapshot with every sample shape: bare counter, gauge,
  // labelled tenant counters, and a labelled histogram — plus a tenant name
  // that needs every escape. The full text is pinned byte-for-byte: any
  // change to sorting, escaping, value formatting, or the schema header is
  // a deliberate schema bump, not an accident.
  MetricsSnapshot metrics;
  metrics.counters["requests_total"] = 42;
  metrics.gauges["queue_depth"] = 3.5;
  TenantSloSnapshot tenant;
  tenant.tenant = "a\"b\\c";
  tenant.requests = 2;
  tenant.errors = 1;
  tenant.degraded = 1;
  tenant.metered_cost = 12.5;
  tenant.error_rate = 0.5;
  Histogram latency;
  latency.Observe(0.5);
  latency.Observe(3.0);
  tenant.latency_ms = latency.Snapshot();

  const std::string text = RenderStatsText(metrics, {tenant});
  const std::string expected =
      "# fusionq-stats schema 1\n"
      "queue_depth 3.5\n"
      "requests_total 42\n"
      "tenant_cancelled_total{tenant=\"a\\\"b\\\\c\"} 0\n"
      "tenant_deadline_exceeded_total{tenant=\"a\\\"b\\\\c\"} 0\n"
      "tenant_degraded_total{tenant=\"a\\\"b\\\\c\"} 1\n"
      "tenant_error_rate{tenant=\"a\\\"b\\\\c\"} 0.5\n"
      "tenant_errors_total{tenant=\"a\\\"b\\\\c\"} 1\n"
      "tenant_latency_ms_count{tenant=\"a\\\"b\\\\c\"} 2\n"
      "tenant_latency_ms_sum{tenant=\"a\\\"b\\\\c\"} 3.5\n"
      "tenant_latency_ms{tenant=\"a\\\"b\\\\c\",quantile=\"0.5\"} 1\n"
      "tenant_latency_ms{tenant=\"a\\\"b\\\\c\",quantile=\"0.95\"} 3.8\n"
      "tenant_latency_ms{tenant=\"a\\\"b\\\\c\",quantile=\"0.99\"} 3.96\n"
      "tenant_metered_cost_total{tenant=\"a\\\"b\\\\c\"} 12.5\n"
      "tenant_requests_total{tenant=\"a\\\"b\\\\c\"} 2\n"
      "tenant_shed_total{tenant=\"a\\\"b\\\\c\"} 0\n";
  EXPECT_EQ(text, expected);
}

TEST(ExpositionTest, ParseRoundTripsTheRender) {
  MetricsSnapshot metrics;
  metrics.counters["requests_total"] = 7;
  TenantSloSnapshot tenant;
  tenant.tenant = "needs\nnewline\"and\\slash";
  tenant.requests = 3;
  const std::string text = RenderStatsText(metrics, {tenant});
  const Result<StatsExposition> parsed = ParseStatsText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schema, kStatsSchemaVersion);
  const StatsSample* requests = parsed->Find("requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_DOUBLE_EQ(requests->value, 7.0);
  // The escaped tenant label value comes back verbatim.
  const StatsSample* tenant_requests =
      parsed->Find("tenant_requests_total", tenant.tenant);
  ASSERT_NE(tenant_requests, nullptr);
  EXPECT_DOUBLE_EQ(tenant_requests->value, 3.0);
}

TEST(ExpositionTest, ParserRejectsMalformedText) {
  EXPECT_FALSE(ParseStatsText("").ok());
  EXPECT_FALSE(ParseStatsText("requests_total 1\n").ok());  // no header
  EXPECT_FALSE(ParseStatsText("# fusionq-stats schema x\n").ok());
  const std::string header = "# fusionq-stats schema 1\n";
  EXPECT_FALSE(ParseStatsText(header + "name_without_value\n").ok());
  EXPECT_FALSE(ParseStatsText(header + "name{unterminated=\"v} 1\n").ok());
  EXPECT_FALSE(ParseStatsText(header + "name notanumber\n").ok());
  // Unknown sample names are future schema, not errors.
  const auto superset =
      ParseStatsText(header + "metric_from_the_future 9\n");
  ASSERT_TRUE(superset.ok());
  EXPECT_EQ(superset->samples.size(), 1u);
}

TEST(SloRegistryTest, AccountsOutcomesPerTenant) {
  SloRegistry slo;
  slo.Register("idle");  // connected but never queried: visible, all zeros
  slo.RecordCompletion("alpha", 5.0, 10.0, true, StatusCode::kOk, true);
  slo.RecordCompletion("alpha", 7.0, 2.5, true, StatusCode::kOk, false);
  slo.RecordCompletion("alpha", 3.0, 0.0, false,
                       StatusCode::kDeadlineExceeded, true);
  slo.RecordCompletion("alpha", 4.0, 0.0, false, StatusCode::kCancelled,
                       true);
  slo.RecordShed("alpha");
  slo.RecordCompletion("beta", 1.0, 1.0, true, StatusCode::kOk, true);

  const std::vector<TenantSloSnapshot> tenants = slo.Snapshot();
  ASSERT_EQ(tenants.size(), 3u);  // sorted: alpha, beta, idle
  const TenantSloSnapshot& alpha = tenants[0];
  EXPECT_EQ(alpha.tenant, "alpha");
  EXPECT_EQ(alpha.requests, 4u);
  EXPECT_EQ(alpha.errors, 2u);
  EXPECT_EQ(alpha.shed, 1u);
  EXPECT_EQ(alpha.deadline_exceeded, 1u);
  EXPECT_EQ(alpha.cancelled, 1u);
  EXPECT_EQ(alpha.degraded, 1u);
  EXPECT_DOUBLE_EQ(alpha.metered_cost, 12.5);
  EXPECT_DOUBLE_EQ(alpha.error_rate, 0.5);  // 2 errors in 4 completions
  EXPECT_EQ(alpha.latency_ms.count, 4u);
  EXPECT_DOUBLE_EQ(alpha.latency_ms.sum, 19.0);
  EXPECT_EQ(tenants[1].tenant, "beta");
  EXPECT_EQ(tenants[2].tenant, "idle");
  EXPECT_EQ(tenants[2].requests, 0u);
}

TEST(SloRegistryTest, ErrorRateIsRollingNotLifetime) {
  SloRegistry slo;
  // Fill the window with errors, then recover with a full window of
  // successes: the lifetime ratio stays high, the rolling rate reads clean.
  for (size_t i = 0; i < SloRegistry::kErrorWindow; ++i) {
    slo.RecordCompletion("t", 1.0, 0.0, false, StatusCode::kInternal, true);
  }
  EXPECT_DOUBLE_EQ(slo.Snapshot()[0].error_rate, 1.0);
  for (size_t i = 0; i < SloRegistry::kErrorWindow; ++i) {
    slo.RecordCompletion("t", 1.0, 0.0, true, StatusCode::kOk, true);
  }
  const TenantSloSnapshot snap = slo.Snapshot()[0];
  EXPECT_DOUBLE_EQ(snap.error_rate, 0.0);
  EXPECT_EQ(snap.errors, SloRegistry::kErrorWindow);  // lifetime count stays
}

// ---------------------------------------------------------------------------
// Logging thread safety
// ---------------------------------------------------------------------------

TEST(LoggingTest, ConcurrentSeverityChangesAreSafe) {
  using internal_logging::LogSeverity;
  const LogSeverity original = internal_logging::MinLogSeverity();
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    for (int i = 0; i < 500; ++i) {
      internal_logging::SetMinLogSeverity(i % 2 == 0 ? LogSeverity::kError
                                                     : LogSeverity::kWarning);
    }
    stop.store(true);
  });
  std::vector<std::thread> loggers;
  for (int t = 0; t < 3; ++t) {
    loggers.emplace_back([&] {
      while (!stop.load()) {
        FUSION_LOG(Info) << "swallowed below the minimum severity";
      }
    });
  }
  toggler.join();
  for (std::thread& t : loggers) t.join();
  internal_logging::SetMinLogSeverity(original);
}

}  // namespace
}  // namespace fusion
