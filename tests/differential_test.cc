// Property-style differential test of the serving path: randomized fusion
// queries answered by a concurrent QueryService (shared cache, learned
// statistics, plan memo, churn invalidations) must be byte-identical to a
// fresh, serial, cache-less Mediator over an identical federation. The
// service may pick different plans than the reference — the answers must
// not differ.
//
// Seeded and deterministic (honors FUSION_SEED for replay); part of the
// TSan matrix via the concurrency label.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/workload.h"
#include "common/rng.h"
#include "mediator/mediator.h"
#include "mediator/service.h"
#include "protocol/client_protocol.h"

namespace fusion {
namespace {

using bench::MacroWorkload;
using bench::MacroWorkloadSpec;

MacroWorkloadSpec SmallSpec(uint64_t seed) {
  MacroWorkloadSpec spec;
  spec.universe_size = 1500;
  spec.num_sources = 5;
  spec.num_conditions = 5;
  spec.pool_size = 40;
  spec.coverage = 0.3;
  spec.selectivity = 0.1;
  spec.seed = GlobalSeed(seed);
  return spec;
}

/// Submits one SQL query through the full wire path (serialize → Handle →
/// parse) and returns the canonical answer text.
Result<std::string> SubmitOverWire(QueryService& service,
                                   const std::string& client_id,
                                   const std::string& sql) {
  ClientRequest request;
  request.kind = ClientRequest::Kind::kSubmit;
  request.client_id = client_id;
  request.sql = sql;
  request.wait = true;
  const std::string reply = service.Handle(SerializeClientRequest(request));
  FUSION_ASSIGN_OR_RETURN(const ClientResponse response,
                          ParseClientResponse(reply));
  if (!response.ok) {
    return Status(response.error_code, response.error_message);
  }
  ItemSet items;
  for (const Value& v : response.items) items.Insert(v);
  return items.ToString();
}

// 200 randomized queries from 4 concurrent tenants — with churn
// invalidations interleaved — against one shared service session, then
// every answer re-derived on a serial uncached mediator.
TEST(DifferentialTest, ServiceMatchesSerialMediatorUnderConcurrency) {
  const MacroWorkloadSpec spec = SmallSpec(7);
  auto workload_or = MacroWorkload::Generate(spec);
  ASSERT_TRUE(workload_or.ok()) << workload_or.status().ToString();
  MacroWorkload workload = std::move(workload_or).value();

  QueryService::Options options;
  options.workers = 4;
  QueryService service(Mediator(std::move(workload.catalog())), options);

  constexpr size_t kTenants = 4;
  constexpr size_t kQueriesPerTenant = 50;
  std::mutex mutex;
  std::vector<std::pair<size_t, std::string>> served;  // (pool idx, answer)
  std::vector<std::string> failures;
  std::atomic<size_t> completed{0};
  std::vector<std::thread> tenants;
  for (size_t t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      MacroWorkload::TenantStream stream = workload.StreamFor(t, kTenants);
      for (size_t i = 0; i < kQueriesPerTenant; ++i) {
        const size_t index = stream.NextIndex();
        const Result<std::string> answer = SubmitOverWire(
            service, "tenant-" + std::to_string(t), workload.pool()[index]);
        std::lock_guard<std::mutex> lock(mutex);
        if (!answer.ok()) {
          failures.push_back(answer.status().ToString());
          continue;
        }
        served.emplace_back(index, *answer);
        // Deterministic churn: every 25th completion invalidates a source,
        // so reuse must survive cache wipes mid-run.
        const size_t done = completed.fetch_add(1) + 1;
        if (done % 25 == 0) {
          service.session().InvalidateSource(
              MixSeed(spec.seed, done) % spec.num_sources);
        }
      }
    });
  }
  for (std::thread& tenant : tenants) tenant.join();
  ASSERT_TRUE(failures.empty()) << failures.front();
  ASSERT_EQ(served.size(), kTenants * kQueriesPerTenant);

  // Reference: same federation, fresh build, serial execution, no cache,
  // no session statistics — the simplest trustworthy evaluator.
  auto oracle_catalog = workload.MakeOracleCatalog();
  ASSERT_TRUE(oracle_catalog.ok()) << oracle_catalog.status().ToString();
  Mediator oracle(std::move(oracle_catalog).value());
  const MediatorOptions serial;
  std::map<size_t, std::string> reference;
  size_t divergences = 0;
  for (const auto& [index, answer] : served) {
    auto it = reference.find(index);
    if (it == reference.end()) {
      auto truth = oracle.AnswerSql(workload.pool()[index], serial);
      ASSERT_TRUE(truth.ok()) << truth.status().ToString();
      it = reference.emplace(index, truth->items.ToString()).first;
    }
    if (answer != it->second) {
      ++divergences;
      ADD_FAILURE() << "pool[" << index << "] diverged\n  sql:    "
                    << workload.pool()[index] << "\n  served: " << answer
                    << "\n  oracle: " << it->second;
      if (divergences >= 3) break;  // enough detail to debug
    }
  }
  EXPECT_EQ(divergences, 0u);
}

// The workload generator itself must be replayable: the same spec yields
// the same pool and the same per-tenant request streams, and distinct
// tenants get distinct streams.
TEST(DifferentialTest, WorkloadStreamsAreDeterministic) {
  const MacroWorkloadSpec spec = SmallSpec(11);
  auto a = MacroWorkload::Generate(spec);
  auto b = MacroWorkload::Generate(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->pool(), b->pool());

  MacroWorkload::TenantStream s1 = a->StreamFor(0, 4);
  MacroWorkload::TenantStream s2 = b->StreamFor(0, 4);
  MacroWorkload::TenantStream other = a->StreamFor(1, 4);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const size_t expected = s1.NextIndex();
    EXPECT_EQ(expected, s2.NextIndex());
    if (other.NextIndex() != expected) differs = true;
  }
  EXPECT_TRUE(differs) << "tenant streams should not be identical";
}

// Embedded path sanity: the same pool through a local uncached session must
// equal the serial mediator too (catches bugs that the cached service path
// could mask by construction).
TEST(DifferentialTest, UncachedSessionMatchesSerialMediator) {
  const MacroWorkloadSpec spec = SmallSpec(13);
  auto workload_or = MacroWorkload::Generate(spec);
  ASSERT_TRUE(workload_or.ok());
  MacroWorkload workload = std::move(workload_or).value();

  QuerySession::Options options;
  options.use_cache = false;
  QuerySession session(Mediator(std::move(workload.catalog())), options);
  auto oracle_catalog = workload.MakeOracleCatalog();
  ASSERT_TRUE(oracle_catalog.ok());
  Mediator oracle(std::move(oracle_catalog).value());
  const MediatorOptions serial;
  for (size_t index = 0; index < workload.pool().size(); ++index) {
    const std::string& sql = workload.pool()[index];
    auto served = session.AnswerSql(sql);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    auto truth = oracle.AnswerSql(sql, serial);
    ASSERT_TRUE(truth.ok()) << truth.status().ToString();
    EXPECT_EQ(served->items.ToString(), truth->items.ToString()) << sql;
  }
}

}  // namespace
}  // namespace fusion
