#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cli/catalog_config.h"
#include "common/file_util.h"
#include "mediator/mediator.h"

namespace fusion {
namespace {

constexpr char kGoodConfig[] = R"(# demo catalog
[source R1]
csv = r1.csv
semijoin = native
overhead = 10
send = 1
recv = 2
proc = 0.5
width = 3

[source R2]
csv = r2.csv
semijoin = bindings  # legacy
load = no
)";

TEST(CatalogConfigTest, ParsesSourcesWithProfiles) {
  const auto specs = ParseCatalogConfig(kGoodConfig);
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 2u);
  const SourceSpecConfig& r1 = (*specs)[0];
  EXPECT_EQ(r1.name, "R1");
  EXPECT_EQ(r1.csv_path, "r1.csv");
  EXPECT_EQ(r1.capabilities.semijoin, SemijoinSupport::kNative);
  EXPECT_TRUE(r1.capabilities.supports_load);
  EXPECT_DOUBLE_EQ(r1.network.query_overhead, 10);
  EXPECT_DOUBLE_EQ(r1.network.cost_per_item_sent, 1);
  EXPECT_DOUBLE_EQ(r1.network.cost_per_item_received, 2);
  EXPECT_DOUBLE_EQ(r1.network.processing_per_tuple, 0.5);
  EXPECT_DOUBLE_EQ(r1.network.record_width_factor, 3);
  const SourceSpecConfig& r2 = (*specs)[1];
  EXPECT_EQ(r2.capabilities.semijoin, SemijoinSupport::kPassedBindingsOnly);
  EXPECT_FALSE(r2.capabilities.supports_load);
  // Defaults retained for unspecified cost keys.
  EXPECT_DOUBLE_EQ(r2.network.query_overhead, NetworkProfile{}.query_overhead);
}

TEST(CatalogConfigTest, RejectsMalformedConfigs) {
  EXPECT_FALSE(ParseCatalogConfig("").ok());
  EXPECT_FALSE(ParseCatalogConfig("[source R1]\n").ok());  // no csv
  EXPECT_FALSE(ParseCatalogConfig("csv = a.csv\n").ok());  // outside section
  EXPECT_FALSE(ParseCatalogConfig("[widget X]\ncsv = a\n").ok());
  EXPECT_FALSE(
      ParseCatalogConfig("[source R1]\ncsv = a\nsemijoin = maybe\n").ok());
  EXPECT_FALSE(
      ParseCatalogConfig("[source R1]\ncsv = a\noverhead = cheap\n").ok());
  EXPECT_FALSE(
      ParseCatalogConfig("[source R1]\ncsv = a\nbogus = 1\n").ok());
  EXPECT_FALSE(ParseCatalogConfig("[source R1\ncsv = a\n").ok());
  EXPECT_FALSE(ParseCatalogConfig("[source R1]\nno equals sign\n").ok());
  EXPECT_FALSE(
      ParseCatalogConfig("[source R1]\ncsv = a\noverhead = -5\n").ok());
}

TEST(CatalogConfigTest, CommentsAndBlanksIgnored) {
  const auto specs = ParseCatalogConfig(
      "\n# header\n[source S]\n  csv = x.csv  # inline\n\n");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ((*specs)[0].csv_path, "x.csv");
}

class CatalogLoadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/fusion_cli_test";
    std::remove((dir_ + "/r1.csv").c_str());
    ASSERT_EQ(std::system(("mkdir -p " + dir_).c_str()), 0);
    ASSERT_TRUE(WriteStringToFile(
                    dir_ + "/r1.csv",
                    "L:string,V:string\nJ55,dui\nT21,sp\n")
                    .ok());
    ASSERT_TRUE(WriteStringToFile(
                    dir_ + "/r2.csv",
                    "L:string,V:string\nJ55,sp\nT80,dui\n")
                    .ok());
    ASSERT_TRUE(WriteStringToFile(dir_ + "/catalog.ini",
                                  "[source R1]\ncsv = r1.csv\n"
                                  "[source R2]\ncsv = r2.csv\n")
                    .ok());
  }
  std::string dir_;
};

TEST_F(CatalogLoadTest, LoadsCatalogAndAnswersQueries) {
  auto catalog = LoadCatalogFromFile(dir_ + "/catalog.ini");
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_EQ(catalog->size(), 2u);
  Mediator mediator(std::move(catalog).value());
  MediatorOptions options;
  options.statistics = StatisticsMode::kOracle;
  const auto answer = mediator.AnswerSql(
      "SELECT u1.L FROM U u1, U u2 "
      "WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'",
      options);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(answer->items.ToString(), "{'J55'}");
}

TEST_F(CatalogLoadTest, MissingCsvFails) {
  ASSERT_TRUE(WriteStringToFile(dir_ + "/bad.ini",
                                "[source R9]\ncsv = nope.csv\n")
                  .ok());
  EXPECT_FALSE(LoadCatalogFromFile(dir_ + "/bad.ini").ok());
}

TEST_F(CatalogLoadTest, MalformedCsvReportsSourceName) {
  ASSERT_TRUE(
      WriteStringToFile(dir_ + "/broken.csv", "L:string\n\"unclosed\n").ok());
  ASSERT_TRUE(WriteStringToFile(dir_ + "/broken.ini",
                                "[source RX]\ncsv = broken.csv\n")
                  .ok());
  const auto catalog = LoadCatalogFromFile(dir_ + "/broken.ini");
  // Either parses leniently or fails mentioning the source; accept both but
  // require no crash and a sane Status on failure.
  if (!catalog.ok()) {
    EXPECT_NE(catalog.status().message().find("RX"), std::string::npos);
  }
}

TEST(FileUtilTest, RoundTrip) {
  const std::string path = ::testing::TempDir() + "/fusion_file_util.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld").ok());
  const auto back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "hello\nworld");
  EXPECT_FALSE(ReadFileToString(path + ".does-not-exist").ok());
}

TEST(FileUtilTest, AtomicWriteLeavesNoTornState) {
  // The port-file readiness contract: a concurrent reader sees the whole
  // content or no file at all — never an empty/partial file (the bug the
  // rename(2)-based write fixed in fusionqd/fusionsd/fusionrd).
  const std::string path = ::testing::TempDir() + "/fusion_port_file.txt";
  std::remove(path.c_str());
  ASSERT_TRUE(WriteFileAtomic(path, "4631\n").ok());
  auto back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "4631\n");
  // Overwrite is atomic too, and the temp staging file never lingers.
  ASSERT_TRUE(WriteFileAtomic(path, "4632\n").ok());
  back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "4632\n");
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
  // An unwritable staging path surfaces as a Status, not a torn target.
  EXPECT_FALSE(WriteFileAtomic("/nonexistent-dir/port", "1\n").ok());
}

// ---------------------------------------------------------------------------
// Remote-source endpoint specs
// ---------------------------------------------------------------------------

TEST(CatalogConfigTest, EndpointValuesAreTrimmedAndDeduplicated) {
  const auto specs = ParseCatalogConfig(
      "[source R1]\n"
      "endpoint =   127.0.0.1:9001  \n"
      "endpoint = 127.0.0.1:9002\n"
      "endpoint = 127.0.0.1:9001\n");  // duplicate: kept-first, not doubled
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 1u);
  const std::vector<std::string> expected = {"127.0.0.1:9001",
                                             "127.0.0.1:9002"};
  EXPECT_EQ((*specs)[0].endpoints, expected);
}

TEST(CatalogConfigTest, RejectsMalformedEndpoints) {
  const auto with_endpoint = [](const std::string& endpoint) {
    return ParseCatalogConfig("[source R1]\nendpoint = " + endpoint + "\n");
  };
  EXPECT_FALSE(with_endpoint("no-port-here").ok());
  EXPECT_FALSE(with_endpoint(":9001").ok());         // empty host
  EXPECT_FALSE(with_endpoint("host:").ok());         // empty port
  EXPECT_FALSE(with_endpoint("host:http").ok());     // non-numeric port
  EXPECT_FALSE(with_endpoint("host:0").ok());        // port out of range
  EXPECT_FALSE(with_endpoint("host:65536").ok());    // port out of range
  EXPECT_FALSE(with_endpoint("two hosts:9001").ok());  // inner whitespace
}

}  // namespace
}  // namespace fusion
