#ifndef FUSION_CLI_CLIENT_FLAGS_H_
#define FUSION_CLI_CLIENT_FLAGS_H_

#include <cstring>
#include <optional>
#include <string>

#include "common/status.h"
#include "mediator/client.h"

namespace fusion {

/// `--flag=value` splitter shared by the fusion command-line tools.
inline bool ParseFlagValue(const char* arg, const char* name,
                           std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

Result<OptimizerStrategy> StrategyFromName(const std::string& name);

/// Maps a --stats value to a statistics mode: "session" (the learned
/// feedback loop) maps to nullopt, the fixed modes to their enum.
Result<std::optional<StatisticsMode>> StatisticsFromName(
    const std::string& name);

/// The client-configuration flags shared verbatim by fusionq and fusionqd —
/// one parser, one help block, one mapping onto the one ClientOptions
/// struct, so the embedded CLI and the daemon cannot drift in what they
/// accept or how they interpret it.
struct ClientFlags {
  std::string strategy = "sja+";
  /// oracle | parametric | calibrated | session.
  std::string stats = "oracle";
  bool lazy = false;
  int parallelism = 1;
  std::string on_failure = "fail";  // fail | degrade
  int max_attempts = 1;
  double deadline_ms = 0.0;
  double retry_backoff_ms = 0.0;
  double call_timeout_ms = 0.0;
  bool cache = false;
  double cache_mb = 0.0;
  double cache_ttl_ms = 0.0;

  /// Tries to consume one argv token. Returns true when the token was one
  /// of the client flags (with *error set if its value was invalid);
  /// false lets the caller try its tool-specific flags.
  bool Consume(const char* arg, Status* error);

  /// Help text covering exactly the flags Consume handles.
  static const char* Help();

  /// Maps the parsed flags onto ClientOptions (validating names/ranges).
  Result<ClientOptions> ToClientOptions() const;
};

}  // namespace fusion

#endif  // FUSION_CLI_CLIENT_FLAGS_H_
