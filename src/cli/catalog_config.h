#ifndef FUSION_CLI_CATALOG_CONFIG_H_
#define FUSION_CLI_CATALOG_CONFIG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "source/capabilities.h"
#include "source/catalog.h"
#include "source/source_wrapper.h"

namespace fusion {

/// Declarative description of one source in a catalog config file.
struct SourceSpecConfig {
  std::string name;
  std::string csv_path;  // relative to the config file's directory
  /// Remote mode: FUSIONP/1 replica endpoints ("host:port"), repeatable —
  /// the loaded source speaks the wire protocol with failover across them
  /// (RemoteSource::ConnectTcp) instead of simulating locally. Mutually
  /// exclusive with csv (the data lives behind the endpoints).
  std::vector<std::string> endpoints;
  Capabilities capabilities;
  NetworkProfile network;
  /// `outage = yes` wraps the source so every call fails with kUnavailable
  /// (a permanently down source) — the CLI's way to demonstrate circuit
  /// breakers and degraded-mode execution against real configs.
  bool outage = false;
  /// `flaky = P` makes each call fail transiently (kInternal) with
  /// probability P ∈ [0, 1]; `flaky_seed = N` fixes the failure stream.
  double flaky_probability = 0.0;
  uint64_t flaky_seed = 1;
};

/// Parses the fusionq catalog configuration format — INI-style sections,
/// one per source:
///
///   [source R1]
///   csv = dmv_r1.csv
///   semijoin = native        # native | bindings | none
///   load = yes               # yes | no
///   overhead = 10
///   send = 1
///   recv = 1
///   proc = 0.01
///   width = 3
///   outage = no              # yes: every call fails (source is down)
///   flaky = 0                # transient failure probability in [0, 1]
///   flaky_seed = 1           # RNG seed for the failure stream
///
/// A *remote* source replaces `csv` with one or more replica endpoints
/// (fusionsd daemons serving the same data; failover rotates across them):
///
///   [source R2]
///   endpoint = 127.0.0.1:9201
///   endpoint = 127.0.0.1:9202
///
/// Unknown keys are errors; omitted cost keys keep NetworkProfile defaults.
/// Lines starting with '#' (or blank) are ignored; inline `# comments` after
/// values are stripped.
Result<std::vector<SourceSpecConfig>> ParseCatalogConfig(
    const std::string& text);

/// Builds one live source from its spec: a SimulatedSource over the CSV
/// (resolved against `base_dir` unless absolute), optionally FlakySource-
/// wrapped (outage/flaky keys) — or a RemoteSource dialing the spec's
/// endpoints. fusionsd uses this to serve exactly the source a catalog
/// describes.
Result<std::unique_ptr<SourceWrapper>> LoadSourceWrapper(
    const SourceSpecConfig& spec, const std::string& base_dir);

/// Builds a live catalog from a parsed config via LoadSourceWrapper.
Result<SourceCatalog> LoadCatalog(const std::vector<SourceSpecConfig>& specs,
                                  const std::string& base_dir);

/// Convenience: read + parse + load in one call. `path`'s directory becomes
/// the base for relative CSV paths.
Result<SourceCatalog> LoadCatalogFromFile(const std::string& path);

}  // namespace fusion

#endif  // FUSION_CLI_CATALOG_CONFIG_H_
