#ifndef FUSION_CLI_CATALOG_CONFIG_H_
#define FUSION_CLI_CATALOG_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "source/capabilities.h"
#include "source/catalog.h"

namespace fusion {

/// Declarative description of one source in a catalog config file.
struct SourceSpecConfig {
  std::string name;
  std::string csv_path;  // relative to the config file's directory
  Capabilities capabilities;
  NetworkProfile network;
  /// `outage = yes` wraps the source so every call fails with kUnavailable
  /// (a permanently down source) — the CLI's way to demonstrate circuit
  /// breakers and degraded-mode execution against real configs.
  bool outage = false;
  /// `flaky = P` makes each call fail transiently (kInternal) with
  /// probability P ∈ [0, 1]; `flaky_seed = N` fixes the failure stream.
  double flaky_probability = 0.0;
  uint64_t flaky_seed = 1;
};

/// Parses the fusionq catalog configuration format — INI-style sections,
/// one per source:
///
///   [source R1]
///   csv = dmv_r1.csv
///   semijoin = native        # native | bindings | none
///   load = yes               # yes | no
///   overhead = 10
///   send = 1
///   recv = 1
///   proc = 0.01
///   width = 3
///   outage = no              # yes: every call fails (source is down)
///   flaky = 0                # transient failure probability in [0, 1]
///   flaky_seed = 1           # RNG seed for the failure stream
///
/// Unknown keys are errors; omitted cost keys keep NetworkProfile defaults.
/// Lines starting with '#' (or blank) are ignored; inline `# comments` after
/// values are stripped.
Result<std::vector<SourceSpecConfig>> ParseCatalogConfig(
    const std::string& text);

/// Builds a live catalog from a parsed config: reads each CSV (resolved
/// against `base_dir` unless absolute) and wraps it in a SimulatedSource.
Result<SourceCatalog> LoadCatalog(const std::vector<SourceSpecConfig>& specs,
                                  const std::string& base_dir);

/// Convenience: read + parse + load in one call. `path`'s directory becomes
/// the base for relative CSV paths.
Result<SourceCatalog> LoadCatalogFromFile(const std::string& path);

}  // namespace fusion

#endif  // FUSION_CLI_CATALOG_CONFIG_H_
