#ifndef FUSION_CLI_CATALOG_EXPORT_H_
#define FUSION_CLI_CATALOG_EXPORT_H_

#include <string>

#include "common/status.h"
#include "source/catalog.h"

namespace fusion {

/// Writes a catalog of simulated sources to `dir` in the fusionq on-disk
/// format: one `<name>.csv` per source plus a `catalog.ini` describing the
/// capability and network profiles. The output round-trips through
/// LoadCatalogFromFile. `dir` must already exist. Fails if any source is not
/// a SimulatedSource (only simulated sources expose their relations).
Status ExportCatalog(const SourceCatalog& catalog, const std::string& dir);

}  // namespace fusion

#endif  // FUSION_CLI_CATALOG_EXPORT_H_
