#include "cli/catalog_config.h"

#include <cstdlib>
#include <limits>
#include <memory>

#include "common/file_util.h"
#include "common/str_util.h"
#include "protocol/remote_source.h"
#include "relational/relation.h"
#include "source/flaky_source.h"
#include "source/simulated_source.h"

namespace fusion {
namespace {

/// Strips an inline `# comment` (outside of any quoting; the config format
/// has no quoted strings) and trims whitespace.
std::string StripComment(std::string_view line) {
  const size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  return std::string(StrTrim(line));
}

Result<double> ParseDouble(const std::string& value, const std::string& key) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end != value.c_str() + value.size() || value.empty()) {
    return Status::ParseError("bad numeric value for '" + key + "': " + value);
  }
  if (v < 0) {
    return Status::ParseError("'" + key + "' must be non-negative");
  }
  return v;
}

Status ApplyKeyValue(SourceSpecConfig& spec, const std::string& key,
                     const std::string& value) {
  if (key == "csv") {
    spec.csv_path = value;
    return Status::Ok();
  }
  if (key == "semijoin") {
    if (EqualsIgnoreCase(value, "native")) {
      spec.capabilities.semijoin = SemijoinSupport::kNative;
    } else if (EqualsIgnoreCase(value, "bindings")) {
      spec.capabilities.semijoin = SemijoinSupport::kPassedBindingsOnly;
    } else if (EqualsIgnoreCase(value, "none")) {
      spec.capabilities.semijoin = SemijoinSupport::kUnsupported;
    } else {
      return Status::ParseError("semijoin must be native|bindings|none, got " +
                                value);
    }
    return Status::Ok();
  }
  if (key == "load") {
    if (EqualsIgnoreCase(value, "yes")) {
      spec.capabilities.supports_load = true;
    } else if (EqualsIgnoreCase(value, "no")) {
      spec.capabilities.supports_load = false;
    } else {
      return Status::ParseError("load must be yes|no, got " + value);
    }
    return Status::Ok();
  }
  if (key == "overhead") {
    FUSION_ASSIGN_OR_RETURN(spec.network.query_overhead,
                            ParseDouble(value, key));
    return Status::Ok();
  }
  if (key == "send") {
    FUSION_ASSIGN_OR_RETURN(spec.network.cost_per_item_sent,
                            ParseDouble(value, key));
    return Status::Ok();
  }
  if (key == "recv") {
    FUSION_ASSIGN_OR_RETURN(spec.network.cost_per_item_received,
                            ParseDouble(value, key));
    return Status::Ok();
  }
  if (key == "proc") {
    FUSION_ASSIGN_OR_RETURN(spec.network.processing_per_tuple,
                            ParseDouble(value, key));
    return Status::Ok();
  }
  if (key == "width") {
    FUSION_ASSIGN_OR_RETURN(spec.network.record_width_factor,
                            ParseDouble(value, key));
    return Status::Ok();
  }
  if (key == "outage") {
    if (EqualsIgnoreCase(value, "yes")) {
      spec.outage = true;
    } else if (EqualsIgnoreCase(value, "no")) {
      spec.outage = false;
    } else {
      return Status::ParseError("outage must be yes|no, got " + value);
    }
    return Status::Ok();
  }
  if (key == "flaky") {
    FUSION_ASSIGN_OR_RETURN(spec.flaky_probability, ParseDouble(value, key));
    if (spec.flaky_probability > 1.0) {
      return Status::ParseError("flaky must be in [0, 1], got " + value);
    }
    return Status::Ok();
  }
  if (key == "flaky_seed") {
    FUSION_ASSIGN_OR_RETURN(const double seed, ParseDouble(value, key));
    spec.flaky_seed = static_cast<uint64_t>(seed);
    return Status::Ok();
  }
  if (key == "endpoint") {
    // The fleet's bootstrap path: every replica line must be a usable
    // host:port *now*, not at first dial. Stray whitespace (a config edited
    // by hand) is trimmed; an empty host, a non-numeric or out-of-range
    // port, or embedded whitespace is a parse error naming the value; and a
    // duplicate of an earlier replica line is dropped silently — dialing
    // the same address twice only doubles the failover latency.
    const std::string endpoint(StrTrim(value));
    const size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
      return Status::ParseError("endpoint must be host:port, got " + value);
    }
    const std::string host = endpoint.substr(0, colon);
    const std::string port = endpoint.substr(colon + 1);
    if (host.empty()) {
      return Status::ParseError("endpoint has an empty host: " + value);
    }
    if (endpoint.find_first_of(" \t") != std::string::npos) {
      return Status::ParseError("endpoint contains whitespace: " + value);
    }
    if (port.empty() ||
        port.find_first_not_of("0123456789") != std::string::npos) {
      return Status::ParseError("endpoint port is not numeric: " + value);
    }
    const long port_number = std::strtol(port.c_str(), nullptr, 10);
    if (port_number < 1 || port_number > 65535) {
      return Status::ParseError("endpoint port out of range: " + value);
    }
    for (const std::string& existing : spec.endpoints) {
      if (existing == endpoint) return Status::Ok();  // duplicate replica
    }
    spec.endpoints.push_back(endpoint);
    return Status::Ok();
  }
  return Status::ParseError("unknown key '" + key + "' in source section");
}

}  // namespace

Result<std::vector<SourceSpecConfig>> ParseCatalogConfig(
    const std::string& text) {
  std::vector<SourceSpecConfig> specs;
  bool in_source = false;
  size_t line_no = 0;
  for (const std::string& raw : StrSplit(text, '\n')) {
    ++line_no;
    const std::string line = StripComment(raw);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        return Status::ParseError(
            StrFormat("line %zu: unterminated section header", line_no));
      }
      const std::string header(StrTrim(line.substr(1, line.size() - 2)));
      if (!StartsWith(ToLower(header), "source ")) {
        return Status::ParseError(
            StrFormat("line %zu: only [source <name>] sections are "
                      "supported, got [%s]",
                      line_no, header.c_str()));
      }
      SourceSpecConfig spec;
      spec.name = std::string(StrTrim(header.substr(7)));
      if (spec.name.empty()) {
        return Status::ParseError(
            StrFormat("line %zu: source section needs a name", line_no));
      }
      specs.push_back(std::move(spec));
      in_source = true;
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError(
          StrFormat("line %zu: expected key = value, got '%s'", line_no,
                    line.c_str()));
    }
    if (!in_source) {
      return Status::ParseError(
          StrFormat("line %zu: key outside a [source ...] section", line_no));
    }
    const std::string key = ToLower(StrTrim(line.substr(0, eq)));
    const std::string value(StrTrim(line.substr(eq + 1)));
    FUSION_RETURN_IF_ERROR(ApplyKeyValue(specs.back(), key, value));
  }
  if (specs.empty()) {
    return Status::ParseError("config defines no sources");
  }
  for (const SourceSpecConfig& spec : specs) {
    if (spec.csv_path.empty() && spec.endpoints.empty()) {
      return Status::ParseError("source '" + spec.name +
                                "' has no csv path (and no endpoints)");
    }
    if (!spec.csv_path.empty() && !spec.endpoints.empty()) {
      return Status::ParseError(
          "source '" + spec.name +
          "': csv and endpoint are mutually exclusive (remote sources serve "
          "their own data)");
    }
  }
  return specs;
}

Result<std::unique_ptr<SourceWrapper>> LoadSourceWrapper(
    const SourceSpecConfig& spec, const std::string& base_dir) {
  std::unique_ptr<SourceWrapper> source;
  if (!spec.endpoints.empty()) {
    // Remote source: the data (and its metering) lives behind the
    // endpoints; failover across the replicas is RemoteSource's job.
    auto remote = RemoteSource::ConnectTcp(spec.endpoints);
    if (!remote.ok()) {
      return Status(remote.status().code(),
                    "source '" + spec.name +
                        "': " + remote.status().message());
    }
    if (remote.value()->name() != spec.name) {
      return Status::InvalidArgument(
          "source '" + spec.name + "': endpoints serve source '" +
          remote.value()->name() + "'");
    }
    source = std::move(remote).value();
  } else {
    std::string path = spec.csv_path;
    if (!path.empty() && path.front() != '/' && !base_dir.empty()) {
      path = base_dir + "/" + path;
    }
    FUSION_ASSIGN_OR_RETURN(const std::string csv, ReadFileToString(path));
    auto relation = RelationFromCsv(csv);
    if (!relation.ok()) {
      return Status(relation.status().code(),
                    "source '" + spec.name + "' (" + path +
                        "): " + relation.status().message());
    }
    source = std::make_unique<SimulatedSource>(
        spec.name, std::move(relation).value(), spec.capabilities,
        spec.network);
  }
  if (spec.outage || spec.flaky_probability > 0.0) {
    FlakySource::Options flaky;
    flaky.failure_probability = spec.flaky_probability;
    flaky.seed = spec.flaky_seed;
    if (spec.outage) {
      // The source is down for good: every call, from the first on.
      flaky.outage_start = 0;
      flaky.outage_end = std::numeric_limits<size_t>::max();
    }
    source = std::make_unique<FlakySource>(std::move(source), flaky);
  }
  return source;
}

Result<SourceCatalog> LoadCatalog(const std::vector<SourceSpecConfig>& specs,
                                  const std::string& base_dir) {
  SourceCatalog catalog;
  for (const SourceSpecConfig& spec : specs) {
    FUSION_ASSIGN_OR_RETURN(std::unique_ptr<SourceWrapper> source,
                            LoadSourceWrapper(spec, base_dir));
    FUSION_RETURN_IF_ERROR(catalog.Add(std::move(source)));
  }
  return catalog;
}

Result<SourceCatalog> LoadCatalogFromFile(const std::string& path) {
  FUSION_ASSIGN_OR_RETURN(const std::string text, ReadFileToString(path));
  FUSION_ASSIGN_OR_RETURN(const std::vector<SourceSpecConfig> specs,
                          ParseCatalogConfig(text));
  const size_t slash = path.rfind('/');
  const std::string base_dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  return LoadCatalog(specs, base_dir);
}

}  // namespace fusion
