#include "cli/client_flags.h"

#include <cstdlib>

#include "common/str_util.h"

namespace fusion {

Result<OptimizerStrategy> StrategyFromName(const std::string& name) {
  const std::string s = ToLower(name);
  if (s == "filter") return OptimizerStrategy::kFilter;
  if (s == "sj") return OptimizerStrategy::kSj;
  if (s == "sja") return OptimizerStrategy::kSja;
  if (s == "sja+") return OptimizerStrategy::kSjaPlus;
  if (s == "greedy") return OptimizerStrategy::kGreedySja;
  if (s == "greedy+") return OptimizerStrategy::kGreedySjaPlus;
  return Status::InvalidArgument("unknown strategy: " + name);
}

Result<std::optional<StatisticsMode>> StatisticsFromName(
    const std::string& name) {
  const std::string s = ToLower(name);
  if (s == "oracle") return std::optional<StatisticsMode>(
      StatisticsMode::kOracle);
  if (s == "parametric") return std::optional<StatisticsMode>(
      StatisticsMode::kOracleParametric);
  if (s == "calibrated") return std::optional<StatisticsMode>(
      StatisticsMode::kCalibrated);
  if (s == "session") return std::optional<StatisticsMode>();
  return Status::InvalidArgument(
      "unknown statistics mode: " + name +
      " (expected oracle | parametric | calibrated | session)");
}

bool ClientFlags::Consume(const char* arg, Status* error) {
  *error = Status::Ok();
  if (ParseFlagValue(arg, "--strategy", &strategy)) return true;
  if (ParseFlagValue(arg, "--stats", &stats)) return true;
  std::string number;
  if (ParseFlagValue(arg, "--parallelism", &number)) {
    parallelism = std::atoi(number.c_str());
    if (parallelism < 1) {
      *error = Status::InvalidArgument("--parallelism must be >= 1");
    }
    return true;
  }
  if (ParseFlagValue(arg, "--on-failure", &number)) {
    on_failure = number;
    if (on_failure != "fail" && on_failure != "degrade") {
      *error = Status::InvalidArgument(
          "--on-failure must be 'fail' or 'degrade'");
    }
    return true;
  }
  if (ParseFlagValue(arg, "--max-attempts", &number)) {
    max_attempts = std::atoi(number.c_str());
    if (max_attempts < 1) {
      *error = Status::InvalidArgument("--max-attempts must be >= 1");
    }
    return true;
  }
  if (ParseFlagValue(arg, "--deadline-ms", &number)) {
    deadline_ms = std::atof(number.c_str());
    return true;
  }
  if (ParseFlagValue(arg, "--retry-backoff", &number)) {
    retry_backoff_ms = std::atof(number.c_str());
    return true;
  }
  if (ParseFlagValue(arg, "--call-timeout-ms", &number)) {
    call_timeout_ms = std::atof(number.c_str());
    return true;
  }
  if (ParseFlagValue(arg, "--cache-mb", &number)) {
    cache_mb = std::atof(number.c_str());
    if (cache_mb < 0.0) {
      *error = Status::InvalidArgument("--cache-mb must be >= 0");
    }
    cache = true;
    return true;
  }
  if (ParseFlagValue(arg, "--cache-ttl-ms", &number)) {
    cache_ttl_ms = std::atof(number.c_str());
    if (cache_ttl_ms < 0.0) {
      *error = Status::InvalidArgument("--cache-ttl-ms must be >= 0");
    }
    cache = true;
    return true;
  }
  if (std::strcmp(arg, "--cache") == 0) {
    cache = true;
    return true;
  }
  if (std::strcmp(arg, "--lazy") == 0) {
    lazy = true;
    return true;
  }
  return false;
}

const char* ClientFlags::Help() {
  return
      "  --strategy=S     filter | sj | sja | sja+ | greedy | greedy+\n"
      "                   (default sja+)\n"
      "  --stats=S        oracle | parametric | calibrated | session\n"
      "                   (session = learned statistics with execution\n"
      "                   feedback; calibrated pays metered probe traffic)\n"
      "  --lazy           lazy short-circuit execution\n"
      "  --parallelism=N  parallel plan execution with N workers (default 1)\n"
      "  --on-failure=P   fail | degrade — what to do when a source is\n"
      "                   exhausted: fail the query (default) or return a\n"
      "                   sound partial answer excluding the dead source\n"
      "  --max-attempts=N retry transient source failures up to N attempts\n"
      "  --retry-backoff=MS  initial exponential-backoff sleep, in ms\n"
      "  --call-timeout-ms=MS  per-source-call timeout (0 = none)\n"
      "  --deadline-ms=MS per-query deadline; with --on-failure=degrade the\n"
      "                   partial answer gathered in time is returned\n"
      "  --cache          attach a source-call result cache (sq/sjq/lq memo\n"
      "                   with containment reuse) and print its statistics\n"
      "  --cache-mb=MB    cache byte budget in MiB, LRU-evicted (implies\n"
      "                   --cache; 0 = unbounded)\n"
      "  --cache-ttl-ms=MS  cache entry time-to-live (implies --cache;\n"
      "                   0 = never expires)\n";
}

Result<ClientOptions> ClientFlags::ToClientOptions() const {
  ClientOptions options;
  FUSION_ASSIGN_OR_RETURN(options.strategy, StrategyFromName(strategy));
  FUSION_ASSIGN_OR_RETURN(options.statistics, StatisticsFromName(stats));
  options.execution.lazy_short_circuit = lazy;
  options.execution.parallelism = parallelism;
  options.execution.retry.max_attempts = max_attempts;
  options.execution.retry.initial_backoff_seconds = retry_backoff_ms / 1e3;
  options.execution.retry.call_timeout_seconds = call_timeout_ms / 1e3;
  options.execution.deadline_seconds = deadline_ms / 1e3;
  if (on_failure == "degrade") {
    options.execution.on_source_failure = SourceFailurePolicy::kDegrade;
  }
  options.use_cache = cache;
  options.cache.max_bytes = static_cast<size_t>(cache_mb * 1024.0 * 1024.0);
  options.cache.ttl_seconds = cache_ttl_ms / 1e3;
  return options;
}

}  // namespace fusion
