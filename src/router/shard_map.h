#ifndef FUSION_ROUTER_SHARD_MAP_H_
#define FUSION_ROUTER_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace fusion {

/// One fusionqd shard of the fleet, as the router sees it.
struct Shard {
  std::string name;      // display name ("shard-0"; defaults from the index)
  std::string endpoint;  // host:port the shard's FUSIONQ/1 listener binds
};

/// FNV-1a, 64-bit. Spelled out (not std::hash) because routing must be
/// deterministic *across processes and restarts*: the shard a query key
/// lands on is where its plan memo and SourceCallCache warm up, and a
/// router restart must keep sending that key to the same shard.
uint64_t Fnv1a64(std::string_view text);

/// The routing key for one SUBMIT: the parsed query's canonicalized text
/// (same normalization the session plan-memo keys use, so two spellings of
/// one query land on one shard and replay one memo). Unparsable sql falls
/// back to the trimmed raw text — still deterministic, routed like any
/// other key, and the shard will produce the parse error.
std::string CanonicalQueryKey(const std::string& sql);

/// The fleet membership plus the rendezvous (highest-random-weight) hash
/// that assigns every query key an owner shard. Rendezvous hashing gives
/// the two properties the fleet needs with no ring maintenance:
///
///  - determinism: owner(key) depends only on (key, shard names), so every
///    router replica — and a restarted router — agrees;
///  - minimal disruption: removing a shard only remaps the keys it owned
///    (each key's score per shard is independent), so a shard dying does
///    not cold-start the whole fleet's caches.
///
/// Ranked() returns all shards in descending score order — element 0 is
/// the owner, the rest are the failover order when the owner is down.
class ShardMap {
 public:
  /// Validates and builds: at least one shard, at most 256 (the router
  /// packs the shard index into the low byte of its tickets), non-empty
  /// unique names, non-empty endpoints. Empty names default to "shard-<i>".
  static Result<ShardMap> Make(std::vector<Shard> shards);

  size_t size() const { return shards_.size(); }
  const Shard& shard(size_t index) const { return shards_[index]; }

  /// All shard indices by descending rendezvous score for `key`
  /// (deterministic total order; ties broken by index).
  std::vector<size_t> Ranked(const std::string& key) const;

  /// The owner shard for `key` — Ranked(key)[0] without the allocation.
  size_t Owner(const std::string& key) const;

 private:
  ShardMap() = default;

  std::vector<Shard> shards_;
  /// Precomputed Fnv1a64(shard name), mixed per key at routing time.
  std::vector<uint64_t> name_hashes_;
};

}  // namespace fusion

#endif  // FUSION_ROUTER_SHARD_MAP_H_
