#include "router/router.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "common/str_util.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

namespace fusion {
namespace {

/// Idle upstream connections kept per shard; extras are closed on release.
constexpr size_t kMaxIdleLinksPerShard = 8;

/// Warm-locality ledger bound: past this many distinct keys the ledger is
/// cleared (stats restart cold; routing is stateless and unaffected).
constexpr size_t kMaxWarmEntries = 64 * 1024;

void SleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Transport-level failures a redial (or a failover to the next-ranked
/// shard) can cure; protocol-level failures are final.
bool IsTransportError(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kInternal;
}

bool IsHelloRetryable(const Status& status) {
  return IsTransportError(status) ||
         status.code() == StatusCode::kParseError;
}

/// Router-minted SUBMIT idempotency keys, for forwards whose client sent
/// none: what makes the router's own redial-and-resend path replay-safe.
/// Same construction as the client's minting (unique per process with
/// overwhelming probability, deterministic under FUSION_SEED, never 0) but
/// a distinct salt, so router- and client-minted ids cannot collide under
/// one seed.
uint64_t MintRouterRequestId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t seed =
      GlobalSeed(0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(getpid()));
  const uint64_t id = MixSeed(MixSeed(seed, 0x50d7u), n);
  return id == 0 ? 1 : id;
}

}  // namespace

RetryPolicy QueryRouter::DefaultReconnectPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.25;
  return policy;
}

QueryRouter::QueryRouter(ShardMap shards, const Options& options)
    : shards_(std::move(shards)), options_(options) {
  pools_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    pools_.push_back(std::make_unique<ShardPool>());
  }
  counters_.per_shard_forwards.assign(shards_.size(), 0);
}

QueryRouter::~QueryRouter() { Shutdown(); }

void QueryRouter::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  for (const std::unique_ptr<ShardPool>& pool : pools_) {
    std::lock_guard<std::mutex> lock(pool->mutex);
    pool->idle.clear();  // MessageSocket destructors close the fds
  }
}

Result<std::unique_ptr<QueryRouter::Link>> QueryRouter::AcquireLink(
    size_t shard) {
  {
    ShardPool& pool = *pools_[shard];
    std::lock_guard<std::mutex> lock(pool.mutex);
    if (!pool.idle.empty()) {
      std::unique_ptr<Link> link = std::move(pool.idle.back());
      pool.idle.pop_back();
      return link;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      return Status::Unavailable("router is shutting down");
    }
  }
  auto link = std::make_unique<Link>();
  FUSION_ASSIGN_OR_RETURN(link->socket,
                          DialTcp(shards_.shard(shard).endpoint));
  ClientRequest hello;
  hello.kind = ClientRequest::Kind::kHello;
  hello.client_id = options_.server_name;
  hello.features = ClientProtocolFeatures();
  FUSION_RETURN_IF_ERROR(link->socket.Send(SerializeClientRequest(hello)));
  FUSION_ASSIGN_OR_RETURN(const std::string reply, link->socket.Receive());
  FUSION_ASSIGN_OR_RETURN(const ClientResponse response,
                          ParseClientResponse(reply));
  if (!response.ok) {
    return Status(response.error_code, "hello: " + response.error_message);
  }
  link->features = FeatureSet::FromNames(response.features);
  return link;
}

void QueryRouter::ReleaseLink(size_t shard, std::unique_ptr<Link> link) {
  ShardPool& pool = *pools_[shard];
  std::lock_guard<std::mutex> lock(pool.mutex);
  if (pool.idle.size() < kMaxIdleLinksPerShard) {
    pool.idle.push_back(std::move(link));
  }
  // else: dropped — the destructor closes the connection.
}

Result<ClientResponse> QueryRouter::Exchange(size_t shard,
                                             const ClientRequest& request) {
  const std::string wire = SerializeClientRequest(request);
  const int attempts = std::max(1, options_.reconnect.max_attempts);
  Status last_error = Status::Unavailable("never dialed");
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      SleepSeconds(options_.reconnect.BackoffSeconds(0, attempt - 1));
    }
    Result<std::unique_ptr<Link>> link = AcquireLink(shard);
    if (!link.ok()) {
      last_error = link.status();
      if (!IsHelloRetryable(last_error)) break;
      continue;
    }
    // Resend safety mirrors the client's rule: a SUBMIT is only re-sent
    // after its frame may have shipped when the shard's request-id dedup
    // makes the replay free — which it always is for forwards, because
    // the router mints a request-id when the client sent none.
    const bool resend_safe =
        request.kind != ClientRequest::Kind::kSubmit ||
        (link.value()->features.Has(Feature::kIdempotency) &&
         request.request_id != 0);
    bool frame_sent = false;
    const Status sent = link.value()->socket.Send(wire);
    if (sent.ok()) {
      frame_sent = true;
      Result<std::string> reply = link.value()->socket.Receive();
      if (reply.ok()) {
        Result<ClientResponse> parsed = ParseClientResponse(reply.value());
        if (!parsed.ok()) break;  // a whole-but-malformed frame is final
        {
          std::lock_guard<std::mutex> lock(mutex_);
          counters_.forward_bytes += wire.size();
        }
        static Counter& bytes = MetricsRegistry::Global().counter(
            metrics::kRouterForwardBytes);
        bytes.Increment(wire.size());
        ReleaseLink(shard, std::move(link.value()));
        return parsed;
      }
      // A failed Receive is a transport event (including the kParseError a
      // torn frame produces) — the pooled connection may simply have gone
      // stale since its last use; a fresh dial gets a whole frame.
      last_error = reply.status();
    } else {
      last_error = sent;
      if (!IsTransportError(sent)) break;
    }
    // Transport failure: this upstream connection is dead; do not pool it.
    if (frame_sent && !resend_safe) break;
  }
  return Status(last_error.code(),
                last_error.message() + " (shard " +
                    shards_.shard(shard).name + " at " +
                    shards_.shard(shard).endpoint + ")");
}

ClientResponse QueryRouter::ForwardSubmit(const ClientRequest& request) {
  if (request.sql.empty()) {
    return ClientErrorResponse(
        Status::InvalidArgument("SUBMIT requires an sql line"));
  }
  const std::string key = CanonicalQueryKey(request.sql);
  const std::vector<size_t> ranked = shards_.Ranked(key);
  ClientRequest forward = request;
  if (forward.request_id == 0) forward.request_id = MintRouterRequestId();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.forwards;
  }
  static Counter& forwards =
      MetricsRegistry::Global().counter(metrics::kRouterForwardsTotal);
  forwards.Increment();
  Status last_error = Status::Unavailable("no shards");
  for (size_t i = 0; i < ranked.size(); ++i) {
    const size_t shard = ranked[i];
    Result<ClientResponse> response = Exchange(shard, forward);
    if (!response.ok()) {
      last_error = response.status();
      if (!IsTransportError(last_error)) {
        return ClientErrorResponse(last_error);
      }
      if (i + 1 < ranked.size()) {
        // Owner down: the next-ranked shard serves this key (cold cache at
        // worst — queries are read-only, so never a wrong answer).
        {
          std::lock_guard<std::mutex> lock(mutex_);
          ++counters_.failovers;
        }
        static Counter& failovers = MetricsRegistry::Global().counter(
            metrics::kRouterFailoversTotal);
        failovers.Increment();
      }
      continue;
    }
    {
      // Warm-locality ledger: a repeated key is a warm forward; a warm
      // forward served by the same shard as last time is a warm hit — the
      // property the rendezvous hash exists to deliver.
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.per_shard_forwards[shard];
      const auto seen = last_shard_.find(key);
      if (seen != last_shard_.end()) {
        ++counters_.warm_forwards;
        static Counter& warm = MetricsRegistry::Global().counter(
            metrics::kRouterWarmForwardsTotal);
        warm.Increment();
        if (seen->second == shard) {
          ++counters_.warm_hits;
          static Counter& hits = MetricsRegistry::Global().counter(
              metrics::kRouterWarmHitsTotal);
          hits.Increment();
        }
      }
      if (last_shard_.size() >= kMaxWarmEntries) last_shard_.clear();
      last_shard_[key] = shard;
    }
    // Re-ticket for the client: shard index in the low byte, so STATUS and
    // CANCEL route straight back to the shard that owns the request.
    if (response.value().ticket != 0) {
      response.value().ticket =
          (response.value().ticket << 8) | static_cast<uint64_t>(shard);
    }
    return std::move(response).value();
  }
  return ClientErrorResponse(last_error);
}

ClientResponse QueryRouter::ForwardTicketVerb(const ClientRequest& request) {
  const size_t shard = static_cast<size_t>(request.ticket & 0xff);
  const uint64_t upstream_ticket = request.ticket >> 8;
  if (shard >= shards_.size() || upstream_ticket == 0) {
    return ClientErrorResponse(Status::NotFound(
        "unknown ticket " + std::to_string(request.ticket)));
  }
  ClientRequest forward = request;
  forward.ticket = upstream_ticket;
  Result<ClientResponse> response = Exchange(shard, forward);
  if (!response.ok()) return ClientErrorResponse(response.status());
  if (response.value().ticket != 0) {
    response.value().ticket =
        (response.value().ticket << 8) | static_cast<uint64_t>(shard);
  }
  return std::move(response).value();
}

ClientResponse QueryRouter::FanOutInvalidate(const ClientRequest& request) {
  if (request.source.empty()) {
    return ClientErrorResponse(
        Status::InvalidArgument("INVALIDATE requires a source line"));
  }
  // Broadcast to every shard — coherence is fleet-wide. The version stamp
  // makes delivery idempotent per shard, so a retry after a partial
  // broadcast (one shard down) re-applies nowhere it already landed.
  bool any_applied = false;
  Status first_error = Status::Ok();
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    const Result<ClientResponse> response = Exchange(shard, request);
    if (!response.ok()) {
      if (first_error.ok()) first_error = response.status();
      continue;
    }
    if (!response.value().ok) {
      if (first_error.ok()) {
        first_error = Status(response.value().error_code,
                             response.value().error_message);
      }
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.invalidate_fanouts;
    }
    static Counter& fanouts = MetricsRegistry::Global().counter(
        metrics::kRouterInvalidateFanoutsTotal);
    fanouts.Increment();
    if (response.value().state == "applied") any_applied = true;
  }
  if (!first_error.ok()) return ClientErrorResponse(first_error);
  ClientResponse response;
  response.state = any_applied ? "applied" : "stale";
  return response;
}

ClientResponse QueryRouter::HandleParsed(const ClientRequest& request) {
  switch (request.kind) {
    case ClientRequest::Kind::kHello: {
      ClientResponse response;
      response.server = options_.server_name;
      response.features = ClientProtocolFeatures();
      return response;
    }
    case ClientRequest::Kind::kSubmit:
      return ForwardSubmit(request);
    case ClientRequest::Kind::kStatus:
    case ClientRequest::Kind::kCancel:
      return ForwardTicketVerb(request);
    case ClientRequest::Kind::kStats: {
      ClientResponse response;
      response.server = options_.server_name;
      for (const std::string& line : StrSplit(StatsText(), '\n')) {
        if (!line.empty()) response.stats_lines.push_back(line);
      }
      return response;
    }
    case ClientRequest::Kind::kInvalidate:
      return FanOutInvalidate(request);
  }
  return ClientErrorResponse(Status::Internal("unknown request kind"));
}

std::string QueryRouter::Handle(const std::string& request_text) {
  const Result<ClientRequest> request = ParseClientRequest(request_text);
  if (!request.ok()) {
    return SerializeClientResponse(ClientErrorResponse(request.status()));
  }
  return SerializeClientResponse(HandleParsed(request.value()));
}

void QueryRouter::ServeConnection(ChaosSocket socket) {
  if (socket.valid()) {
    socket.inner().SetReceiveLimit(8 * kMaxClientProtocolLineBytes);
    if (options_.stall_deadline_seconds > 0.0) {
      (void)socket.inner().SetStallDeadline(options_.stall_deadline_seconds);
    }
  }
  for (;;) {
    const Result<std::string> message = socket.Receive();
    if (!message.ok()) return;
    const std::string response = Handle(message.value());
    if (!socket.Send(response).ok()) return;
  }
}

QueryRouter::Counters QueryRouter::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::string QueryRouter::StatsText() const {
  // The router has no tenant SLO table (it does not execute queries); its
  // exposition is the process metrics — the router_* counters included.
  return RenderStatsText(MetricsRegistry::Global().Snapshot(), {});
}

}  // namespace fusion
