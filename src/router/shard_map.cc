#include "router/shard_map.h"

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "common/str_util.h"
#include "query/parser.h"

namespace fusion {

uint64_t Fnv1a64(std::string_view text) {
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

std::string CanonicalQueryKey(const std::string& sql) {
  const Result<FusionQuery> query = ParseFusionQuery(sql);
  if (!query.ok()) return std::string(StrTrim(sql));
  // Condition order is irrelevant to a fusion query's answer, so it must be
  // irrelevant to routing too: key on the *sorted* canonical condition
  // texts, and commuted spellings land on one shard.
  const FusionQuery canonical = query->Canonicalized();
  std::vector<std::string> conditions;
  conditions.reserve(canonical.conditions().size());
  for (const Condition& cond : canonical.conditions()) {
    conditions.push_back(cond.CacheKey());
  }
  std::sort(conditions.begin(), conditions.end());
  std::string key = "fusion(" + canonical.merge_attribute() + ";";
  for (const std::string& cond : conditions) key += " " + cond + ",";
  key += ")";
  return key;
}

Result<ShardMap> ShardMap::Make(std::vector<Shard> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("shard map needs at least one shard");
  }
  if (shards.size() > 256) {
    return Status::InvalidArgument(
        "shard map supports at most 256 shards (the router encodes the "
        "shard index in the low byte of its tickets)");
  }
  std::set<std::string> names;
  for (size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].name.empty()) {
      shards[i].name = "shard-" + std::to_string(i);
    }
    if (shards[i].endpoint.empty()) {
      return Status::InvalidArgument("shard '" + shards[i].name +
                                     "' has no endpoint");
    }
    if (!names.insert(shards[i].name).second) {
      return Status::InvalidArgument("duplicate shard name '" +
                                     shards[i].name + "'");
    }
  }
  ShardMap map;
  map.shards_ = std::move(shards);
  map.name_hashes_.reserve(map.shards_.size());
  for (const Shard& shard : map.shards_) {
    map.name_hashes_.push_back(Fnv1a64(shard.name));
  }
  return map;
}

namespace {

/// The rendezvous score of (key, shard): both hashes mixed through the
/// same avalanche MixSeed the rest of the system uses for seeded
/// derivation. Scores for different shards are independent, which is what
/// makes removal disruption minimal.
uint64_t Score(uint64_t key_hash, uint64_t name_hash) {
  return MixSeed(name_hash, key_hash);
}

}  // namespace

std::vector<size_t> ShardMap::Ranked(const std::string& key) const {
  const uint64_t key_hash = Fnv1a64(key);
  std::vector<size_t> order(shards_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const uint64_t sa = Score(key_hash, name_hashes_[a]);
    const uint64_t sb = Score(key_hash, name_hashes_[b]);
    if (sa != sb) return sa > sb;
    return a < b;
  });
  return order;
}

size_t ShardMap::Owner(const std::string& key) const {
  const uint64_t key_hash = Fnv1a64(key);
  size_t best = 0;
  uint64_t best_score = Score(key_hash, name_hashes_[0]);
  for (size_t i = 1; i < shards_.size(); ++i) {
    const uint64_t score = Score(key_hash, name_hashes_[i]);
    if (score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

}  // namespace fusion
