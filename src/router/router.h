#ifndef FUSION_ROUTER_ROUTER_H_
#define FUSION_ROUTER_ROUTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/executor.h"  // RetryPolicy
#include "protocol/chaos.h"
#include "protocol/client_protocol.h"
#include "protocol/features.h"
#include "protocol/socket.h"
#include "router/shard_map.h"

namespace fusion {

/// The fusionrd query router: the client-facing front of a sharded
/// mediator fleet. Speaks FUSIONQ/1 on both sides — clients connect to it
/// exactly as they would to a single fusionqd (same HELLO, same verbs) and
/// it forwards each request to one of k fusionqd shards over pooled
/// upstream connections.
///
/// Routing discipline:
///
///  - SUBMIT: the sql's canonical query key (shard_map.h) is rendezvous-
///    hashed over the shard map; the owner shard gets the forward. A warm
///    repeated query therefore always lands on the shard whose plan memo
///    and SourceCallCache already hold it — replaying at ~0 metered cost no
///    matter which client connection issued it. If the owner is down
///    (transport-class failure), the next-ranked shard serves instead
///    (failover; queries are read-only, so the worst case is a cold cache,
///    never a wrong answer).
///  - STATUS / CANCEL: tickets returned to clients encode the serving
///    shard in their low byte (shard tickets shifted left 8), so follow-up
///    verbs route straight back to the shard that owns the request.
///  - INVALIDATE: fanned out to *every* shard — the coherence broadcast.
///    The version stamp makes the fan-out idempotent per shard, so a retry
///    after a partial broadcast is safe (already-applied shards answer
///    `stale`). The aggregate state is "applied" if any shard applied.
///  - HELLO: answered locally (the router's name, the full feature set
///    including `sharding`); STATS: the router process's own exposition
///    (per-shard internals are one direct connection away).
///
/// SUBMITs forwarded without a client request-id get one minted by the
/// router, so its own redial-and-resend path never double-executes on a
/// shard that speaks `idempotency`.
///
/// Thread-safe; one QueryRouter serves every connection thread of fusionrd.
class QueryRouter {
 public:
  struct Options {
    /// Router identity reported in the HELLO handshake.
    std::string server_name = "fusionrd";
    /// Dial/redial schedule per forward (attempts × capped backoff).
    RetryPolicy reconnect = DefaultReconnectPolicy();
    /// Stalled-peer guard for ServeConnection (see QueryService::Options).
    double stall_deadline_seconds = 10.0;
  };

  /// 4 attempts, 10 ms doubling to a 250 ms cap — a shard mid-restart
  /// costs backoff; a dead shard fails over to the next-ranked in well
  /// under a second.
  static RetryPolicy DefaultReconnectPolicy();

  QueryRouter(ShardMap shards, const Options& options);
  ~QueryRouter();

  QueryRouter(const QueryRouter&) = delete;
  QueryRouter& operator=(const QueryRouter&) = delete;

  /// Protocol entry point: one serialized FUSIONQ/1 request in, one
  /// serialized response out (parse and forward failures become ERROR
  /// responses, never malformed text).
  std::string Handle(const std::string& request_text);

  /// The per-connection serve loop fusionrd runs per accepted socket.
  void ServeConnection(ChaosSocket socket);

  /// Closes every pooled upstream connection; new forwards redial.
  void Shutdown();

  const ShardMap& shards() const { return shards_; }
  const std::string& server_name() const { return options_.server_name; }

  /// Routing counters, for tests and the bench harness's `shards` block.
  struct Counters {
    size_t forwards = 0;        // SUBMITs forwarded (success or not)
    size_t warm_forwards = 0;   // forwards whose key was seen before
    size_t warm_hits = 0;       // warm forwards served by the same shard
    size_t failovers = 0;       // forwards moved past a dead shard
    size_t invalidate_fanouts = 0;  // INVALIDATE deliveries (shards × verbs)
    uint64_t forward_bytes = 0;     // request bytes forwarded shard-ward
    /// SUBMITs each shard actually served (post-failover), index-aligned
    /// with the shard map — the bench harness's per-shard QPS split.
    std::vector<size_t> per_shard_forwards;
  };
  Counters counters() const;

  /// The router process's STATS exposition (served for the STATS verb).
  std::string StatsText() const;

 private:
  /// One pooled upstream connection with its negotiated feature set.
  struct Link {
    MessageSocket socket;
    FeatureSet features;
  };
  /// Idle-connection pool per shard: concurrent connection threads each
  /// check out a Link (dialing a fresh one when the pool is dry) and
  /// return it after the exchange, so forwards never serialize on one
  /// upstream socket.
  struct ShardPool {
    std::mutex mutex;
    std::vector<std::unique_ptr<Link>> idle;
  };

  ClientResponse HandleParsed(const ClientRequest& request);
  ClientResponse ForwardSubmit(const ClientRequest& request);
  ClientResponse ForwardTicketVerb(const ClientRequest& request);
  ClientResponse FanOutInvalidate(const ClientRequest& request);

  /// One request/response against `shard`, with dial-retry under
  /// Options::reconnect. Pools the connection on success; closes it on
  /// failure. Transport-class failures surface to the caller (who may fail
  /// over); protocol errors are final.
  Result<ClientResponse> Exchange(size_t shard, const ClientRequest& request);

  Result<std::unique_ptr<Link>> AcquireLink(size_t shard);
  void ReleaseLink(size_t shard, std::unique_ptr<Link> link);

  ShardMap shards_;
  Options options_;
  std::vector<std::unique_ptr<ShardPool>> pools_;

  mutable std::mutex mutex_;
  bool shutting_down_ = false;
  /// key -> shard that served it last: the warm-locality ledger behind
  /// warm_forwards/warm_hits. Bounded: cleared wholesale past 64k keys
  /// (locality stats restart; routing itself is stateless and unaffected).
  std::map<std::string, size_t> last_shard_;
  Counters counters_;
};

}  // namespace fusion

#endif  // FUSION_ROUTER_ROUTER_H_
