#ifndef FUSION_COST_SET_ESTIMATE_H_
#define FUSION_COST_SET_ESTIMATE_H_

#include <optional>
#include <string>

#include "common/item_set.h"

namespace fusion {

/// The optimizer's knowledge about an intermediate item set (an X_i variable):
/// always a size estimate; under an oracle cost model also the exact set, so
/// the estimated plan cost equals the metered execution cost.
struct SetEstimate {
  double size = 0.0;
  std::optional<ItemSet> exact;

  static SetEstimate Exact(ItemSet set) {
    SetEstimate e;
    e.size = static_cast<double>(set.size());
    e.exact = std::move(set);
    return e;
  }
  static SetEstimate Approx(double size) {
    SetEstimate e;
    e.size = size < 0 ? 0 : size;
    return e;
  }

  bool is_exact() const { return exact.has_value(); }
  std::string ToString() const;
};

/// Set algebra over estimates. When both operands are exact the result is
/// exact; otherwise sizes combine under the independence assumption over a
/// universe of `universe_size` items:
///   |A ∩ B| ≈ |A||B|/U,  |A ∪ B| ≈ |A|+|B|-|A||B|/U,  |A − B| ≈ |A|(1-|B|/U).
SetEstimate UnionEstimate(const SetEstimate& a, const SetEstimate& b,
                          double universe_size);
SetEstimate IntersectEstimate(const SetEstimate& a, const SetEstimate& b,
                              double universe_size);
SetEstimate DifferenceEstimate(const SetEstimate& a, const SetEstimate& b,
                               double universe_size);

}  // namespace fusion

#endif  // FUSION_COST_SET_ESTIMATE_H_
