#include "cost/cost_model.h"

#include <cmath>

namespace fusion {

bool CheckSubadditivity(const CostModel& model, size_t cond, size_t source,
                        double x_size) {
  const double whole = model.SjqCost(cond, source, SetEstimate::Approx(x_size));
  if (std::isinf(whole)) return true;  // infinite everywhere: vacuous
  // Deterministic splits at several ratios; subadditivity must hold for each.
  for (double frac : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const double y = x_size * frac;
    const double z = x_size - y;
    const double split = model.SjqCost(cond, source, SetEstimate::Approx(y)) +
                         model.SjqCost(cond, source, SetEstimate::Approx(z));
    // Tolerate tiny floating-point slack.
    if (whole > split * (1.0 + 1e-9) + 1e-9) return false;
  }
  return true;
}

}  // namespace fusion
