#include "cost/oracle_cost_model.h"

#include <algorithm>
#include <limits>

namespace fusion {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Result<OracleCostModel> OracleCostModel::Create(
    const std::vector<const SimulatedSource*>& sources,
    const FusionQuery& query) {
  if (sources.empty()) {
    return Status::InvalidArgument("oracle cost model needs sources");
  }
  OracleCostModel model;
  model.sources_ = sources;
  const size_t m = query.num_conditions();
  model.satisfying_.resize(m);
  ItemSet universe;
  for (const SimulatedSource* s : sources) {
    FUSION_ASSIGN_OR_RETURN(
        ItemSet all,
        s->relation().SelectItems(Condition::True(), query.merge_attribute()));
    universe = ItemSet::Union(universe, all);
  }
  model.universe_size_ =
      std::max<double>(1.0, static_cast<double>(universe.size()));
  for (size_t i = 0; i < m; ++i) {
    model.satisfying_[i].reserve(sources.size());
    for (const SimulatedSource* s : sources) {
      FUSION_ASSIGN_OR_RETURN(ItemSet items,
                              s->relation().SelectItems(
                                  query.conditions()[i],
                                  query.merge_attribute()));
      model.satisfying_[i].push_back(std::move(items));
    }
  }
  return model;
}

double OracleCostModel::SqCost(size_t cond, size_t source) const {
  return sources_[source]->SelectCost(satisfying_[cond][source].size());
}

double OracleCostModel::SjqCost(size_t cond, size_t source,
                                const SetEstimate& x) const {
  const SimulatedSource& s = *sources_[source];
  const SetEstimate result = SjqResult(cond, source, x);
  switch (s.capabilities().semijoin) {
    case SemijoinSupport::kNative:
      return s.SemiJoinCost(static_cast<size_t>(x.size + 0.5),
                            static_cast<size_t>(result.size + 0.5));
    case SemijoinSupport::kPassedBindingsOnly: {
      // One selection probe per binding (matches executor emulation).
      const double per_probe =
          s.network().query_overhead +
          s.network().processing_per_tuple *
              static_cast<double>(s.relation().size());
      return x.size * per_probe +
             s.network().cost_per_item_received * result.size;
    }
    case SemijoinSupport::kUnsupported:
      return kInf;
  }
  return kInf;
}

double OracleCostModel::LqCost(size_t source) const {
  if (!sources_[source]->capabilities().supports_load) return kInf;
  return sources_[source]->LoadCost();
}

SetEstimate OracleCostModel::SqResult(size_t cond, size_t source) const {
  return SetEstimate::Exact(satisfying_[cond][source]);
}

SetEstimate OracleCostModel::SjqResult(size_t cond, size_t source,
                                       const SetEstimate& x) const {
  if (x.is_exact()) {
    return SetEstimate::Exact(
        ItemSet::Intersect(*x.exact, satisfying_[cond][source]));
  }
  const double p = std::min(
      1.0, static_cast<double>(satisfying_[cond][source].size()) /
               universe_size_);
  return SetEstimate::Approx(x.size * p);
}

double OracleCostModel::FetchCost(size_t source, double item_count) const {
  // Upper-bound: assume every requested item has a record at the source.
  return sources_[source]->FetchCost(
      static_cast<size_t>(item_count + 0.5),
      static_cast<size_t>(item_count + 0.5));
}

}  // namespace fusion
