#ifndef FUSION_COST_PARAMETRIC_COST_MODEL_H_
#define FUSION_COST_PARAMETRIC_COST_MODEL_H_

#include <vector>

#include "cost/cost_model.h"
#include "source/capabilities.h"

namespace fusion {

/// Planning-time knowledge about one source: its capability and network
/// profiles plus statistical estimates (cardinality, per-condition result
/// sizes). Produced either from oracle statistics or from sampling-based
/// calibration (src/stats).
struct SourceParams {
  Capabilities capabilities;
  NetworkProfile network;
  /// Estimated |R_j| (tuples).
  double cardinality = 0.0;
  /// Estimated number of distinct merge values satisfying each condition at
  /// this source: result_size[i] ~ |sq(c_i, R_j)|.
  std::vector<double> result_size;
};

/// The standard cost model: per-source network cost formulas applied to
/// statistical estimates. Mirrors exactly the charging rules of
/// SimulatedSource, so with perfect statistics its costs agree with metered
/// execution (property exercised by tests and bench_cost_fidelity).
class ParametricCostModel : public CostModel {
 public:
  /// `universe_size` is the estimated number of distinct merge values across
  /// all sources (used for independence-based intersections).
  ParametricCostModel(std::vector<SourceParams> sources, double universe_size);

  size_t num_conditions() const override;
  size_t num_sources() const override { return sources_.size(); }
  double universe_size() const override { return universe_size_; }

  double SqCost(size_t cond, size_t source) const override;
  double SjqCost(size_t cond, size_t source,
                 const SetEstimate& x) const override;
  double LqCost(size_t source) const override;
  SetEstimate SqResult(size_t cond, size_t source) const override;
  SetEstimate SjqResult(size_t cond, size_t source,
                        const SetEstimate& x) const override;
  double FetchCost(size_t source, double item_count) const override;

  const SourceParams& params(size_t source) const { return sources_[source]; }

 private:
  std::vector<SourceParams> sources_;
  double universe_size_;
};

}  // namespace fusion

#endif  // FUSION_COST_PARAMETRIC_COST_MODEL_H_
