#include "cost/set_estimate.h"

#include <algorithm>

#include "common/str_util.h"

namespace fusion {
namespace {

double SafeUniverse(double universe_size) {
  return universe_size < 1.0 ? 1.0 : universe_size;
}

}  // namespace

std::string SetEstimate::ToString() const {
  if (is_exact()) {
    return StrFormat("exact|%zu|", exact->size());
  }
  return StrFormat("approx|%.3g|", size);
}

SetEstimate UnionEstimate(const SetEstimate& a, const SetEstimate& b,
                          double universe_size) {
  if (a.is_exact() && b.is_exact()) {
    return SetEstimate::Exact(ItemSet::Union(*a.exact, *b.exact));
  }
  const double u = SafeUniverse(universe_size);
  const double est = a.size + b.size - a.size * b.size / u;
  return SetEstimate::Approx(std::min(est, u));
}

SetEstimate IntersectEstimate(const SetEstimate& a, const SetEstimate& b,
                              double universe_size) {
  if (a.is_exact() && b.is_exact()) {
    return SetEstimate::Exact(ItemSet::Intersect(*a.exact, *b.exact));
  }
  const double u = SafeUniverse(universe_size);
  const double est = a.size * b.size / u;
  return SetEstimate::Approx(std::min(est, std::min(a.size, b.size)));
}

SetEstimate DifferenceEstimate(const SetEstimate& a, const SetEstimate& b,
                               double universe_size) {
  if (a.is_exact() && b.is_exact()) {
    return SetEstimate::Exact(ItemSet::Difference(*a.exact, *b.exact));
  }
  const double u = SafeUniverse(universe_size);
  const double est = a.size * (1.0 - b.size / u);
  return SetEstimate::Approx(std::max(0.0, std::min(est, a.size)));
}

}  // namespace fusion
