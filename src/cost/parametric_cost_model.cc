#include "cost/parametric_cost_model.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace fusion {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ParametricCostModel::ParametricCostModel(std::vector<SourceParams> sources,
                                         double universe_size)
    : sources_(std::move(sources)),
      universe_size_(universe_size < 1.0 ? 1.0 : universe_size) {
  FUSION_CHECK(!sources_.empty()) << "cost model needs at least one source";
  for (const SourceParams& p : sources_) {
    FUSION_CHECK(p.result_size.size() == sources_[0].result_size.size())
        << "all sources must estimate the same number of conditions";
  }
}

size_t ParametricCostModel::num_conditions() const {
  return sources_[0].result_size.size();
}

double ParametricCostModel::SqCost(size_t cond, size_t source) const {
  const SourceParams& p = sources_[source];
  return p.network.query_overhead +
         p.network.processing_per_tuple * p.cardinality +
         p.network.cost_per_item_received * p.result_size[cond];
}

double ParametricCostModel::SjqCost(size_t cond, size_t source,
                                    const SetEstimate& x) const {
  const SourceParams& p = sources_[source];
  const double result = SjqResult(cond, source, x).size;
  switch (p.capabilities.semijoin) {
    case SemijoinSupport::kNative:
      return p.network.query_overhead +
             p.network.cost_per_item_sent * x.size +
             p.network.processing_per_tuple * p.cardinality +
             p.network.cost_per_item_received * result;
    case SemijoinSupport::kPassedBindingsOnly:
      // Emulated: one `c AND M = m` selection per binding, each paying the
      // full query overhead and a source scan (matches executor metering).
      return x.size * (p.network.query_overhead +
                       p.network.processing_per_tuple * p.cardinality) +
             p.network.cost_per_item_received * result;
    case SemijoinSupport::kUnsupported:
      return kInf;
  }
  return kInf;
}

double ParametricCostModel::LqCost(size_t source) const {
  const SourceParams& p = sources_[source];
  if (!p.capabilities.supports_load) return kInf;
  return p.network.query_overhead +
         p.network.processing_per_tuple * p.cardinality +
         p.network.cost_per_item_received * p.network.record_width_factor *
             p.cardinality;
}

SetEstimate ParametricCostModel::SqResult(size_t cond, size_t source) const {
  return SetEstimate::Approx(sources_[source].result_size[cond]);
}

SetEstimate ParametricCostModel::SjqResult(size_t cond, size_t source,
                                           const SetEstimate& x) const {
  // Independence: a random universe item satisfies c at R_source with
  // probability result_size / universe.
  const double p = std::min(1.0, sources_[source].result_size[cond] /
                                     universe_size_);
  return SetEstimate::Approx(x.size * p);
}

double ParametricCostModel::FetchCost(size_t source, double item_count) const {
  const SourceParams& p = sources_[source];
  // Expected number of this source's records matching a random item.
  const double hit_rate = std::min(1.0, p.cardinality / universe_size_);
  return p.network.query_overhead +
         p.network.cost_per_item_sent * item_count +
         p.network.processing_per_tuple * p.cardinality +
         p.network.cost_per_item_received * p.network.record_width_factor *
             item_count * hit_rate;
}

}  // namespace fusion
