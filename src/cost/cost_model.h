#ifndef FUSION_COST_COST_MODEL_H_
#define FUSION_COST_COST_MODEL_H_

#include <cstddef>

#include "cost/set_estimate.h"

namespace fusion {

/// The planning-time cost oracle used by the FILTER / SJ / SJA optimizers:
/// the paper's sq_cost(c_i, R_j) and sjq_cost(c_i, R_j, X) functions, plus
/// lq_cost for SJA+ and the cardinality estimates needed to propagate the
/// size of the intermediate sets X_i along a candidate plan.
///
/// Conditions and sources are addressed by index: `cond` in
/// [0, num_conditions), `source` in [0, num_sources), fixed at construction
/// (a model instance is specific to one query over one catalog).
///
/// The model must satisfy the paper's assumptions (Section 2.4):
///  - all costs are non-negative;
///  - semijoin cost is subadditive in the semijoin set
///    (cost(X=Y∪Z) <= cost(Y) + cost(Z));
///  - a semijoin that cannot be processed at a source (even by emulation)
///    has infinite cost.
/// `CheckSubadditivity` in this header spot-checks the second property.
class CostModel {
 public:
  virtual ~CostModel() = default;

  virtual size_t num_conditions() const = 0;
  virtual size_t num_sources() const = 0;

  /// Estimated number of distinct merge values in existence; used to combine
  /// scalar set estimates under the independence assumption.
  virtual double universe_size() const = 0;

  /// Estimated cost of sq(c_cond, R_source).
  virtual double SqCost(size_t cond, size_t source) const = 0;

  /// Estimated cost of sjq(c_cond, R_source, X). Reflects the source's
  /// semijoin capability: native one-round-trip cost, per-binding emulation
  /// cost, or +infinity when unsupported.
  virtual double SjqCost(size_t cond, size_t source,
                         const SetEstimate& x) const = 0;

  /// Estimated cost of lq(R_source); +infinity if the source refuses loads.
  virtual double LqCost(size_t source) const = 0;

  /// Estimated result of sq(c_cond, R_source).
  virtual SetEstimate SqResult(size_t cond, size_t source) const = 0;

  /// Estimated result of sjq(c_cond, R_source, X).
  virtual SetEstimate SjqResult(size_t cond, size_t source,
                                const SetEstimate& x) const = 0;

  /// Estimated cost of fetching full records for `item_count` items in the
  /// second phase of two-phase processing.
  virtual double FetchCost(size_t source, double item_count) const = 0;
};

/// Spot-checks semijoin subadditivity for a (cond, source) pair over a few
/// random splits X = Y ∪ Z of sizes summing to `x_size`. Returns true when
/// no violation is found.
bool CheckSubadditivity(const CostModel& model, size_t cond, size_t source,
                        double x_size);

}  // namespace fusion

#endif  // FUSION_COST_COST_MODEL_H_
