#ifndef FUSION_COST_ORACLE_COST_MODEL_H_
#define FUSION_COST_ORACLE_COST_MODEL_H_

#include <vector>

#include "common/item_set.h"
#include "cost/cost_model.h"
#include "query/fusion_query.h"
#include "source/simulated_source.h"

namespace fusion {

/// A perfect-information cost model for controlled experiments: it peeks at
/// the simulated sources' relations and computes, for every (condition,
/// source) pair, the *exact* satisfying item set. Estimated costs therefore
/// equal the costs SimulatedSource meters at execution time, operation by
/// operation — which lets tests assert `estimated == actual` and lets
/// benchmarks isolate plan quality from estimation error.
class OracleCostModel : public CostModel {
 public:
  /// Builds the oracle for `query` over `sources`. The pointers must outlive
  /// the model. Fails if a condition references unknown attributes.
  static Result<OracleCostModel> Create(
      const std::vector<const SimulatedSource*>& sources,
      const FusionQuery& query);

  size_t num_conditions() const override { return satisfying_.size(); }
  size_t num_sources() const override { return sources_.size(); }
  double universe_size() const override { return universe_size_; }

  double SqCost(size_t cond, size_t source) const override;
  double SjqCost(size_t cond, size_t source,
                 const SetEstimate& x) const override;
  double LqCost(size_t source) const override;
  SetEstimate SqResult(size_t cond, size_t source) const override;
  SetEstimate SjqResult(size_t cond, size_t source,
                        const SetEstimate& x) const override;
  double FetchCost(size_t source, double item_count) const override;

  /// Exact set of items satisfying condition `cond` at source `source`.
  const ItemSet& satisfying(size_t cond, size_t source) const {
    return satisfying_[cond][source];
  }

 private:
  OracleCostModel() = default;

  std::vector<const SimulatedSource*> sources_;
  // satisfying_[cond][source] = exact sq(c_cond, R_source) item set.
  std::vector<std::vector<ItemSet>> satisfying_;
  double universe_size_ = 1.0;
};

}  // namespace fusion

#endif  // FUSION_COST_ORACLE_COST_MODEL_H_
