#include "common/item_set.h"

#include <algorithm>

namespace fusion {

namespace {

/// True when every element of `v` has type `t` (the common case for item
/// sets: one merge attribute, one type). Typed merge kernels below decode
/// such sets to raw arrays so the merges run over contiguous scalars instead
/// of dispatching through the Value variant per comparison.
bool AllOfType(const std::vector<Value>& v, ValueType t) {
  for (const Value& x : v) {
    if (x.type() != t) return false;
  }
  return true;
}

/// The single uniform scalar type of two non-empty pools, or kNull when the
/// pools mix types (then only the generic Value merge is order-correct:
/// int64/double cross-compare numerically, everything else by type rank).
ValueType CommonScalarType(const std::vector<Value>& a,
                           const std::vector<Value>& b) {
  const ValueType t = a[0].type();
  if (t == ValueType::kNull) return ValueType::kNull;
  if (b[0].type() != t) return ValueType::kNull;
  if (!AllOfType(a, t) || !AllOfType(b, t)) return ValueType::kNull;
  return t;
}

enum class SetOp { kUnion, kIntersect, kDifference };

/// Sorted-run merge over decoded scalar arrays. For a pure-typed set the
/// Value order restricts to the native scalar order (int64 via <, double via
/// < with the same NaN behavior, string lexicographic), so merging decoded
/// runs is exactly equivalent to merging the Value runs — just branch-lean
/// and cache-friendly, with the result re-encoded at exact size.
template <typename T>
std::vector<T> MergeRuns(SetOp op, const std::vector<T>& a,
                         const std::vector<T>& b) {
  std::vector<T> out;
  switch (op) {
    case SetOp::kUnion:
      out.reserve(a.size() + b.size());
      std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                     std::back_inserter(out));
      break;
    case SetOp::kIntersect:
      out.reserve(std::min(a.size(), b.size()));
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(out));
      break;
    case SetOp::kDifference:
      out.reserve(a.size());
      std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
      break;
  }
  return out;
}

std::vector<int64_t> DecodeInt64(const std::vector<Value>& v) {
  std::vector<int64_t> out;
  out.reserve(v.size());
  for (const Value& x : v) out.push_back(x.int64());
  return out;
}

std::vector<double> DecodeDouble(const std::vector<Value>& v) {
  std::vector<double> out;
  out.reserve(v.size());
  for (const Value& x : v) out.push_back(x.dbl());
  return out;
}

/// Strings merge through a pointer run (no payload copies during the merge;
/// only survivors are re-encoded).
std::vector<const std::string*> DecodeString(const std::vector<Value>& v) {
  std::vector<const std::string*> out;
  out.reserve(v.size());
  for (const Value& x : v) out.push_back(&x.str());
  return out;
}

/// Dispatches one set operation to the typed kernel when both pools share a
/// scalar type, else to the generic Value merge. Results are always
/// right-sized: typed paths reserve the exact survivor count before
/// re-encoding, the generic path shrinks after merging.
std::vector<Value> ApplySetOp(SetOp op, const std::vector<Value>& a,
                              const std::vector<Value>& b) {
  switch (CommonScalarType(a, b)) {
    case ValueType::kInt64: {
      const std::vector<int64_t> merged =
          MergeRuns(op, DecodeInt64(a), DecodeInt64(b));
      std::vector<Value> out;
      out.reserve(merged.size());
      for (const int64_t x : merged) out.emplace_back(x);
      return out;
    }
    case ValueType::kDouble: {
      const std::vector<double> merged =
          MergeRuns(op, DecodeDouble(a), DecodeDouble(b));
      std::vector<Value> out;
      out.reserve(merged.size());
      for (const double x : merged) out.emplace_back(x);
      return out;
    }
    case ValueType::kString: {
      std::vector<const std::string*> out_ptrs;
      const std::vector<const std::string*> da = DecodeString(a);
      const std::vector<const std::string*> db = DecodeString(b);
      const auto less = [](const std::string* x, const std::string* y) {
        return *x < *y;
      };
      switch (op) {
        case SetOp::kUnion:
          out_ptrs.reserve(da.size() + db.size());
          std::set_union(da.begin(), da.end(), db.begin(), db.end(),
                         std::back_inserter(out_ptrs), less);
          break;
        case SetOp::kIntersect:
          out_ptrs.reserve(std::min(da.size(), db.size()));
          std::set_intersection(da.begin(), da.end(), db.begin(), db.end(),
                                std::back_inserter(out_ptrs), less);
          break;
        case SetOp::kDifference:
          out_ptrs.reserve(da.size());
          std::set_difference(da.begin(), da.end(), db.begin(), db.end(),
                              std::back_inserter(out_ptrs), less);
          break;
      }
      std::vector<Value> out;
      out.reserve(out_ptrs.size());
      for (const std::string* s : out_ptrs) out.emplace_back(*s);
      return out;
    }
    default: {
      std::vector<Value> out;
      switch (op) {
        case SetOp::kUnion:
          out.reserve(a.size() + b.size());
          std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                         std::back_inserter(out));
          break;
        case SetOp::kIntersect:
          out.reserve(std::min(a.size(), b.size()));
          std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(out));
          break;
        case SetOp::kDifference:
          out.reserve(a.size());
          std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                              std::back_inserter(out));
          break;
      }
      out.shrink_to_fit();
      return out;
    }
  }
}

}  // namespace

ItemSet::ItemSet(std::vector<Value> values) : values_(std::move(values)) {
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
}

ItemSet ItemSet::FromSortedUnique(std::vector<Value> sorted_unique) {
  ItemSet out;
  out.values_ = std::move(sorted_unique);
  return out;
}

bool ItemSet::Contains(const Value& v) const {
  return std::binary_search(values_.begin(), values_.end(), v);
}

bool ItemSet::Insert(const Value& v) {
  auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it != values_.end() && *it == v) return false;
  values_.insert(it, v);
  return true;
}

ItemSet ItemSet::Union(const ItemSet& a, const ItemSet& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return FromSortedUnique(ApplySetOp(SetOp::kUnion, a.values_, b.values_));
}

ItemSet ItemSet::Intersect(const ItemSet& a, const ItemSet& b) {
  if (a.empty() || b.empty()) return ItemSet();
  return FromSortedUnique(ApplySetOp(SetOp::kIntersect, a.values_, b.values_));
}

ItemSet ItemSet::Difference(const ItemSet& a, const ItemSet& b) {
  if (a.empty()) return ItemSet();
  if (b.empty()) return a;
  return FromSortedUnique(ApplySetOp(SetOp::kDifference, a.values_, b.values_));
}

void ItemSet::UnionInPlace(const ItemSet& other) {
  if (other.empty()) return;
  if (values_.empty()) {
    values_ = other.values_;
    return;
  }
  if (values_.back() < other.values_.front()) {
    values_.insert(values_.end(), other.begin(), other.end());
    return;
  }
  // General (interleaved) case: a single backward in-place merge touching
  // only the suffix that can interact with `other`. Elements before
  // `prefix` are strictly below other.front() and never move.
  const size_t prefix = static_cast<size_t>(
      std::lower_bound(values_.begin(), values_.end(), other.values_.front()) -
      values_.begin());
  // Two-pointer pass over the affected suffix: count elements of `other`
  // not already present.
  size_t fresh = 0;
  {
    size_t i = prefix, j = 0;
    while (j < other.size()) {
      if (i == values_.size()) {
        fresh += other.size() - j;
        break;
      }
      const Value& x = values_[i];
      const Value& y = other.values_[j];
      if (x < y) {
        ++i;
      } else if (y < x) {
        ++fresh;
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
  }
  if (fresh == 0) return;
  const size_t old_size = values_.size();
  values_.resize(old_size + fresh);
  // Backward three-way merge. Invariant: w - i == fresh elements still to
  // place. Once w == i every remaining slot already holds its final value
  // (any leftover `other` elements are duplicates), so the loop stops there
  // — this also rules out self-move assignments.
  size_t i = old_size;
  size_t j = other.size();
  size_t w = values_.size();
  while (w > i && j > 0 && i > prefix) {
    const Value& x = values_[i - 1];
    const Value& y = other.values_[j - 1];
    if (x < y) {
      values_[--w] = y;
      --j;
    } else if (y < x) {
      values_[--w] = std::move(values_[i - 1]);
      --i;
    } else {
      values_[--w] = std::move(values_[i - 1]);
      --i;
      --j;
    }
  }
  // If i hit the prefix with fresh elements outstanding, everything left in
  // `other` is fresh: it sorts at or above values_[prefix] and cannot equal
  // a prefix element (those are strictly below other.front()).
  while (w > i && j > 0) {
    values_[--w] = other.values_[--j];
  }
}

bool ItemSet::IsSubsetOf(const ItemSet& other) const {
  return std::includes(other.begin(), other.end(), begin(), end());
}

size_t ItemSet::ApproxBytes() const {
  size_t bytes = sizeof(ItemSet) + values_.capacity() * sizeof(Value);
  for (const Value& v : values_) {
    if (v.type() == ValueType::kString) bytes += v.str().capacity();
  }
  return bytes;
}

std::string ItemSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace fusion
