#include "common/item_set.h"

#include <algorithm>

namespace fusion {

ItemSet::ItemSet(std::vector<Value> values) : values_(std::move(values)) {
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
}

ItemSet ItemSet::FromSortedUnique(std::vector<Value> sorted_unique) {
  ItemSet out;
  out.values_ = std::move(sorted_unique);
  return out;
}

bool ItemSet::Contains(const Value& v) const {
  return std::binary_search(values_.begin(), values_.end(), v);
}

bool ItemSet::Insert(const Value& v) {
  auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it != values_.end() && *it == v) return false;
  values_.insert(it, v);
  return true;
}

ItemSet ItemSet::Union(const ItemSet& a, const ItemSet& b) {
  std::vector<Value> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return FromSortedUnique(std::move(out));
}

ItemSet ItemSet::Intersect(const ItemSet& a, const ItemSet& b) {
  std::vector<Value> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return FromSortedUnique(std::move(out));
}

ItemSet ItemSet::Difference(const ItemSet& a, const ItemSet& b) {
  std::vector<Value> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return FromSortedUnique(std::move(out));
}

void ItemSet::UnionInPlace(const ItemSet& other) {
  if (other.empty()) return;
  if (values_.empty()) {
    values_ = other.values_;
    return;
  }
  if (values_.back() < other.values_.front()) {
    values_.insert(values_.end(), other.begin(), other.end());
    return;
  }
  const size_t mid = values_.size();
  values_.insert(values_.end(), other.begin(), other.end());
  std::inplace_merge(values_.begin(), values_.begin() + static_cast<long>(mid),
                     values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
}

bool ItemSet::IsSubsetOf(const ItemSet& other) const {
  return std::includes(other.begin(), other.end(), begin(), end());
}

size_t ItemSet::ApproxBytes() const {
  size_t bytes = sizeof(ItemSet) + values_.capacity() * sizeof(Value);
  for (const Value& v : values_) {
    if (v.type() == ValueType::kString) bytes += v.str().capacity();
  }
  return bytes;
}

std::string ItemSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace fusion
