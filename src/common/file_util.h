#ifndef FUSION_COMMON_FILE_UTIL_H_
#define FUSION_COMMON_FILE_UTIL_H_

#include <string>

#include "common/status.h"

namespace fusion {

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes (replaces) a file with the given contents.
Status WriteStringToFile(const std::string& path, const std::string& content);

/// Writes (replaces) a file atomically: the content lands in `path + ".tmp"`
/// first and is rename(2)d into place, so a concurrent reader sees either
/// the old file, no file, or the complete new content — never a partial
/// write. This is the readiness-signal contract the daemons' --port-file
/// needs: a fast supervisor polling the path must never read a torn port.
Status WriteFileAtomic(const std::string& path, const std::string& content);

}  // namespace fusion

#endif  // FUSION_COMMON_FILE_UTIL_H_
