#ifndef FUSION_COMMON_FILE_UTIL_H_
#define FUSION_COMMON_FILE_UTIL_H_

#include <string>

#include "common/status.h"

namespace fusion {

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes (replaces) a file with the given contents.
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace fusion

#endif  // FUSION_COMMON_FILE_UTIL_H_
