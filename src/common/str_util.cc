#include "common/str_util.h"

#include <cctype>
#include <cstdio>

namespace fusion {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace fusion
