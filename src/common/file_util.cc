#include "common/file_util.h"

#include <cstdio>

namespace fusion {

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::string out;
  char buf[64 * 1024];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) {
    return Status::Internal("error reading file: " + path);
  }
  return out;
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool flush_error = std::fclose(f) != 0;
  if (written != content.size() || flush_error) {
    return Status::Internal("error writing file: " + path);
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  FUSION_RETURN_IF_ERROR(WriteStringToFile(tmp, content));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

}  // namespace fusion
