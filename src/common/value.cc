#include "common/value.h"

#include <cmath>
#include <cstdlib>
#include <cstdio>
#include <functional>

namespace fusion {
namespace {

// Rank used for the cross-type portion of the total order.
int TypeRank(ValueType t) { return static_cast<int>(t); }

bool IsNumeric(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}

}  // namespace

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt64;
    case 2:
      return ValueType::kDouble;
    default:
      return ValueType::kString;
  }
}

Result<int64_t> Value::AsInt64() const {
  if (type() == ValueType::kInt64) return int64();
  if (type() == ValueType::kDouble) return static_cast<int64_t>(dbl());
  return Status::InvalidArgument("value is not numeric: " + ToString());
}

Result<double> Value::AsDouble() const {
  if (type() == ValueType::kDouble) return dbl();
  if (type() == ValueType::kInt64) return static_cast<double>(int64());
  return Status::InvalidArgument("value is not numeric: " + ToString());
}

Result<std::string> Value::AsString() const {
  if (type() == ValueType::kString) return str();
  return Status::InvalidArgument("value is not a string: " + ToString());
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(int64());
    case ValueType::kDouble: {
      // Shortest representation that round-trips exactly through strtod, so
      // conditions survive textual transport (protocol, cache keys) intact.
      char buf[64];
      for (int precision = 6; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, dbl());
        if (std::strtod(buf, nullptr) == dbl()) break;
      }
      return buf;
    }
    case ValueType::kString: {
      // Embedded single quotes double up, so the output is exactly the
      // string-literal syntax the condition parser accepts.
      std::string out = "'";
      for (char c : str()) {
        out += c;
        if (c == '\'') out += '\'';
      }
      out += "'";
      return out;
    }
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  if (IsNumeric(a) && IsNumeric(b) && a != b) {
    // Numeric cross-type comparison.
    const double lhs = (a == ValueType::kInt64)
                           ? static_cast<double>(int64())
                           : dbl();
    const double rhs = (b == ValueType::kInt64)
                           ? static_cast<double>(other.int64())
                           : other.dbl();
    if (lhs < rhs) return -1;
    if (lhs > rhs) return 1;
    return 0;
  }
  if (a != b) return TypeRank(a) < TypeRank(b) ? -1 : 1;
  switch (a) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
      if (int64() < other.int64()) return -1;
      if (int64() > other.int64()) return 1;
      return 0;
    case ValueType::kDouble:
      if (dbl() < other.dbl()) return -1;
      if (dbl() > other.dbl()) return 1;
      return 0;
    case ValueType::kString:
      return str().compare(other.str());
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64: {
      // Hash integral values through their double form when exactly
      // representable so that Value(2) and Value(2.0) hash alike, matching
      // Compare()-equality.
      const int64_t v = int64();
      const double d = static_cast<double>(v);
      if (static_cast<int64_t>(d) == v) {
        return std::hash<double>()(d);
      }
      return std::hash<int64_t>()(v);
    }
    case ValueType::kDouble:
      return std::hash<double>()(dbl());
    case ValueType::kString:
      return std::hash<std::string>()(str());
  }
  return 0;
}

size_t Value::ApproxBytes() const {
  size_t bytes = sizeof(Value);
  if (type() == ValueType::kString) bytes += str().capacity();
  return bytes;
}

}  // namespace fusion
