#ifndef FUSION_COMMON_LOGGING_H_
#define FUSION_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace fusion {
namespace internal_logging {

/// Severity levels for FUSION_LOG.
enum class LogSeverity { kInfo, kWarning, kError, kFatal };

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Global minimum severity; messages below it are swallowed. Defaults to
/// kWarning so library code is quiet unless something is wrong; the
/// FUSION_LOG_LEVEL environment variable ("info"/"warning"/"error"/"fatal",
/// or their first letters, or 0-3) overrides the default at startup.
/// Thread-safe: the severity is an atomic, so it may be adjusted while
/// other threads (e.g. parallel plan workers) are logging.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

}  // namespace internal_logging
}  // namespace fusion

#define FUSION_LOG(severity)                                     \
  ::fusion::internal_logging::LogMessage(                        \
      ::fusion::internal_logging::LogSeverity::k##severity,      \
      __FILE__, __LINE__)                                        \
      .stream()

/// Invariant check: always on (benchmark binaries included), aborts with a
/// message on failure. Use for programming errors, not data errors.
#define FUSION_CHECK(cond)                                            \
  if (!(cond))                                                        \
  ::fusion::internal_logging::LogMessage(                             \
      ::fusion::internal_logging::LogSeverity::kFatal, __FILE__,      \
      __LINE__)                                                       \
      .stream()                                                       \
      << "Check failed: " #cond " "

#define FUSION_CHECK_OK(status_expr)                        \
  do {                                                      \
    const ::fusion::Status fusion_check_s_ = (status_expr); \
    FUSION_CHECK(fusion_check_s_.ok()) << fusion_check_s_.ToString(); \
  } while (false)

#endif  // FUSION_COMMON_LOGGING_H_
