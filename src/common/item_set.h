#ifndef FUSION_COMMON_ITEM_SET_H_
#define FUSION_COMMON_ITEM_SET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/value.h"

namespace fusion {

/// A set of *items* — merge-attribute values — as manipulated by mediators in
/// simple plans (Section 2 of the paper). Stored as a sorted, deduplicated
/// vector, which makes the mediator-local operations (union, intersection,
/// difference) linear merges and keeps iteration deterministic.
class ItemSet {
 public:
  ItemSet() = default;
  /// Builds a set from arbitrary (possibly unsorted / duplicated) values.
  explicit ItemSet(std::vector<Value> values);

  /// Creates a set from an initializer-like vector without checking order.
  /// Precondition: `sorted_unique` is strictly increasing. Used internally
  /// by the merge algorithms.
  static ItemSet FromSortedUnique(std::vector<Value> sorted_unique);

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& operator[](size_t i) const { return values_[i]; }

  std::vector<Value>::const_iterator begin() const { return values_.begin(); }
  std::vector<Value>::const_iterator end() const { return values_.end(); }
  const std::vector<Value>& values() const { return values_; }

  bool Contains(const Value& v) const;

  /// Inserts one value, keeping the representation sorted-unique.
  /// Returns true if the value was newly inserted.
  bool Insert(const Value& v);

  /// Set algebra; all O(|a| + |b|) merges.
  static ItemSet Union(const ItemSet& a, const ItemSet& b);
  static ItemSet Intersect(const ItemSet& a, const ItemSet& b);
  static ItemSet Difference(const ItemSet& a, const ItemSet& b);

  /// Merges `other` into this set without allocating a fresh result vector.
  /// When `other` sorts entirely after the current contents — the shape of
  /// per-probe accumulation over sorted candidates — this is O(|other|), so
  /// accumulating k disjoint ordered pieces is O(n) total instead of the
  /// O(k·n) that repeated `a = Union(a, b)` rebuilds cost.
  void UnionInPlace(const ItemSet& other);

  bool operator==(const ItemSet& other) const {
    return values_ == other.values_;
  }
  bool operator!=(const ItemSet& other) const { return !(*this == other); }

  /// True if every element of this set is in `other`.
  bool IsSubsetOf(const ItemSet& other) const;

  /// Renders "{J55, T21}" style output (elements in sorted order).
  std::string ToString() const;

  /// Approximate resident size in bytes (vector capacity plus string
  /// payloads). Used by byte-budgeted caches.
  size_t ApproxBytes() const;

 private:
  std::vector<Value> values_;  // sorted, unique
};

}  // namespace fusion

#endif  // FUSION_COMMON_ITEM_SET_H_
