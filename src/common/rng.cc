#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>

namespace fusion {
namespace {

std::optional<uint64_t> ReadGlobalSeed() {
  const char* env = std::getenv("FUSION_SEED");
  if (env == nullptr || *env == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(value);
}

const std::optional<uint64_t>& CachedGlobalSeed() {
  static const std::optional<uint64_t> seed = ReadGlobalSeed();
  return seed;
}

}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t salt) {
  // splitmix64: one round per input, then a finalizing round.
  auto round = [](uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  };
  return round(round(seed) ^ round(~salt));
}

bool HasGlobalSeed() { return CachedGlobalSeed().has_value(); }

uint64_t GlobalSeed(uint64_t fallback) {
  return CachedGlobalSeed().value_or(fallback);
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += (w > 0 ? w : 0);
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (r < w) return i;
    r -= w;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

ZipfSampler::ZipfSampler(size_t n, double theta) {
  cdf_.resize(n);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double r = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace fusion
