#ifndef FUSION_COMMON_RNG_H_
#define FUSION_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace fusion {

/// Deterministic random source used by workload generators and tests.
/// Every experiment in this repository takes an explicit seed so results are
/// reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  size_t Discrete(const std::vector<double>& weights);

  /// Exposes the engine for use with standard distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// splitmix64 finalizer mixing `seed` and `salt` into one well-distributed
/// stream seed. Deriving per-component seeds this way (instead of seed + i)
/// keeps the component streams statistically independent, so the macro
/// harness can hand every tenant / source / sampler its own Rng from one
/// root seed and still replay the whole run bit-for-bit.
uint64_t MixSeed(uint64_t seed, uint64_t salt);

/// True iff the FUSION_SEED environment variable is set to a number.
bool HasGlobalSeed();

/// The process-wide replay seed: the value of FUSION_SEED when set (read
/// once, cached), else `fallback`. Every seeded component of the macro
/// harness (workload generator, tenants, FlakySource failure streams)
/// resolves its seed through this, so exporting FUSION_SEED replays a
/// harness-found divergence exactly — flaky streams included.
uint64_t GlobalSeed(uint64_t fallback);

/// Zipf-distributed sampler over {0, 1, ..., n-1} with exponent `theta`
/// (theta = 0 is uniform; larger values are more skewed). Uses the
/// precomputed-CDF method: O(n) setup, O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta);

  /// Returns a rank in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace fusion

#endif  // FUSION_COMMON_RNG_H_
