#include "common/bloom.h"

#include <algorithm>
#include <cmath>

namespace fusion {

namespace {

/// splitmix64 finalizer — cheap, well-distributed mixing for deriving the
/// double-hashing pair from one 64-bit key.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

BloomFilter::BloomFilter(size_t expected_items, double target_fpp) {
  const double n = std::max<double>(1.0, static_cast<double>(expected_items));
  const double ln2 = 0.6931471805599453;
  const double m = std::ceil(-n * std::log(target_fpp) / (ln2 * ln2));
  num_bits_ = std::max<size_t>(64, static_cast<size_t>(m));
  const double k = std::round(static_cast<double>(num_bits_) / n * ln2);
  num_hashes_ = std::min<size_t>(16, std::max<size_t>(1, static_cast<size_t>(k)));
  words_.assign((num_bits_ + 63) / 64, 0);
}

void BloomFilter::InsertHash(uint64_t hash) {
  if (num_bits_ == 0) return;
  const uint64_t h1 = Mix(hash);
  const uint64_t h2 = Mix(h1) | 1;  // odd → probes cover the bit space
  for (size_t i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % num_bits_;
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

bool BloomFilter::MayContainHash(uint64_t hash) const {
  if (num_bits_ == 0) return false;
  const uint64_t h1 = Mix(hash);
  const uint64_t h2 = Mix(h1) | 1;
  for (size_t i = 0; i < num_hashes_; ++i) {
    const uint64_t bit = (h1 + i * h2) % num_bits_;
    if (((words_[bit >> 6] >> (bit & 63)) & 1) == 0) return false;
  }
  return true;
}

}  // namespace fusion
