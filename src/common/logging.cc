#include "common/logging.h"

namespace fusion {
namespace internal_logging {
namespace {

LogSeverity g_min_severity = LogSeverity::kWarning;

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace fusion
