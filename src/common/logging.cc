#include "common/logging.h"

#include <atomic>
#include <cctype>

namespace fusion {
namespace internal_logging {
namespace {

/// Parses FUSION_LOG_LEVEL: full names ("info", "warning", "error",
/// "fatal"), their single-letter tags, or the numeric severity (0-3).
/// Unset or unparseable values keep the default (kWarning).
LogSeverity InitialSeverity() {
  const char* env = std::getenv("FUSION_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return LogSeverity::kWarning;
  switch (std::tolower(static_cast<unsigned char>(env[0]))) {
    case 'i':
    case '0':
      return LogSeverity::kInfo;
    case 'w':
    case '1':
      return LogSeverity::kWarning;
    case 'e':
    case '2':
      return LogSeverity::kError;
    case 'f':
    case '3':
      return LogSeverity::kFatal;
    default:
      return LogSeverity::kWarning;
  }
}

/// The minimum severity lives behind a function-local static so the env var
/// is honored no matter how early the first log line happens. Atomic: tests
/// and the parallel executor's workers may log while another thread adjusts
/// verbosity, and a plain global here was a (benign-looking but real) data
/// race under TSan.
std::atomic<LogSeverity>& MinSeverityFlag() {
  static std::atomic<LogSeverity> severity{InitialSeverity()};
  return severity;
}

const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  MinSeverityFlag().store(severity, std::memory_order_relaxed);
}
LogSeverity MinLogSeverity() {
  return MinSeverityFlag().load(std::memory_order_relaxed);
}

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace fusion
