#ifndef FUSION_COMMON_BLOOM_H_
#define FUSION_COMMON_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/value.h"

namespace fusion {

/// A classic blocked-free Bloom filter over Value hashes, used to pre-filter
/// semijoin probe candidates: a mediator holding a source's merge-column
/// filter can skip probes for bindings the source cannot possibly contain.
///
/// The one property the data plane relies on: NO FALSE NEGATIVES. If a value
/// was inserted, MayContain returns true — so skipping MayContain()==false
/// probes never changes an answer, only saves work. False positives merely
/// cost a wasted probe (bounded by `target_fpp`).
///
/// Keys are Value::Hash(), which hashes int64s that round-trip through
/// double identically to the equal double — so cross-type numeric equality
/// (int64 5 vs double 5.0) cannot produce a false negative either.
class BloomFilter {
 public:
  /// An empty filter over nothing: MayContain is false for everything.
  BloomFilter() = default;

  /// Sizes the filter for `expected_items` at ~`target_fpp` false-positive
  /// rate (standard m = -n·ln p / ln²2, k = m/n·ln 2 formulas).
  BloomFilter(size_t expected_items, double target_fpp);

  void Insert(const Value& v) { InsertHash(v.Hash()); }
  void InsertHash(uint64_t hash);

  /// True if `v` may have been inserted; false means definitely not.
  bool MayContain(const Value& v) const { return MayContainHash(v.Hash()); }
  bool MayContainHash(uint64_t hash) const;

  size_t num_bits() const { return num_bits_; }
  size_t num_hashes() const { return num_hashes_; }
  size_t ApproxBytes() const {
    return sizeof(BloomFilter) + words_.capacity() * sizeof(uint64_t);
  }

 private:
  size_t num_bits_ = 0;
  size_t num_hashes_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace fusion

#endif  // FUSION_COMMON_BLOOM_H_
