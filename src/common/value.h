#ifndef FUSION_COMMON_VALUE_H_
#define FUSION_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace fusion {

/// The runtime type of a Value / relational column.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

/// Returns a readable name ("null", "int64", "double", "string").
const char* ValueTypeName(ValueType type);

/// A dynamically typed scalar: the atoms stored in relations and item sets.
///
/// Ordering: values are totally ordered, first by type (null < int64 < double
/// < string), then by payload. Cross-numeric comparison (int64 vs double) is
/// performed numerically so mixed-type numeric columns behave sanely.
class Value {
 public:
  /// Constructs the NULL value.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; calling the wrong one is undefined (checked by callers
  /// via type()). Use the As* helpers for checked access.
  int64_t int64() const { return std::get<int64_t>(data_); }
  double dbl() const { return std::get<double>(data_); }
  const std::string& str() const { return std::get<std::string>(data_); }

  Result<int64_t> AsInt64() const;
  Result<double> AsDouble() const;
  Result<std::string> AsString() const;

  /// Renders the value for display: NULL, 42, 3.5, 'text'.
  std::string ToString() const;

  /// Three-way comparison implementing the total order described above.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Stable hash consistent with operator== (numeric cross-type equality
  /// hashes both int64 and double forms of integral doubles identically).
  size_t Hash() const;

  /// Approximate resident size in bytes, including string payloads. Used by
  /// byte-budgeted caches; an estimate, not an allocator-exact figure.
  size_t ApproxBytes() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

/// Hash functor for unordered containers of Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace fusion

#endif  // FUSION_COMMON_VALUE_H_
