#ifndef FUSION_COMMON_STR_UTIL_H_
#define FUSION_COMMON_STR_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace fusion {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits `s` on `sep` (single character). Keeps empty fields.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace fusion

#endif  // FUSION_COMMON_STR_UTIL_H_
