#include "common/status.h"

namespace fusion {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

Result<StatusCode> StatusCodeFromName(const std::string& name) {
  for (const StatusCode code : kAllStatusCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  return Status::ParseError("unknown status code name: " + name);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace fusion
