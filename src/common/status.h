#ifndef FUSION_COMMON_STATUS_H_
#define FUSION_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace fusion {

/// Error categories used across the library. Mirrors the usual database-system
/// Status idiom (exceptions are not used anywhere in this codebase).
///
/// This is the **one** error taxonomy of the system: local library calls,
/// the wrapper protocol (FUSIONP/1), and the client protocol (FUSIONQ/1)
/// all carry exactly these codes, serialized by StatusCodeName and parsed
/// back by StatusCodeFromName — no dialect re-codes errors at its boundary.
/// Tests iterate kAllStatusCodes to pin that every code survives a
/// serialize→parse round trip through both dialects.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnsupported,     // e.g. a source that cannot answer a semijoin query at all
  kOutOfRange,
  kInternal,
  kParseError,
  kAlreadyExists,
  kUnavailable,       // source down / circuit open / service saturated
  kDeadlineExceeded,  // per-call timeout, per-query deadline, or cost budget
  kCancelled,         // the client withdrew the request (service CANCEL)
};

/// Every StatusCode, for exhaustive round-trip tests. Keep in sync with the
/// enum (StatusCodeName's switch triggers -Wswitch when a code is added).
inline constexpr StatusCode kAllStatusCodes[] = {
    StatusCode::kOk,           StatusCode::kInvalidArgument,
    StatusCode::kNotFound,     StatusCode::kUnsupported,
    StatusCode::kOutOfRange,   StatusCode::kInternal,
    StatusCode::kParseError,   StatusCode::kAlreadyExists,
    StatusCode::kUnavailable,  StatusCode::kDeadlineExceeded,
    StatusCode::kCancelled,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
/// The names double as the wire encoding of error codes in both protocol
/// dialects; StatusCodeFromName is the inverse.
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result, cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (aborts in debug via assert-style
/// check in value()).
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so `return value;` / `return status;`
  /// both work, matching the familiar StatusOr ergonomics.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Parses a StatusCodeName back into its code ("Cancelled" →
/// StatusCode::kCancelled); the inverse both protocol dialects use to
/// decode error lines. kParseError for unknown names.
Result<StatusCode> StatusCodeFromName(const std::string& name);

}  // namespace fusion

/// Propagates a non-OK Status out of the current function.
#define FUSION_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::fusion::Status fusion_status_ = (expr);     \
    if (!fusion_status_.ok()) return fusion_status_; \
  } while (false)

/// Evaluates a Result<T> expression, propagating errors; on success assigns
/// the unwrapped value to `lhs`.
#define FUSION_ASSIGN_OR_RETURN(lhs, expr)             \
  FUSION_ASSIGN_OR_RETURN_IMPL_(                       \
      FUSION_STATUS_CONCAT_(result_, __LINE__), lhs, expr)

#define FUSION_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define FUSION_STATUS_CONCAT_(a, b) FUSION_STATUS_CONCAT_IMPL_(a, b)
#define FUSION_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // FUSION_COMMON_STATUS_H_
