#include "protocol/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace fusion {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// Finds the end of the first complete message in `buffer`: the offset one
/// past its "end\n" terminator line, or npos. Messages start with a magic
/// line, so a terminator is either "...\nend\n" or the whole buffer "end\n"
/// (degenerate, tolerated).
size_t FindMessageEnd(const std::string& buffer) {
  if (buffer.rfind("end\n", 0) == 0) return 4;
  const size_t pos = buffer.find("\nend\n");
  if (pos == std::string::npos) return std::string::npos;
  return pos + 5;
}

Result<sockaddr_in> ResolveV4(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 host: " + host);
  }
  return addr;
}

}  // namespace

MessageSocket::MessageSocket(MessageSocket&& other) noexcept
    : fd_(other.fd_),
      buffer_(std::move(other.buffer_)),
      stall_deadline_seconds_(other.stall_deadline_seconds_),
      receive_limit_(other.receive_limit_) {
  other.fd_ = -1;
}

MessageSocket& MessageSocket::operator=(MessageSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    stall_deadline_seconds_ = other.stall_deadline_seconds_;
    receive_limit_ = other.receive_limit_;
    other.fd_ = -1;
  }
  return *this;
}

Status MessageSocket::SetStallDeadline(double seconds) {
  if (!valid()) return Status::Internal("deadline on closed socket");
  if (seconds < 0.0) {
    return Status::InvalidArgument("stall deadline must be >= 0");
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  stall_deadline_seconds_ = seconds;
  return Status::Ok();
}

void MessageSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status MessageSocket::Send(const std::string& message) {
  if (!valid()) return Status::Internal("send on closed socket");
  size_t sent = 0;
  while (sent < message.size()) {
    const ssize_t n = ::send(fd_, message.data() + sent, message.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> MessageSocket::Receive() {
  if (!valid()) return Status::Internal("receive on closed socket");
  char chunk[4096];
  for (;;) {
    const size_t end = FindMessageEnd(buffer_);
    if (end != std::string::npos) {
      std::string message = buffer_.substr(0, end);
      buffer_.erase(0, end);
      return message;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired. Idle between frames is fine — keep waiting.
        // Silent *mid-frame* is a stalled (or torn-write) peer: give up so
        // the serving thread is not pinned holding half a message forever.
        if (buffer_.empty()) continue;
        return Status::DeadlineExceeded(
            "peer stalled mid-message (" +
            std::to_string(buffer_.size()) + " bytes buffered)");
      }
      return Errno("recv");
    }
    if (n == 0) {
      if (buffer_.empty()) {
        return Status::Unavailable("connection closed");
      }
      return Status::ParseError("connection closed mid-message");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
    if (receive_limit_ > 0 && buffer_.size() > receive_limit_ &&
        FindMessageEnd(buffer_) == std::string::npos) {
      return Status::ParseError(
          "oversized message: " + std::to_string(buffer_.size()) +
          " bytes without a terminator (limit " +
          std::to_string(receive_limit_) + ")");
    }
  }
}

Result<MessageSocket> DialTcp(const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("endpoint must be host:port, got " +
                                   endpoint);
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad port in endpoint: " + endpoint);
  }
  FUSION_ASSIGN_OR_RETURN(const sockaddr_in addr, ResolveV4(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status =
        Status::Unavailable("connect " + endpoint + ": " +
                            std::strerror(errno));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return MessageSocket(fd);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_.exchange(-1)), port_(other.port_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1));
    port_ = other.port_;
  }
  return *this;
}

void TcpListener::Close() {
  // exchange() makes Close race-free against a concurrent Accept (which
  // loads fd_ fresh per iteration) and idempotent against double closes.
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // close(2) alone does not wake a thread already blocked in accept(2) on
    // this fd (the fd lookup happened before the close); shutdown(2) on the
    // listening socket does — accept returns EINVAL and the loop exits.
    // Both calls are async-signal-safe, so the daemon signal path may still
    // run this directly.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

Result<TcpListener> TcpListener::Bind(const std::string& host, int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("bad listen port");
  }
  FUSION_ASSIGN_OR_RETURN(const sockaddr_in addr, ResolveV4(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Errno("bind " + host + ":" + std::to_string(port));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    const Status status = Errno("listen");
    ::close(fd);
    return status;
  }
  TcpListener listener;
  listener.fd_ = fd;
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    listener.port_ = ntohs(bound.sin_port);
  } else {
    listener.port_ = port;
  }
  return listener;
}

Result<MessageSocket> TcpListener::Accept() {
  for (;;) {
    const int listen_fd = fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return Status::Unavailable("listener closed");
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return MessageSocket(fd);
    }
    if (errno == EINTR) continue;
    // EBADF/EINVAL after Close(): the shutdown path, not an error worth a
    // scary message.
    return Status::Unavailable("listener closed");
  }
}

}  // namespace fusion
