#include "protocol/features.h"

namespace fusion {
namespace {

/// Registry order: also the order Names() emits, so HELLO lines are stable
/// across builds and tests can match them verbatim.
constexpr Feature kAllFeatures[] = {
    Feature::kTrace,       Feature::kStats,    Feature::kExplain,
    Feature::kIdempotency, Feature::kSharding,
};

}  // namespace

const char* FeatureName(Feature feature) {
  switch (feature) {
    case Feature::kTrace:
      return "trace";
    case Feature::kStats:
      return "stats";
    case Feature::kExplain:
      return "explain";
    case Feature::kIdempotency:
      return "idempotency";
    case Feature::kSharding:
      return "sharding";
  }
  return "?";
}

bool ParseFeatureName(const std::string& name, Feature* out) {
  for (Feature f : kAllFeatures) {
    if (name == FeatureName(f)) {
      *out = f;
      return true;
    }
  }
  return false;
}

FeatureSet FeatureSet::All() {
  FeatureSet set;
  for (Feature f : kAllFeatures) set.Add(f);
  return set;
}

FeatureSet FeatureSet::FromNames(const std::vector<std::string>& names) {
  FeatureSet set;
  for (const std::string& name : names) {
    Feature f;
    if (ParseFeatureName(name, &f)) set.Add(f);
  }
  return set;
}

std::vector<std::string> FeatureSet::Names() const {
  std::vector<std::string> out;
  for (Feature f : kAllFeatures) {
    if (Has(f)) out.push_back(FeatureName(f));
  }
  return out;
}

}  // namespace fusion
