#ifndef FUSION_PROTOCOL_SOURCE_SERVER_H_
#define FUSION_PROTOCOL_SOURCE_SERVER_H_

#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "protocol/chaos.h"
#include "protocol/message.h"
#include "protocol/socket.h"
#include "source/source_wrapper.h"

namespace fusion {

/// The wrapper-side endpoint of the FUSIONP/1 protocol: owns a concrete
/// SourceWrapper and answers serialized requests. Conditions arrive as text
/// and are re-parsed; load/fetch relations leave as CSV lines; the costs the
/// wrapped source charged travel back as charge summaries so the mediator
/// side can keep its ledger accurate.
class SourceServer {
 public:
  explicit SourceServer(std::unique_ptr<SourceWrapper> impl)
      : impl_(std::move(impl)) {}

  const SourceWrapper& impl() const { return *impl_; }

  /// Handles one serialized request and returns the serialized response.
  /// Malformed requests and wrapper errors become ERROR responses (the
  /// protocol layer never fails out-of-band).
  std::string Handle(const std::string& request_text);

 private:
  SourceResponse HandleParsed(const SourceRequest& request);

  std::unique_ptr<SourceWrapper> impl_;
};

/// Serves one SourceServer over TCP: the process side of a networked
/// FUSIONP/1 deployment (and of replica failover — run two of these over
/// equivalent wrappers and hand both endpoints to RemoteSource::ConnectTcp).
/// One acceptor thread plus one thread per connection, each running the
/// receive → Handle → send loop until the peer closes.
///
/// Faults: Options::chaos wires a seeded ChaosPolicy into every connection
/// (plus accept-time refusals), and Options::stall_deadline_seconds drops
/// connections whose peer goes silent mid-frame — a stalled or byzantine
/// mediator cannot pin a connection thread.
///
/// Start() binds (port 0 = ephemeral; see port()); Stop() — also run by the
/// destructor — closes the listener, resets every live connection, and
/// joins all threads. Tests "kill a replica" by calling Stop() mid-run.
class TcpSourceServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  // 0 = pick an ephemeral port
    /// Fault injection at this server's edge (disabled by default).
    ChaosPolicy chaos;
    /// Mid-frame stall guard per connection (0 disables).
    double stall_deadline_seconds = 10.0;
  };

  TcpSourceServer(std::unique_ptr<SourceWrapper> impl, const Options& options);
  ~TcpSourceServer() { Stop(); }

  TcpSourceServer(const TcpSourceServer&) = delete;
  TcpSourceServer& operator=(const TcpSourceServer&) = delete;

  /// Binds and starts accepting. Fails (kUnavailable) if the port is taken.
  Status Start();
  /// Stops accepting, resets live connections, joins all threads.
  /// Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  int port() const { return listener_.port(); }
  const SourceWrapper& impl() const { return server_.impl(); }

 private:
  void AcceptLoop();
  void ServeConnection(ChaosSocket& socket);

  SourceServer server_;
  Options options_;
  std::shared_ptr<ChaosDecider> chaos_;  // null when chaos is disabled
  TcpListener listener_;
  std::thread acceptor_;

  std::mutex mu_;
  bool stopping_ = false;              // guarded by mu_
  std::set<int> live_fds_;             // guarded by mu_
  std::vector<std::thread> serving_;   // appended under mu_ by the acceptor
};

}  // namespace fusion

#endif  // FUSION_PROTOCOL_SOURCE_SERVER_H_
