#ifndef FUSION_PROTOCOL_SOURCE_SERVER_H_
#define FUSION_PROTOCOL_SOURCE_SERVER_H_

#include <memory>
#include <string>

#include "protocol/message.h"
#include "source/source_wrapper.h"

namespace fusion {

/// The wrapper-side endpoint of the FUSIONP/1 protocol: owns a concrete
/// SourceWrapper and answers serialized requests. Conditions arrive as text
/// and are re-parsed; load/fetch relations leave as CSV lines; the costs the
/// wrapped source charged travel back as charge summaries so the mediator
/// side can keep its ledger accurate.
class SourceServer {
 public:
  explicit SourceServer(std::unique_ptr<SourceWrapper> impl)
      : impl_(std::move(impl)) {}

  const SourceWrapper& impl() const { return *impl_; }

  /// Handles one serialized request and returns the serialized response.
  /// Malformed requests and wrapper errors become ERROR responses (the
  /// protocol layer never fails out-of-band).
  std::string Handle(const std::string& request_text);

 private:
  SourceResponse HandleParsed(const SourceRequest& request);

  std::unique_ptr<SourceWrapper> impl_;
};

}  // namespace fusion

#endif  // FUSION_PROTOCOL_SOURCE_SERVER_H_
