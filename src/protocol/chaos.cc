#include "protocol/chaos.h"

#include <chrono>
#include <thread>

#include "common/rng.h"
#include "obs/metrics.h"

namespace fusion {
namespace {

/// Global injected-fault totals. Plain atomics (not only the metrics
/// registry) so tests can assert exact deltas without snapshot plumbing.
std::atomic<uint64_t> g_drops{0};
std::atomic<uint64_t> g_torn_writes{0};
std::atomic<uint64_t> g_delays{0};
std::atomic<uint64_t> g_hangs{0};
std::atomic<uint64_t> g_refusals{0};

void CountFault(std::atomic<uint64_t>& local, const char* metric) {
  local.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Global().counter(metric).Increment();
}

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

double ChaosDecider::NextUniform() {
  const uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
  // splitmix64 over (seed, event index): the k-th decision of a run is a
  // pure function of the seed, independent of which thread draws it.
  const uint64_t bits = MixSeed(policy_.seed, n);
  return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
}

Status ChaosSocket::Send(const std::string& message) {
  if (chaos_ != nullptr && chaos_->policy().enabled()) {
    const ChaosPolicy& policy = chaos_->policy();
    if (chaos_->Fire(policy.delay_rate)) {
      CountFault(g_delays, metrics::kChaosDelaysTotal);
      SleepMs(policy.delay_ms);
    }
    if (chaos_->Fire(policy.hang_rate)) {
      CountFault(g_hangs, metrics::kChaosHangsTotal);
      SleepMs(policy.hang_ms);
    }
    if (chaos_->Fire(policy.drop_rate)) {
      CountFault(g_drops, metrics::kChaosDropsTotal);
      socket_.Close();
      return Status::Unavailable("chaos: connection reset before send");
    }
    if (message.size() > 1 && chaos_->Fire(policy.torn_write_rate)) {
      CountFault(g_torn_writes, metrics::kChaosTornWritesTotal);
      // Ship a strict prefix so the peer holds half a frame, then close:
      // the peer's next Receive sees "connection closed mid-message".
      const Status sent = socket_.Send(message.substr(0, message.size() / 2));
      socket_.Close();
      return sent.ok() ? Status::Unavailable("chaos: torn write") : sent;
    }
  }
  return socket_.Send(message);
}

Result<std::string> ChaosSocket::Receive() {
  if (chaos_ != nullptr && chaos_->policy().enabled()) {
    const ChaosPolicy& policy = chaos_->policy();
    if (chaos_->Fire(policy.delay_rate)) {
      CountFault(g_delays, metrics::kChaosDelaysTotal);
      SleepMs(policy.delay_ms);
    }
    if (chaos_->Fire(policy.hang_rate)) {
      CountFault(g_hangs, metrics::kChaosHangsTotal);
      SleepMs(policy.hang_ms);
    }
    if (chaos_->Fire(policy.drop_rate)) {
      CountFault(g_drops, metrics::kChaosDropsTotal);
      socket_.Close();
      return Status::Unavailable("chaos: connection reset before receive");
    }
  }
  return socket_.Receive();
}

ChaosCounts GlobalChaosCounts() {
  ChaosCounts counts;
  counts.drops = g_drops.load(std::memory_order_relaxed);
  counts.torn_writes = g_torn_writes.load(std::memory_order_relaxed);
  counts.delays = g_delays.load(std::memory_order_relaxed);
  counts.hangs = g_hangs.load(std::memory_order_relaxed);
  counts.refusals = g_refusals.load(std::memory_order_relaxed);
  return counts;
}

bool ChaosRefuseAccept(ChaosDecider* chaos) {
  if (chaos == nullptr || !chaos->Fire(chaos->policy().accept_refuse_rate)) {
    return false;
  }
  CountFault(g_refusals, metrics::kChaosRefusalsTotal);
  return true;
}

}  // namespace fusion
