#include "protocol/remote_source.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/relation.h"

namespace fusion {
namespace {

/// Stalled-replica guard: a replica that goes silent mid-frame for this
/// long is treated as dead and failed over, so a hung source cannot pin an
/// executor worker.
constexpr double kTcpStallDeadlineSeconds = 10.0;
/// Unterminated-receive cap — far above any legitimate frame this protocol
/// ships, low enough that a garbage-spewing peer is cut off cleanly.
constexpr size_t kTcpReceiveLimitBytes = 64 * 1024 * 1024;

void SleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

const char* RequestKindName(SourceRequest::Kind kind) {
  switch (kind) {
    case SourceRequest::Kind::kHello:
      return "hello";
    case SourceRequest::Kind::kSelect:
      return "sq";
    case SourceRequest::Kind::kSemiJoin:
      return "sjq";
    case SourceRequest::Kind::kLoad:
      return "lq";
    case SourceRequest::Kind::kFetch:
      return "fetch";
  }
  return "?";
}

Result<Capabilities> CapabilitiesFromWire(const std::string& semijoin,
                                          bool supports_load) {
  Capabilities caps;
  if (semijoin == "native") {
    caps.semijoin = SemijoinSupport::kNative;
  } else if (semijoin == "bindings") {
    caps.semijoin = SemijoinSupport::kPassedBindingsOnly;
  } else if (semijoin == "none") {
    caps.semijoin = SemijoinSupport::kUnsupported;
  } else {
    return Status::ParseError("bad semijoin capability on wire: " + semijoin);
  }
  caps.supports_load = supports_load;
  return caps;
}

Result<Relation> RelationFromLines(const std::vector<std::string>& lines) {
  std::string csv;
  for (const std::string& line : lines) {
    csv += line;
    csv += '\n';
  }
  return RelationFromCsv(csv);
}

}  // namespace

Result<SourceResponse> RemoteSource::RoundTrip(SourceRequest& request,
                                               CostLedger* ledger) {
  ScopedSpan span(SpanCategory::kRpc,
                  std::string("rpc.") + RequestKindName(request.kind));
  if (peer_traces_) {
    // Forward the ambient context (which the rpc span just joined/extended
    // when tracing is on, and which a TraceContextScope upstream installed
    // even when it is off) so the server's spans stitch into one trace.
    const TraceContext context = Tracer::CurrentContext();
    request.trace_id = context.trace_id;
    request.parent_span = context.span_id;
  }
  const std::string request_text = SerializeRequest(request);
  std::string response_text;
  {
    // The transport is a single channel: concurrent workers' requests queue
    // here rather than interleaving bytes on the wire.
    std::lock_guard<std::mutex> lock(transport_mu_);
    if (tcp_mode_) {
      FUSION_ASSIGN_OR_RETURN(response_text, TcpExchangeLocked(request_text));
    } else {
      response_text = transport_(request_text);
    }
  }
  {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static Counter& requests = registry.counter(metrics::kRpcRequests);
    static Counter& bytes_sent = registry.counter(metrics::kRpcBytesSent);
    static Counter& bytes_received =
        registry.counter(metrics::kRpcBytesReceived);
    requests.Increment();
    bytes_sent.Increment(request_text.size());
    bytes_received.Increment(response_text.size());
  }
  if (span.active()) {
    if (!name_.empty()) span.AddAttr("source", name_);
    span.AddAttr("bytes_sent", request_text.size());
    span.AddAttr("bytes_received", response_text.size());
  }
  FUSION_ASSIGN_OR_RETURN(SourceResponse response,
                          ParseResponse(response_text));
  if (ledger != nullptr) {
    for (const ChargeSummary& summary : response.charges) {
      Charge charge;
      charge.source = name_.empty() ? response.name : name_;
      // Charge kinds survive as their display names; the enum value is only
      // cosmetic on the mediator side, so map the common ones.
      charge.kind = summary.kind == "sjq" ? ChargeKind::kSemiJoin
                    : summary.kind == "lq" ? ChargeKind::kLoad
                    : summary.kind == "fetch" ? ChargeKind::kFetchRecords
                        : ChargeKind::kSelect;
      charge.detail = "remote " + summary.kind;
      charge.items_sent = summary.items_sent;
      charge.items_received = summary.items_received;
      charge.tuples_scanned = summary.tuples_scanned;
      charge.cost = summary.cost;
      ledger->Add(std::move(charge));
    }
  }
  if (!response.ok) {
    return Status(response.error_code,
                  "remote source '" + (name_.empty() ? "?" : name_) +
                      "': " + response.error_message);
  }
  return response;
}

Status RemoteSource::AdoptHello(const SourceResponse& response) {
  if (response.name.empty()) {
    return Status::ParseError("HELLO response carries no source name");
  }
  name_ = response.name;
  peer_traces_ = false;
  for (const std::string& feature : response.features) {
    if (feature == "trace") peer_traces_ = true;
  }
  FUSION_ASSIGN_OR_RETURN(
      capabilities_,
      CapabilitiesFromWire(response.semijoin_support, response.supports_load));
  FUSION_ASSIGN_OR_RETURN(const Relation schema_relation,
                          RelationFromLines(response.relation_lines));
  schema_ = schema_relation.schema();
  return Status::Ok();
}

Result<std::unique_ptr<RemoteSource>> RemoteSource::Connect(
    ProtocolTransport transport) {
  auto source = std::unique_ptr<RemoteSource>(
      new RemoteSource(std::move(transport)));
  SourceRequest hello;
  hello.kind = SourceRequest::Kind::kHello;
  FUSION_ASSIGN_OR_RETURN(const SourceResponse response,
                          source->RoundTrip(hello, nullptr));
  FUSION_RETURN_IF_ERROR(source->AdoptHello(response));
  return source;
}

RetryPolicy RemoteSource::DefaultFailoverPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_seconds = 0.005;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.1;
  return policy;
}

Result<std::unique_ptr<RemoteSource>> RemoteSource::ConnectTcp(
    std::vector<std::string> endpoints, const RetryPolicy& policy) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("ConnectTcp: no endpoints");
  }
  auto source = std::unique_ptr<RemoteSource>(new RemoteSource(nullptr));
  source->tcp_mode_ = true;
  source->endpoints_ = std::move(endpoints);
  source->failover_ = policy;
  {
    std::lock_guard<std::mutex> lock(source->transport_mu_);
    // Initial connect rotates across the replicas like any failover: the
    // catalog stays loadable while any one replica is up.
    const int attempts =
        std::max(std::max(1, policy.max_attempts),
                 static_cast<int>(source->endpoints_.size()));
    Status dialed = Status::Unavailable("never dialed");
    for (int attempt = 1; attempt <= attempts; ++attempt) {
      if (attempt > 1) {
        SleepSeconds(policy.BackoffSeconds(source->active_, attempt - 1));
      }
      dialed = source->TcpDialActiveLocked();
      if (dialed.ok()) break;
      source->TcpAdvanceReplicaLocked();
    }
    FUSION_RETURN_IF_ERROR(dialed);
    FUSION_RETURN_IF_ERROR(source->AdoptHello(source->last_hello_));
  }
  return source;
}

Status RemoteSource::TcpDialActiveLocked() {
  socket_.Close();
  Result<MessageSocket> dialed = DialTcp(endpoints_[active_]);
  if (!dialed.ok()) return dialed.status();
  socket_ = std::move(dialed).value();
  (void)socket_.SetStallDeadline(kTcpStallDeadlineSeconds);
  socket_.SetReceiveLimit(kTcpReceiveLimitBytes);
  // Validate the replica via HELLO before trusting it with a query — and,
  // after the first connect, that it really is a replica of the same
  // source (same name) rather than a misconfigured endpoint.
  SourceRequest hello;
  hello.kind = SourceRequest::Kind::kHello;
  Status sent = socket_.Send(SerializeRequest(hello));
  if (!sent.ok()) {
    socket_.Close();
    return sent;
  }
  Result<std::string> reply = socket_.Receive();
  if (!reply.ok()) {
    socket_.Close();
    return reply.status();
  }
  Result<SourceResponse> parsed = ParseResponse(reply.value());
  if (!parsed.ok()) {
    socket_.Close();
    return parsed.status();
  }
  if (!parsed.value().ok) {
    socket_.Close();
    return Status(parsed.value().error_code,
                  "replica hello: " + parsed.value().error_message);
  }
  if (!name_.empty() && parsed.value().name != name_) {
    socket_.Close();
    return Status::Internal("replica " + endpoints_[active_] +
                            " serves source '" + parsed.value().name +
                            "', expected '" + name_ + "'");
  }
  last_hello_ = std::move(parsed).value();
  if (dialed_once_) ++reconnects_;
  dialed_once_ = true;
  return Status::Ok();
}

void RemoteSource::TcpAdvanceReplicaLocked() {
  if (endpoints_.size() <= 1) return;
  active_ = (active_ + 1) % endpoints_.size();
  ++failovers_;
  static Counter& failovers =
      MetricsRegistry::Global().counter(metrics::kSourceFailoversTotal);
  failovers.Increment();
}

Result<std::string> RemoteSource::TcpExchangeLocked(
    const std::string& request_text) {
  const int attempts = std::max(std::max(1, failover_.max_attempts),
                                static_cast<int>(endpoints_.size()));
  Status last_error = Status::Unavailable("never sent");
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      SleepSeconds(failover_.BackoffSeconds(active_, attempt - 1));
    }
    if (!socket_.valid()) {
      const Status dialed = TcpDialActiveLocked();
      if (!dialed.ok()) {
        last_error = dialed;
        TcpAdvanceReplicaLocked();
        continue;
      }
    }
    const Status sent = socket_.Send(request_text);
    if (sent.ok()) {
      Result<std::string> reply = socket_.Receive();
      if (reply.ok()) return reply;
      last_error = reply.status();
    } else {
      last_error = sent;
    }
    // Transport failure: this replica is suspect. FUSIONP/1 requests are
    // pure reads, so re-issuing against the next replica is always safe —
    // and the failed attempt replayed no charges, so nothing is metered
    // twice.
    socket_.Close();
    TcpAdvanceReplicaLocked();
  }
  return Status::Unavailable("source '" + (name_.empty() ? "?" : name_) +
                             "': all replicas failed: " + last_error.message());
}

size_t RemoteSource::failovers() const {
  std::lock_guard<std::mutex> lock(transport_mu_);
  return failovers_;
}

size_t RemoteSource::reconnects() const {
  std::lock_guard<std::mutex> lock(transport_mu_);
  return reconnects_;
}

std::string RemoteSource::active_endpoint() const {
  std::lock_guard<std::mutex> lock(transport_mu_);
  return tcp_mode_ ? endpoints_[active_] : std::string();
}

Result<ItemSet> RemoteSource::Select(const Condition& cond,
                                     const std::string& merge_attribute,
                                     CostLedger* ledger) {
  SourceRequest request;
  request.kind = SourceRequest::Kind::kSelect;
  request.merge_attribute = merge_attribute;
  request.condition_text = cond.ToString();
  FUSION_ASSIGN_OR_RETURN(const SourceResponse response,
                          RoundTrip(request, ledger));
  return ItemSet(response.items);
}

Result<ItemSet> RemoteSource::SemiJoin(const Condition& cond,
                                       const std::string& merge_attribute,
                                       const ItemSet& candidates,
                                       CostLedger* ledger) {
  SourceRequest request;
  request.kind = SourceRequest::Kind::kSemiJoin;
  request.merge_attribute = merge_attribute;
  request.condition_text = cond.ToString();
  request.bindings.assign(candidates.begin(), candidates.end());
  FUSION_ASSIGN_OR_RETURN(const SourceResponse response,
                          RoundTrip(request, ledger));
  return ItemSet(response.items);
}

Result<Relation> RemoteSource::Load(CostLedger* ledger) {
  SourceRequest request;
  request.kind = SourceRequest::Kind::kLoad;
  FUSION_ASSIGN_OR_RETURN(const SourceResponse response,
                          RoundTrip(request, ledger));
  return RelationFromLines(response.relation_lines);
}

Result<Relation> RemoteSource::FetchRecords(const std::string& merge_attribute,
                                            const ItemSet& items,
                                            CostLedger* ledger) {
  SourceRequest request;
  request.kind = SourceRequest::Kind::kFetch;
  request.merge_attribute = merge_attribute;
  request.bindings.assign(items.begin(), items.end());
  FUSION_ASSIGN_OR_RETURN(const SourceResponse response,
                          RoundTrip(request, ledger));
  return RelationFromLines(response.relation_lines);
}

}  // namespace fusion
