#include "protocol/remote_source.h"

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/relation.h"

namespace fusion {
namespace {

const char* RequestKindName(SourceRequest::Kind kind) {
  switch (kind) {
    case SourceRequest::Kind::kHello:
      return "hello";
    case SourceRequest::Kind::kSelect:
      return "sq";
    case SourceRequest::Kind::kSemiJoin:
      return "sjq";
    case SourceRequest::Kind::kLoad:
      return "lq";
    case SourceRequest::Kind::kFetch:
      return "fetch";
  }
  return "?";
}

Result<Capabilities> CapabilitiesFromWire(const std::string& semijoin,
                                          bool supports_load) {
  Capabilities caps;
  if (semijoin == "native") {
    caps.semijoin = SemijoinSupport::kNative;
  } else if (semijoin == "bindings") {
    caps.semijoin = SemijoinSupport::kPassedBindingsOnly;
  } else if (semijoin == "none") {
    caps.semijoin = SemijoinSupport::kUnsupported;
  } else {
    return Status::ParseError("bad semijoin capability on wire: " + semijoin);
  }
  caps.supports_load = supports_load;
  return caps;
}

Result<Relation> RelationFromLines(const std::vector<std::string>& lines) {
  std::string csv;
  for (const std::string& line : lines) {
    csv += line;
    csv += '\n';
  }
  return RelationFromCsv(csv);
}

}  // namespace

Result<SourceResponse> RemoteSource::RoundTrip(SourceRequest& request,
                                               CostLedger* ledger) {
  ScopedSpan span(SpanCategory::kRpc,
                  std::string("rpc.") + RequestKindName(request.kind));
  if (peer_traces_) {
    // Forward the ambient context (which the rpc span just joined/extended
    // when tracing is on, and which a TraceContextScope upstream installed
    // even when it is off) so the server's spans stitch into one trace.
    const TraceContext context = Tracer::CurrentContext();
    request.trace_id = context.trace_id;
    request.parent_span = context.span_id;
  }
  const std::string request_text = SerializeRequest(request);
  std::string response_text;
  {
    // The transport is a single channel: concurrent workers' requests queue
    // here rather than interleaving bytes on the wire.
    std::lock_guard<std::mutex> lock(transport_mu_);
    response_text = transport_(request_text);
  }
  {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static Counter& requests = registry.counter(metrics::kRpcRequests);
    static Counter& bytes_sent = registry.counter(metrics::kRpcBytesSent);
    static Counter& bytes_received =
        registry.counter(metrics::kRpcBytesReceived);
    requests.Increment();
    bytes_sent.Increment(request_text.size());
    bytes_received.Increment(response_text.size());
  }
  if (span.active()) {
    if (!name_.empty()) span.AddAttr("source", name_);
    span.AddAttr("bytes_sent", request_text.size());
    span.AddAttr("bytes_received", response_text.size());
  }
  FUSION_ASSIGN_OR_RETURN(SourceResponse response,
                          ParseResponse(response_text));
  if (ledger != nullptr) {
    for (const ChargeSummary& summary : response.charges) {
      Charge charge;
      charge.source = name_.empty() ? response.name : name_;
      // Charge kinds survive as their display names; the enum value is only
      // cosmetic on the mediator side, so map the common ones.
      charge.kind = summary.kind == "sjq" ? ChargeKind::kSemiJoin
                    : summary.kind == "lq" ? ChargeKind::kLoad
                    : summary.kind == "fetch" ? ChargeKind::kFetchRecords
                        : ChargeKind::kSelect;
      charge.detail = "remote " + summary.kind;
      charge.items_sent = summary.items_sent;
      charge.items_received = summary.items_received;
      charge.tuples_scanned = summary.tuples_scanned;
      charge.cost = summary.cost;
      ledger->Add(std::move(charge));
    }
  }
  if (!response.ok) {
    return Status(response.error_code,
                  "remote source '" + (name_.empty() ? "?" : name_) +
                      "': " + response.error_message);
  }
  return response;
}

Result<std::unique_ptr<RemoteSource>> RemoteSource::Connect(
    ProtocolTransport transport) {
  auto source = std::unique_ptr<RemoteSource>(
      new RemoteSource(std::move(transport)));
  SourceRequest hello;
  hello.kind = SourceRequest::Kind::kHello;
  FUSION_ASSIGN_OR_RETURN(const SourceResponse response,
                          source->RoundTrip(hello, nullptr));
  if (response.name.empty()) {
    return Status::ParseError("HELLO response carries no source name");
  }
  source->name_ = response.name;
  for (const std::string& feature : response.features) {
    if (feature == "trace") source->peer_traces_ = true;
  }
  FUSION_ASSIGN_OR_RETURN(
      source->capabilities_,
      CapabilitiesFromWire(response.semijoin_support, response.supports_load));
  FUSION_ASSIGN_OR_RETURN(const Relation schema_relation,
                          RelationFromLines(response.relation_lines));
  source->schema_ = schema_relation.schema();
  return source;
}

Result<ItemSet> RemoteSource::Select(const Condition& cond,
                                     const std::string& merge_attribute,
                                     CostLedger* ledger) {
  SourceRequest request;
  request.kind = SourceRequest::Kind::kSelect;
  request.merge_attribute = merge_attribute;
  request.condition_text = cond.ToString();
  FUSION_ASSIGN_OR_RETURN(const SourceResponse response,
                          RoundTrip(request, ledger));
  return ItemSet(response.items);
}

Result<ItemSet> RemoteSource::SemiJoin(const Condition& cond,
                                       const std::string& merge_attribute,
                                       const ItemSet& candidates,
                                       CostLedger* ledger) {
  SourceRequest request;
  request.kind = SourceRequest::Kind::kSemiJoin;
  request.merge_attribute = merge_attribute;
  request.condition_text = cond.ToString();
  request.bindings.assign(candidates.begin(), candidates.end());
  FUSION_ASSIGN_OR_RETURN(const SourceResponse response,
                          RoundTrip(request, ledger));
  return ItemSet(response.items);
}

Result<Relation> RemoteSource::Load(CostLedger* ledger) {
  SourceRequest request;
  request.kind = SourceRequest::Kind::kLoad;
  FUSION_ASSIGN_OR_RETURN(const SourceResponse response,
                          RoundTrip(request, ledger));
  return RelationFromLines(response.relation_lines);
}

Result<Relation> RemoteSource::FetchRecords(const std::string& merge_attribute,
                                            const ItemSet& items,
                                            CostLedger* ledger) {
  SourceRequest request;
  request.kind = SourceRequest::Kind::kFetch;
  request.merge_attribute = merge_attribute;
  request.bindings.assign(items.begin(), items.end());
  FUSION_ASSIGN_OR_RETURN(const SourceResponse response,
                          RoundTrip(request, ledger));
  return RelationFromLines(response.relation_lines);
}

}  // namespace fusion
