#include "protocol/message.h"

#include <cstdlib>

#include "common/str_util.h"

namespace fusion {
namespace {

constexpr char kMagic[] = "FUSIONP/1";

const char* RequestKindName(SourceRequest::Kind kind) {
  switch (kind) {
    case SourceRequest::Kind::kHello:
      return "HELLO";
    case SourceRequest::Kind::kSelect:
      return "SELECT";
    case SourceRequest::Kind::kSemiJoin:
      return "SEMIJOIN";
    case SourceRequest::Kind::kLoad:
      return "LOAD";
    case SourceRequest::Kind::kFetch:
      return "FETCH";
  }
  return "?";
}

Result<SourceRequest::Kind> ParseRequestKind(const std::string& name) {
  if (name == "HELLO") return SourceRequest::Kind::kHello;
  if (name == "SELECT") return SourceRequest::Kind::kSelect;
  if (name == "SEMIJOIN") return SourceRequest::Kind::kSemiJoin;
  if (name == "LOAD") return SourceRequest::Kind::kLoad;
  if (name == "FETCH") return SourceRequest::Kind::kFetch;
  return Status::ParseError("unknown request kind: " + name);
}

std::string EscapeText(const std::string& s) { return EscapeWireText(s); }

Result<std::string> UnescapeText(const std::string& s) {
  return UnescapeWireText(s);
}

std::pair<std::string, std::string> SplitKeyValue(const std::string& line) {
  return SplitWireKeyValue(line);
}

/// Splits `text` into lines, rejecting any line over the dialect's cap
/// (the FUSIONQ/1 parsers do the same via kMaxClientProtocolLineBytes).
Result<std::vector<std::string>> SplitBoundedSourceLines(
    const std::string& text, const char* what) {
  std::vector<std::string> lines = StrSplit(text, '\n');
  for (const std::string& line : lines) {
    if (line.size() > kMaxSourceProtocolLineBytes) {
      return Status::ParseError(
          StrFormat("oversized %s line (%zu bytes; limit %zu)", what,
                    line.size(), kMaxSourceProtocolLineBytes));
    }
  }
  return lines;
}

}  // namespace

std::string EscapeWireText(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeWireText(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) return Status::ParseError("dangling escape");
    ++i;
    if (s[i] == 'n') {
      out += '\n';
    } else if (s[i] == '\\') {
      out += '\\';
    } else {
      return Status::ParseError("bad escape sequence");
    }
  }
  return out;
}

std::pair<std::string, std::string> SplitWireKeyValue(const std::string& line) {
  const size_t space = line.find(' ');
  if (space == std::string::npos) return {line, ""};
  return {line.substr(0, space), line.substr(space + 1)};
}

Result<StatusCode> ParseWireStatusCode(const std::string& text) {
  if (!text.empty() && text.find_first_not_of("0123456789") ==
                           std::string::npos) {
    const int raw = std::atoi(text.c_str());
    const size_t count = sizeof(kAllStatusCodes) / sizeof(kAllStatusCodes[0]);
    if (raw < 0 || static_cast<size_t>(raw) >= count) {
      return Status::ParseError("status code integer out of range: " + text);
    }
    return static_cast<StatusCode>(raw);
  }
  return StatusCodeFromName(text);
}

std::string SerializeValue(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "i:" + std::to_string(value.int64());
    case ValueType::kDouble:
      return "d:" + StrFormat("%.17g", value.dbl());
    case ValueType::kString:
      return "s:" + EscapeText(value.str());
  }
  return "null";
}

Result<Value> ParseSerializedValue(const std::string& text) {
  if (text == "null") return Value::Null();
  if (text.size() < 2 || text[1] != ':') {
    return Status::ParseError("bad serialized value: " + text);
  }
  const std::string payload = text.substr(2);
  switch (text[0]) {
    case 'i': {
      char* end = nullptr;
      const long long v = std::strtoll(payload.c_str(), &end, 10);
      if (end != payload.c_str() + payload.size() || payload.empty()) {
        return Status::ParseError("bad int64 payload: " + payload);
      }
      return Value(static_cast<int64_t>(v));
    }
    case 'd': {
      char* end = nullptr;
      const double v = std::strtod(payload.c_str(), &end);
      if (end != payload.c_str() + payload.size() || payload.empty()) {
        return Status::ParseError("bad double payload: " + payload);
      }
      return Value(v);
    }
    case 's': {
      FUSION_ASSIGN_OR_RETURN(std::string unescaped, UnescapeText(payload));
      return Value(std::move(unescaped));
    }
    default:
      return Status::ParseError("unknown value tag: " + text);
  }
}

std::string SerializeRequest(const SourceRequest& request) {
  std::string out = std::string(kMagic) + " " + RequestKindName(request.kind) +
                    "\n";
  if (!request.merge_attribute.empty()) {
    out += "merge " + request.merge_attribute + "\n";
  }
  if (!request.condition_text.empty()) {
    out += "cond " + EscapeText(request.condition_text) + "\n";
  }
  for (const Value& v : request.bindings) {
    out += "bind " + SerializeValue(v) + "\n";
  }
  if (request.trace_id != 0) {
    out += StrFormat("trace %llu %llu\n",
                     static_cast<unsigned long long>(request.trace_id),
                     static_cast<unsigned long long>(request.parent_span));
  }
  out += "end\n";
  return out;
}

Result<SourceRequest> ParseRequest(const std::string& text) {
  FUSION_ASSIGN_OR_RETURN(const std::vector<std::string> lines,
                          SplitBoundedSourceLines(text, "source request"));
  if (lines.empty()) return Status::ParseError("empty request");
  const auto [magic, kind_name] = SplitKeyValue(lines[0]);
  if (magic != kMagic) {
    return Status::ParseError("bad protocol magic: " + magic);
  }
  SourceRequest request;
  FUSION_ASSIGN_OR_RETURN(request.kind, ParseRequestKind(kind_name));
  bool terminated = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    if (lines[i] == "end") {
      terminated = true;
      break;
    }
    const auto [key, value] = SplitKeyValue(lines[i]);
    if (key == "merge") {
      request.merge_attribute = value;
    } else if (key == "cond") {
      FUSION_ASSIGN_OR_RETURN(request.condition_text, UnescapeText(value));
    } else if (key == "bind") {
      FUSION_ASSIGN_OR_RETURN(Value v, ParseSerializedValue(value));
      request.bindings.push_back(std::move(v));
    } else if (key == "trace") {
      const auto [trace_text, span_text] = SplitKeyValue(value);
      if (trace_text.empty() ||
          trace_text.find_first_not_of("0123456789") != std::string::npos) {
        return Status::ParseError("bad trace line: " + value);
      }
      request.trace_id = std::strtoull(trace_text.c_str(), nullptr, 10);
      if (!span_text.empty()) {
        if (span_text.find_first_not_of("0123456789") != std::string::npos) {
          return Status::ParseError("bad trace line: " + value);
        }
        request.parent_span = std::strtoull(span_text.c_str(), nullptr, 10);
      }
    }
    // Unknown fields are ignored for forward compatibility: peers act on
    // optional capabilities only after HELLO `features` negotiation.
  }
  if (!terminated) return Status::ParseError("request missing 'end'");
  return request;
}

std::string SerializeResponse(const SourceResponse& response) {
  std::string out = std::string(kMagic) + " " +
                    (response.ok ? "OK" : "ERROR") + "\n";
  if (!response.ok) {
    // Codes travel by name (the shared StatusCode taxonomy), so a reader of
    // the wire sees "error Unavailable ..." rather than a magic number.
    out += StrFormat("error %s %s\n", StatusCodeName(response.error_code),
                     EscapeText(response.error_message).c_str());
  }
  for (const Value& v : response.items) {
    out += "item " + SerializeValue(v) + "\n";
  }
  for (const std::string& line : response.relation_lines) {
    out += "relation-line " + EscapeText(line) + "\n";
  }
  if (!response.name.empty()) out += "name " + response.name + "\n";
  if (!response.semijoin_support.empty()) {
    out += "semijoin " + response.semijoin_support + "\n";
  }
  out += std::string("load ") + (response.supports_load ? "yes" : "no") + "\n";
  if (!response.features.empty()) {
    std::string joined;
    for (const std::string& f : response.features) {
      if (!joined.empty()) joined += ",";
      joined += f;
    }
    out += "features " + joined + "\n";
  }
  for (const ChargeSummary& c : response.charges) {
    out += StrFormat("charge %s %zu %zu %zu %.17g\n", c.kind.c_str(),
                     c.items_sent, c.items_received, c.tuples_scanned, c.cost);
  }
  out += "end\n";
  return out;
}

Result<SourceResponse> ParseResponse(const std::string& text) {
  FUSION_ASSIGN_OR_RETURN(const std::vector<std::string> lines,
                          SplitBoundedSourceLines(text, "source response"));
  if (lines.empty()) return Status::ParseError("empty response");
  const auto [magic, status_name] = SplitKeyValue(lines[0]);
  if (magic != kMagic) {
    return Status::ParseError("bad protocol magic: " + magic);
  }
  SourceResponse response;
  if (status_name == "OK") {
    response.ok = true;
  } else if (status_name == "ERROR") {
    response.ok = false;
  } else {
    return Status::ParseError("bad response status: " + status_name);
  }
  bool terminated = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    if (lines[i] == "end") {
      terminated = true;
      break;
    }
    const auto [key, value] = SplitKeyValue(lines[i]);
    if (key == "error") {
      const auto [code_text, message] = SplitKeyValue(value);
      FUSION_ASSIGN_OR_RETURN(response.error_code,
                              ParseWireStatusCode(code_text));
      FUSION_ASSIGN_OR_RETURN(response.error_message, UnescapeText(message));
    } else if (key == "item") {
      FUSION_ASSIGN_OR_RETURN(Value v, ParseSerializedValue(value));
      response.items.push_back(std::move(v));
    } else if (key == "relation-line") {
      FUSION_ASSIGN_OR_RETURN(std::string line, UnescapeText(value));
      response.relation_lines.push_back(std::move(line));
    } else if (key == "name") {
      response.name = value;
    } else if (key == "semijoin") {
      response.semijoin_support = value;
    } else if (key == "load") {
      response.supports_load = value == "yes";
    } else if (key == "features") {
      for (const std::string& f : StrSplit(value, ',')) {
        if (!f.empty()) response.features.push_back(f);
      }
    } else if (key == "charge") {
      const std::vector<std::string> parts = StrSplit(value, ' ');
      if (parts.size() != 5) {
        return Status::ParseError("bad charge line: " + value);
      }
      ChargeSummary c;
      c.kind = parts[0];
      c.items_sent = static_cast<size_t>(std::atoll(parts[1].c_str()));
      c.items_received = static_cast<size_t>(std::atoll(parts[2].c_str()));
      c.tuples_scanned = static_cast<size_t>(std::atoll(parts[3].c_str()));
      c.cost = std::atof(parts[4].c_str());
      response.charges.push_back(std::move(c));
    }
    // Unknown fields are ignored (see ParseRequest).
  }
  if (!terminated) return Status::ParseError("response missing 'end'");
  return response;
}

}  // namespace fusion
