#include "protocol/client_protocol.h"

#include <cstdlib>

#include "common/str_util.h"
#include "protocol/message.h"

namespace fusion {
namespace {

constexpr char kMagic[] = "FUSIONQ/1";

const char* RequestKindName(ClientRequest::Kind kind) {
  switch (kind) {
    case ClientRequest::Kind::kHello:
      return "HELLO";
    case ClientRequest::Kind::kSubmit:
      return "SUBMIT";
    case ClientRequest::Kind::kStatus:
      return "STATUS";
    case ClientRequest::Kind::kCancel:
      return "CANCEL";
    case ClientRequest::Kind::kStats:
      return "STATS";
    case ClientRequest::Kind::kInvalidate:
      return "INVALIDATE";
  }
  return "?";
}

Result<ClientRequest::Kind> ParseRequestKind(const std::string& name) {
  if (name == "HELLO") return ClientRequest::Kind::kHello;
  if (name == "SUBMIT") return ClientRequest::Kind::kSubmit;
  if (name == "STATUS") return ClientRequest::Kind::kStatus;
  if (name == "CANCEL") return ClientRequest::Kind::kCancel;
  if (name == "STATS") return ClientRequest::Kind::kStats;
  if (name == "INVALIDATE") return ClientRequest::Kind::kInvalidate;
  return Status::ParseError("unknown client request kind: " + name);
}

std::string JoinFeatures(const std::vector<std::string>& features) {
  std::string out;
  for (const std::string& f : features) {
    if (!out.empty()) out += ",";
    out += f;
  }
  return out;
}

std::vector<std::string> SplitFeatures(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& f : StrSplit(text, ',')) {
    if (!f.empty()) out.push_back(f);
  }
  return out;
}

Result<uint64_t> ParseU64(const std::string& key, const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::ParseError("bad " + key + ": " + text);
  }
  return static_cast<uint64_t>(std::strtoull(text.c_str(), nullptr, 10));
}

Result<uint64_t> ParseTicket(const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::ParseError("bad ticket: " + text);
  }
  return static_cast<uint64_t>(std::strtoull(text.c_str(), nullptr, 10));
}

Result<size_t> ParseCount(const std::string& key, const std::string& text) {
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos) {
    return Status::ParseError("bad " + key + " count: " + text);
  }
  return static_cast<size_t>(std::strtoull(text.c_str(), nullptr, 10));
}

/// Splits `text` into lines, rejecting any line over the protocol's cap.
Result<std::vector<std::string>> SplitBoundedLines(const std::string& text,
                                                   const char* what) {
  std::vector<std::string> lines = StrSplit(text, '\n');
  for (const std::string& line : lines) {
    if (line.size() > kMaxClientProtocolLineBytes) {
      return Status::ParseError(
          StrFormat("oversized %s line (%zu bytes; limit %zu)", what,
                    line.size(), kMaxClientProtocolLineBytes));
    }
  }
  return lines;
}

}  // namespace

std::vector<std::string> ClientProtocolFeatures() {
  return FeatureSet::All().Names();
}

std::string SerializeClientRequest(const ClientRequest& request) {
  std::string out =
      std::string(kMagic) + " " + RequestKindName(request.kind) + "\n";
  if (!request.client_id.empty()) {
    out += "client " + EscapeWireText(request.client_id) + "\n";
  }
  if (!request.sql.empty()) {
    out += "sql " + EscapeWireText(request.sql) + "\n";
  }
  if (request.kind == ClientRequest::Kind::kStatus ||
      request.kind == ClientRequest::Kind::kCancel) {
    out += "ticket " + std::to_string(request.ticket) + "\n";
  }
  if (request.kind == ClientRequest::Kind::kSubmit && !request.wait) {
    out += "wait no\n";
  }
  if (request.kind == ClientRequest::Kind::kSubmit && request.explain) {
    out += "explain yes\n";
  }
  if (request.kind == ClientRequest::Kind::kHello &&
      !request.features.empty()) {
    out += "features " + JoinFeatures(request.features) + "\n";
  }
  if (request.kind == ClientRequest::Kind::kSubmit && request.trace_id != 0) {
    out += "trace-id " + std::to_string(request.trace_id) + "\n";
    if (request.parent_span != 0) {
      out += "parent-span " + std::to_string(request.parent_span) + "\n";
    }
  }
  if (request.kind == ClientRequest::Kind::kSubmit && request.request_id != 0) {
    out += "request-id " + std::to_string(request.request_id) + "\n";
  }
  if (request.kind == ClientRequest::Kind::kInvalidate) {
    out += "source " + EscapeWireText(request.source) + "\n";
    if (request.version != 0) {
      out += "version " + std::to_string(request.version) + "\n";
    }
  }
  out += "end\n";
  return out;
}

Result<ClientRequest> ParseClientRequest(const std::string& text) {
  FUSION_ASSIGN_OR_RETURN(const std::vector<std::string> lines,
                          SplitBoundedLines(text, "client request"));
  if (lines.empty()) return Status::ParseError("empty client request");
  const auto [magic, kind_name] = SplitWireKeyValue(lines[0]);
  if (magic != kMagic) {
    return Status::ParseError("bad protocol magic: " + magic);
  }
  ClientRequest request;
  FUSION_ASSIGN_OR_RETURN(request.kind, ParseRequestKind(kind_name));
  bool terminated = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    if (lines[i] == "end") {
      terminated = true;
      break;
    }
    const auto [key, value] = SplitWireKeyValue(lines[i]);
    if (key == "client") {
      FUSION_ASSIGN_OR_RETURN(request.client_id, UnescapeWireText(value));
    } else if (key == "sql") {
      FUSION_ASSIGN_OR_RETURN(request.sql, UnescapeWireText(value));
    } else if (key == "ticket") {
      FUSION_ASSIGN_OR_RETURN(request.ticket, ParseTicket(value));
    } else if (key == "wait") {
      request.wait = value != "no";
    } else if (key == "explain") {
      request.explain = value == "yes";
    } else if (key == "features") {
      request.features = SplitFeatures(value);
    } else if (key == "trace-id") {
      FUSION_ASSIGN_OR_RETURN(request.trace_id, ParseU64(key, value));
    } else if (key == "parent-span") {
      FUSION_ASSIGN_OR_RETURN(request.parent_span, ParseU64(key, value));
    } else if (key == "request-id") {
      FUSION_ASSIGN_OR_RETURN(request.request_id, ParseU64(key, value));
    } else if (key == "source") {
      FUSION_ASSIGN_OR_RETURN(request.source, UnescapeWireText(value));
    } else if (key == "version") {
      FUSION_ASSIGN_OR_RETURN(request.version, ParseU64(key, value));
    }
    // Unknown fields are ignored: a newer peer may send fields this build
    // does not know, and must be able to do so without negotiating first
    // (negotiation itself rides on HELLO fields).
  }
  if (!terminated) return Status::ParseError("client request missing 'end'");
  return request;
}

std::string SerializeClientResponse(const ClientResponse& response) {
  std::string out = std::string(kMagic) + " " +
                    (response.ok ? "OK" : "ERROR") + "\n";
  if (!response.ok) {
    out += StrFormat("error %s %s\n", StatusCodeName(response.error_code),
                     EscapeWireText(response.error_message).c_str());
  }
  if (!response.server.empty()) {
    out += "server " + EscapeWireText(response.server) + "\n";
  }
  if (response.ticket != 0) {
    out += "ticket " + std::to_string(response.ticket) + "\n";
  }
  if (!response.state.empty()) out += "state " + response.state + "\n";
  for (const Value& v : response.items) {
    out += "item " + SerializeValue(v) + "\n";
  }
  if (response.source_queries > 0 || !response.items.empty() ||
      response.cost > 0.0) {
    out += StrFormat("cost %.17g\n", response.cost);
    out += StrFormat("source-queries %zu\n", response.source_queries);
    out += StrFormat("cache-hits %zu\n", response.cache_hits);
    out += StrFormat("cache-misses %zu\n", response.cache_misses);
    out += StrFormat("items-sent %zu\n", response.items_sent);
    out += StrFormat("items-received %zu\n", response.items_received);
  }
  if (response.cache_containment_hits > 0) {
    out += StrFormat("cache-containment %zu\n",
                     response.cache_containment_hits);
  }
  if (response.calibration_cost > 0.0) {
    out += StrFormat("calibration-cost %.17g\n", response.calibration_cost);
  }
  if (!response.complete) out += "complete no\n";
  if (!response.features.empty()) {
    out += "features " + JoinFeatures(response.features) + "\n";
  }
  for (const std::string& line : response.stats_lines) {
    out += "stats " + EscapeWireText(line) + "\n";
  }
  for (const std::string& line : response.explain_lines) {
    out += "explain " + EscapeWireText(line) + "\n";
  }
  out += "end\n";
  return out;
}

Result<ClientResponse> ParseClientResponse(const std::string& text) {
  FUSION_ASSIGN_OR_RETURN(const std::vector<std::string> lines,
                          SplitBoundedLines(text, "client response"));
  if (lines.empty()) return Status::ParseError("empty client response");
  const auto [magic, status_name] = SplitWireKeyValue(lines[0]);
  if (magic != kMagic) {
    return Status::ParseError("bad protocol magic: " + magic);
  }
  ClientResponse response;
  if (status_name == "OK") {
    response.ok = true;
  } else if (status_name == "ERROR") {
    response.ok = false;
  } else {
    return Status::ParseError("bad client response status: " + status_name);
  }
  bool terminated = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    if (lines[i] == "end") {
      terminated = true;
      break;
    }
    const auto [key, value] = SplitWireKeyValue(lines[i]);
    if (key == "error") {
      const auto [code_text, message] = SplitWireKeyValue(value);
      FUSION_ASSIGN_OR_RETURN(response.error_code,
                              ParseWireStatusCode(code_text));
      FUSION_ASSIGN_OR_RETURN(response.error_message,
                              UnescapeWireText(message));
    } else if (key == "server") {
      FUSION_ASSIGN_OR_RETURN(response.server, UnescapeWireText(value));
    } else if (key == "ticket") {
      FUSION_ASSIGN_OR_RETURN(response.ticket, ParseTicket(value));
    } else if (key == "state") {
      response.state = value;
    } else if (key == "item") {
      FUSION_ASSIGN_OR_RETURN(Value v, ParseSerializedValue(value));
      response.items.push_back(std::move(v));
    } else if (key == "cost") {
      response.cost = std::atof(value.c_str());
    } else if (key == "source-queries") {
      FUSION_ASSIGN_OR_RETURN(response.source_queries,
                              ParseCount(key, value));
    } else if (key == "cache-hits") {
      FUSION_ASSIGN_OR_RETURN(response.cache_hits, ParseCount(key, value));
    } else if (key == "cache-misses") {
      FUSION_ASSIGN_OR_RETURN(response.cache_misses, ParseCount(key, value));
    } else if (key == "items-sent") {
      FUSION_ASSIGN_OR_RETURN(response.items_sent, ParseCount(key, value));
    } else if (key == "items-received") {
      FUSION_ASSIGN_OR_RETURN(response.items_received, ParseCount(key, value));
    } else if (key == "cache-containment") {
      FUSION_ASSIGN_OR_RETURN(response.cache_containment_hits,
                              ParseCount(key, value));
    } else if (key == "calibration-cost") {
      response.calibration_cost = std::atof(value.c_str());
    } else if (key == "complete") {
      response.complete = value != "no";
    } else if (key == "features") {
      response.features = SplitFeatures(value);
    } else if (key == "stats") {
      FUSION_ASSIGN_OR_RETURN(std::string line, UnescapeWireText(value));
      response.stats_lines.push_back(std::move(line));
    } else if (key == "explain") {
      FUSION_ASSIGN_OR_RETURN(std::string line, UnescapeWireText(value));
      response.explain_lines.push_back(std::move(line));
    }
    // Unknown fields are ignored (see ParseClientRequest).
  }
  if (!terminated) return Status::ParseError("client response missing 'end'");
  return response;
}

ClientResponse ClientErrorResponse(const Status& status) {
  ClientResponse response;
  response.ok = false;
  response.error_code = status.code();
  response.error_message = status.message();
  return response;
}

}  // namespace fusion
