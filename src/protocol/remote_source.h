#ifndef FUSION_PROTOCOL_REMOTE_SOURCE_H_
#define FUSION_PROTOCOL_REMOTE_SOURCE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "protocol/message.h"
#include "source/source_wrapper.h"

namespace fusion {

/// Transport for FUSIONP/1: ships one serialized request, returns the
/// serialized response. In-process tests connect it straight to a
/// SourceServer; a networked deployment would put a socket here.
using ProtocolTransport = std::function<std::string(const std::string&)>;

/// The mediator-side endpoint: a SourceWrapper that speaks FUSIONP/1 over a
/// transport. Metadata (name, schema, capabilities) is fetched once via
/// HELLO at construction; every operation round-trips a message and replays
/// the server's charge summaries into the caller's ledger, so cost
/// accounting is identical to in-process wrappers (a property the protocol
/// tests assert).
///
/// Thread-safety: the transport is one bidirectional channel, so round trips
/// are serialized under a mutex — parallel plan workers may call any method
/// concurrently and requests simply queue (matching the one-query-at-a-time
/// source model). Metadata is fixed at Connect time and read without
/// locking.
class RemoteSource : public SourceWrapper {
 public:
  /// Performs the HELLO handshake; fails if the server is unreachable or
  /// speaks a different protocol.
  static Result<std::unique_ptr<RemoteSource>> Connect(
      ProtocolTransport transport);

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  const Capabilities& capabilities() const override { return capabilities_; }

  Result<ItemSet> Select(const Condition& cond,
                         const std::string& merge_attribute,
                         CostLedger* ledger) override;
  Result<ItemSet> SemiJoin(const Condition& cond,
                           const std::string& merge_attribute,
                           const ItemSet& candidates,
                           CostLedger* ledger) override;
  Result<Relation> Load(CostLedger* ledger) override;
  Result<Relation> FetchRecords(const std::string& merge_attribute,
                                const ItemSet& items,
                                CostLedger* ledger) override;

 private:
  explicit RemoteSource(ProtocolTransport transport)
      : transport_(std::move(transport)) {}

  /// Ships a request, parses the response, replays charges into `ledger`,
  /// and maps ERROR responses back into Status. Stamps the caller's ambient
  /// trace context onto the request when the server negotiated `trace`
  /// (mutating the request in place — callers pass throwaway locals).
  Result<SourceResponse> RoundTrip(SourceRequest& request, CostLedger* ledger);

  std::mutex transport_mu_;  // one request/response in flight at a time
  ProtocolTransport transport_;
  std::string name_;
  Schema schema_;
  Capabilities capabilities_;
  /// Whether the HELLO response advertised the `trace` feature; only then
  /// does RoundTrip attach trace lines (old servers never see them).
  bool peer_traces_ = false;
};

}  // namespace fusion

#endif  // FUSION_PROTOCOL_REMOTE_SOURCE_H_
