#ifndef FUSION_PROTOCOL_REMOTE_SOURCE_H_
#define FUSION_PROTOCOL_REMOTE_SOURCE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "protocol/message.h"
#include "protocol/socket.h"
#include "source/source_wrapper.h"

namespace fusion {

/// Transport for FUSIONP/1: ships one serialized request, returns the
/// serialized response. In-process tests connect it straight to a
/// SourceServer; a networked deployment would put a socket here.
using ProtocolTransport = std::function<std::string(const std::string&)>;

/// The mediator-side endpoint: a SourceWrapper that speaks FUSIONP/1 over a
/// transport. Metadata (name, schema, capabilities) is fetched once via
/// HELLO at construction; every operation round-trips a message and replays
/// the server's charge summaries into the caller's ledger, so cost
/// accounting is identical to in-process wrappers (a property the protocol
/// tests assert).
///
/// Thread-safety: the transport is one bidirectional channel, so round trips
/// are serialized under a mutex — parallel plan workers may call any method
/// concurrently and requests simply queue (matching the one-query-at-a-time
/// source model). Metadata is fixed at Connect time and read without
/// locking.
class RemoteSource : public SourceWrapper {
 public:
  /// Performs the HELLO handshake; fails if the server is unreachable or
  /// speaks a different protocol.
  static Result<std::unique_ptr<RemoteSource>> Connect(
      ProtocolTransport transport);

  /// TCP mode with replica failover: `endpoints` ("host:port") are replicas
  /// of the *same* source (every one must HELLO with the same source name).
  /// Operations stick to the connected replica while it is healthy; on a
  /// transport failure the source redials, rotating to the next replica,
  /// with capped exponential backoff per `policy` (BackoffSeconds — the
  /// same schedule shape source-call retries use). FUSIONP/1 requests are
  /// pure reads, so re-issuing one against another replica is always safe;
  /// charges replay from the one successful response only, so a failed
  /// attempt is never double-metered. With every replica exhausted the
  /// operation fails kUnavailable — the transient class the executor's
  /// breakers and degraded mode already handle.
  static Result<std::unique_ptr<RemoteSource>> ConnectTcp(
      std::vector<std::string> endpoints) {
    return ConnectTcp(std::move(endpoints), DefaultFailoverPolicy());
  }
  static Result<std::unique_ptr<RemoteSource>> ConnectTcp(
      std::vector<std::string> endpoints, const RetryPolicy& policy);

  /// The default failover schedule: 6 attempts, 5 ms doubling to a 100 ms
  /// cap — a killed replica costs milliseconds, not a failed query.
  static RetryPolicy DefaultFailoverPolicy();

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  const Capabilities& capabilities() const override { return capabilities_; }

  Result<ItemSet> Select(const Condition& cond,
                         const std::string& merge_attribute,
                         CostLedger* ledger) override;
  Result<ItemSet> SemiJoin(const Condition& cond,
                           const std::string& merge_attribute,
                           const ItemSet& candidates,
                           CostLedger* ledger) override;
  Result<Relation> Load(CostLedger* ledger) override;
  Result<Relation> FetchRecords(const std::string& merge_attribute,
                                const ItemSet& items,
                                CostLedger* ledger) override;

  /// TCP mode observability (both 0 in transport mode): replica rotations
  /// after a transport failure, and successful re-dials after the initial
  /// connect.
  size_t failovers() const;
  size_t reconnects() const;
  /// The replica currently (or last) connected ("" in transport mode).
  std::string active_endpoint() const;

 private:
  explicit RemoteSource(ProtocolTransport transport)
      : transport_(std::move(transport)) {}

  /// Ships a request, parses the response, replays charges into `ledger`,
  /// and maps ERROR responses back into Status. Stamps the caller's ambient
  /// trace context onto the request when the server negotiated `trace`
  /// (mutating the request in place — callers pass throwaway locals).
  Result<SourceResponse> RoundTrip(SourceRequest& request, CostLedger* ledger);

  /// Records the HELLO metadata (name, features, capabilities, schema).
  Status AdoptHello(const SourceResponse& response);

  /// One send/receive over the TCP connection, redialing across replicas
  /// on transport failure. Requires transport_mu_ held.
  Result<std::string> TcpExchangeLocked(const std::string& request_text);
  /// Dials endpoints_[active_] and validates it via HELLO (same source
  /// name as the first connect). Requires transport_mu_ held.
  Status TcpDialActiveLocked();
  /// Rotates active_ to the next replica (counts a failover when there is
  /// more than one). Requires transport_mu_ held.
  void TcpAdvanceReplicaLocked();

  mutable std::mutex transport_mu_;  // one request/response in flight at a time
  ProtocolTransport transport_;
  std::string name_;
  Schema schema_;
  Capabilities capabilities_;
  /// Whether the HELLO response advertised the `trace` feature; only then
  /// does RoundTrip attach trace lines (old servers never see them).
  bool peer_traces_ = false;

  /// TCP failover state (all guarded by transport_mu_).
  bool tcp_mode_ = false;
  std::vector<std::string> endpoints_;
  size_t active_ = 0;  // index into endpoints_: the sticky healthy replica
  MessageSocket socket_;
  RetryPolicy failover_;
  /// The HELLO response of the most recent successful dial (metadata for
  /// ConnectTcp; name re-validation on every re-dial).
  SourceResponse last_hello_;
  bool dialed_once_ = false;
  size_t failovers_ = 0;
  size_t reconnects_ = 0;
};

}  // namespace fusion

#endif  // FUSION_PROTOCOL_REMOTE_SOURCE_H_
