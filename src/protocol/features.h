#ifndef FUSION_PROTOCOL_FEATURES_H_
#define FUSION_PROTOCOL_FEATURES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fusion {

/// The FUSIONQ/1 capability registry. Every optional behaviour a peer may
/// act on — joining a distributed trace, issuing STATS, asking for EXPLAIN
/// annotations, replay-safe SUBMIT request-ids, router-aware sharding — is
/// negotiated on HELLO by exchanging feature tokens. This enum is the one
/// place those tokens live; client, service, and router all negotiate
/// through FeatureSet instead of comparing raw string literals.
enum class Feature {
  /// SUBMIT may carry trace-id/parent-span; server spans join the trace.
  kTrace,
  /// The STATS verb returns the versioned metrics exposition.
  kStats,
  /// SUBMIT explain=yes annotates the response with the executed plan.
  kExplain,
  /// SUBMIT request-id dedup: re-SUBMITs replay the original outcome.
  kIdempotency,
  /// The peer is (or fronts) a sharded fleet: INVALIDATE is accepted and
  /// fanned out, and repeated queries are routed for memo/cache locality.
  kSharding,
};

/// Wire token for `feature` ("trace", "stats", ...).
const char* FeatureName(Feature feature);

/// Parses a wire token; returns false for tokens this build does not know
/// (unknown tokens are ignored at negotiation sites, never an error).
bool ParseFeatureName(const std::string& name, Feature* out);

/// A small value-type bitmask over Feature, the currency of negotiation:
/// HELLO carries FeatureSet::All().Names(), the receiving side rebuilds a
/// set with FromNames, and every "may I send this optional field?" check
/// is a typed Has() instead of a string compare.
class FeatureSet {
 public:
  FeatureSet() = default;

  /// Every feature this build speaks — what HELLO advertises.
  static FeatureSet All();

  /// Rebuilds a set from wire tokens, silently dropping unknown ones so a
  /// newer peer's extra tokens degrade gracefully.
  static FeatureSet FromNames(const std::vector<std::string>& names);

  void Add(Feature feature) { bits_ |= Bit(feature); }
  void Remove(Feature feature) { bits_ &= ~Bit(feature); }
  bool Has(Feature feature) const { return (bits_ & Bit(feature)) != 0; }
  bool empty() const { return bits_ == 0; }

  /// Wire tokens for every member, in registry order (deterministic).
  std::vector<std::string> Names() const;

  friend bool operator==(const FeatureSet& a, const FeatureSet& b) {
    return a.bits_ == b.bits_;
  }

 private:
  static uint32_t Bit(Feature feature) {
    return 1u << static_cast<uint32_t>(feature);
  }

  uint32_t bits_ = 0;
};

}  // namespace fusion

#endif  // FUSION_PROTOCOL_FEATURES_H_
