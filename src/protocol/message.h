#ifndef FUSION_PROTOCOL_MESSAGE_H_
#define FUSION_PROTOCOL_MESSAGE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace fusion {

/// The wire protocol between the mediator and source wrappers ("FUSIONP/1"),
/// realizing the wrapper boundary the paper assumes (Section 2.1, [19]): the
/// mediator ships small text messages; wrappers answer with item lists or
/// CSV relations plus the cost they charged. Line-oriented, human-readable,
/// and fully round-trip tested — conditions travel in their textual form and
/// are re-parsed server-side.
///
/// Request grammar (one field per line, terminated by `end`):
///   FUSIONP/1 <SELECT|SEMIJOIN|LOAD|FETCH|HELLO>
///   merge <attribute>            (SELECT / SEMIJOIN / FETCH)
///   cond <condition text>        (SELECT / SEMIJOIN)
///   bind <value>                 (0+ times; SEMIJOIN / FETCH)
///   trace <trace-id> <parent-span>  (optional; distributed trace context —
///                                 sent only to servers whose HELLO
///                                 advertised the `trace` feature)
///   end
///
/// Both parsers ignore unknown fields (matching FUSIONQ/1), so optional
/// fields added later degrade gracefully against older peers; capabilities
/// are negotiated via the HELLO response's `features` line.
struct SourceRequest {
  enum class Kind { kHello, kSelect, kSemiJoin, kLoad, kFetch };

  Kind kind = Kind::kHello;
  std::string merge_attribute;
  std::string condition_text;   // parseable by ParseCondition
  std::vector<Value> bindings;  // semijoin candidates / fetch items
  /// Distributed trace context the server should adopt (0 = none): the
  /// mediator's ambient trace at the time of the call, so daemon and source
  /// spans stitch into one trace.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

/// Response grammar:
///   FUSIONP/1 <OK|ERROR>
///   error <CodeName> <message>   (ERROR only; StatusCodeName text, one
///                                 shared taxonomy with local calls and the
///                                 FUSIONQ/1 client dialect)
///   item <value>                 (0+; SELECT / SEMIJOIN answers)
///   relation-line <csv line>     (0+; LOAD / FETCH relations, HELLO schema)
///   name <source name>           (HELLO)
///   semijoin <native|bindings|none>  (HELLO)
///   load <yes|no>                (HELLO)
///   features <csv>               (HELLO; e.g. trace)
///   charge <kind> <sent> <recv> <scanned> <cost>   (0+; metering transfer)
///   end
struct ChargeSummary {
  std::string kind;  // ChargeKindName text
  size_t items_sent = 0;
  size_t items_received = 0;
  size_t tuples_scanned = 0;
  double cost = 0.0;
};

struct SourceResponse {
  bool ok = true;
  StatusCode error_code = StatusCode::kOk;
  std::string error_message;

  std::vector<Value> items;                 // select / semijoin
  std::vector<std::string> relation_lines;  // load / fetch CSV, hello schema
  std::string name;                         // hello
  std::string semijoin_support;             // hello: native|bindings|none
  bool supports_load = true;                // hello
  std::vector<std::string> features;        // hello: e.g. {"trace"}
  std::vector<ChargeSummary> charges;
};

/// Serializes a Value for a protocol line: `null`, `i:<n>`, `d:<repr>`, or
/// `s:<escaped>` with backslash escapes for newline/backslash.
std::string SerializeValue(const Value& value);
Result<Value> ParseSerializedValue(const std::string& text);

/// Shared line-format helpers, used identically by both dialects (FUSIONP/1
/// to wrappers, FUSIONQ/1 to clients) so their wire idioms cannot drift.
/// Backslash escapes for newline/backslash, one "key rest-of-line" field per
/// line, and error codes travelling by StatusCodeName.
std::string EscapeWireText(const std::string& text);
Result<std::string> UnescapeWireText(const std::string& text);
/// Splits "key rest-of-line" on the first space ({line, ""} when none).
std::pair<std::string, std::string> SplitWireKeyValue(const std::string& line);
/// Decodes an error-line status code: a StatusCodeName, or (for
/// compatibility with pre-taxonomy peers) a bare enum integer.
Result<StatusCode> ParseWireStatusCode(const std::string& text);

/// Longest line either FUSIONP/1 parser accepts (256 KiB — relation CSV
/// lines are wide, but not unbounded): longer lines are rejected with a
/// clean kParseError before any per-field work, mirroring FUSIONQ/1's
/// kMaxClientProtocolLineBytes so a malicious or corrupted peer cannot
/// drive an allocation storm through either dialect.
inline constexpr size_t kMaxSourceProtocolLineBytes = 256 * 1024;

std::string SerializeRequest(const SourceRequest& request);
Result<SourceRequest> ParseRequest(const std::string& text);

std::string SerializeResponse(const SourceResponse& response);
Result<SourceResponse> ParseResponse(const std::string& text);

}  // namespace fusion

#endif  // FUSION_PROTOCOL_MESSAGE_H_
