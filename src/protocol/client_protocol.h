#ifndef FUSION_PROTOCOL_CLIENT_PROTOCOL_H_
#define FUSION_PROTOCOL_CLIENT_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "protocol/features.h"

namespace fusion {

/// The client-facing dialect of the line protocol ("FUSIONQ/1"): what an
/// investigation client speaks to a fusionqd mediator service, the sibling
/// of FUSIONP/1 (protocol/message.h) which the mediator speaks to source
/// wrappers. Same idioms throughout — line-oriented, human-readable,
/// `end`-terminated, conditions and SQL travelling as escaped text, error
/// codes travelling as StatusCodeName from the one shared taxonomy — so a
/// deployment debugging either side of the mediator reads the same wire
/// format.
///
/// Request grammar (one field per line, terminated by `end`):
///   FUSIONQ/1 <HELLO|SUBMIT|STATUS|CANCEL|STATS|INVALIDATE>
///   client <client id>           (optional; the fair-scheduling key and the
///                                 per-tenant SLO accounting key)
///   sql <escaped query text>     (SUBMIT)
///   ticket <id>                  (STATUS / CANCEL)
///   source <escaped name>        (INVALIDATE: the source whose cached
///                                 entries must be dropped)
///   version <u64>                (INVALIDATE: monotonically increasing
///                                 stamp; replays at or below the highest
///                                 applied version are idempotent no-ops.
///                                 0 = unconditional, always applied)
///   wait <yes|no>                (SUBMIT: block for the answer — the
///                                 default — or return a ticket immediately)
///   explain <yes|no>             (SUBMIT wait=yes: annotate the response
///                                 with the executed plan)
///   features <csv>               (HELLO: capabilities the client speaks,
///                                 e.g. trace,stats,explain)
///   trace-id <u64>               (SUBMIT: distributed trace to join)
///   parent-span <u64>            (SUBMIT: the client-side parent span)
///   request-id <u64>             (SUBMIT: client-minted idempotency key —
///                                 a re-SUBMIT after a dropped connection
///                                 replays the original outcome instead of
///                                 executing twice)
///   end
///
/// Forward compatibility: both parsers *ignore* unknown fields, so a newer
/// peer can add fields (the way trace-id/parent-span were added) and an
/// older peer degrades gracefully instead of erroring. Capabilities a peer
/// acts on are negotiated explicitly via HELLO `features`.
struct ClientRequest {
  enum class Kind { kHello, kSubmit, kStatus, kCancel, kStats, kInvalidate };

  Kind kind = Kind::kHello;
  std::string client_id;
  std::string sql;
  uint64_t ticket = 0;
  bool wait = true;
  /// SUBMIT wait=yes: ask the server to render the executed plan (per-op
  /// timings, cache provenance, metered cost) into the response.
  bool explain = false;
  /// HELLO: feature tokens the sender understands (comma-separated on the
  /// wire). See kClientProtocolFeatures for what this build speaks.
  std::vector<std::string> features;
  /// Distributed trace context to adopt for this request (0 = none). The
  /// daemon's service/session/exec/source-RPC spans join this trace.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  /// Client-minted idempotency key for SUBMIT (0 = none). A service keyed
  /// dedup table maps (client, request-id) to the original ticket, so a
  /// client that reconnects and re-SUBMITs after a transport failure gets
  /// the first execution's answer — never a second execution, never double
  /// metering. Sent only to servers that advertised `idempotency`.
  uint64_t request_id = 0;
  /// INVALIDATE: the source whose cached call results / witnesses must be
  /// dropped (the source changed upstream).
  std::string source;
  /// INVALIDATE: version stamp making fan-out replays idempotent. The
  /// service records the highest version applied per source; a replay at
  /// or below it answers `state stale` without touching the cache again.
  /// Version 0 is unconditional (always applied, never recorded).
  uint64_t version = 0;
};

/// Response grammar:
///   FUSIONQ/1 <OK|ERROR>
///   error <CodeName> <message>   (ERROR only; same codes as local Status)
///   server <name>                (HELLO)
///   ticket <id>                  (SUBMIT / STATUS / CANCEL)
///   state <queued|running|done|failed|cancelled>   (SUBMIT wait=no, STATUS)
///                                (INVALIDATE reuses it: applied|stale)
///   item <value>                 (0+; the fused answer, in set order)
///   cost <metered total>         (RESULT)
///   source-queries <n>           (RESULT)
///   cache-hits <n>               (RESULT)
///   cache-misses <n>             (RESULT)
///   items-sent <n>               (RESULT; items shipped mediator -> sources)
///   items-received <n>           (RESULT; items shipped sources -> mediator)
///   cache-containment <n>        (RESULT; subset of cache-misses answered
///                                 by containment derivation)
///   calibration-cost <c>         (RESULT, when probes were charged)
///   complete <yes|no>            (RESULT; no = sound but degraded answer)
///   features <csv>               (HELLO; capabilities the server speaks)
///   stats <escaped line>         (0+; STATS — one exposition line each,
///                                 reassembled with newlines client-side)
///   explain <escaped line>       (0+; SUBMIT explain=yes — one annotated
///                                 plan line each)
///   end
///
/// Hardening: both parsers reject any line longer than
/// kMaxClientProtocolLineBytes with a clean kParseError — a peer streaming
/// an absurd sql/client line gets an ERROR response, never an allocation
/// storm or a crash.
struct ClientResponse {
  bool ok = true;
  StatusCode error_code = StatusCode::kOk;
  std::string error_message;

  std::string server;      // hello
  uint64_t ticket = 0;
  std::string state;       // queued|running|done|failed|cancelled (or empty)
  std::vector<Value> items;
  double cost = 0.0;
  size_t source_queries = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Merge-attribute items shipped to / from sources (bindings out, answer
  /// items back) — the bytes-moved proxy the cost model charges per item.
  size_t items_sent = 0;
  size_t items_received = 0;
  /// Subset of cache_misses whose answer was still derived locally from a
  /// containing cached entry (no source call).
  size_t cache_containment_hits = 0;
  double calibration_cost = 0.0;
  bool complete = true;
  /// HELLO: feature tokens the server understands.
  std::vector<std::string> features;
  /// STATS: the versioned exposition (obs/exposition.h), line by line.
  std::vector<std::string> stats_lines;
  /// SUBMIT explain=yes: the executed plan annotated with per-op timings,
  /// cache provenance, and metered cost, line by line.
  std::vector<std::string> explain_lines;
};

/// Longest line either FUSIONQ/1 parser accepts (64 KiB): longer lines are
/// rejected with kParseError before any per-field work happens.
inline constexpr size_t kMaxClientProtocolLineBytes = 64 * 1024;

/// The feature tokens this build of the protocol speaks, advertised on
/// HELLO in both directions: FeatureSet::All().Names() from the registry
/// in protocol/features.h. A peer only *sends* optional fields (trace-id,
/// explain) or optional verbs (STATS, INVALIDATE) after the other side
/// advertised the matching token — unknown-field tolerance is the safety
/// net, negotiation is the contract.
std::vector<std::string> ClientProtocolFeatures();

std::string SerializeClientRequest(const ClientRequest& request);
Result<ClientRequest> ParseClientRequest(const std::string& text);

std::string SerializeClientResponse(const ClientResponse& response);
Result<ClientResponse> ParseClientResponse(const std::string& text);

/// Builds the ERROR response for `status` (which must not be OK).
ClientResponse ClientErrorResponse(const Status& status);

}  // namespace fusion

#endif  // FUSION_PROTOCOL_CLIENT_PROTOCOL_H_
