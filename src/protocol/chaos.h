#ifndef FUSION_PROTOCOL_CHAOS_H_
#define FUSION_PROTOCOL_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "protocol/socket.h"

namespace fusion {

/// Fault-injection policy for the wire layer: every serving path (fusionqd's
/// FUSIONQ/1 connections, TcpSourceServer's FUSIONP/1 connections) can wrap
/// its sockets in a ChaosSocket driven by one of these, so connection
/// resets, torn writes, byte-level delays, accept-time refusals, and
/// mid-stream hangs are injected continuously — in tests (the `chaos` ctest
/// label), in the macro bench (`bench_macro --chaos-profile`), and in live
/// daemons (`fusionqd --chaos-drop-rate=...`).
///
/// All decisions come from one seeded splitmix64 stream (see ChaosDecider),
/// so a failing run replays under the same seed (FUSION_SEED / --chaos-seed)
/// with the same injected-fault schedule.
struct ChaosPolicy {
  /// Probability a Send or Receive closes the connection instead (the peer
  /// observes a reset: kUnavailable before a frame, kParseError mid-frame).
  double drop_rate = 0.0;
  /// Probability a Send ships only a prefix of the frame and then closes —
  /// the peer sees a torn (half) message.
  double torn_write_rate = 0.0;
  /// Probability an operation is delayed by delay_ms before proceeding
  /// (byte-level latency jitter; the operation still completes).
  double delay_rate = 0.0;
  double delay_ms = 2.0;
  /// Probability an accepted connection is refused (closed immediately,
  /// before any byte is served). Applied by the serve loops at accept time.
  double accept_refuse_rate = 0.0;
  /// Probability an operation hangs for hang_ms before proceeding — long
  /// enough to trip stall deadlines, bounded so tests stay fast.
  double hang_rate = 0.0;
  double hang_ms = 50.0;
  /// Root seed of the decision stream. Callers building a policy from flags
  /// should resolve it through GlobalSeed() so FUSION_SEED replays the run.
  uint64_t seed = 1;

  /// True when any injection can ever fire; a disabled policy makes
  /// ChaosSocket a zero-cost passthrough.
  bool enabled() const {
    return drop_rate > 0.0 || torn_write_rate > 0.0 || delay_rate > 0.0 ||
           accept_refuse_rate > 0.0 || hang_rate > 0.0;
  }
};

/// The shared, thread-safe decision stream behind a ChaosPolicy: one atomic
/// event counter hashed through splitmix64 (MixSeed) per decision. Every
/// socket wrapped over the same decider draws from the same replayable
/// stream, so a whole daemon's fault schedule is a pure function of the
/// seed and the decision order.
class ChaosDecider {
 public:
  explicit ChaosDecider(const ChaosPolicy& policy) : policy_(policy) {}

  const ChaosPolicy& policy() const { return policy_; }

  /// Next uniform draw in [0, 1).
  double NextUniform();
  /// Bernoulli trial against `probability`, consuming one draw.
  bool Fire(double probability) {
    return probability > 0.0 && NextUniform() < probability;
  }
  /// Decisions drawn so far (diagnostics; the replay cursor).
  uint64_t decisions() const {
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  const ChaosPolicy policy_;
  std::atomic<uint64_t> counter_{0};
};

/// Total faults injected by all ChaosSockets of this process, by kind —
/// surfaced as chaos_* counters in the metrics registry too, so STATS and
/// bench_macro can report how much abuse a run actually absorbed.
struct ChaosCounts {
  uint64_t drops = 0;
  uint64_t torn_writes = 0;
  uint64_t delays = 0;
  uint64_t hangs = 0;
  uint64_t refusals = 0;
};

/// Decorator over MessageSocket with the same Send/Receive/Close surface.
/// Without a decider (or with a disabled policy) every call passes straight
/// through; with one, Send and Receive consult the shared decision stream
/// and may reset the connection, tear a frame, or stall.
///
/// Injected failures surface exactly like real network failures
/// (kUnavailable locally, a reset/torn frame remotely), so recovery code
/// paths cannot tell chaos from a genuine outage — which is the point.
class ChaosSocket {
 public:
  ChaosSocket() = default;
  /// Passthrough wrap (no chaos) — implicit, so serve loops written against
  /// ChaosSocket accept a plain MessageSocket unchanged.
  ChaosSocket(MessageSocket socket)  // NOLINT(google-explicit-constructor)
      : socket_(std::move(socket)) {}
  ChaosSocket(MessageSocket socket, std::shared_ptr<ChaosDecider> chaos)
      : socket_(std::move(socket)), chaos_(std::move(chaos)) {}

  ChaosSocket(ChaosSocket&&) = default;
  ChaosSocket& operator=(ChaosSocket&&) = default;

  bool valid() const { return socket_.valid(); }
  int fd() const { return socket_.fd(); }
  MessageSocket& inner() { return socket_; }

  /// As MessageSocket::Send, possibly injecting a delay, a torn write (a
  /// prefix is shipped, then the connection closes, Status kUnavailable), or
  /// a reset (nothing shipped, kUnavailable).
  Status Send(const std::string& message);

  /// As MessageSocket::Receive, possibly injecting a delay/hang before the
  /// read or a reset instead of it (kUnavailable).
  Result<std::string> Receive();

  void Close() { socket_.Close(); }

 private:
  MessageSocket socket_;
  std::shared_ptr<ChaosDecider> chaos_;
};

/// Process-wide injected-fault totals (all deciders' sockets).
ChaosCounts GlobalChaosCounts();

/// Accept-time refusal decision for serve loops: true when the freshly
/// accepted connection should be closed immediately, before serving a byte
/// (counted as a chaos refusal). Null/disabled deciders never refuse.
bool ChaosRefuseAccept(ChaosDecider* chaos);

}  // namespace fusion

#endif  // FUSION_PROTOCOL_CHAOS_H_
