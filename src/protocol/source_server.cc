#include "protocol/source_server.h"

#include <sys/socket.h>

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/condition.h"
#include "relational/relation.h"

namespace fusion {
namespace {

SourceResponse ErrorResponse(const Status& status) {
  SourceResponse response;
  response.ok = false;
  response.error_code = status.code();
  response.error_message = status.message();
  return response;
}

void AttachCharges(const CostLedger& ledger, SourceResponse& response) {
  for (const Charge& c : ledger.charges()) {
    ChargeSummary summary;
    summary.kind = ChargeKindName(c.kind);
    summary.items_sent = c.items_sent;
    summary.items_received = c.items_received;
    summary.tuples_scanned = c.tuples_scanned;
    summary.cost = c.cost;
    response.charges.push_back(std::move(summary));
  }
}

void AttachRelation(const Relation& relation, SourceResponse& response) {
  for (const std::string& line : StrSplit(RelationToCsv(relation), '\n')) {
    if (!line.empty()) response.relation_lines.push_back(line);
  }
}

const char* SemijoinWireName(SemijoinSupport s) {
  switch (s) {
    case SemijoinSupport::kNative:
      return "native";
    case SemijoinSupport::kPassedBindingsOnly:
      return "bindings";
    case SemijoinSupport::kUnsupported:
      return "none";
  }
  return "none";
}

}  // namespace

SourceResponse SourceServer::HandleParsed(const SourceRequest& request) {
  SourceResponse response;
  switch (request.kind) {
    case SourceRequest::Kind::kHello: {
      response.name = impl_->name();
      response.semijoin_support =
          SemijoinWireName(impl_->capabilities().semijoin);
      response.supports_load = impl_->capabilities().supports_load;
      response.features = {"trace"};
      // Ship the schema as a CSV header line.
      Relation empty(impl_->schema());
      AttachRelation(empty, response);
      return response;
    }
    case SourceRequest::Kind::kSelect: {
      auto cond = ParseCondition(request.condition_text);
      if (!cond.ok()) return ErrorResponse(cond.status());
      CostLedger ledger;
      auto items =
          impl_->Select(*cond, request.merge_attribute, &ledger);
      if (!items.ok()) return ErrorResponse(items.status());
      response.items.assign(items->begin(), items->end());
      AttachCharges(ledger, response);
      return response;
    }
    case SourceRequest::Kind::kSemiJoin: {
      auto cond = ParseCondition(request.condition_text);
      if (!cond.ok()) return ErrorResponse(cond.status());
      CostLedger ledger;
      auto items = impl_->SemiJoin(*cond, request.merge_attribute,
                                   ItemSet(request.bindings), &ledger);
      if (!items.ok()) return ErrorResponse(items.status());
      response.items.assign(items->begin(), items->end());
      AttachCharges(ledger, response);
      return response;
    }
    case SourceRequest::Kind::kLoad: {
      CostLedger ledger;
      auto relation = impl_->Load(&ledger);
      if (!relation.ok()) return ErrorResponse(relation.status());
      AttachRelation(*relation, response);
      AttachCharges(ledger, response);
      return response;
    }
    case SourceRequest::Kind::kFetch: {
      CostLedger ledger;
      auto relation = impl_->FetchRecords(
          request.merge_attribute, ItemSet(request.bindings), &ledger);
      if (!relation.ok()) return ErrorResponse(relation.status());
      AttachRelation(*relation, response);
      AttachCharges(ledger, response);
      return response;
    }
  }
  return ErrorResponse(Status::Internal("unhandled request kind"));
}

std::string SourceServer::Handle(const std::string& request_text) {
  const auto request = ParseRequest(request_text);
  // Adopt the mediator's trace context (when the request carried one)
  // *before* opening the serve span, so this server's spans — in-process or
  // in a separate source daemon — stitch into the client's trace.
  TraceContextScope trace_scope(
      request.ok() ? TraceContext{request->trace_id, request->parent_span}
                   : TraceContext{});
  ScopedSpan span(SpanCategory::kRpc, "rpc.serve");
  static Counter& requests =
      MetricsRegistry::Global().counter(metrics::kRpcServerRequests);
  requests.Increment();
  if (span.active()) {
    span.AddAttr("source", impl_->name());
    span.AddAttr("bytes_received", request_text.size());
  }
  std::string response_text =
      request.ok() ? SerializeResponse(HandleParsed(*request))
                   : SerializeResponse(ErrorResponse(request.status()));
  span.AddAttr("bytes_sent", response_text.size());
  return response_text;
}

TcpSourceServer::TcpSourceServer(std::unique_ptr<SourceWrapper> impl,
                                 const Options& options)
    : server_(std::move(impl)), options_(options) {
  if (options_.chaos.enabled()) {
    chaos_ = std::make_shared<ChaosDecider>(options_.chaos);
  }
}

Status TcpSourceServer::Start() {
  FUSION_ASSIGN_OR_RETURN(listener_,
                          TcpListener::Bind(options_.host, options_.port));
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpSourceServer::AcceptLoop() {
  while (true) {
    Result<MessageSocket> accepted = listener_.Accept();
    if (!accepted.ok()) return;  // listener closed: shutdown
    MessageSocket socket = std::move(accepted).value();
    if (ChaosRefuseAccept(chaos_.get())) {
      socket.Close();
      continue;
    }
    if (options_.stall_deadline_seconds > 0.0) {
      (void)socket.SetStallDeadline(options_.stall_deadline_seconds);
    }
    socket.SetReceiveLimit(64 * 1024 * 1024);
    ChaosSocket connection(std::move(socket), chaos_);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      connection.Close();
      return;
    }
    const int fd = connection.fd();
    live_fds_.insert(fd);
    serving_.emplace_back(
        [this, fd](ChaosSocket s) {
          ServeConnection(s);
          // Deregister *before* closing, so Stop() can never shutdown(2)
          // a recycled fd number.
          {
            std::lock_guard<std::mutex> inner_lock(mu_);
            live_fds_.erase(fd);
          }
          s.Close();
        },
        std::move(connection));
  }
}

void TcpSourceServer::ServeConnection(ChaosSocket& socket) {
  while (true) {
    Result<std::string> request = socket.Receive();
    // Clean close, reset, stall, oversized garbage — all end the
    // connection the same way; the peer's recovery layer decides whether
    // to redial.
    if (!request.ok()) return;
    const std::string response = server_.Handle(request.value());
    if (!socket.Send(response).ok()) return;
  }
}

void TcpSourceServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  // Closing the listener unblocks (and ends) the accept loop.
  listener_.Close();
  if (acceptor_.joinable()) acceptor_.join();
  // Reset every live connection so its serve loop's recv returns, then
  // join. No new threads can appear: the acceptor is gone.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& thread : serving_) {
    if (thread.joinable()) thread.join();
  }
  serving_.clear();
}

}  // namespace fusion
