#include "protocol/source_server.h"

#include "common/str_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/condition.h"
#include "relational/relation.h"

namespace fusion {
namespace {

SourceResponse ErrorResponse(const Status& status) {
  SourceResponse response;
  response.ok = false;
  response.error_code = status.code();
  response.error_message = status.message();
  return response;
}

void AttachCharges(const CostLedger& ledger, SourceResponse& response) {
  for (const Charge& c : ledger.charges()) {
    ChargeSummary summary;
    summary.kind = ChargeKindName(c.kind);
    summary.items_sent = c.items_sent;
    summary.items_received = c.items_received;
    summary.tuples_scanned = c.tuples_scanned;
    summary.cost = c.cost;
    response.charges.push_back(std::move(summary));
  }
}

void AttachRelation(const Relation& relation, SourceResponse& response) {
  for (const std::string& line : StrSplit(RelationToCsv(relation), '\n')) {
    if (!line.empty()) response.relation_lines.push_back(line);
  }
}

const char* SemijoinWireName(SemijoinSupport s) {
  switch (s) {
    case SemijoinSupport::kNative:
      return "native";
    case SemijoinSupport::kPassedBindingsOnly:
      return "bindings";
    case SemijoinSupport::kUnsupported:
      return "none";
  }
  return "none";
}

}  // namespace

SourceResponse SourceServer::HandleParsed(const SourceRequest& request) {
  SourceResponse response;
  switch (request.kind) {
    case SourceRequest::Kind::kHello: {
      response.name = impl_->name();
      response.semijoin_support =
          SemijoinWireName(impl_->capabilities().semijoin);
      response.supports_load = impl_->capabilities().supports_load;
      response.features = {"trace"};
      // Ship the schema as a CSV header line.
      Relation empty(impl_->schema());
      AttachRelation(empty, response);
      return response;
    }
    case SourceRequest::Kind::kSelect: {
      auto cond = ParseCondition(request.condition_text);
      if (!cond.ok()) return ErrorResponse(cond.status());
      CostLedger ledger;
      auto items =
          impl_->Select(*cond, request.merge_attribute, &ledger);
      if (!items.ok()) return ErrorResponse(items.status());
      response.items.assign(items->begin(), items->end());
      AttachCharges(ledger, response);
      return response;
    }
    case SourceRequest::Kind::kSemiJoin: {
      auto cond = ParseCondition(request.condition_text);
      if (!cond.ok()) return ErrorResponse(cond.status());
      CostLedger ledger;
      auto items = impl_->SemiJoin(*cond, request.merge_attribute,
                                   ItemSet(request.bindings), &ledger);
      if (!items.ok()) return ErrorResponse(items.status());
      response.items.assign(items->begin(), items->end());
      AttachCharges(ledger, response);
      return response;
    }
    case SourceRequest::Kind::kLoad: {
      CostLedger ledger;
      auto relation = impl_->Load(&ledger);
      if (!relation.ok()) return ErrorResponse(relation.status());
      AttachRelation(*relation, response);
      AttachCharges(ledger, response);
      return response;
    }
    case SourceRequest::Kind::kFetch: {
      CostLedger ledger;
      auto relation = impl_->FetchRecords(
          request.merge_attribute, ItemSet(request.bindings), &ledger);
      if (!relation.ok()) return ErrorResponse(relation.status());
      AttachRelation(*relation, response);
      AttachCharges(ledger, response);
      return response;
    }
  }
  return ErrorResponse(Status::Internal("unhandled request kind"));
}

std::string SourceServer::Handle(const std::string& request_text) {
  const auto request = ParseRequest(request_text);
  // Adopt the mediator's trace context (when the request carried one)
  // *before* opening the serve span, so this server's spans — in-process or
  // in a separate source daemon — stitch into the client's trace.
  TraceContextScope trace_scope(
      request.ok() ? TraceContext{request->trace_id, request->parent_span}
                   : TraceContext{});
  ScopedSpan span(SpanCategory::kRpc, "rpc.serve");
  static Counter& requests =
      MetricsRegistry::Global().counter(metrics::kRpcServerRequests);
  requests.Increment();
  if (span.active()) {
    span.AddAttr("source", impl_->name());
    span.AddAttr("bytes_received", request_text.size());
  }
  std::string response_text =
      request.ok() ? SerializeResponse(HandleParsed(*request))
                   : SerializeResponse(ErrorResponse(request.status()));
  span.AddAttr("bytes_sent", response_text.size());
  return response_text;
}

}  // namespace fusion
