#ifndef FUSION_PROTOCOL_SOCKET_H_
#define FUSION_PROTOCOL_SOCKET_H_

#include <string>

#include "common/status.h"

namespace fusion {

/// Minimal blocking TCP transport for the line protocols. Both dialects
/// frame every message with a terminating `end` line, so the socket layer
/// needs no length prefixes: Send ships the serialized text verbatim and
/// Receive reads until it has one whole `end`-terminated message, buffering
/// any bytes that follow for the next call.
///
/// POSIX sockets only — fusionqd and `fusionq --connect` are the intended
/// users; in-process tests keep using plain function transports.
class MessageSocket {
 public:
  MessageSocket() = default;
  /// Takes ownership of a connected socket fd.
  explicit MessageSocket(int fd) : fd_(fd) {}
  ~MessageSocket() { Close(); }

  MessageSocket(MessageSocket&& other) noexcept;
  MessageSocket& operator=(MessageSocket&& other) noexcept;
  MessageSocket(const MessageSocket&) = delete;
  MessageSocket& operator=(const MessageSocket&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Writes the whole message (which must already carry its `end` line).
  Status Send(const std::string& message);

  /// Reads one `end`-terminated message (terminator included). A clean
  /// peer close before any bytes of a message yields kUnavailable
  /// ("connection closed").
  Result<std::string> Receive();

  void Close();

  /// The connected fd, for out-of-band shutdown paths (a daemon calling
  /// shutdown(2) to wake a Receive() blocked on another thread).
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last returned message
};

/// Connects to "host:port" (e.g. "127.0.0.1:4631"). Numeric IPv4 hosts and
/// "localhost" only — the serving layer is a daemon on one machine, not a
/// name-resolution exercise.
Result<MessageSocket> DialTcp(const std::string& endpoint);

/// Listening endpoint for fusionqd. Bind with port 0 to let the kernel pick
/// an ephemeral port (read it back via port()).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static Result<TcpListener> Bind(const std::string& host, int port);

  bool valid() const { return fd_ >= 0; }
  int port() const { return port_; }

  /// Blocks for the next connection. Returns kUnavailable once the
  /// listener has been Close()d (the daemon's shutdown path: closing the
  /// fd from a signal handler unblocks the accept loop).
  Result<MessageSocket> Accept();

  void Close();

  /// The listening fd, for shutdown paths that must close from a signal
  /// handler (close(2) is async-signal-safe).
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace fusion

#endif  // FUSION_PROTOCOL_SOCKET_H_
