#ifndef FUSION_PROTOCOL_SOCKET_H_
#define FUSION_PROTOCOL_SOCKET_H_

#include <atomic>
#include <string>

#include "common/status.h"

namespace fusion {

/// Minimal blocking TCP transport for the line protocols. Both dialects
/// frame every message with a terminating `end` line, so the socket layer
/// needs no length prefixes: Send ships the serialized text verbatim and
/// Receive reads until it has one whole `end`-terminated message, buffering
/// any bytes that follow for the next call.
///
/// POSIX sockets only — fusionqd and `fusionq --connect` are the intended
/// users; in-process tests keep using plain function transports.
class MessageSocket {
 public:
  MessageSocket() = default;
  /// Takes ownership of a connected socket fd.
  explicit MessageSocket(int fd) : fd_(fd) {}
  ~MessageSocket() { Close(); }

  MessageSocket(MessageSocket&& other) noexcept;
  MessageSocket& operator=(MessageSocket&& other) noexcept;
  MessageSocket(const MessageSocket&) = delete;
  MessageSocket& operator=(const MessageSocket&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Writes the whole message (which must already carry its `end` line).
  /// SIGPIPE-safe: sends use MSG_NOSIGNAL, so a peer that hung up yields a
  /// clean kInternal(EPIPE) status instead of killing the process.
  Status Send(const std::string& message);

  /// Reads one `end`-terminated message (terminator included). A clean
  /// peer close before any bytes of a message yields kUnavailable
  /// ("connection closed"); mid-message, kParseError. With a stall deadline
  /// set, a peer that goes silent *mid-frame* for longer than the deadline
  /// yields kDeadlineExceeded — an idle peer between frames waits forever.
  Result<std::string> Receive();

  /// Arms the stalled-peer guard: if a frame has started arriving and the
  /// peer then sends nothing for `seconds`, Receive fails with
  /// kDeadlineExceeded instead of pinning the calling thread forever. An
  /// *idle* connection (no frame in progress) is never timed out — a quiet
  /// client holding a connection open is normal. 0 disables (default).
  Status SetStallDeadline(double seconds);

  /// Bounds the bytes buffered while assembling one message: a peer
  /// streaming more than `bytes` without an `end` terminator gets
  /// kParseError ("oversized message") instead of growing the buffer
  /// without limit. 0 = unbounded (default).
  void SetReceiveLimit(size_t bytes) { receive_limit_ = bytes; }

  void Close();

  /// The connected fd, for out-of-band shutdown paths (a daemon calling
  /// shutdown(2) to wake a Receive() blocked on another thread).
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last returned message
  double stall_deadline_seconds_ = 0.0;
  size_t receive_limit_ = 0;
};

/// Connects to "host:port" (e.g. "127.0.0.1:4631"). Numeric IPv4 hosts and
/// "localhost" only — the serving layer is a daemon on one machine, not a
/// name-resolution exercise.
Result<MessageSocket> DialTcp(const std::string& endpoint);

/// Listening endpoint for fusionqd. Bind with port 0 to let the kernel pick
/// an ephemeral port (read it back via port()).
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { Close(); }

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static Result<TcpListener> Bind(const std::string& host, int port);

  bool valid() const { return fd() >= 0; }
  int port() const { return port_; }

  /// Blocks for the next connection. Returns kUnavailable once the
  /// listener has been Close()d (the daemon's shutdown path: closing the
  /// fd from a signal handler unblocks the accept loop).
  Result<MessageSocket> Accept();

  void Close();

  /// The listening fd, for shutdown paths that must close from a signal
  /// handler (close(2) is async-signal-safe).
  int fd() const { return fd_.load(std::memory_order_acquire); }

 private:
  /// Atomic because Close() runs from the stopping thread (or a signal
  /// handler) while the acceptor thread is blocked in Accept() reading it.
  std::atomic<int> fd_{-1};
  int port_ = 0;
};

}  // namespace fusion

#endif  // FUSION_PROTOCOL_SOCKET_H_
