#ifndef FUSION_OBS_TRACE_EXPORT_H_
#define FUSION_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace fusion {

/// Serializes spans as Chrome trace-event JSON ("X" complete events inside
/// a {"traceEvents": [...]} object), loadable in chrome://tracing and
/// Perfetto. Span attributes become the event's "args"; the category name
/// becomes "cat"; thread ids map to "tid" so concurrent spans render on
/// separate tracks.
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);

/// ChromeTraceJson written to `path`.
Status WriteChromeTrace(const std::vector<SpanRecord>& spans,
                        const std::string& path);

/// Human-readable rollup: per category, span count and total self time;
/// within each category the heaviest span names first. The terminal-side
/// companion to the Chrome trace (a poor man's flame graph).
std::string FlameSummary(const std::vector<SpanRecord>& spans);

}  // namespace fusion

#endif  // FUSION_OBS_TRACE_EXPORT_H_
