#include "obs/metrics.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/str_util.h"

namespace fusion {
namespace {

/// Relaxed atomic double accumulation (atomic<double>::fetch_add is C++20
/// but not universally lowered; the CAS loop is portable and the sum is a
/// cold statistic).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation in [1, count]; walk cumulative bucket
  // counts until it is covered, then interpolate linearly inside the
  // bucket's [lower, upper] value range.
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    const double lower = i == 0 ? 0.0 : Histogram::BucketUpperBound(i - 1);
    const double upper = Histogram::BucketUpperBound(i);
    if (!std::isfinite(upper)) return lower;  // unbounded last bucket
    const double fraction =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
    return lower + (upper - lower) * (fraction < 0.0 ? 0.0 : fraction);
  }
  // All mass below the rank (only possible via rounding at q == 1).
  for (size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i] != 0) {
      const double upper = Histogram::BucketUpperBound(i);
      return std::isfinite(upper)
                 ? upper
                 : (i == 0 ? 0.0 : Histogram::BucketUpperBound(i - 1));
    }
  }
  return 0.0;
}

size_t Histogram::BucketIndex(double v) {
  if (!(v > 1.0)) return 0;  // <= 1 and NaN land in the first bucket
  const size_t i = static_cast<size_t>(std::ceil(std::log2(v)));
  return i < kNumBuckets ? i : kNumBuckets - 1;
}

double Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i));  // 2^i
}

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.buckets.reserve(kNumBuckets);
  for (const auto& b : buckets_) {
    out.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->Snapshot();
  }
  return out;
}

std::string MetricsRegistry::DumpText() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    out += StrFormat("%-34s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    out += StrFormat("%-34s %.6g\n", name.c_str(), v);
  }
  for (const auto& [name, h] : snap.histograms) {
    out += StrFormat("%-34s count=%llu sum=%.6g mean=%.6g\n", name.c_str(),
                     static_cast<unsigned long long>(h.count), h.sum,
                     h.mean());
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;
      out += StrFormat("  %s.le_%-26.6g %llu\n", name.c_str(),
                       Histogram::BucketUpperBound(i),
                       static_cast<unsigned long long>(h.buckets[i]));
    }
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

namespace metrics {

const char* SourceCallCounterName(const char* op) {
  if (std::strcmp(op, "sq") == 0) return kSourceCallsSq;
  if (std::strcmp(op, "sjq") == 0) return kSourceCallsSjq;
  if (std::strcmp(op, "probe") == 0) return kSourceCallsProbe;
  if (std::strcmp(op, "lq") == 0) return kSourceCallsLq;
  if (std::strcmp(op, "fetch") == 0) return kSourceCallsFetch;
  return kSourceCallsSq;
}

std::string BreakerStateGaugeName(const std::string& source_name) {
  return "breaker_state." + source_name;
}

}  // namespace metrics
}  // namespace fusion
