#include "obs/exposition.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

#include "common/str_util.h"

namespace fusion {
namespace {

std::string EscapeLabelValue(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatValue(double v) {
  // Integral values print without an exponent or trailing zeros so counter
  // lines stay `name 42`; everything else gets 10 significant digits.
  if (v == static_cast<double>(static_cast<long long>(v)) && v >= -1e15 &&
      v <= 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.10g", v);
}

void AddSample(std::vector<std::string>& lines, const std::string& name,
               double value) {
  lines.push_back(name + " " + FormatValue(value));
}

void AddLabelled(std::vector<std::string>& lines, const std::string& name,
                 const std::vector<std::pair<std::string, std::string>>& labels,
                 double value) {
  std::string line = name + "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) line += ",";
    line += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  line += "} " + FormatValue(value);
  lines.push_back(std::move(line));
}

void AddHistogram(std::vector<std::string>& lines, const std::string& name,
                  const std::vector<std::pair<std::string, std::string>>& labels,
                  const HistogramSnapshot& h) {
  if (labels.empty()) {
    AddSample(lines, name + "_count", static_cast<double>(h.count));
    AddSample(lines, name + "_sum", h.sum);
  } else {
    AddLabelled(lines, name + "_count", labels, static_cast<double>(h.count));
    AddLabelled(lines, name + "_sum", labels, h.sum);
  }
  static constexpr struct {
    const char* text;
    double q;
  } kQuantiles[] = {{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
  for (const auto& [text, q] : kQuantiles) {
    auto quantile_labels = labels;
    quantile_labels.emplace_back("quantile", text);
    AddLabelled(lines, name, quantile_labels, h.Quantile(q));
  }
}

}  // namespace

const std::string* StatsSample::Label(const std::string& key) const {
  for (const auto& [k, v] : labels) {
    if (k == key) return &v;
  }
  return nullptr;
}

const StatsSample* StatsExposition::Find(const std::string& name,
                                         const std::string& tenant) const {
  for (const StatsSample& sample : samples) {
    if (sample.name != name) continue;
    if (!tenant.empty()) {
      const std::string* label = sample.Label("tenant");
      if (label == nullptr || *label != tenant) continue;
    }
    return &sample;
  }
  return nullptr;
}

std::string RenderStatsText(const MetricsSnapshot& metrics,
                            const std::vector<TenantSloSnapshot>& tenants) {
  std::vector<std::string> lines;
  for (const auto& [name, v] : metrics.counters) {
    AddSample(lines, name, static_cast<double>(v));
  }
  for (const auto& [name, v] : metrics.gauges) {
    AddSample(lines, name, v);
  }
  for (const auto& [name, h] : metrics.histograms) {
    AddHistogram(lines, name, {}, h);
  }
  for (const TenantSloSnapshot& t : tenants) {
    const std::vector<std::pair<std::string, std::string>> labels = {
        {"tenant", t.tenant}};
    AddLabelled(lines, "tenant_requests_total", labels,
                static_cast<double>(t.requests));
    AddLabelled(lines, "tenant_errors_total", labels,
                static_cast<double>(t.errors));
    AddLabelled(lines, "tenant_shed_total", labels,
                static_cast<double>(t.shed));
    AddLabelled(lines, "tenant_deadline_exceeded_total", labels,
                static_cast<double>(t.deadline_exceeded));
    AddLabelled(lines, "tenant_cancelled_total", labels,
                static_cast<double>(t.cancelled));
    AddLabelled(lines, "tenant_degraded_total", labels,
                static_cast<double>(t.degraded));
    AddLabelled(lines, "tenant_metered_cost_total", labels, t.metered_cost);
    AddLabelled(lines, "tenant_error_rate", labels, t.error_rate);
    AddHistogram(lines, "tenant_latency_ms", labels, t.latency_ms);
  }
  std::sort(lines.begin(), lines.end());
  std::string out =
      StrFormat("%s%d\n", kStatsHeaderPrefix, kStatsSchemaVersion);
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

namespace {

Result<StatsSample> ParseSampleLine(const std::string& line) {
  StatsSample sample;
  size_t pos = 0;
  while (pos < line.size() &&
         (std::isalnum(static_cast<unsigned char>(line[pos])) ||
          line[pos] == '_' || line[pos] == '.')) {
    ++pos;
  }
  if (pos == 0) return Status::ParseError("bad stats sample name: " + line);
  sample.name = line.substr(0, pos);
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      const size_t eq = line.find("=\"", pos);
      if (eq == std::string::npos) {
        return Status::ParseError("bad stats label in: " + line);
      }
      std::string key = line.substr(pos, eq - pos);
      pos = eq + 2;
      std::string value;
      while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\' && pos + 1 < line.size()) {
          const char next = line[pos + 1];
          value += next == 'n' ? '\n' : next;
          pos += 2;
        } else {
          value += line[pos++];
        }
      }
      if (pos >= line.size()) {
        return Status::ParseError("unterminated stats label in: " + line);
      }
      ++pos;  // closing quote
      sample.labels.emplace_back(std::move(key), std::move(value));
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') {
      return Status::ParseError("unterminated stats labels in: " + line);
    }
    ++pos;
  }
  if (pos >= line.size() || line[pos] != ' ') {
    return Status::ParseError("stats sample missing value: " + line);
  }
  const char* begin = line.c_str() + pos + 1;
  char* end = nullptr;
  sample.value = std::strtod(begin, &end);
  if (end == begin || (end != nullptr && *end != '\0')) {
    return Status::ParseError("bad stats sample value: " + line);
  }
  return sample;
}

}  // namespace

Result<StatsExposition> ParseStatsText(const std::string& text) {
  const std::vector<std::string> lines = StrSplit(text, '\n');
  if (lines.empty() || lines[0].rfind(kStatsHeaderPrefix, 0) != 0) {
    return Status::ParseError("stats exposition missing schema header");
  }
  StatsExposition out;
  const std::string version = lines[0].substr(strlen(kStatsHeaderPrefix));
  if (version.empty() ||
      version.find_first_not_of("0123456789") != std::string::npos) {
    return Status::ParseError("bad stats schema version: " + version);
  }
  out.schema = std::atoi(version.c_str());
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty() || lines[i][0] == '#') continue;
    FUSION_ASSIGN_OR_RETURN(StatsSample sample, ParseSampleLine(lines[i]));
    out.samples.push_back(std::move(sample));
  }
  return out;
}

}  // namespace fusion
