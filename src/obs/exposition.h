#ifndef FUSION_OBS_EXPOSITION_H_
#define FUSION_OBS_EXPOSITION_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace fusion {

/// The versioned text exposition served by the FUSIONQ/1 STATS verb.
///
/// Grammar (one sample per line, after a mandatory header):
///   # fusionq-stats schema <version>
///   <name> <value>
///   <name>{<label>="<escaped>",...} <value>
///
/// Names are [a-zA-Z0-9_.] (registry metric names keep their dotted
/// suffixes). Label values escape backslash, double-quote, and newline with
/// backslashes. All sample lines are emitted in lexicographic order, so two
/// expositions diff cleanly and the golden test can pin the layout.
///
/// Registry histograms and per-tenant latency render as `<name>_count`,
/// `<name>_sum`, and `quantile`-labelled p50/p95/p99 samples computed with
/// HistogramSnapshot::Quantile — the same math the macro-bench uses, so a
/// p99 read off the wire matches BENCH_<date>.json by construction.
inline constexpr int kStatsSchemaVersion = 1;
inline constexpr char kStatsHeaderPrefix[] = "# fusionq-stats schema ";

struct StatsSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;

  const std::string* Label(const std::string& key) const;
};

struct StatsExposition {
  int schema = 0;
  std::vector<StatsSample> samples;

  /// First sample matching `name` (and, when non-empty, a `tenant` label).
  const StatsSample* Find(const std::string& name,
                          const std::string& tenant = "") const;
};

/// Renders the full exposition: every registry metric plus one SLO table row
/// set per tenant.
std::string RenderStatsText(const MetricsSnapshot& metrics,
                            const std::vector<TenantSloSnapshot>& tenants);

/// Parses what RenderStatsText produced (or a newer peer's superset — since
/// samples are self-describing lines, unknown names simply come back as
/// samples the caller ignores). Rejects a missing/bad header or a malformed
/// sample line with kParseError.
Result<StatsExposition> ParseStatsText(const std::string& text);

}  // namespace fusion

#endif  // FUSION_OBS_EXPOSITION_H_
