#include "obs/trace_export.h"

#include <algorithm>
#include <map>

#include "common/file_util.h"
#include "common/str_util.h"

namespace fusion {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
        JsonEscape(span.name).c_str(), SpanCategoryName(span.category),
        span.thread_id, span.start_us, span.duration_us());
    if (!span.attributes.empty() || span.trace_id != 0) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (span.trace_id != 0) {
        out += StrFormat(
            "\"trace_id\":\"%016llx\",\"span_id\":\"%016llx\","
            "\"parent_id\":\"%016llx\"",
            static_cast<unsigned long long>(span.trace_id),
            static_cast<unsigned long long>(span.span_id),
            static_cast<unsigned long long>(span.parent_id));
        first_arg = false;
      }
      for (size_t i = 0; i < span.attributes.size(); ++i) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += StrFormat("\"%s\":\"%s\"",
                         JsonEscape(span.attributes[i].first).c_str(),
                         JsonEscape(span.attributes[i].second).c_str());
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status WriteChromeTrace(const std::vector<SpanRecord>& spans,
                        const std::string& path) {
  return WriteStringToFile(path, ChromeTraceJson(spans));
}

std::string FlameSummary(const std::vector<SpanRecord>& spans) {
  struct Agg {
    size_t count = 0;
    double total_us = 0.0;
  };
  // category -> (per-category rollup, name -> per-name rollup)
  std::map<std::string, std::pair<Agg, std::map<std::string, Agg>>> by_cat;
  for (const SpanRecord& span : spans) {
    auto& [cat_agg, names] = by_cat[SpanCategoryName(span.category)];
    ++cat_agg.count;
    cat_agg.total_us += span.duration_us();
    Agg& name_agg = names[span.name];
    ++name_agg.count;
    name_agg.total_us += span.duration_us();
  }
  std::string out =
      StrFormat("trace summary: %zu spans\n", spans.size());
  for (const auto& [cat, entry] : by_cat) {
    const auto& [cat_agg, names] = entry;
    out += StrFormat("%-12s %6zu spans %12.3f ms\n", cat.c_str(),
                     cat_agg.count, cat_agg.total_us * 1e-3);
    std::vector<std::pair<std::string, Agg>> ranked(names.begin(),
                                                    names.end());
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.total_us > b.second.total_us;
                     });
    constexpr size_t kTopNames = 8;
    for (size_t i = 0; i < ranked.size() && i < kTopNames; ++i) {
      out += StrFormat("  %-28s %6zu x %12.3f ms\n",
                       ranked[i].first.c_str(), ranked[i].second.count,
                       ranked[i].second.total_us * 1e-3);
    }
    if (ranked.size() > kTopNames) {
      out += StrFormat("  ... %zu more names\n", ranked.size() - kTopNames);
    }
  }
  return out;
}

}  // namespace fusion
