#ifndef FUSION_OBS_TRACE_H_
#define FUSION_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fusion {

/// What a span is accounting for. The categories mirror the layers of the
/// stack so a trace can be filtered per layer (and so tests can count, e.g.,
/// source_call spans against the ledger's query count).
enum class SpanCategory {
  kPhase,       // mediator/session phases: optimize, execute, fetch, learn
  kOptimize,    // one optimizer algorithm run
  kPlanOp,      // one plan op evaluated by an executor
  kSourceCall,  // one metered wrapper call attempt (sq/sjq/lq/fetch/probe)
  kRetry,       // a re-attempt after a transient failure
  kCache,       // source-call cache interactions (hit, single-flight wait)
  kRpc,         // one FUSIONP/1 round trip (client or server side)
};

const char* SpanCategoryName(SpanCategory category);

/// A position in a (possibly distributed) trace: which trace the current
/// work belongs to and which span is the would-be parent of new child spans.
/// Ids are minted by Tracer::MintId — splitmix64 over the seeded RNG stream
/// (common/rng.h), never the wall clock — so a FUSION_SEED replay of a
/// single-process run reproduces its ids bit-for-bit. A context travels
/// across the wire as two decimal fields (FUSIONQ/1 `trace-id`/`parent-span`,
/// FUSIONP/1 `trace`), letting the daemon and source servers stitch their
/// spans into the client's trace.
struct TraceContext {
  uint64_t trace_id = 0;  // 0 = no ambient trace
  uint64_t span_id = 0;   // parent for spans opened under this context

  bool valid() const { return trace_id != 0; }
};

/// One finished span. Times are microseconds since the tracer's epoch
/// (steady clock, so durations and overlap are meaningful; absolute wall
/// time is not recorded). `thread_id` is a small sequential id assigned per
/// OS thread — it is the Chrome trace `tid`, so spans on different ids
/// render on different tracks. `trace_id`/`span_id`/`parent_id` stitch the
/// span into a distributed trace (0 when recorded outside any context).
struct SpanRecord {
  std::string name;
  SpanCategory category = SpanCategory::kPhase;
  double start_us = 0.0;
  double end_us = 0.0;
  uint32_t thread_id = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::vector<std::pair<std::string, std::string>> attributes;

  double duration_us() const { return end_us - start_us; }
};

/// Process-wide span collector. Disabled by default: when disabled, opening
/// a ScopedSpan costs one relaxed atomic load and no allocation. When
/// enabled, finished spans append to a lock-sharded in-memory buffer (the
/// shard is picked by thread id, so parallel plan workers do not contend on
/// one mutex).
///
/// The buffer only grows until Drain()/Clear(); callers that trace long
/// processes should drain per query (the CLI and benches do).
class Tracer {
 public:
  static Tracer& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a finished span to the current thread's shard. Called by
  /// ~ScopedSpan; usable directly for spans whose bounds are known.
  void Record(SpanRecord record);

  /// Copies out every recorded span, sorted by (start, end, thread).
  std::vector<SpanRecord> Snapshot() const;

  /// Snapshot()s and empties the buffer.
  std::vector<SpanRecord> Drain();

  void Clear();
  size_t size() const;

  /// Microseconds since the tracer epoch (fixed at first Global() use).
  double NowMicros() const;

  /// Small dense id for the calling thread (assigned on first use).
  static uint32_t CurrentThreadId();

  /// The calling thread's ambient trace context ({0,0} when none). Works
  /// whether or not tracing is enabled: a daemon with local tracing off
  /// still forwards the client's context to source servers.
  static TraceContext CurrentContext();

  /// Mints a nonzero id from the seeded splitmix64 stream: GlobalSeed mixed
  /// with the process id and a process-local counter. No wall clock — a
  /// FUSION_SEED replay of one process mints the same ids in the same
  /// order; distinct processes diverge via the pid salt, so a stitched
  /// three-process trace never collides span ids.
  static uint64_t MintId();

 private:
  friend class ScopedSpan;
  friend class TraceContextScope;

  static TraceContext& MutableCurrentContext();

  Tracer();

  static constexpr size_t kNumShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::vector<SpanRecord> spans;
  };

  std::atomic<bool> enabled_{false};
  int64_t epoch_ns_ = 0;  // steady_clock reading at construction
  Shard shards_[kNumShards];
};

/// RAII span: records [construction, destruction) into Tracer::Global()
/// when tracing is enabled, and is inert (no allocation, one atomic load)
/// when not. Attribute adders are no-ops on an inactive span, so call sites
/// need no `if (enabled)` guards for correctness — only to skip expensive
/// attribute construction.
class ScopedSpan {
 public:
  ScopedSpan(SpanCategory category, const char* name);
  ScopedSpan(SpanCategory category, std::string name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when this span is being recorded; use to gate attribute
  /// construction that would itself cost something.
  bool active() const { return active_; }

  void AddAttr(const char* key, std::string value);
  void AddAttr(const char* key, const char* value);
  void AddAttr(const char* key, double value);
  void AddAttr(const char* key, int64_t value);
  void AddAttr(const char* key, size_t value) {
    AddAttr(key, static_cast<int64_t>(value));
  }

 private:
  bool active_ = false;
  SpanRecord record_;
  TraceContext saved_context_;  // restored on destruction (active spans only)
};

/// RAII adoption of an inbound trace context: installs `context` as the
/// calling thread's ambient context and restores the previous one on
/// destruction. Used where a request crosses a process boundary
/// (QueryService request execution, SourceServer::Handle) so every span
/// opened underneath joins the remote caller's trace. An invalid ({0,0})
/// context is a no-op — the ambient context (e.g. the mediator's own, when
/// the "remote" source is an in-process transport) stays in place. Unlike
/// ScopedSpan this is always live — context must flow even when local
/// tracing is disabled, because a downstream process may have tracing on.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext context);
  ~TraceContextScope();

  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// A window into the global trace covering one plan execution, surfaced on
/// ExecutionReport. Valid until the tracer is drained or cleared; an
/// execution run with tracing disabled yields an inert handle.
struct TraceHandle {
  bool enabled = false;
  double start_us = 0.0;
  double end_us = 0.0;

  /// The spans recorded within this window (inclusive), sorted by start.
  std::vector<SpanRecord> Spans() const;
};

}  // namespace fusion

#endif  // FUSION_OBS_TRACE_H_
