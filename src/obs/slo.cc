#include "obs/slo.h"

namespace fusion {

SloRegistry::Tenant& SloRegistry::Slot(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = tenants_[tenant];
  if (slot == nullptr) slot = std::make_unique<Tenant>();
  return *slot;
}

void SloRegistry::Register(const std::string& tenant) { Slot(tenant); }

void SloRegistry::RecordCompletion(const std::string& tenant,
                                   double latency_ms, double metered_cost,
                                   bool ok, StatusCode code, bool complete) {
  Tenant& t = Slot(tenant);
  std::lock_guard<std::mutex> lock(t.mu);
  ++t.requests;
  if (!ok) {
    ++t.errors;
    if (code == StatusCode::kDeadlineExceeded) ++t.deadline_exceeded;
    if (code == StatusCode::kCancelled) ++t.cancelled;
  } else if (!complete) {
    ++t.degraded;
  }
  t.metered_cost += metered_cost;
  t.latency_ms.Observe(latency_ms);
  t.window[t.window_next] = ok ? 0 : 1;
  t.window_next = (t.window_next + 1) % kErrorWindow;
  if (t.window_filled < kErrorWindow) ++t.window_filled;
}

void SloRegistry::RecordShed(const std::string& tenant) {
  Tenant& t = Slot(tenant);
  std::lock_guard<std::mutex> lock(t.mu);
  ++t.shed;
}

std::vector<TenantSloSnapshot> SloRegistry::Snapshot() const {
  std::vector<TenantSloSnapshot> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) {  // map order: sorted by tenant
    std::lock_guard<std::mutex> tenant_lock(t->mu);
    TenantSloSnapshot snap;
    snap.tenant = name;
    snap.requests = t->requests;
    snap.errors = t->errors;
    snap.shed = t->shed;
    snap.deadline_exceeded = t->deadline_exceeded;
    snap.cancelled = t->cancelled;
    snap.degraded = t->degraded;
    snap.metered_cost = t->metered_cost;
    uint64_t window_errors = 0;
    for (size_t i = 0; i < t->window_filled; ++i) {
      window_errors += t->window[i];
    }
    snap.error_rate =
        t->window_filled == 0
            ? 0.0
            : static_cast<double>(window_errors) /
                  static_cast<double>(t->window_filled);
    snap.latency_ms = t->latency_ms.Snapshot();
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace fusion
