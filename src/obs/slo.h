#ifndef FUSION_OBS_SLO_H_
#define FUSION_OBS_SLO_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace fusion {

/// Point-in-time view of one tenant's SLO accounting; what the STATS
/// exposition and bench trajectory files render. `tenant` is the FUSIONQ/1
/// HELLO client name ("" for requests that never identified themselves).
struct TenantSloSnapshot {
  std::string tenant;
  uint64_t requests = 0;           // completed requests, ok or failed
  uint64_t errors = 0;             // completed with a non-OK status
  uint64_t shed = 0;               // rejected at admission (kUnavailable)
  uint64_t deadline_exceeded = 0;  // failed with kDeadlineExceeded
  uint64_t cancelled = 0;          // failed with kCancelled
  uint64_t degraded = 0;           // answered, but incomplete (sound partial)
  double metered_cost = 0.0;       // total metered source cost
  /// Error fraction over the last SloRegistry::kErrorWindow completions
  /// (not lifetime — a tenant that recovered reads healthy again).
  double error_rate = 0.0;
  HistogramSnapshot latency_ms;

  double LatencyQuantileMs(double q) const { return latency_ms.Quantile(q); }
};

/// Per-tenant SLO accounting for the serving tier. One registry per
/// QueryService (not process-global like MetricsRegistry): tenants are a
/// serving-layer concept, and a test standing up two services must not see
/// each other's tenants.
///
/// Thread-safety: all methods are safe to call concurrently. Recording
/// happens once per request completion/shed — far off the per-source-call
/// hot path — so a per-tenant mutex is fine.
class SloRegistry {
 public:
  /// Completions considered by the rolling error rate.
  static constexpr size_t kErrorWindow = 256;

  /// Ensures `tenant` exists (the HELLO path), so a connected-but-idle
  /// client is visible in STATS with zero counts.
  void Register(const std::string& tenant);

  /// Accounts one finished request: latency, metered cost, outcome. `code`
  /// classifies failures (kDeadlineExceeded / kCancelled get their own
  /// counters); `complete` is the answer's CompletenessReport verdict.
  void RecordCompletion(const std::string& tenant, double latency_ms,
                        double metered_cost, bool ok, StatusCode code,
                        bool complete);

  /// Accounts one request rejected at admission (queue saturation). Not a
  /// completion: shed requests never entered the service, so they do not
  /// skew the latency histogram or the rolling error rate.
  void RecordShed(const std::string& tenant);

  /// Every tenant's current accounting, sorted by tenant name.
  std::vector<TenantSloSnapshot> Snapshot() const;

 private:
  struct Tenant {
    mutable std::mutex mu;
    uint64_t requests = 0;
    uint64_t errors = 0;
    uint64_t shed = 0;
    uint64_t deadline_exceeded = 0;
    uint64_t cancelled = 0;
    uint64_t degraded = 0;
    double metered_cost = 0.0;
    Histogram latency_ms;
    // Rolling outcome ring: 1 = error. `window_filled` counts valid slots.
    std::array<uint8_t, kErrorWindow> window = {};
    size_t window_next = 0;
    size_t window_filled = 0;
  };

  Tenant& Slot(const std::string& tenant);

  mutable std::mutex mu_;  // guards the map, not per-tenant state
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace fusion

#endif  // FUSION_OBS_SLO_H_
