#ifndef FUSION_OBS_METRICS_H_
#define FUSION_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fusion {

/// Monotonic event count. All operations are relaxed atomics: metrics
/// tolerate reordering, never tear, and cost one uncontended RMW on the hot
/// path.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-written point-in-time value.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

struct HistogramSnapshot {
  std::vector<uint64_t> buckets;  // kNumBuckets counts
  uint64_t count = 0;
  double sum = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Estimated q-quantile (q in [0,1], clamped) by linear interpolation
  /// inside the log-scale bucket holding the q·count-th observation. The
  /// unbounded last bucket reports its finite lower boundary. Both the
  /// bench harness and the STATS exposition compute percentiles through
  /// this, so a p99 read off the wire matches the one in BENCH_<date>.json
  /// by construction.
  double Quantile(double q) const;
};

/// Fixed log-scale histogram: bucket 0 holds observations <= 1, bucket i
/// (i >= 1) holds (2^(i-1), 2^i], and the last bucket is unbounded above.
/// The boundaries are compile-time constants, so snapshots from different
/// processes/runs are directly comparable — no dynamic rebucketing.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 32;

  void Observe(double v);
  HistogramSnapshot Snapshot() const;
  void Reset();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// The bucket an observation lands in.
  static size_t BucketIndex(double v);
  /// Inclusive upper bound of bucket i (+inf for the last).
  static double BucketUpperBound(size_t i);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Process-wide named metrics. Lookup registers on first use and returns a
/// reference that stays valid (and keeps its identity across ResetAll) for
/// the life of the process, so hot paths cache it in a function-local
/// static:
///
///   static Counter& retries =
///       MetricsRegistry::Global().counter(metrics::kRetriesTotal);
///   retries.Increment();
///
/// Lookups take a mutex; increments on the returned objects are lock-free.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Point-in-time copy of every registered metric, keyed by name.
  MetricsSnapshot Snapshot() const;

  /// Human-readable dump, one metric per line, sorted by name.
  std::string DumpText() const;

  /// Zeroes every metric's value. Registrations (and references handed out)
  /// survive — this resets the numbers, not the registry.
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Canonical metric names instrumented across the stack. Dotted suffixes
/// play the role of labels (source_calls_total.sq == source_calls_total
/// with kind=sq).
namespace metrics {

inline constexpr char kSourceCallsSq[] = "source_calls_total.sq";
inline constexpr char kSourceCallsSjq[] = "source_calls_total.sjq";
inline constexpr char kSourceCallsProbe[] = "source_calls_total.probe";
inline constexpr char kSourceCallsLq[] = "source_calls_total.lq";
inline constexpr char kSourceCallsFetch[] = "source_calls_total.fetch";
inline constexpr char kSourceCallCost[] = "source_call_cost";  // histogram
inline constexpr char kRetriesTotal[] = "retries_total";
inline constexpr char kBackoffSleepsTotal[] = "backoff_sleeps_total";
inline constexpr char kDeadlineExceededTotal[] = "deadline_exceeded_total";
/// Source calls refused at admission because the query's cancellation token
/// was set (the serving layer's CANCEL path).
inline constexpr char kCancelledTotal[] = "cancelled_total";
/// The serving layer (mediator/service.h): requests accepted into the
/// admission queue, requests shed with kUnavailable at saturation, requests
/// cancelled before or during execution, and the live queue depth gauge.
inline constexpr char kServiceRequestsTotal[] = "service_requests_total";
inline constexpr char kServiceSheddedTotal[] = "service_shedded_total";
inline constexpr char kServiceCancelledTotal[] = "service_cancelled_total";
inline constexpr char kServiceQueueDepth[] = "service_queue_depth";  // gauge
inline constexpr char kServiceActiveClients[] =
    "service_active_clients";  // gauge
inline constexpr char kBreakerOpensTotal[] = "breaker_opens_total";
inline constexpr char kBreakerFastFailsTotal[] = "breaker_fast_fails_total";
inline constexpr char kCacheHits[] = "cache_hits_total";
inline constexpr char kCacheMisses[] = "cache_misses_total";
inline constexpr char kCacheFlightWaits[] = "cache_flight_waits_total";
/// Answers derived locally from a containing cached entry (sjq from sq,
/// sq/sjq from lq, sjq from a candidate-superset sjq) — no source call.
inline constexpr char kCacheContainmentHits[] = "cache_containment_hits_total";
/// Entries dropped for the byte budget or TTL expiry.
inline constexpr char kCacheEvictions[] = "cache_evictions_total";
inline constexpr char kCacheInvalidations[] = "cache_invalidations_total";
inline constexpr char kCacheBytes[] = "cache_bytes";      // gauge
inline constexpr char kCacheEntries[] = "cache_entries";  // gauge
inline constexpr char kEmulatedSemijoins[] = "emulated_semijoins_total";
/// Emulated-semijoin probes skipped by the merge-column Bloom pre-filter
/// (ExecOptions::bloom_probe_prefilter) — guaranteed-miss bindings.
inline constexpr char kSemijoinProbesSkipped[] =
    "semijoin_probes_skipped_total";
inline constexpr char kOptimizerPlansConsidered[] =
    "optimizer_plans_considered";
inline constexpr char kRpcBytesSent[] = "rpc_bytes_sent";
inline constexpr char kRpcBytesReceived[] = "rpc_bytes_received";
inline constexpr char kRpcRequests[] = "rpc_requests_total";
inline constexpr char kRpcServerRequests[] = "rpc_server_requests_total";
/// Network-resilience counters: connected clients redialing a lost fusionqd
/// connection, SUBMITs answered from the service's idempotency dedup table
/// (a replay after reconnect — no re-execution, no re-metering), and
/// RemoteSource transport failovers to another replica endpoint.
inline constexpr char kClientReconnectsTotal[] = "client_reconnects_total";
inline constexpr char kIdempotentReplaysTotal[] = "idempotent_replays_total";
inline constexpr char kSourceFailoversTotal[] = "source_failovers_total";
/// Fleet cache coherence: version-stamped INVALIDATE verbs applied, vs
/// answered `stale` (an idempotent replay of an already-applied version).
inline constexpr char kInvalidatesAppliedTotal[] = "invalidates_applied_total";
inline constexpr char kInvalidatesStaleTotal[] = "invalidates_stale_total";
/// The fusionrd router: SUBMITs forwarded shard-ward, forwards whose query
/// key was seen before (warm), warm forwards that landed on the same shard
/// as last time (memo/cache locality), transport failovers to the
/// next-ranked shard, INVALIDATE fan-out deliveries, and request bytes
/// forwarded to shards (the cross-shard traffic proxy).
inline constexpr char kRouterForwardsTotal[] = "router_forwards_total";
inline constexpr char kRouterWarmForwardsTotal[] = "router_warm_forwards_total";
inline constexpr char kRouterWarmHitsTotal[] = "router_warm_hits_total";
inline constexpr char kRouterFailoversTotal[] = "router_failovers_total";
inline constexpr char kRouterInvalidateFanoutsTotal[] =
    "router_invalidate_fanouts_total";
inline constexpr char kRouterForwardBytes[] = "router_forward_bytes";
/// Faults injected by the chaos layer (protocol/chaos.h), by kind.
inline constexpr char kChaosDropsTotal[] = "chaos_drops_total";
inline constexpr char kChaosTornWritesTotal[] = "chaos_torn_writes_total";
inline constexpr char kChaosDelaysTotal[] = "chaos_delays_total";
inline constexpr char kChaosHangsTotal[] = "chaos_hangs_total";
inline constexpr char kChaosRefusalsTotal[] = "chaos_refusals_total";

/// Maps a CallWithRetries op tag ("sq"/"sjq"/"probe"/"lq"/"fetch") to its
/// source_calls_total counter name.
const char* SourceCallCounterName(const char* op);

/// Per-source circuit breaker state gauge name ("breaker_state.<source>");
/// values follow SourceHealth::BreakerState (0 closed, 1 half-open, 2 open).
std::string BreakerStateGaugeName(const std::string& source_name);

}  // namespace metrics

}  // namespace fusion

#endif  // FUSION_OBS_METRICS_H_
