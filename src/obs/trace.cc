#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "common/rng.h"
#include "common/str_util.h"

namespace fusion {
namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* SpanCategoryName(SpanCategory category) {
  switch (category) {
    case SpanCategory::kPhase:
      return "phase";
    case SpanCategory::kOptimize:
      return "optimize";
    case SpanCategory::kPlanOp:
      return "plan_op";
    case SpanCategory::kSourceCall:
      return "source_call";
    case SpanCategory::kRetry:
      return "retry";
    case SpanCategory::kCache:
      return "cache";
    case SpanCategory::kRpc:
      return "rpc";
  }
  return "?";
}

Tracer::Tracer() : epoch_ns_(SteadyNowNanos()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed: usable at exit
  return *tracer;
}

double Tracer::NowMicros() const {
  return static_cast<double>(SteadyNowNanos() - epoch_ns_) * 1e-3;
}

uint32_t Tracer::CurrentThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

TraceContext& Tracer::MutableCurrentContext() {
  thread_local TraceContext context;
  return context;
}

TraceContext Tracer::CurrentContext() { return MutableCurrentContext(); }

uint64_t Tracer::MintId() {
  // One process-wide stream: GlobalSeed ⊕ pid picks the stream, a counter
  // walks it. splitmix64 (MixSeed) makes consecutive counters statistically
  // independent ids.
  static const uint64_t stream =
      MixSeed(GlobalSeed(0x0b5e11ab1e), static_cast<uint64_t>(getpid()));
  static std::atomic<uint64_t> next{1};
  const uint64_t id =
      MixSeed(stream, next.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

TraceContextScope::TraceContextScope(TraceContext context)
    : saved_(Tracer::MutableCurrentContext()) {
  if (context.valid()) Tracer::MutableCurrentContext() = context;
}

TraceContextScope::~TraceContextScope() {
  Tracer::MutableCurrentContext() = saved_;
}

void Tracer::Record(SpanRecord record) {
  Shard& shard = shards_[CurrentThreadId() % kNumShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.spans.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.spans.begin(), shard.spans.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              // Equal starts: the enclosing (longer) span first, so nesting
              // order survives the sort; thread id breaks remaining ties.
              if (a.end_us != b.end_us) return a.end_us > b.end_us;
              return a.thread_id < b.thread_id;
            });
  return out;
}

std::vector<SpanRecord> Tracer::Drain() {
  std::vector<SpanRecord> out = Snapshot();
  Clear();
  return out;
}

void Tracer::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.spans.clear();
  }
}

size_t Tracer::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.spans.size();
  }
  return n;
}

ScopedSpan::ScopedSpan(SpanCategory category, const char* name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  record_.name = name;
  record_.category = category;
  record_.thread_id = Tracer::CurrentThreadId();
  // Join the ambient trace (minting a fresh trace id for roots), become the
  // parent of anything opened underneath, and remember what to restore.
  TraceContext& current = Tracer::MutableCurrentContext();
  saved_context_ = current;
  record_.trace_id = current.valid() ? current.trace_id : Tracer::MintId();
  record_.parent_id = current.span_id;
  record_.span_id = Tracer::MintId();
  current = TraceContext{record_.trace_id, record_.span_id};
  record_.start_us = tracer.NowMicros();
}

ScopedSpan::ScopedSpan(SpanCategory category, std::string name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  record_.name = std::move(name);
  record_.category = category;
  record_.thread_id = Tracer::CurrentThreadId();
  TraceContext& current = Tracer::MutableCurrentContext();
  saved_context_ = current;
  record_.trace_id = current.valid() ? current.trace_id : Tracer::MintId();
  record_.parent_id = current.span_id;
  record_.span_id = Tracer::MintId();
  current = TraceContext{record_.trace_id, record_.span_id};
  record_.start_us = tracer.NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::Global();
  record_.end_us = tracer.NowMicros();
  Tracer::MutableCurrentContext() = saved_context_;
  tracer.Record(std::move(record_));
}

void ScopedSpan::AddAttr(const char* key, std::string value) {
  if (!active_) return;
  record_.attributes.emplace_back(key, std::move(value));
}

void ScopedSpan::AddAttr(const char* key, const char* value) {
  if (!active_) return;
  record_.attributes.emplace_back(key, value);
}

void ScopedSpan::AddAttr(const char* key, double value) {
  if (!active_) return;
  record_.attributes.emplace_back(key, StrFormat("%.6g", value));
}

void ScopedSpan::AddAttr(const char* key, int64_t value) {
  if (!active_) return;
  record_.attributes.emplace_back(key, StrFormat("%lld",
                                                 static_cast<long long>(value)));
}

std::vector<SpanRecord> TraceHandle::Spans() const {
  std::vector<SpanRecord> out;
  if (!enabled) return out;
  for (SpanRecord& span : Tracer::Global().Snapshot()) {
    if (span.start_us >= start_us && span.end_us <= end_us) {
      out.push_back(std::move(span));
    }
  }
  return out;
}

}  // namespace fusion
