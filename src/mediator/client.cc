#include "mediator/client.h"

#include "cli/catalog_config.h"
#include "query/parser.h"

namespace fusion {

Result<Client> Client::Builder::Build() {
  const int modes = (have_catalog_ ? 1 : 0) + (catalog_file_.empty() ? 0 : 1) +
                    (endpoint_.empty() ? 0 : 1);
  if (modes == 0) {
    return Status::InvalidArgument(
        "Client::Builder needs a catalog (Catalog / CatalogFile) or a "
        "service endpoint (Connect)");
  }
  if (modes > 1) {
    return Status::InvalidArgument(
        "Client::Builder: Catalog, CatalogFile, and Connect are mutually "
        "exclusive");
  }
  Client client;
  if (!endpoint_.empty()) {
    auto remote = std::make_unique<Remote>();
    FUSION_ASSIGN_OR_RETURN(remote->socket, DialTcp(endpoint_));
    remote->client_id = client_id_;
    // HELLO handshake: validates that the peer speaks FUSIONQ/1 before the
    // caller trusts the connection, and names the server for diagnostics.
    ClientRequest hello;
    hello.kind = ClientRequest::Kind::kHello;
    hello.client_id = client_id_;
    FUSION_RETURN_IF_ERROR(remote->socket.Send(SerializeClientRequest(hello)));
    FUSION_ASSIGN_OR_RETURN(const std::string reply, remote->socket.Receive());
    FUSION_ASSIGN_OR_RETURN(const ClientResponse response,
                            ParseClientResponse(reply));
    if (!response.ok) {
      return Status(response.error_code, "hello: " + response.error_message);
    }
    client.server_ = response.server;
    client.remote_ = std::move(remote);
    return client;
  }
  SourceCatalog catalog = std::move(catalog_);
  if (!catalog_file_.empty()) {
    FUSION_ASSIGN_OR_RETURN(catalog, LoadCatalogFromFile(catalog_file_));
  }
  if (catalog.empty()) {
    return Status::InvalidArgument("Client::Builder: catalog has no sources");
  }
  FUSION_RETURN_IF_ERROR(ValidateExecOptions(options_.execution));
  client.session_ = std::make_unique<QuerySession>(
      Mediator(std::move(catalog)), options_);
  return client;
}

ClientAnswer SummarizeAnswer(QueryAnswer answer) {
  ClientAnswer out;
  out.items = answer.items;
  out.cost = answer.execution.ledger.total();
  out.source_queries = answer.execution.ledger.num_queries();
  out.cache_hits = answer.execution.cache_hits;
  out.cache_misses = answer.execution.cache_misses;
  out.cache_containment_hits = answer.execution.cache_containment_hits;
  out.items_sent = answer.execution.ledger.total_items_sent();
  out.items_received = answer.execution.ledger.total_items_received();
  out.calibration_cost = answer.calibration_cost;
  out.complete = answer.execution.completeness.answer_complete;
  out.detail = std::make_shared<const QueryAnswer>(std::move(answer));
  return out;
}

Result<ClientAnswer> Client::Query(const FusionQuery& query,
                                   const CallControls& controls) {
  if (remote_ != nullptr) return RemoteQuery(query.ToSql(), controls);
  FUSION_ASSIGN_OR_RETURN(QueryAnswer answer,
                          session_->Answer(query, controls));
  return SummarizeAnswer(std::move(answer));
}

Result<ClientAnswer> Client::QuerySql(const std::string& sql,
                                      const CallControls& controls) {
  if (remote_ != nullptr) return RemoteQuery(sql, controls);
  FUSION_ASSIGN_OR_RETURN(FusionQuery query, ParseFusionQuery(sql));
  return Query(query, controls);
}

Result<ClientAnswer> Client::RemoteQuery(const std::string& sql,
                                         const CallControls& controls) {
  // Planning/statistics choices are the *service's* configuration — a
  // connected client cannot override them per call (every client shares one
  // session), and silently ignoring the override would be worse than
  // refusing it.
  if (controls.strategy.has_value() || controls.statistics.has_value()) {
    return Status::Unsupported(
        "per-call strategy/statistics overrides are not available over a "
        "fusionqd connection");
  }
  ClientRequest request;
  request.kind = ClientRequest::Kind::kSubmit;
  request.client_id = remote_->client_id;
  request.sql = sql;
  request.wait = true;
  std::lock_guard<std::mutex> lock(remote_->mutex);
  FUSION_RETURN_IF_ERROR(remote_->socket.Send(SerializeClientRequest(request)));
  FUSION_ASSIGN_OR_RETURN(const std::string reply, remote_->socket.Receive());
  FUSION_ASSIGN_OR_RETURN(const ClientResponse response,
                          ParseClientResponse(reply));
  if (!response.ok) {
    return Status(response.error_code, response.error_message);
  }
  ClientAnswer out;
  for (const Value& v : response.items) out.items.Insert(v);
  out.cost = response.cost;
  out.source_queries = response.source_queries;
  out.cache_hits = response.cache_hits;
  out.cache_misses = response.cache_misses;
  out.items_sent = response.items_sent;
  out.items_received = response.items_received;
  out.calibration_cost = response.calibration_cost;
  out.complete = response.complete;
  return out;
}

}  // namespace fusion
