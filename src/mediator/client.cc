#include "mediator/client.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "cli/catalog_config.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/classifier.h"
#include "query/parser.h"

namespace fusion {
namespace {

const char* CacheProvenanceName(char provenance) {
  switch (provenance) {
    case 'h':
      return "hit";
    case 'c':
      return "containment";
    case 'm':
      return "miss";
    default:
      return "-";
  }
}

void SleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds));
}

/// Transport-level failures a redial can cure. Protocol-level failures
/// (kParseError from a malformed frame, an ERROR response) are final — a
/// fresh connection would get the same answer.
bool IsTransportError(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kInternal;
}

/// HELLO-phase failures worth a redial: every transport error plus the
/// kParseError a torn HELLO reply produces (a fresh connection gets a whole
/// frame; a genuinely incompatible peer merely costs the bounded backoff
/// schedule before the same error surfaces).
bool IsHelloRetryable(const Status& status) {
  return IsTransportError(status) ||
         status.code() == StatusCode::kParseError;
}

/// Client-minted SUBMIT idempotency keys: unique per (process, mint) with
/// overwhelming probability, deterministic under FUSION_SEED (the soak test
/// replays a run byte-for-byte), and never 0 (0 = "no request-id" on the
/// wire).
uint64_t MintRequestId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t seed =
      GlobalSeed(0x9e3779b97f4a7c15ull ^ static_cast<uint64_t>(getpid()));
  const uint64_t id = MixSeed(MixSeed(seed, 0x1de9u), n);
  return id == 0 ? 1 : id;
}

struct HelloResult {
  MessageSocket socket;
  ClientResponse response;
};

/// Dials `endpoint` and runs the FUSIONQ/1 HELLO handshake — the one
/// connection-establishment path, shared by Builder::Build and the
/// transparent-reconnect redial so a reconnected client renegotiates
/// features exactly like a fresh one.
Result<HelloResult> DialAndHello(const std::string& endpoint,
                                 const std::string& client_id) {
  HelloResult out;
  FUSION_ASSIGN_OR_RETURN(out.socket, DialTcp(endpoint));
  ClientRequest hello;
  hello.kind = ClientRequest::Kind::kHello;
  hello.client_id = client_id;
  hello.features = ClientProtocolFeatures();
  FUSION_RETURN_IF_ERROR(out.socket.Send(SerializeClientRequest(hello)));
  FUSION_ASSIGN_OR_RETURN(const std::string reply, out.socket.Receive());
  FUSION_ASSIGN_OR_RETURN(out.response, ParseClientResponse(reply));
  if (!out.response.ok) {
    return Status(out.response.error_code,
                  "hello: " + out.response.error_message);
  }
  return out;
}

}  // namespace

void Client::AdoptServerFeatures(Remote& remote,
                                 const ClientResponse& response) {
  // Rebuilt wholesale (not merged): a restarted daemon may speak fewer
  // features than its predecessor, and stale capabilities must not survive
  // a reconnect.
  remote.server_features = FeatureSet::FromNames(response.features);
}

std::vector<std::string> RenderExplainLines(const QueryAnswer& answer,
                                            const PlanPrintNames& names) {
  const OptimizedPlan& optimized = answer.optimized;
  const ExecutionReport& report = answer.execution;
  std::vector<std::string> lines;
  lines.push_back(StrFormat(
      "plan %s (%s), estimated cost %.3f, measured cost %.3f",
      optimized.algorithm.c_str(), PlanClassName(optimized.plan_class),
      optimized.estimated_cost, report.ledger.total()));
  const std::vector<std::string> plan_lines =
      StrSplit(optimized.plan.ToString(names), '\n');
  // Plan::ToString prints exactly one line per op, so line k annotates with
  // op k's measurements.
  for (size_t k = 0; k < plan_lines.size(); ++k) {
    if (plan_lines[k].empty()) continue;
    std::string line = plan_lines[k];
    if (k < optimized.plan.num_ops()) {
      const double cost =
          k < report.per_op_cost.size() ? report.per_op_cost[k] : 0.0;
      const double ms = k < report.per_op_seconds.size()
                            ? report.per_op_seconds[k] * 1e3
                            : 0.0;
      const char provenance =
          k < report.per_op_cache.size() ? report.per_op_cache[k] : '-';
      line += StrFormat("   [cost %.3f, %.3f ms, cache %s]", cost, ms,
                        CacheProvenanceName(provenance));
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

Result<Client> Client::Builder::Build() {
  const int modes = (target_.have_catalog_ ? 1 : 0) +
                    (target_.catalog_file_.empty() ? 0 : 1) +
                    (target_.endpoints_.empty() ? 0 : 1);
  if (modes == 0) {
    return Status::InvalidArgument(
        "Client::Builder needs a target: To(Target::Embedded / "
        "Target::EmbeddedFile / Target::Remote)");
  }
  if (targets_set_ > 1) {
    return Status::InvalidArgument(
        "Client::Builder: exactly one target per Build (To / Catalog / "
        "CatalogFile / Connect called " +
        std::to_string(targets_set_) + " times)");
  }
  Client client;
  if (!target_.endpoints_.empty()) {
    for (const std::string& endpoint : target_.endpoints_) {
      if (endpoint.empty()) {
        return Status::InvalidArgument(
            "Client::Builder: Target::Remote endpoint is empty");
      }
    }
    auto remote = std::make_unique<Remote>();
    remote->endpoints = target_.endpoints_;
    remote->client_id = client_id_;
    remote->reconnect = reconnect_;
    // HELLO handshake: validates that the peer speaks FUSIONQ/1 before the
    // caller trusts the connection, and names the server for diagnostics.
    // Dialing retries transient failures under the reconnect policy,
    // rotating across the target's endpoints — a daemon mid-restart (or a
    // chaos accept-refusal) costs backoff, not a build failure, and a dead
    // first endpoint costs one probe before the next is tried.
    const int attempts = std::max(1, reconnect_.max_attempts);
    Result<HelloResult> hello = Status::Unavailable("never dialed");
    for (int attempt = 1; attempt <= attempts; ++attempt) {
      if (attempt > 1) {
        SleepSeconds(reconnect_.BackoffSeconds(0, attempt - 1));
      }
      remote->active =
          static_cast<size_t>(attempt - 1) % remote->endpoints.size();
      hello = DialAndHello(remote->endpoints[remote->active], client_id_);
      if (hello.ok() || !IsHelloRetryable(hello.status())) break;
    }
    FUSION_RETURN_IF_ERROR(hello.status());
    remote->socket = std::move(hello.value().socket);
    const ClientResponse& response = hello.value().response;
    client.server_ = response.server;
    client.server_features_ = response.features;
    AdoptServerFeatures(*remote, response);
    client.remote_ = std::move(remote);
    return client;
  }
  SourceCatalog catalog = std::move(target_.catalog_);
  if (!target_.catalog_file_.empty()) {
    FUSION_ASSIGN_OR_RETURN(catalog,
                            LoadCatalogFromFile(target_.catalog_file_));
  }
  if (catalog.empty()) {
    return Status::InvalidArgument("Client::Builder: catalog has no sources");
  }
  FUSION_RETURN_IF_ERROR(ValidateExecOptions(options_.execution));
  client.session_ = std::make_unique<QuerySession>(
      Mediator(std::move(catalog)), options_);
  return client;
}

RetryPolicy Client::DefaultReconnectPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.25;
  return policy;
}

size_t Client::reconnects() const {
  if (remote_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(remote_->mutex);
  return remote_->reconnects;
}

Status Client::RemoteReconnectLocked() {
  Remote& remote = *remote_;
  remote.socket.Close();
  // Sticky-rotate failover: start at the endpoint that last worked, and on
  // a retryable failure probe the rest in order — one sweep per reconnect
  // attempt (the caller's backoff schedule paces the sweeps).
  Status last_error = Status::Unavailable("no endpoints configured");
  for (size_t i = 0; i < remote.endpoints.size(); ++i) {
    const size_t index = (remote.active + i) % remote.endpoints.size();
    Result<HelloResult> hello =
        DialAndHello(remote.endpoints[index], remote.client_id);
    if (!hello.ok()) {
      last_error = hello.status();
      if (!IsHelloRetryable(last_error)) return last_error;
      continue;
    }
    remote.active = index;
    remote.socket = std::move(hello.value().socket);
    server_ = hello.value().response.server;
    server_features_ = hello.value().response.features;
    AdoptServerFeatures(remote, hello.value().response);
    ++remote.reconnects;
    static Counter& reconnects =
        MetricsRegistry::Global().counter(metrics::kClientReconnectsTotal);
    reconnects.Increment();
    return Status::Ok();
  }
  return last_error;
}

Result<ClientResponse> Client::RemoteExchangeLocked(
    const ClientRequest& request) {
  Remote& remote = *remote_;
  // When is a *resend* safe? HELLO/STATUS/STATS/CANCEL are read-only or
  // idempotent by construction. SUBMIT executes a query: resending one the
  // server may already have received risks a second execution (and second
  // metering) — only the request-id dedup makes that replay safe, so
  // without negotiated idempotency a SUBMIT gets redial-before-send at
  // most, never send-again-after-send.
  const bool resend_safe =
      request.kind != ClientRequest::Kind::kSubmit ||
      (remote.server_features.Has(Feature::kIdempotency) &&
       request.request_id != 0);
  const std::string wire = SerializeClientRequest(request);
  const int attempts = std::max(1, remote.reconnect.max_attempts);
  Status last_error = Status::Unavailable("connection lost");
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      SleepSeconds(remote.reconnect.BackoffSeconds(0, attempt - 1));
      const Status redial = RemoteReconnectLocked();
      if (!redial.ok()) {
        if (!IsHelloRetryable(redial)) return redial;
        last_error = redial;
        continue;
      }
    }
    bool frame_sent = false;
    bool transport_failure = false;
    const Status sent = remote.socket.Send(wire);
    if (sent.ok()) {
      frame_sent = true;
      Result<std::string> reply = remote.socket.Receive();
      if (reply.ok()) return ParseClientResponse(reply.value());
      // A failed Receive is always a transport event — including the
      // kParseError a torn response frame produces ("connection closed
      // mid-message"): a redial gets a fresh, whole frame. Only
      // ParseClientResponse on a *complete* frame is a protocol error.
      last_error = reply.status();
      transport_failure = true;
    } else {
      last_error = sent;
      transport_failure = IsTransportError(sent);
    }
    if (!transport_failure) return last_error;
    // Transport failure: this connection is dead. Close it so the next
    // attempt redials; stop retrying when the frame may have been
    // delivered and a resend is not replay-safe.
    remote.socket.Close();
    if (frame_sent && !resend_safe) break;
  }
  return Status(last_error.code(),
                last_error.message() + " (endpoint " +
                    remote.endpoints[remote.active] + ")");
}

ClientAnswer SummarizeAnswer(QueryAnswer answer) {
  ClientAnswer out;
  out.items = answer.items;
  out.cost = answer.execution.ledger.total();
  out.source_queries = answer.execution.ledger.num_queries();
  out.cache_hits = answer.execution.cache_hits;
  out.cache_misses = answer.execution.cache_misses;
  out.cache_containment_hits = answer.execution.cache_containment_hits;
  out.items_sent = answer.execution.ledger.total_items_sent();
  out.items_received = answer.execution.ledger.total_items_received();
  out.calibration_cost = answer.calibration_cost;
  out.complete = answer.execution.completeness.answer_complete;
  out.detail = std::make_shared<const QueryAnswer>(std::move(answer));
  return out;
}

Result<ClientAnswer> Client::Query(const FusionQuery& query,
                                   const CallControls& controls) {
  if (remote_ != nullptr) return RemoteQuery(query.ToSql(), controls);
  FUSION_ASSIGN_OR_RETURN(QueryAnswer answer,
                          session_->Answer(query, controls));
  return SummarizeAnswer(std::move(answer));
}

Result<ClientAnswer> Client::QuerySql(const std::string& sql,
                                      const CallControls& controls) {
  if (remote_ != nullptr) return RemoteQuery(sql, controls);
  FUSION_ASSIGN_OR_RETURN(FusionQuery query, ParseFusionQuery(sql));
  return Query(query, controls);
}

Result<ClientAnswer> Client::RemoteQuery(const std::string& sql,
                                         const CallControls& controls,
                                         bool explain) {
  // Planning/statistics choices are the *service's* configuration — a
  // connected client cannot override them per call (every client shares one
  // session), and silently ignoring the override would be worse than
  // refusing it.
  if (controls.strategy.has_value() || controls.statistics.has_value()) {
    return Status::Unsupported(
        "per-call strategy/statistics overrides are not available over a "
        "fusionqd connection");
  }
  // The client side of the distributed trace: this span is the parent of
  // the daemon's service.request span. With local tracing off the context
  // is still minted and forwarded, so the daemon's trace has a stable root
  // id even when the client keeps no spans itself.
  ScopedSpan span(SpanCategory::kRpc, "client.query");
  std::lock_guard<std::mutex> lock(remote_->mutex);
  ClientRequest request;
  request.kind = ClientRequest::Kind::kSubmit;
  request.client_id = remote_->client_id;
  request.sql = sql;
  request.wait = true;
  request.explain = explain;
  if (remote_->server_features.Has(Feature::kTrace)) {
    const TraceContext context = Tracer::CurrentContext();
    request.trace_id = context.valid() ? context.trace_id : Tracer::MintId();
    request.parent_span = context.span_id;
  }
  if (remote_->server_features.Has(Feature::kIdempotency)) {
    // The idempotency key that makes this SUBMIT replay-safe: if the
    // connection dies mid-exchange, RemoteExchangeLocked reconnects and
    // re-sends the same request-id, and the service's dedup table hands
    // back the original execution's outcome.
    request.request_id = MintRequestId();
  }
  FUSION_ASSIGN_OR_RETURN(const ClientResponse response,
                          RemoteExchangeLocked(request));
  if (!response.ok) {
    return Status(response.error_code, response.error_message);
  }
  ClientAnswer out;
  for (const Value& v : response.items) out.items.Insert(v);
  out.cost = response.cost;
  out.source_queries = response.source_queries;
  out.cache_hits = response.cache_hits;
  out.cache_misses = response.cache_misses;
  out.cache_containment_hits = response.cache_containment_hits;
  out.items_sent = response.items_sent;
  out.items_received = response.items_received;
  out.calibration_cost = response.calibration_cost;
  out.complete = response.complete;
  out.explain_lines = response.explain_lines;
  return out;
}

Result<ClientAnswer> Client::QuerySqlExplained(const std::string& sql) {
  if (remote_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(remote_->mutex);
      if (!remote_->server_features.Has(Feature::kExplain)) {
        return Status::Unsupported(
            "server '" + server_ + "' does not speak the explain feature");
      }
    }
    return RemoteQuery(sql, CallControls{}, /*explain=*/true);
  }
  FUSION_ASSIGN_OR_RETURN(FusionQuery query, ParseFusionQuery(sql));
  FUSION_ASSIGN_OR_RETURN(ClientAnswer answer, Query(query, CallControls{}));
  PlanPrintNames names;
  for (const Condition& c : query.conditions()) {
    names.conditions.push_back(c.ToString());
  }
  const SourceCatalog& catalog = session_->mediator().catalog();
  for (size_t j = 0; j < catalog.size(); ++j) {
    names.sources.push_back(catalog.source(j).name());
  }
  if (answer.detail != nullptr) {
    answer.explain_lines = RenderExplainLines(*answer.detail, names);
  }
  return answer;
}

Result<std::string> Client::Stats() {
  if (remote_ == nullptr) {
    // Embedded: the process metrics are the stats; there is no serving
    // layer, hence no tenant SLO table.
    return RenderStatsText(MetricsRegistry::Global().Snapshot(), {});
  }
  std::lock_guard<std::mutex> lock(remote_->mutex);
  if (!remote_->server_features.Has(Feature::kStats)) {
    return Status::Unsupported(
        "server '" + server_ + "' does not speak the stats feature");
  }
  ClientRequest request;
  request.kind = ClientRequest::Kind::kStats;
  request.client_id = remote_->client_id;
  FUSION_ASSIGN_OR_RETURN(const ClientResponse response,
                          RemoteExchangeLocked(request));
  if (!response.ok) {
    return Status(response.error_code, response.error_message);
  }
  std::string text;
  for (const std::string& line : response.stats_lines) {
    text += line;
    text += '\n';
  }
  return text;
}

Result<std::string> Client::InvalidateSource(const std::string& source,
                                             uint64_t version) {
  if (remote_ == nullptr) {
    // Embedded: one session, no fleet, no fan-out — the version stamp has
    // nothing to guard, so every invalidation applies.
    FUSION_ASSIGN_OR_RETURN(
        const size_t index,
        session_->mediator().catalog().IndexOf(source));
    session_->InvalidateSource(index);
    return std::string("applied");
  }
  std::lock_guard<std::mutex> lock(remote_->mutex);
  if (!remote_->server_features.Has(Feature::kSharding)) {
    return Status::Unsupported(
        "server '" + server_ + "' does not speak the sharding feature");
  }
  ClientRequest request;
  request.kind = ClientRequest::Kind::kInvalidate;
  request.client_id = remote_->client_id;
  request.source = source;
  request.version = version;
  FUSION_ASSIGN_OR_RETURN(const ClientResponse response,
                          RemoteExchangeLocked(request));
  if (!response.ok) {
    return Status(response.error_code, response.error_message);
  }
  return response.state;
}

}  // namespace fusion
