#include "mediator/client.h"

#include "cli/catalog_config.h"
#include "common/str_util.h"
#include "obs/exposition.h"
#include "obs/trace.h"
#include "plan/classifier.h"
#include "query/parser.h"

namespace fusion {
namespace {

const char* CacheProvenanceName(char provenance) {
  switch (provenance) {
    case 'h':
      return "hit";
    case 'c':
      return "containment";
    case 'm':
      return "miss";
    default:
      return "-";
  }
}

}  // namespace

std::vector<std::string> RenderExplainLines(const QueryAnswer& answer,
                                            const PlanPrintNames& names) {
  const OptimizedPlan& optimized = answer.optimized;
  const ExecutionReport& report = answer.execution;
  std::vector<std::string> lines;
  lines.push_back(StrFormat(
      "plan %s (%s), estimated cost %.3f, measured cost %.3f",
      optimized.algorithm.c_str(), PlanClassName(optimized.plan_class),
      optimized.estimated_cost, report.ledger.total()));
  const std::vector<std::string> plan_lines =
      StrSplit(optimized.plan.ToString(names), '\n');
  // Plan::ToString prints exactly one line per op, so line k annotates with
  // op k's measurements.
  for (size_t k = 0; k < plan_lines.size(); ++k) {
    if (plan_lines[k].empty()) continue;
    std::string line = plan_lines[k];
    if (k < optimized.plan.num_ops()) {
      const double cost =
          k < report.per_op_cost.size() ? report.per_op_cost[k] : 0.0;
      const double ms = k < report.per_op_seconds.size()
                            ? report.per_op_seconds[k] * 1e3
                            : 0.0;
      const char provenance =
          k < report.per_op_cache.size() ? report.per_op_cache[k] : '-';
      line += StrFormat("   [cost %.3f, %.3f ms, cache %s]", cost, ms,
                        CacheProvenanceName(provenance));
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

Result<Client> Client::Builder::Build() {
  const int modes = (have_catalog_ ? 1 : 0) + (catalog_file_.empty() ? 0 : 1) +
                    (endpoint_.empty() ? 0 : 1);
  if (modes == 0) {
    return Status::InvalidArgument(
        "Client::Builder needs a catalog (Catalog / CatalogFile) or a "
        "service endpoint (Connect)");
  }
  if (modes > 1) {
    return Status::InvalidArgument(
        "Client::Builder: Catalog, CatalogFile, and Connect are mutually "
        "exclusive");
  }
  Client client;
  if (!endpoint_.empty()) {
    auto remote = std::make_unique<Remote>();
    FUSION_ASSIGN_OR_RETURN(remote->socket, DialTcp(endpoint_));
    remote->client_id = client_id_;
    // HELLO handshake: validates that the peer speaks FUSIONQ/1 before the
    // caller trusts the connection, and names the server for diagnostics.
    ClientRequest hello;
    hello.kind = ClientRequest::Kind::kHello;
    hello.client_id = client_id_;
    hello.features = ClientProtocolFeatures();
    FUSION_RETURN_IF_ERROR(remote->socket.Send(SerializeClientRequest(hello)));
    FUSION_ASSIGN_OR_RETURN(const std::string reply, remote->socket.Receive());
    FUSION_ASSIGN_OR_RETURN(const ClientResponse response,
                            ParseClientResponse(reply));
    if (!response.ok) {
      return Status(response.error_code, "hello: " + response.error_message);
    }
    client.server_ = response.server;
    client.server_features_ = response.features;
    for (const std::string& feature : response.features) {
      if (feature == kFeatureTrace) remote->server_traces = true;
      if (feature == kFeatureStats) remote->server_stats = true;
      if (feature == kFeatureExplain) remote->server_explain = true;
    }
    client.remote_ = std::move(remote);
    return client;
  }
  SourceCatalog catalog = std::move(catalog_);
  if (!catalog_file_.empty()) {
    FUSION_ASSIGN_OR_RETURN(catalog, LoadCatalogFromFile(catalog_file_));
  }
  if (catalog.empty()) {
    return Status::InvalidArgument("Client::Builder: catalog has no sources");
  }
  FUSION_RETURN_IF_ERROR(ValidateExecOptions(options_.execution));
  client.session_ = std::make_unique<QuerySession>(
      Mediator(std::move(catalog)), options_);
  return client;
}

ClientAnswer SummarizeAnswer(QueryAnswer answer) {
  ClientAnswer out;
  out.items = answer.items;
  out.cost = answer.execution.ledger.total();
  out.source_queries = answer.execution.ledger.num_queries();
  out.cache_hits = answer.execution.cache_hits;
  out.cache_misses = answer.execution.cache_misses;
  out.cache_containment_hits = answer.execution.cache_containment_hits;
  out.items_sent = answer.execution.ledger.total_items_sent();
  out.items_received = answer.execution.ledger.total_items_received();
  out.calibration_cost = answer.calibration_cost;
  out.complete = answer.execution.completeness.answer_complete;
  out.detail = std::make_shared<const QueryAnswer>(std::move(answer));
  return out;
}

Result<ClientAnswer> Client::Query(const FusionQuery& query,
                                   const CallControls& controls) {
  if (remote_ != nullptr) return RemoteQuery(query.ToSql(), controls);
  FUSION_ASSIGN_OR_RETURN(QueryAnswer answer,
                          session_->Answer(query, controls));
  return SummarizeAnswer(std::move(answer));
}

Result<ClientAnswer> Client::QuerySql(const std::string& sql,
                                      const CallControls& controls) {
  if (remote_ != nullptr) return RemoteQuery(sql, controls);
  FUSION_ASSIGN_OR_RETURN(FusionQuery query, ParseFusionQuery(sql));
  return Query(query, controls);
}

Result<ClientAnswer> Client::RemoteQuery(const std::string& sql,
                                         const CallControls& controls,
                                         bool explain) {
  // Planning/statistics choices are the *service's* configuration — a
  // connected client cannot override them per call (every client shares one
  // session), and silently ignoring the override would be worse than
  // refusing it.
  if (controls.strategy.has_value() || controls.statistics.has_value()) {
    return Status::Unsupported(
        "per-call strategy/statistics overrides are not available over a "
        "fusionqd connection");
  }
  // The client side of the distributed trace: this span is the parent of
  // the daemon's service.request span. With local tracing off the context
  // is still minted and forwarded, so the daemon's trace has a stable root
  // id even when the client keeps no spans itself.
  ScopedSpan span(SpanCategory::kRpc, "client.query");
  ClientRequest request;
  request.kind = ClientRequest::Kind::kSubmit;
  request.client_id = remote_->client_id;
  request.sql = sql;
  request.wait = true;
  request.explain = explain;
  if (remote_->server_traces) {
    const TraceContext context = Tracer::CurrentContext();
    request.trace_id = context.valid() ? context.trace_id : Tracer::MintId();
    request.parent_span = context.span_id;
  }
  std::lock_guard<std::mutex> lock(remote_->mutex);
  FUSION_RETURN_IF_ERROR(remote_->socket.Send(SerializeClientRequest(request)));
  FUSION_ASSIGN_OR_RETURN(const std::string reply, remote_->socket.Receive());
  FUSION_ASSIGN_OR_RETURN(const ClientResponse response,
                          ParseClientResponse(reply));
  if (!response.ok) {
    return Status(response.error_code, response.error_message);
  }
  ClientAnswer out;
  for (const Value& v : response.items) out.items.Insert(v);
  out.cost = response.cost;
  out.source_queries = response.source_queries;
  out.cache_hits = response.cache_hits;
  out.cache_misses = response.cache_misses;
  out.cache_containment_hits = response.cache_containment_hits;
  out.items_sent = response.items_sent;
  out.items_received = response.items_received;
  out.calibration_cost = response.calibration_cost;
  out.complete = response.complete;
  out.explain_lines = response.explain_lines;
  return out;
}

Result<ClientAnswer> Client::QuerySqlExplained(const std::string& sql) {
  if (remote_ != nullptr) {
    if (!remote_->server_explain) {
      return Status::Unsupported(
          "server '" + server_ + "' does not speak the explain feature");
    }
    return RemoteQuery(sql, CallControls{}, /*explain=*/true);
  }
  FUSION_ASSIGN_OR_RETURN(FusionQuery query, ParseFusionQuery(sql));
  FUSION_ASSIGN_OR_RETURN(ClientAnswer answer, Query(query, CallControls{}));
  PlanPrintNames names;
  for (const Condition& c : query.conditions()) {
    names.conditions.push_back(c.ToString());
  }
  const SourceCatalog& catalog = session_->mediator().catalog();
  for (size_t j = 0; j < catalog.size(); ++j) {
    names.sources.push_back(catalog.source(j).name());
  }
  if (answer.detail != nullptr) {
    answer.explain_lines = RenderExplainLines(*answer.detail, names);
  }
  return answer;
}

Result<std::string> Client::Stats() {
  if (remote_ == nullptr) {
    // Embedded: the process metrics are the stats; there is no serving
    // layer, hence no tenant SLO table.
    return RenderStatsText(MetricsRegistry::Global().Snapshot(), {});
  }
  if (!remote_->server_stats) {
    return Status::Unsupported(
        "server '" + server_ + "' does not speak the stats feature");
  }
  ClientRequest request;
  request.kind = ClientRequest::Kind::kStats;
  request.client_id = remote_->client_id;
  std::lock_guard<std::mutex> lock(remote_->mutex);
  FUSION_RETURN_IF_ERROR(remote_->socket.Send(SerializeClientRequest(request)));
  FUSION_ASSIGN_OR_RETURN(const std::string reply, remote_->socket.Receive());
  FUSION_ASSIGN_OR_RETURN(const ClientResponse response,
                          ParseClientResponse(reply));
  if (!response.ok) {
    return Status(response.error_code, response.error_message);
  }
  std::string text;
  for (const std::string& line : response.stats_lines) {
    text += line;
    text += '\n';
  }
  return text;
}

}  // namespace fusion
