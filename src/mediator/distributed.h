#ifndef FUSION_MEDIATOR_DISTRIBUTED_H_
#define FUSION_MEDIATOR_DISTRIBUTED_H_

#include <cstddef>
#include <vector>

#include "common/item_set.h"
#include "common/status.h"
#include "exec/executor.h"
#include "exec/source_call_cache.h"
#include "plan/plan.h"
#include "plan/plan_split.h"
#include "query/fusion_query.h"
#include "source/catalog.h"
#include "source/cost_ledger.h"

namespace fusion {

/// One shard of the mediator fleet, from the distributed planner's point of
/// view: the catalog replica it answers from and the source-call memo it
/// keeps warm. The catalogs must describe the *same* sources (the fleet is
/// replicated, not partitioned by data); what differs per shard is network
/// proximity and cache state.
struct ShardExecutor {
  const SourceCatalog* catalog = nullptr;
  /// Optional per-shard memo. Fresh answers a shard computes are published
  /// here, so re-running the split routes warm ops to warm shards.
  SourceCallCache* cache = nullptr;
};

/// What the fleet did while executing one split plan.
struct DistributedReport {
  ItemSet answer;
  /// Every shard's source charges merged in plan-op order — byte-comparable
  /// with the serial interpreter's ledger (the differential tests' oracle).
  CostLedger ledger;
  /// Cut variables shipped between shards (one per unique
  /// (var, consumer shard) crossing) and their total item count: the
  /// fleet's inter-shard traffic, proportional to answer sizes by the
  /// split invariant.
  size_t cross_shard_vars = 0;
  size_t cross_shard_items = 0;
  /// Plan ops executed by each shard (index-aligned with the shard vector).
  std::vector<size_t> per_shard_ops;
  size_t emulated_semijoins = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_containment_hits = 0;
  size_t retries_total = 0;
};

/// Runs `plan` across the shard fleet according to `split`: each op executes
/// on its assigned shard (against that shard's catalog replica, charging
/// that shard's calls to the merged ledger, memoizing into that shard's
/// cache), and only the split's cut variables — merge-attribute item sets —
/// conceptually travel between shards. Evaluation is eager and follows plan
/// order, so the answer and the merged ledger are byte-identical to the
/// serial `ExecutePlan(plan, catalog, query)` over any replica.
///
/// `options.cache` is ignored (each shard supplies its own);
/// `options.parallelism`, `lazy_short_circuit`, and degraded-mode execution
/// are rejected — the distributed runner keeps the strict eager semantics
/// that make fleet answers comparable across shard counts.
Result<DistributedReport> ExecutePlanDistributed(
    const Plan& plan, const FusionQuery& query, const PlanSplit& split,
    const std::vector<ShardExecutor>& shards, const ExecOptions& options);

}  // namespace fusion

#endif  // FUSION_MEDIATOR_DISTRIBUTED_H_
