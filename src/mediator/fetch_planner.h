#ifndef FUSION_MEDIATOR_FETCH_PLANNER_H_
#define FUSION_MEDIATOR_FETCH_PLANNER_H_

#include <vector>

#include "common/item_set.h"
#include "common/status.h"

namespace fusion {

/// One second-phase request: fetch full records for `items` from the source
/// with the given catalog index.
struct FetchAssignment {
  size_t source = 0;
  ItemSet items;
};

/// Plans the second phase of two-phase processing using the witness
/// knowledge gathered for free during phase 1 (ExecutionReport::
/// per_source_items): every answered item was returned by at least one
/// source, so that source provably holds a record for it.
///
/// Greedy weighted set cover: repeatedly pick the source whose known items
/// cover the most still-uncovered answers (ties to the lower index), assign
/// those answers to it, until everything is covered. Guarantees at least one
/// record per answer item while contacting as few sources as the greedy
/// cover needs — versus the naive broadcast that queries all n sources.
///
/// Note the completeness trade-off (documented in the mediator API): witness
/// fetching retrieves ≥1 record per item, not necessarily *every* record at
/// every source; use broadcast fetching when cross-source completeness
/// matters.
Result<std::vector<FetchAssignment>> PlanWitnessFetch(
    const std::vector<ItemSet>& per_source_items, const ItemSet& answer);

}  // namespace fusion

#endif  // FUSION_MEDIATOR_FETCH_PLANNER_H_
