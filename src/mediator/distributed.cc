#include "mediator/distributed.h"

#include <optional>
#include <string>
#include <utility>

#include "exec/exec_internal.h"
#include "obs/metrics.h"

namespace fusion {
namespace {

using exec_internal::CallContext;
using exec_internal::CallStats;

/// The distributed runner deliberately supports only the strict eager
/// interpreter profile: that is the mode whose answer and ledger are
/// provably byte-identical across any shard assignment, which is what the
/// fleet's differential oracle checks.
Status ValidateDistributedOptions(const ExecOptions& options) {
  FUSION_RETURN_IF_ERROR(ValidateExecOptions(options));
  if (options.parallelism != 1) {
    return Status::InvalidArgument(
        "distributed execution requires parallelism == 1 (each shard "
        "already overlaps with the others)");
  }
  if (options.lazy_short_circuit) {
    return Status::InvalidArgument(
        "distributed execution is eager: lazy short-circuiting would make "
        "shard ledgers depend on shipping order");
  }
  if (options.on_source_failure != SourceFailurePolicy::kFail) {
    return Status::InvalidArgument(
        "distributed execution does not support degraded answers; route "
        "degradable queries to a single shard");
  }
  return Status::Ok();
}

}  // namespace

Result<DistributedReport> ExecutePlanDistributed(
    const Plan& plan, const FusionQuery& query, const PlanSplit& split,
    const std::vector<ShardExecutor>& shards, const ExecOptions& options) {
  FUSION_RETURN_IF_ERROR(ValidateDistributedOptions(options));
  if (shards.empty()) {
    return Status::InvalidArgument("distributed execution needs >= 1 shard");
  }
  for (size_t s = 0; s < shards.size(); ++s) {
    if (shards[s].catalog == nullptr) {
      return Status::InvalidArgument("shard " + std::to_string(s) +
                                     " has no catalog replica");
    }
  }
  if (split.op_shard.size() != plan.ops().size()) {
    return Status::InvalidArgument(
        "plan split covers " + std::to_string(split.op_shard.size()) +
        " ops but the plan has " + std::to_string(plan.ops().size()));
  }
  for (const size_t shard : split.op_shard) {
    if (shard >= shards.size()) {
      return Status::InvalidArgument(
          "plan split assigns shard " + std::to_string(shard) +
          " but the fleet has " + std::to_string(shards.size()));
    }
  }

  DistributedReport report;
  report.per_shard_ops.assign(shards.size(), 0);
  CallStats stats;
  exec_internal::FaultState fault(options);

  // SSA variable slots, exactly like the serial interpreter. Conceptually
  // `items_` is partitioned across shards with cut variables shipped at
  // fragment boundaries; because the fleet here runs in one process, the
  // shipping shows up only in the cut-edge accounting below.
  std::vector<std::optional<ItemSet>> items(plan.vars().size());
  std::vector<std::optional<Relation>> relations(plan.vars().size());

  for (size_t k = 0; k < plan.ops().size(); ++k) {
    const PlanOp& op = plan.ops()[k];
    const size_t shard_index = split.op_shard[k];
    const ShardExecutor& shard = shards[shard_index];
    ++report.per_shard_ops[shard_index];

    // Each op charges through its executing shard's memo, so a warm shard
    // answers its fragment for free while a cold one pays full price.
    ExecOptions shard_options = options;
    shard_options.cache = shard.cache;

    auto context_for = [&](const char* op_name,
                           const SourceWrapper& src) {
      CallContext ctx;
      ctx.op = op_name;
      ctx.source_name = &src.name();
      ctx.ledger = &report.ledger;
      ctx.stats = &stats;
      ctx.retry = &shard_options.retry;
      ctx.fault = &fault;
      ctx.health = shard_options.health;
      ctx.source_index = op.source;
      return ctx;
    };

    const double cost_before = report.ledger.total();
    switch (op.kind) {
      case PlanOpKind::kSelect: {
        SourceWrapper& src =
            shard.catalog->source(static_cast<size_t>(op.source));
        const Condition& cond =
            query.conditions()[static_cast<size_t>(op.cond)];
        FUSION_ASSIGN_OR_RETURN(
            ItemSet result,
            exec_internal::CachedSelect(src, cond, query.merge_attribute(),
                                        shard_options, report.ledger,
                                        context_for("sq", src)));
        items[op.target] = std::move(result);
        break;
      }
      case PlanOpKind::kSemiJoin: {
        const ItemSet& candidates = *items[op.input];
        SourceWrapper& src =
            shard.catalog->source(static_cast<size_t>(op.source));
        const Condition& cond =
            query.conditions()[static_cast<size_t>(op.cond)];
        bool emulated = false;
        FUSION_ASSIGN_OR_RETURN(
            ItemSet result,
            exec_internal::CachedSemiJoin(
                src, cond, query.merge_attribute(), candidates, shard_options,
                report.ledger, context_for("sjq", src), &emulated));
        items[op.target] = std::move(result);
        if (emulated) {
          ++report.emulated_semijoins;
          static Counter& counter =
              MetricsRegistry::Global().counter(metrics::kEmulatedSemijoins);
          counter.Increment();
        }
        break;
      }
      case PlanOpKind::kLoad: {
        SourceWrapper& src =
            shard.catalog->source(static_cast<size_t>(op.source));
        FUSION_ASSIGN_OR_RETURN(
            Relation loaded,
            exec_internal::CachedLoad(src, shard_options, report.ledger,
                                      context_for("lq", src)));
        relations[op.target] = std::move(loaded);
        break;
      }
      case PlanOpKind::kLocalSelect: {
        if (!relations[op.input].has_value()) {
          return Status::Internal("local select over unloaded relation var");
        }
        FUSION_ASSIGN_OR_RETURN(
            ItemSet result,
            relations[op.input]->SelectItems(
                query.conditions()[static_cast<size_t>(op.cond)],
                query.merge_attribute()));
        items[op.target] = std::move(result);
        break;
      }
      case PlanOpKind::kUnion: {
        ItemSet acc;
        for (const int v : op.inputs) acc.UnionInPlace(*items[v]);
        items[op.target] = std::move(acc);
        break;
      }
      case PlanOpKind::kIntersect: {
        std::optional<ItemSet> acc;
        for (const int v : op.inputs) {
          acc = acc.has_value() ? ItemSet::Intersect(*acc, *items[v])
                                : *items[v];
        }
        items[op.target] = std::move(*acc);
        break;
      }
      case PlanOpKind::kDifference: {
        items[op.target] = ItemSet::Difference(*items[op.inputs[0]],
                                               *items[op.inputs[1]]);
        break;
      }
    }
    exec_internal::SleepForCost(report.ledger.total() - cost_before,
                                shard_options);
  }

  // Inter-shard traffic: every cut variable crossed the wire once per
  // consuming shard, carrying its merge-attribute item set.
  for (const PlanCutEdge& edge : split.cut_edges) {
    ++report.cross_shard_vars;
    if (items[edge.var].has_value()) {
      report.cross_shard_items += items[edge.var]->size();
    }
  }

  report.answer = *items[plan.result()];
  report.cache_hits = stats.cache_hits;
  report.cache_misses = stats.cache_misses;
  report.cache_containment_hits = stats.cache_containment_hits;
  report.retries_total = stats.retries;
  return report;
}

}  // namespace fusion
