#ifndef FUSION_MEDIATOR_SERVICE_H_
#define FUSION_MEDIATOR_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "mediator/client.h"
#include "mediator/session.h"
#include "obs/slo.h"
#include "protocol/chaos.h"
#include "protocol/client_protocol.h"
#include "protocol/socket.h"

namespace fusion {

/// The serving layer of fusionqd: multiplexes many concurrent clients onto
/// **one** shared QuerySession, so every client benefits from — and
/// contributes to — the same result cache, circuit breakers, and learned
/// statistics. Two clients submitting the same query concurrently cost one
/// set of source calls (the cache single-flights the overlap); a source
/// that trips its breaker under one client's traffic fast-fails everyone
/// else's calls too.
///
/// Request lifecycle:
///
///   Submit ──▶ admission (bounded queue; kUnavailable when saturated)
///          ──▶ per-client FIFO, clients drained round-robin (fair share:
///              a chatty client cannot starve an occasional one)
///          ──▶ execution on the service's ThreadPool, with a cooperative
///              cancellation token plumbed into the executor
///          ──▶ outcome retained for STATUS/Wait, evicted FIFO after
///              Options::max_retained completions
///
/// Surfaces: the programmatic Submit/Wait/Cancel/Status API (used by tests
/// and embedded drivers), the protocol-level Handle() mapping one FUSIONQ/1
/// request to one response, and ServeConnection() — the blocking
/// read-dispatch-reply loop fusionqd runs per accepted socket.
///
/// All public methods are thread-safe; one QueryService instance serves
/// every connection thread of the daemon.
class QueryService {
 public:
  struct Options {
    /// Server identity reported in the HELLO handshake.
    std::string server_name = "fusionqd";
    /// Executor workers: how many requests run concurrently. Each running
    /// request may itself use ClientOptions::execution.parallelism pool
    /// workers of its own for intra-query parallelism.
    int workers = 4;
    /// Admission bound: requests queued (admitted, not yet running) beyond
    /// which Submit sheds load with kUnavailable. Running requests do not
    /// count against the bound.
    size_t max_queue = 64;
    /// Completed requests retained for STATUS/Wait lookups before FIFO
    /// eviction.
    size_t max_retained = 256;
    /// Idempotency dedup entries retained — (client, request-id) pairs that
    /// map a re-SUBMIT after a reconnect back to its original outcome.
    /// Evicted FIFO; an evicted request-id re-executes (at-most-once within
    /// the window, at-least-once beyond it).
    size_t max_dedup = 1024;
    /// Stalled-peer guard for ServeConnection: a connection whose peer goes
    /// silent *mid-frame* for this long is dropped, so a torn write or a
    /// wedged client cannot pin a connection thread forever. Idle
    /// connections (no frame in progress) never time out. 0 disables.
    double stall_deadline_seconds = 10.0;
    /// The shared session's configuration (statistics, cache, breakers,
    /// execution policy) — one ClientOptions, same struct the embedded
    /// client uses.
    ClientOptions client;
  };

  /// One request's externally visible state.
  struct RequestStatus {
    /// "queued" | "running" | "done" | "failed" | "cancelled".
    std::string state;
    /// The outcome; meaningful once state is terminal ("done" carries the
    /// answer, "failed"/"cancelled" the error).
    Result<ClientAnswer> outcome = Status::Unavailable("not finished");
  };

  QueryService(Mediator mediator, const Options& options);
  /// Cancels everything outstanding, drains the pool, joins.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Per-submission extras beyond (client, sql): the distributed trace
  /// context the execution should join (0 = none — the request roots its
  /// own spans).
  struct SubmitOptions {
    uint64_t trace_id = 0;
    uint64_t parent_span = 0;
    /// Client-minted idempotency key (0 = none). A Submit whose
    /// (client_id, request_id) pair matches a retained earlier submission
    /// returns the *original* ticket without executing anything — the
    /// reconnect-replay path of FUSIONQ/1.
    uint64_t request_id = 0;
  };

  /// Admits one query for `client_id` and returns its ticket, or
  /// kUnavailable when the admission queue is full (load shedding — the
  /// client should back off and resubmit) or the service is shutting down.
  Result<uint64_t> Submit(const std::string& client_id,
                          const std::string& sql) {
    return Submit(client_id, sql, SubmitOptions{});
  }
  Result<uint64_t> Submit(const std::string& client_id, const std::string& sql,
                          const SubmitOptions& submit_options);

  /// Blocks until the ticket's request reaches a terminal state and
  /// returns its outcome. kNotFound for unknown/evicted tickets.
  Result<ClientAnswer> Wait(uint64_t ticket);

  /// Snapshot of a ticket's state without blocking.
  Result<RequestStatus> Poll(uint64_t ticket) const;

  /// Requests cooperative cancellation: a queued request never starts; a
  /// running one aborts at its next source-call admission (kCancelled) —
  /// its executor workers are freed, not leaked. Idempotent.
  Status Cancel(uint64_t ticket);

  /// Protocol entry point: one serialized FUSIONQ/1 request in, one
  /// serialized response out (never throws, never returns malformed text —
  /// parse and execution failures become ERROR responses). SUBMIT with
  /// wait=yes blocks until the answer: this is the driver that makes
  /// concurrent clients exercise the shared cache and breakers.
  std::string Handle(const std::string& request_text);

  /// Runs the per-connection serve loop: receive one request, Handle it,
  /// send the response, until the peer closes (or the socket errors).
  /// fusionqd runs this on one thread per accepted connection. Accepts a
  /// plain MessageSocket (implicitly wrapped, no chaos) or a ChaosSocket
  /// carrying a fault-injection policy; Options::stall_deadline_seconds is
  /// armed on the connection either way.
  void ServeConnection(ChaosSocket socket);

  /// Begins shutdown: rejects new submissions and cancels all outstanding
  /// requests. Called by the destructor; exposed for the daemon's signal
  /// path.
  void Shutdown();

  QuerySession& session() { return *session_; }
  const std::string& server_name() const { return options_.server_name; }
  /// Requests shed with kUnavailable at admission since construction.
  size_t shedded() const;
  /// Submits answered from the idempotency dedup table (no execution, no
  /// second metering) since construction.
  size_t idempotent_replays() const;

  /// Drops every cached call result and witness for the named source —
  /// the FUSIONQ/1 INVALIDATE verb, the fleet's cache-coherence path.
  /// Version semantics make fan-out replays idempotent: version 0 applies
  /// unconditionally; a version above the highest applied for that source
  /// applies and is recorded; anything at or below it is a stale no-op.
  /// Returns "applied" or "stale" (the response's `state`), kNotFound for
  /// an unknown source name.
  Result<std::string> Invalidate(const std::string& source_name,
                                 uint64_t version);
  /// INVALIDATEs applied / answered stale since construction.
  size_t invalidates_applied() const;
  size_t invalidates_stale() const;

  /// Per-tenant SLO accounting (keyed by the FUSIONQ/1 client id): latency
  /// histograms, metered cost, shed/deadline/cancel/degraded counts, and
  /// the rolling error rate. One registry per service, not process-global.
  const SloRegistry& slo() const { return slo_; }

  /// The versioned STATS text exposition this service serves over the wire
  /// (obs/exposition.h): every process metric plus this service's tenant
  /// SLO table. Exposed directly so embedded drivers and tests need no
  /// protocol round trip.
  std::string StatsText() const;

 private:
  struct Request {
    uint64_t ticket = 0;
    std::string client_id;
    std::string sql;
    /// Inbound distributed trace context; the execution's spans join it.
    uint64_t trace_id = 0;
    uint64_t parent_span = 0;
    /// Admission time — SLO latency is client-perceived (queueing included).
    std::chrono::steady_clock::time_point admitted_at;
    /// The cooperative cancellation token, plumbed into ExecOptions::cancel
    /// for the whole execution.
    std::atomic<bool> cancel{false};
    std::string state = "queued";  // guarded by QueryService::mutex_
    bool finished = false;         // guarded by QueryService::mutex_
    Result<ClientAnswer> outcome = Status::Unavailable("pending");
  };
  using RequestPtr = std::shared_ptr<Request>;

  /// Pops the next request in round-robin client order and runs it.
  /// Exactly one PopAndRun task is pool-submitted per admitted request, so
  /// the pool's queue length equals the admission queue length.
  void PopAndRun();
  /// Picks the next request under mutex_ (round-robin over clients with
  /// pending work); null when nothing is queued.
  RequestPtr NextLocked();
  void FinishLocked(const RequestPtr& request, std::string state,
                    Result<ClientAnswer> outcome);

  ClientResponse HandleParsed(const ClientRequest& request);

  /// Accounts one terminal request into slo_ (latency from admission,
  /// metered cost, outcome class, completeness). Called outside mutex_.
  void RecordSlo(const Request& request, const Result<ClientAnswer>& outcome);

  Options options_;
  std::unique_ptr<QuerySession> session_;
  SloRegistry slo_;

  mutable std::mutex mutex_;
  std::condition_variable finished_cv_;
  bool shutting_down_ = false;
  uint64_t next_ticket_ = 0;
  /// Per-client FIFO queues + the round-robin rotation over client ids
  /// with pending work (a client id appears in rotation_ iff its queue is
  /// non-empty; NextLocked pops the front id and re-appends it while work
  /// remains — textbook fair round-robin).
  std::map<std::string, std::deque<RequestPtr>> pending_;
  std::deque<std::string> rotation_;
  size_t queued_ = 0;
  size_t shedded_ = 0;
  size_t idempotent_replays_ = 0;
  /// Ticket index for STATUS/CANCEL/Wait; completed entries evicted FIFO.
  std::map<uint64_t, RequestPtr> by_ticket_;
  std::deque<uint64_t> retired_order_;
  /// Idempotency dedup: (client id, request-id) -> the original request.
  /// Holds the RequestPtr itself (not just the ticket) so a replay can
  /// recover the outcome even after by_ticket_ FIFO eviction. Bounded by
  /// Options::max_dedup, evicted FIFO via dedup_order_.
  std::map<std::pair<std::string, uint64_t>, RequestPtr> dedup_;
  std::deque<std::pair<std::string, uint64_t>> dedup_order_;
  /// Highest INVALIDATE version applied per source name (coherence stamps;
  /// version-0 unconditional invalidations are not recorded here).
  std::map<std::string, uint64_t> invalidate_versions_;
  size_t invalidates_applied_ = 0;
  size_t invalidates_stale_ = 0;

  /// Declared last so its destructor (drain + join) runs before the state
  /// it uses is torn down.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace fusion

#endif  // FUSION_MEDIATOR_SERVICE_H_
