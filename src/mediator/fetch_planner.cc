#include "mediator/fetch_planner.h"

namespace fusion {

Result<std::vector<FetchAssignment>> PlanWitnessFetch(
    const std::vector<ItemSet>& per_source_items, const ItemSet& answer) {
  std::vector<FetchAssignment> assignments;
  ItemSet uncovered = answer;
  while (!uncovered.empty()) {
    size_t best_source = per_source_items.size();
    ItemSet best_cover;
    for (size_t j = 0; j < per_source_items.size(); ++j) {
      ItemSet cover = ItemSet::Intersect(per_source_items[j], uncovered);
      if (cover.size() > best_cover.size()) {
        best_cover = std::move(cover);
        best_source = j;
      }
    }
    if (best_source == per_source_items.size() || best_cover.empty()) {
      return Status::Internal(
          "answer items without a witness source — phase-1 execution report "
          "is inconsistent with the answer set");
    }
    uncovered = ItemSet::Difference(uncovered, best_cover);
    assignments.push_back({best_source, std::move(best_cover)});
  }
  return assignments;
}

}  // namespace fusion
