#ifndef FUSION_MEDIATOR_SESSION_H_
#define FUSION_MEDIATOR_SESSION_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "exec/source_call_cache.h"
#include "exec/source_health.h"
#include "mediator/mediator.h"
#include "plan/cost_estimator.h"

namespace fusion {

/// A long-lived query session against one federation: the layer a client
/// application actually talks to. Across the queries of a session it
/// amortizes everything that a per-query mediator pays repeatedly:
///
///  - **answer reuse** — selection results are memoized in a shared
///    SourceCallCache, so overlapping queries stop re-asking sources;
///  - **statistics reuse + feedback** — per-(source, condition) result
///    sizes start from calibration probes (or priors) and are *updated from
///    execution observations*: every executed selection reveals the true
///    result size, so later queries plan with measured statistics instead
///    of estimates. No oracle access is needed anywhere — this is the
///    deployment configuration for sources behind the wrapper protocol;
///  - **source-health memory** — per-source circuit breakers (see
///    exec/source_health.h) are shared across the session's queries, so a
///    source that exhausted one query's retries fails the next query's
///    calls fast instead of re-paying the whole retry ladder.
///
/// The statistics-feedback loop makes the session a simple learning
/// optimizer: plans approach oracle quality as the session observes more
/// (condition, source) pairs. Feedback is *partial* — a pair evaluated by
/// semijoin reveals only |X ∩ S|, not |S|, and cached answers yield no new
/// observations — so convergence is to near-optimality, not exact parity
/// (tests pin a 1.3× band against the oracle plan after one round).
///
/// **Thread safety.** Answer()/AnswerSql() may be called concurrently from
/// many threads against one session — this is what the serving layer
/// (mediator/service.h) does, multiplexing every connected client onto one
/// shared session so they share the cache, the breakers, and the learned
/// statistics. The session knowledge maps are guarded by an internal mutex
/// (held only while snapshotting statistics into a per-query cost model and
/// while folding one execution's observations back in — never across source
/// calls); the cache and the breakers are internally synchronized already.
class QuerySession {
 public:
  struct Options {
    OptimizerStrategy strategy = OptimizerStrategy::kSjaPlus;
    /// Where planning statistics come from. nullopt (the default) runs the
    /// session-learned feedback loop described above. A fixed
    /// StatisticsMode instead routes through Mediator::BuildCostModel —
    /// oracle / parametric statistics for controlled experiments, or
    /// kCalibrated sampling probes whose metered traffic lands in
    /// QueryAnswer::calibration_cost. Execution observations are folded
    /// into the session statistics either way, so a session can calibrate
    /// first and go nullopt later without losing what it saw.
    std::optional<StatisticsMode> statistics;
    /// Probe budget etc. for statistics == kCalibrated.
    CalibrationOptions calibration;
    PostOptOptions postopt;
    /// Session cache and circuit breakers are attached automatically
    /// (execution.health, when left null, becomes the session's own).
    ExecOptions execution;
    /// Breaker thresholds for the session-owned SourceHealth.
    SourceHealth::Options health;
    /// Resource bounds for the session-owned SourceCallCache (byte budget,
    /// TTL). Defaults keep the cache unbounded, as before.
    SourceCallCache::Options cache;
    /// Attach the session cache to executions at all. Disable to keep every
    /// query's source traffic cold (each pays its full metered cost —
    /// the single-query CLI default) while still learning statistics and
    /// sharing breakers.
    bool use_cache = true;
    /// Re-optimize repeated queries against the cache: calls the memo can
    /// answer (exactly or by containment) are priced at zero, so the
    /// optimizer steers warm-cache plans through them (CacheAwareCostModel).
    /// Disable for strictly cache-oblivious planning — execution still uses
    /// the cache either way.
    bool cache_aware_optimization = true;
    /// Priors used for conditions never seen before (fraction of a source's
    /// cardinality assumed to satisfy an unknown condition).
    double default_selectivity = 0.2;
    /// Cardinality prior when a source has never been observed.
    double default_cardinality = 1000.0;
    /// Universe-size prior before any observation.
    double default_universe = 2000.0;
  };

  /// Per-call overrides, for callers that vary planning inputs query by
  /// query over one shared session (experiment drivers comparing
  /// strategies; the serving layer's CANCEL path).
  struct CallControls {
    /// Overrides Options::strategy for this call.
    std::optional<OptimizerStrategy> strategy;
    /// Overrides Options::statistics for this call (set to a fixed mode;
    /// there is no way — or need — to override a fixed session default
    /// back to session-learned per call).
    std::optional<StatisticsMode> statistics;
    /// Cooperative cancellation token, plumbed into ExecOptions::cancel:
    /// setting it makes the execution fail fast with kCancelled at the next
    /// source-call admission. Must outlive the call.
    const std::atomic<bool>* cancel = nullptr;
    /// Overrides ExecOptions::deadline_seconds when >= 0.
    double deadline_seconds = -1.0;
  };

  QuerySession(Mediator mediator, const Options& options)
      : mediator_(std::move(mediator)),
        options_(options),
        cache_(options.cache),
        health_(options.health) {}

  /// Optimizes with session statistics, executes with the session cache,
  /// and folds the execution's observations back into the statistics.
  /// Safe to call concurrently (see class comment).
  Result<QueryAnswer> Answer(const FusionQuery& query) {
    return Answer(query, CallControls{});
  }
  Result<QueryAnswer> Answer(const FusionQuery& query,
                             const CallControls& controls);
  Result<QueryAnswer> AnswerSql(const std::string& sql) {
    return AnswerSql(sql, CallControls{});
  }
  Result<QueryAnswer> AnswerSql(const std::string& sql,
                                const CallControls& controls);

  const Mediator& mediator() const { return mediator_; }
  /// Mutable mediator access, for the two-phase protocol's second phase
  /// (FetchRecords issues fresh source traffic outside any session query).
  Mediator& mediator() { return mediator_; }
  const SourceCallCache& cache() const { return cache_; }
  const SourceHealth& health() const { return health_; }
  size_t observed_conditions() const {
    std::lock_guard<std::mutex> lock(knowledge_mutex_);
    return observed_result_size_.size();
  }

  /// Drops every memoized answer (all sources) — e.g. after bulk updates.
  /// Safe while queries are running; see SourceCallCache::Clear.
  void ResetCache() { cache_.Clear(); }
  /// Drops one source's memoized answers and fences its in-flight calls —
  /// the hook to call when a source reports its data changed.
  void InvalidateSource(size_t source) { cache_.Invalidate(source); }

 private:
  /// Builds the per-query parametric model from session knowledge.
  /// Caller must hold knowledge_mutex_.
  Result<ParametricCostModel> BuildSessionModel(const FusionQuery& query);

  /// What the cache can answer for this query's (condition, source) pairs,
  /// for cache-aware optimization.
  QueryCacheView BuildCacheView(const FusionQuery& query);

  /// Learns from one execution: exact result sizes for every selection the
  /// plan issued, source cardinalities from loads, and the universe lower
  /// bound from all observed items. Takes knowledge_mutex_ itself.
  void Learn(const FusionQuery& query, const OptimizedPlan& plan,
             const ExecutionReport& report);

  Mediator mediator_;
  Options options_;
  SourceCallCache cache_;
  SourceHealth health_;

  // Session knowledge, shared by every concurrent Answer(). Keys use
  // canonical condition text. Guarded by knowledge_mutex_.
  mutable std::mutex knowledge_mutex_;
  std::map<std::pair<size_t, std::string>, double> observed_result_size_;
  std::map<size_t, double> observed_cardinality_;
  ItemSet observed_universe_;

  /// Last executed plan per (strategy, canonical query), FIFO-bounded. On a
  /// repeated query the memoized plan's calls are exact cache hits, so
  /// cache-aware optimization prefers it over an equally-priced fresh plan
  /// whose semijoin chains would miss the cached anchors. Guarded by
  /// knowledge_mutex_.
  static constexpr size_t kPlanMemoCapacity = 128;
  std::map<std::string, OptimizedPlan> plan_memo_;
  std::deque<std::string> plan_memo_order_;
};

}  // namespace fusion

#endif  // FUSION_MEDIATOR_SESSION_H_
