#include "mediator/service.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fusion {
namespace {

void SetQueueGauges(size_t queued, size_t active_clients) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Gauge& depth = registry.gauge(metrics::kServiceQueueDepth);
  static Gauge& clients = registry.gauge(metrics::kServiceActiveClients);
  depth.Set(static_cast<double>(queued));
  clients.Set(static_cast<double>(active_clients));
}

}  // namespace

QueryService::QueryService(Mediator mediator, const Options& options)
    : options_(options),
      session_(std::make_unique<QuerySession>(std::move(mediator),
                                              options.client)),
      pool_(std::make_unique<ThreadPool>(options.workers)) {}

QueryService::~QueryService() {
  Shutdown();
  // Drain + join: every admitted request has a PopAndRun task; with all
  // cancellation tokens set they finish promptly (a running execution
  // aborts at its next source-call admission).
  pool_.reset();
}

void QueryService::Shutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  shutting_down_ = true;
  for (auto& [ticket, request] : by_ticket_) {
    if (!request->finished) {
      request->cancel.store(true, std::memory_order_relaxed);
    }
  }
}

Result<uint64_t> QueryService::Submit(const std::string& client_id,
                                      const std::string& sql) {
  RequestPtr request;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      return Status::Unavailable("service is shutting down");
    }
    if (queued_ >= options_.max_queue) {
      ++shedded_;
      static Counter& shed =
          MetricsRegistry::Global().counter(metrics::kServiceSheddedTotal);
      shed.Increment();
      return Status::Unavailable(
          "service saturated (" + std::to_string(queued_) +
          " requests queued); resubmit later");
    }
    request = std::make_shared<Request>();
    request->ticket = ++next_ticket_;
    request->client_id = client_id;
    request->sql = sql;
    by_ticket_[request->ticket] = request;
    std::deque<RequestPtr>& queue = pending_[client_id];
    if (queue.empty()) rotation_.push_back(client_id);
    queue.push_back(request);
    ++queued_;
    SetQueueGauges(queued_, pending_.size());
    static Counter& accepted =
        MetricsRegistry::Global().counter(metrics::kServiceRequestsTotal);
    accepted.Increment();
  }
  pool_->Submit([this] { PopAndRun(); });
  return request->ticket;
}

QueryService::RequestPtr QueryService::NextLocked() {
  while (!rotation_.empty()) {
    const std::string client = std::move(rotation_.front());
    rotation_.pop_front();
    auto it = pending_.find(client);
    if (it == pending_.end() || it->second.empty()) {
      pending_.erase(client);
      continue;
    }
    RequestPtr request = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) {
      pending_.erase(it);
    } else {
      rotation_.push_back(client);  // more work: back of the rotation
    }
    --queued_;
    SetQueueGauges(queued_, pending_.size());
    return request;
  }
  return nullptr;
}

void QueryService::FinishLocked(const RequestPtr& request, std::string state,
                                Result<ClientAnswer> outcome) {
  request->state = std::move(state);
  request->outcome = std::move(outcome);
  request->finished = true;
  retired_order_.push_back(request->ticket);
  while (retired_order_.size() > options_.max_retained) {
    by_ticket_.erase(retired_order_.front());
    retired_order_.pop_front();
  }
  finished_cv_.notify_all();
}

void QueryService::PopAndRun() {
  RequestPtr request;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    request = NextLocked();
    if (request == nullptr) return;  // spurious: request already consumed
    if (request->cancel.load(std::memory_order_relaxed)) {
      static Counter& cancelled = MetricsRegistry::Global().counter(
          metrics::kServiceCancelledTotal);
      cancelled.Increment();
      FinishLocked(request, "cancelled",
                   Status::Cancelled("cancelled before execution"));
      return;
    }
    request->state = "running";
  }
  Result<ClientAnswer> outcome = [&]() -> Result<ClientAnswer> {
    ScopedSpan span(SpanCategory::kRpc, "service.request");
    if (span.active()) {
      span.AddAttr("client", request->client_id);
      span.AddAttr("ticket", static_cast<int64_t>(request->ticket));
    }
    CallControls controls;
    controls.cancel = &request->cancel;
    FUSION_ASSIGN_OR_RETURN(QueryAnswer answer,
                            session_->AnswerSql(request->sql, controls));
    return SummarizeAnswer(std::move(answer));
  }();
  std::lock_guard<std::mutex> lock(mutex_);
  const bool was_cancelled =
      !outcome.ok() && outcome.status().code() == StatusCode::kCancelled;
  if (was_cancelled) {
    static Counter& cancelled =
        MetricsRegistry::Global().counter(metrics::kServiceCancelledTotal);
    cancelled.Increment();
  }
  FinishLocked(request,
               outcome.ok() ? "done" : (was_cancelled ? "cancelled" : "failed"),
               std::move(outcome));
}

Result<ClientAnswer> QueryService::Wait(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = by_ticket_.find(ticket);
  if (it == by_ticket_.end()) {
    return Status::NotFound("unknown ticket " + std::to_string(ticket));
  }
  const RequestPtr request = it->second;  // keep alive across eviction
  finished_cv_.wait(lock, [&] { return request->finished; });
  return request->outcome;
}

Result<QueryService::RequestStatus> QueryService::Poll(uint64_t ticket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_ticket_.find(ticket);
  if (it == by_ticket_.end()) {
    return Status::NotFound("unknown ticket " + std::to_string(ticket));
  }
  RequestStatus status;
  status.state = it->second->state;
  if (it->second->finished) status.outcome = it->second->outcome;
  return status;
}

Status QueryService::Cancel(uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_ticket_.find(ticket);
  if (it == by_ticket_.end()) {
    return Status::NotFound("unknown ticket " + std::to_string(ticket));
  }
  // Cooperative: the flag is checked when the request is popped and at
  // every source-call admission of a running execution. Idempotent, and a
  // no-op on finished requests.
  it->second->cancel.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

size_t QueryService::shedded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shedded_;
}

ClientResponse QueryService::HandleParsed(const ClientRequest& request) {
  const std::string client_id =
      request.client_id.empty() ? "anon" : request.client_id;
  switch (request.kind) {
    case ClientRequest::Kind::kHello: {
      ClientResponse response;
      response.server = options_.server_name;
      return response;
    }
    case ClientRequest::Kind::kSubmit: {
      if (request.sql.empty()) {
        return ClientErrorResponse(
            Status::InvalidArgument("SUBMIT requires an sql line"));
      }
      const Result<uint64_t> ticket = Submit(client_id, request.sql);
      if (!ticket.ok()) return ClientErrorResponse(ticket.status());
      if (!request.wait) {
        ClientResponse response;
        response.ticket = *ticket;
        response.state = "queued";
        return response;
      }
      Result<ClientAnswer> outcome = Wait(*ticket);
      if (!outcome.ok()) {
        ClientResponse response = ClientErrorResponse(outcome.status());
        response.ticket = *ticket;
        return response;
      }
      ClientResponse response;
      response.ticket = *ticket;
      response.state = "done";
      for (const Value& v : outcome->items) response.items.push_back(v);
      response.cost = outcome->cost;
      response.source_queries = outcome->source_queries;
      response.cache_hits = outcome->cache_hits;
      response.cache_misses = outcome->cache_misses;
      response.items_sent = outcome->items_sent;
      response.items_received = outcome->items_received;
      response.calibration_cost = outcome->calibration_cost;
      response.complete = outcome->complete;
      return response;
    }
    case ClientRequest::Kind::kStatus: {
      const Result<RequestStatus> status = Poll(request.ticket);
      if (!status.ok()) return ClientErrorResponse(status.status());
      ClientResponse response;
      if (status->state == "done") {
        const ClientAnswer& answer = *status->outcome;
        for (const Value& v : answer.items) response.items.push_back(v);
        response.cost = answer.cost;
        response.source_queries = answer.source_queries;
        response.cache_hits = answer.cache_hits;
        response.cache_misses = answer.cache_misses;
        response.items_sent = answer.items_sent;
        response.items_received = answer.items_received;
        response.calibration_cost = answer.calibration_cost;
        response.complete = answer.complete;
      } else if (status->state == "failed" || status->state == "cancelled") {
        response = ClientErrorResponse(status->outcome.status());
      }
      response.ticket = request.ticket;
      response.state = status->state;
      return response;
    }
    case ClientRequest::Kind::kCancel: {
      const Status cancelled = Cancel(request.ticket);
      if (!cancelled.ok()) return ClientErrorResponse(cancelled);
      ClientResponse response;
      response.ticket = request.ticket;
      const Result<RequestStatus> status = Poll(request.ticket);
      response.state = status.ok() ? status->state : "cancelled";
      return response;
    }
  }
  return ClientErrorResponse(Status::Internal("unknown request kind"));
}

std::string QueryService::Handle(const std::string& request_text) {
  const Result<ClientRequest> request = ParseClientRequest(request_text);
  if (!request.ok()) {
    return SerializeClientResponse(ClientErrorResponse(request.status()));
  }
  return SerializeClientResponse(HandleParsed(*request));
}

void QueryService::ServeConnection(MessageSocket socket) {
  for (;;) {
    const Result<std::string> message = socket.Receive();
    if (!message.ok()) return;  // peer closed (or transport error)
    const std::string response = Handle(*message);
    if (!socket.Send(response).ok()) return;
  }
}

}  // namespace fusion
