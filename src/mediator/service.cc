#include "mediator/service.h"

#include <chrono>
#include <utility>

#include "common/str_util.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/parser.h"

namespace fusion {
namespace {

void SetQueueGauges(size_t queued, size_t active_clients) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Gauge& depth = registry.gauge(metrics::kServiceQueueDepth);
  static Gauge& clients = registry.gauge(metrics::kServiceActiveClients);
  depth.Set(static_cast<double>(queued));
  clients.Set(static_cast<double>(active_clients));
}

/// Builds the display names the explain renderer wants: condition texts by
/// re-parsing the sql (best-effort — an unparsable query just falls back to
/// c1..cm), source names from the shared session's catalog.
std::vector<std::string> ExplainLinesFor(const std::string& sql,
                                         const QuerySession& session,
                                         const QueryAnswer& answer) {
  PlanPrintNames names;
  const auto query = ParseFusionQuery(sql);
  if (query.ok()) {
    for (const Condition& c : query->conditions()) {
      names.conditions.push_back(c.ToString());
    }
  }
  const SourceCatalog& catalog = session.mediator().catalog();
  for (size_t j = 0; j < catalog.size(); ++j) {
    names.sources.push_back(catalog.source(j).name());
  }
  return RenderExplainLines(answer, names);
}

}  // namespace

QueryService::QueryService(Mediator mediator, const Options& options)
    : options_(options),
      session_(std::make_unique<QuerySession>(std::move(mediator),
                                              options.client)),
      pool_(std::make_unique<ThreadPool>(options.workers)) {}

QueryService::~QueryService() {
  Shutdown();
  // Drain + join: every admitted request has a PopAndRun task; with all
  // cancellation tokens set they finish promptly (a running execution
  // aborts at its next source-call admission).
  pool_.reset();
}

void QueryService::Shutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  shutting_down_ = true;
  for (auto& [ticket, request] : by_ticket_) {
    if (!request->finished) {
      request->cancel.store(true, std::memory_order_relaxed);
    }
  }
}

Result<uint64_t> QueryService::Submit(const std::string& client_id,
                                      const std::string& sql,
                                      const SubmitOptions& submit_options) {
  RequestPtr request;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      return Status::Unavailable("service is shutting down");
    }
    if (submit_options.request_id != 0) {
      const auto key = std::make_pair(client_id, submit_options.request_id);
      const auto hit = dedup_.find(key);
      if (hit != dedup_.end()) {
        // Idempotent replay: a client that lost its connection after (or
        // while) submitting re-sends the same request-id; hand back the
        // original ticket so Wait resolves to the first execution's outcome
        // — nothing runs twice, nothing is metered twice.
        const RequestPtr& original = hit->second;
        ++idempotent_replays_;
        static Counter& replays = MetricsRegistry::Global().counter(
            metrics::kIdempotentReplaysTotal);
        replays.Increment();
        // Re-register the ticket if it aged out of by_ticket_, so the
        // replaying caller's Wait/Poll still resolve. (A finished request
        // re-enters the retirement FIFO; double entries there are benign —
        // the second eviction pass finds nothing to erase.)
        if (by_ticket_.find(original->ticket) == by_ticket_.end()) {
          by_ticket_[original->ticket] = original;
          if (original->finished) retired_order_.push_back(original->ticket);
        }
        return original->ticket;
      }
    }
    if (queued_ >= options_.max_queue) {
      ++shedded_;
      static Counter& shed =
          MetricsRegistry::Global().counter(metrics::kServiceSheddedTotal);
      shed.Increment();
      slo_.RecordShed(client_id);
      return Status::Unavailable(
          "service saturated (" + std::to_string(queued_) +
          " requests queued); resubmit later");
    }
    request = std::make_shared<Request>();
    request->ticket = ++next_ticket_;
    request->client_id = client_id;
    request->sql = sql;
    request->trace_id = submit_options.trace_id;
    request->parent_span = submit_options.parent_span;
    request->admitted_at = std::chrono::steady_clock::now();
    by_ticket_[request->ticket] = request;
    if (submit_options.request_id != 0) {
      const auto key = std::make_pair(client_id, submit_options.request_id);
      dedup_[key] = request;
      dedup_order_.push_back(key);
      while (dedup_order_.size() > options_.max_dedup) {
        dedup_.erase(dedup_order_.front());
        dedup_order_.pop_front();
      }
    }
    std::deque<RequestPtr>& queue = pending_[client_id];
    if (queue.empty()) rotation_.push_back(client_id);
    queue.push_back(request);
    ++queued_;
    SetQueueGauges(queued_, pending_.size());
    static Counter& accepted =
        MetricsRegistry::Global().counter(metrics::kServiceRequestsTotal);
    accepted.Increment();
  }
  pool_->Submit([this] { PopAndRun(); });
  return request->ticket;
}

QueryService::RequestPtr QueryService::NextLocked() {
  while (!rotation_.empty()) {
    const std::string client = std::move(rotation_.front());
    rotation_.pop_front();
    auto it = pending_.find(client);
    if (it == pending_.end() || it->second.empty()) {
      pending_.erase(client);
      continue;
    }
    RequestPtr request = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) {
      pending_.erase(it);
    } else {
      rotation_.push_back(client);  // more work: back of the rotation
    }
    --queued_;
    SetQueueGauges(queued_, pending_.size());
    return request;
  }
  return nullptr;
}

void QueryService::FinishLocked(const RequestPtr& request, std::string state,
                                Result<ClientAnswer> outcome) {
  request->state = std::move(state);
  request->outcome = std::move(outcome);
  request->finished = true;
  retired_order_.push_back(request->ticket);
  while (retired_order_.size() > options_.max_retained) {
    by_ticket_.erase(retired_order_.front());
    retired_order_.pop_front();
  }
  finished_cv_.notify_all();
}

void QueryService::PopAndRun() {
  RequestPtr request;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    request = NextLocked();
    if (request == nullptr) return;  // spurious: request already consumed
    if (request->cancel.load(std::memory_order_relaxed)) {
      static Counter& cancelled = MetricsRegistry::Global().counter(
          metrics::kServiceCancelledTotal);
      cancelled.Increment();
      const Result<ClientAnswer> never_ran =
          Status::Cancelled("cancelled before execution");
      RecordSlo(*request, never_ran);
      FinishLocked(request, "cancelled", never_ran);
      return;
    }
    request->state = "running";
  }
  Result<ClientAnswer> outcome = [&]() -> Result<ClientAnswer> {
    // Adopt the client's trace context (no-op when the SUBMIT carried none)
    // so the service/session/exec/source-RPC spans underneath — and the
    // contexts forwarded further to source servers — join the client's
    // trace rather than rooting a local one.
    TraceContextScope trace_scope(
        TraceContext{request->trace_id, request->parent_span});
    ScopedSpan span(SpanCategory::kRpc, "service.request");
    if (span.active()) {
      span.AddAttr("client", request->client_id);
      span.AddAttr("ticket", static_cast<int64_t>(request->ticket));
    }
    CallControls controls;
    controls.cancel = &request->cancel;
    FUSION_ASSIGN_OR_RETURN(QueryAnswer answer,
                            session_->AnswerSql(request->sql, controls));
    return SummarizeAnswer(std::move(answer));
  }();
  RecordSlo(*request, outcome);
  std::lock_guard<std::mutex> lock(mutex_);
  const bool was_cancelled =
      !outcome.ok() && outcome.status().code() == StatusCode::kCancelled;
  if (was_cancelled) {
    static Counter& cancelled =
        MetricsRegistry::Global().counter(metrics::kServiceCancelledTotal);
    cancelled.Increment();
  }
  FinishLocked(request,
               outcome.ok() ? "done" : (was_cancelled ? "cancelled" : "failed"),
               std::move(outcome));
}

Result<ClientAnswer> QueryService::Wait(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = by_ticket_.find(ticket);
  if (it == by_ticket_.end()) {
    return Status::NotFound("unknown ticket " + std::to_string(ticket));
  }
  const RequestPtr request = it->second;  // keep alive across eviction
  finished_cv_.wait(lock, [&] { return request->finished; });
  return request->outcome;
}

Result<QueryService::RequestStatus> QueryService::Poll(uint64_t ticket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_ticket_.find(ticket);
  if (it == by_ticket_.end()) {
    return Status::NotFound("unknown ticket " + std::to_string(ticket));
  }
  RequestStatus status;
  status.state = it->second->state;
  if (it->second->finished) status.outcome = it->second->outcome;
  return status;
}

Status QueryService::Cancel(uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_ticket_.find(ticket);
  if (it == by_ticket_.end()) {
    return Status::NotFound("unknown ticket " + std::to_string(ticket));
  }
  // Cooperative: the flag is checked when the request is popped and at
  // every source-call admission of a running execution. Idempotent, and a
  // no-op on finished requests.
  it->second->cancel.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

size_t QueryService::shedded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shedded_;
}

size_t QueryService::idempotent_replays() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return idempotent_replays_;
}

Result<std::string> QueryService::Invalidate(const std::string& source_name,
                                             uint64_t version) {
  FUSION_ASSIGN_OR_RETURN(
      const size_t index,
      session_->mediator().catalog().IndexOf(source_name));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (version != 0) {
      uint64_t& applied = invalidate_versions_[source_name];
      if (version <= applied) {
        // A fan-out replay (or reordered duplicate) of a version already
        // applied: answering `stale` without touching the cache is what
        // makes router retries and at-least-once delivery safe.
        ++invalidates_stale_;
        static Counter& stale = MetricsRegistry::Global().counter(
            metrics::kInvalidatesStaleTotal);
        stale.Increment();
        return std::string("stale");
      }
      applied = version;
    }
    ++invalidates_applied_;
    static Counter& applied_counter =
        MetricsRegistry::Global().counter(metrics::kInvalidatesAppliedTotal);
    applied_counter.Increment();
  }
  // Outside mutex_: the session's cache has its own locking, and dropping
  // entries can contend with running executions.
  session_->InvalidateSource(index);
  return std::string("applied");
}

size_t QueryService::invalidates_applied() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invalidates_applied_;
}

size_t QueryService::invalidates_stale() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invalidates_stale_;
}

void QueryService::RecordSlo(const Request& request,
                             const Result<ClientAnswer>& outcome) {
  const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - request.admitted_at)
          .count();
  const bool ok = outcome.ok();
  slo_.RecordCompletion(request.client_id, latency_ms,
                        ok ? outcome->cost : 0.0, ok,
                        ok ? StatusCode::kOk : outcome.status().code(),
                        ok ? outcome->complete : true);
}

std::string QueryService::StatsText() const {
  return RenderStatsText(MetricsRegistry::Global().Snapshot(),
                         slo_.Snapshot());
}

ClientResponse QueryService::HandleParsed(const ClientRequest& request) {
  const std::string client_id =
      request.client_id.empty() ? "anon" : request.client_id;
  switch (request.kind) {
    case ClientRequest::Kind::kHello: {
      // Registering here (not just at completion) makes a connected-but-idle
      // tenant visible in STATS with zero counts.
      slo_.Register(client_id);
      ClientResponse response;
      response.server = options_.server_name;
      response.features = ClientProtocolFeatures();
      return response;
    }
    case ClientRequest::Kind::kSubmit: {
      if (request.sql.empty()) {
        return ClientErrorResponse(
            Status::InvalidArgument("SUBMIT requires an sql line"));
      }
      SubmitOptions submit_options;
      submit_options.trace_id = request.trace_id;
      submit_options.parent_span = request.parent_span;
      submit_options.request_id = request.request_id;
      const Result<uint64_t> ticket =
          Submit(client_id, request.sql, submit_options);
      if (!ticket.ok()) return ClientErrorResponse(ticket.status());
      if (!request.wait) {
        ClientResponse response;
        response.ticket = *ticket;
        response.state = "queued";
        return response;
      }
      Result<ClientAnswer> outcome = Wait(*ticket);
      if (!outcome.ok()) {
        ClientResponse response = ClientErrorResponse(outcome.status());
        response.ticket = *ticket;
        return response;
      }
      ClientResponse response;
      response.ticket = *ticket;
      response.state = "done";
      for (const Value& v : outcome->items) response.items.push_back(v);
      response.cost = outcome->cost;
      response.source_queries = outcome->source_queries;
      response.cache_hits = outcome->cache_hits;
      response.cache_misses = outcome->cache_misses;
      response.cache_containment_hits = outcome->cache_containment_hits;
      response.items_sent = outcome->items_sent;
      response.items_received = outcome->items_received;
      response.calibration_cost = outcome->calibration_cost;
      response.complete = outcome->complete;
      if (request.explain && outcome->detail != nullptr) {
        response.explain_lines =
            ExplainLinesFor(request.sql, *session_, *outcome->detail);
      }
      return response;
    }
    case ClientRequest::Kind::kStatus: {
      const Result<RequestStatus> status = Poll(request.ticket);
      if (!status.ok()) return ClientErrorResponse(status.status());
      ClientResponse response;
      if (status->state == "done") {
        const ClientAnswer& answer = *status->outcome;
        for (const Value& v : answer.items) response.items.push_back(v);
        response.cost = answer.cost;
        response.source_queries = answer.source_queries;
        response.cache_hits = answer.cache_hits;
        response.cache_misses = answer.cache_misses;
        response.cache_containment_hits = answer.cache_containment_hits;
        response.items_sent = answer.items_sent;
        response.items_received = answer.items_received;
        response.calibration_cost = answer.calibration_cost;
        response.complete = answer.complete;
      } else if (status->state == "failed" || status->state == "cancelled") {
        response = ClientErrorResponse(status->outcome.status());
      }
      response.ticket = request.ticket;
      response.state = status->state;
      return response;
    }
    case ClientRequest::Kind::kCancel: {
      const Status cancelled = Cancel(request.ticket);
      if (!cancelled.ok()) return ClientErrorResponse(cancelled);
      ClientResponse response;
      response.ticket = request.ticket;
      const Result<RequestStatus> status = Poll(request.ticket);
      response.state = status.ok() ? status->state : "cancelled";
      return response;
    }
    case ClientRequest::Kind::kStats: {
      ClientResponse response;
      response.server = options_.server_name;
      for (const std::string& line : StrSplit(StatsText(), '\n')) {
        if (!line.empty()) response.stats_lines.push_back(line);
      }
      return response;
    }
    case ClientRequest::Kind::kInvalidate: {
      if (request.source.empty()) {
        return ClientErrorResponse(
            Status::InvalidArgument("INVALIDATE requires a source line"));
      }
      const Result<std::string> state =
          Invalidate(request.source, request.version);
      if (!state.ok()) return ClientErrorResponse(state.status());
      ClientResponse response;
      response.state = *state;
      return response;
    }
  }
  return ClientErrorResponse(Status::Internal("unknown request kind"));
}

std::string QueryService::Handle(const std::string& request_text) {
  const Result<ClientRequest> request = ParseClientRequest(request_text);
  if (!request.ok()) {
    return SerializeClientResponse(ClientErrorResponse(request.status()));
  }
  return SerializeClientResponse(HandleParsed(*request));
}

void QueryService::ServeConnection(ChaosSocket socket) {
  if (socket.valid()) {
    socket.inner().SetReceiveLimit(8 * kMaxClientProtocolLineBytes);
    if (options_.stall_deadline_seconds > 0.0) {
      // Best-effort: a failed setsockopt leaves the connection unguarded,
      // not unserved.
      (void)socket.inner().SetStallDeadline(options_.stall_deadline_seconds);
    }
  }
  for (;;) {
    const Result<std::string> message = socket.Receive();
    if (!message.ok()) return;  // peer closed, stalled, or transport error
    const std::string response = Handle(*message);
    if (!socket.Send(response).ok()) return;
  }
}

}  // namespace fusion
