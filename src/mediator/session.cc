#include "mediator/session.h"

#include <algorithm>

#include "obs/trace.h"
#include "query/parser.h"
#include "source/simulated_source.h"

namespace fusion {

Result<ParametricCostModel> QuerySession::BuildSessionModel(
    const FusionQuery& query) {
  const SourceCatalog& catalog = mediator_.catalog();
  const size_t m = query.num_conditions();
  std::vector<SourceParams> params;
  params.reserve(catalog.size());
  for (size_t j = 0; j < catalog.size(); ++j) {
    const SourceWrapper& src = catalog.source(j);
    SourceParams p;
    p.capabilities = src.capabilities();
    // Network parameters: take the simulated source's profile when exposed;
    // otherwise keep the NetworkProfile defaults as priors (a deployment
    // would calibrate them — see stats/calibration).
    if (const SimulatedSource* sim = src.AsSimulated()) {
      p.network = sim->network();
    }
    const auto card_it = observed_cardinality_.find(j);
    p.cardinality = card_it != observed_cardinality_.end()
                        ? card_it->second
                        : options_.default_cardinality;
    p.result_size.reserve(m);
    for (const Condition& cond : query.conditions()) {
      const auto it =
          observed_result_size_.find({j, cond.ToString()});
      p.result_size.push_back(it != observed_result_size_.end()
                                  ? it->second
                                  : p.cardinality *
                                        options_.default_selectivity);
    }
    params.push_back(std::move(p));
  }
  const double universe =
      std::max<double>(options_.default_universe,
                       static_cast<double>(observed_universe_.size()));
  return ParametricCostModel(std::move(params), universe);
}

QueryCacheView QuerySession::BuildCacheView(const FusionQuery& query) {
  const size_t num_sources = mediator_.catalog().size();
  QueryCacheView view;
  view.sq_answerable.assign(query.num_conditions(),
                            std::vector<char>(num_sources, 0));
  view.lq_cached.assign(num_sources, 0);
  for (size_t j = 0; j < num_sources; ++j) {
    // A cached relation answers lq and, by containment, every sq/sjq on it.
    const bool lq = cache_.ContainsLoad(j);
    view.lq_cached[j] = lq ? 1 : 0;
    for (size_t i = 0; i < query.num_conditions(); ++i) {
      if (lq || cache_.ContainsSelect(j, query.conditions()[i].CacheKey())) {
        view.sq_answerable[i][j] = 1;
      }
    }
  }
  return view;
}

void QuerySession::Learn(const FusionQuery& query, const OptimizedPlan& plan,
                         const ExecutionReport& report) {
  // Selections reveal exact per-(source, condition) result sizes. Walk the
  // plan's ops next to the report's per-op costs/answers: we only get set
  // *sizes* from the ledger, but the executor's witness sets give the items
  // a source returned overall, and sq answers are the targets of kSelect
  // ops — recover them by re-walking charges is fragile, so instead use
  // the ledger charges in op order for selections (items_received is the
  // answer size of that selection).
  size_t charge_idx = 0;
  const auto& charges = report.ledger.charges();
  // Ops ∅-substituted by degraded-mode execution charged their failed
  // attempts (per_op_cost > 0) but produced no successful charge — walking
  // them would misalign every later op's charge. Skip them outright.
  const std::vector<int>& degraded = report.completeness.degraded_ops;
  // Advances to the next successful sq charge (skipping failed-attempt
  // charges injected by flaky sources and non-selection kinds).
  auto next_select_charge = [&]() -> const Charge* {
    while (charge_idx < charges.size()) {
      const Charge& c = charges[charge_idx++];
      if (c.kind == ChargeKind::kSelect &&
          c.detail.rfind("FAILED", 0) != 0) {
        return &c;
      }
    }
    return nullptr;
  };
  for (size_t k = 0; k < plan.plan.ops().size(); ++k) {
    const PlanOp& op = plan.plan.ops()[k];
    if (op.kind != PlanOpKind::kSelect) continue;
    // Cache hits and lazily skipped selections issue no charge; there is
    // nothing new to learn from them.
    if (k >= report.per_op_cost.size() || report.per_op_cost[k] <= 0.0) {
      continue;
    }
    if (std::find(degraded.begin(), degraded.end(), static_cast<int>(k)) !=
        degraded.end()) {
      continue;
    }
    const Charge* charge = next_select_charge();
    if (charge == nullptr) break;
    const std::string key =
        query.conditions()[static_cast<size_t>(op.cond)].ToString();
    observed_result_size_[{static_cast<size_t>(op.source), key}] =
        static_cast<double>(charge->items_received);
  }
  // Loads reveal cardinalities; witness sets grow the universe bound.
  for (const Charge& c : charges) {
    if (c.kind == ChargeKind::kLoad) {
      // Map the source name back to its index.
      const auto idx = mediator_.catalog().IndexOf(c.source);
      if (idx.ok()) {
        observed_cardinality_[*idx] = static_cast<double>(c.items_received);
      }
    }
  }
  for (const ItemSet& items : report.per_source_items) {
    observed_universe_ = ItemSet::Union(observed_universe_, items);
  }
}

Result<QueryAnswer> QuerySession::Answer(const FusionQuery& raw_query) {
  const FusionQuery query = raw_query.Canonicalized();
  FUSION_ASSIGN_OR_RETURN(const Schema schema,
                          mediator_.catalog().CommonSchema());
  FUSION_RETURN_IF_ERROR(query.Validate(schema));

  Result<OptimizedPlan> optimized_or = [&]() -> Result<OptimizedPlan> {
    ScopedSpan span(SpanCategory::kPhase, "optimize");
    if (span.active()) {
      span.AddAttr("strategy", OptimizerStrategyName(options_.strategy));
      span.AddAttr("statistics", "session-learned");
    }
    FUSION_ASSIGN_OR_RETURN(const ParametricCostModel model,
                            BuildSessionModel(query));
    // Cache-aware re-optimization: calls the memo can already answer are
    // priced at zero, so a repeated (or overlapping) query plans *through*
    // the cache instead of re-deriving the cold-cache plan.
    if (options_.cache_aware_optimization) {
      const QueryCacheView view = BuildCacheView(query);
      if (view.AnySet()) {
        if (span.active()) span.AddAttr("cache_aware", "true");
        const CacheAwareCostModel cached_model(model, view);
        return RunOptimizer(cached_model, options_.strategy, options_.postopt);
      }
    }
    return RunOptimizer(model, options_.strategy, options_.postopt);
  }();
  FUSION_ASSIGN_OR_RETURN(OptimizedPlan optimized, std::move(optimized_or));

  ExecOptions exec = options_.execution;
  exec.cache = &cache_;
  if (exec.health == nullptr) exec.health = &health_;
  Result<ExecutionReport> execution_or = [&]() -> Result<ExecutionReport> {
    ScopedSpan span(SpanCategory::kPhase, "execute");
    if (span.active()) {
      span.AddAttr("ops", optimized.plan.num_ops());
      if (exec.on_source_failure == SourceFailurePolicy::kDegrade) {
        span.AddAttr("on_source_failure", "degrade");
      }
    }
    return ExecutePlan(optimized.plan, mediator_.catalog(), query, exec);
  }();
  FUSION_ASSIGN_OR_RETURN(ExecutionReport execution, std::move(execution_or));

  {
    ScopedSpan span(SpanCategory::kPhase, "learn");
    Learn(query, optimized, execution);
  }

  QueryAnswer answer;
  answer.items = execution.answer;
  answer.optimized = std::move(optimized);
  answer.execution = std::move(execution);
  return answer;
}

Result<QueryAnswer> QuerySession::AnswerSql(const std::string& sql) {
  FUSION_ASSIGN_OR_RETURN(FusionQuery query, ParseFusionQuery(sql));
  return Answer(query);
}

}  // namespace fusion
