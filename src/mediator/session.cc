#include "mediator/session.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "query/parser.h"
#include "source/simulated_source.h"

namespace fusion {

Result<ParametricCostModel> QuerySession::BuildSessionModel(
    const FusionQuery& query) {
  const SourceCatalog& catalog = mediator_.catalog();
  const size_t m = query.num_conditions();
  std::vector<SourceParams> params;
  params.reserve(catalog.size());
  for (size_t j = 0; j < catalog.size(); ++j) {
    const SourceWrapper& src = catalog.source(j);
    SourceParams p;
    p.capabilities = src.capabilities();
    // Network parameters: take the simulated source's profile when exposed;
    // otherwise keep the NetworkProfile defaults as priors (a deployment
    // would calibrate them — see stats/calibration).
    if (const SimulatedSource* sim = src.AsSimulated()) {
      p.network = sim->network();
    }
    const auto card_it = observed_cardinality_.find(j);
    p.cardinality = card_it != observed_cardinality_.end()
                        ? card_it->second
                        : options_.default_cardinality;
    p.result_size.reserve(m);
    for (const Condition& cond : query.conditions()) {
      const auto it =
          observed_result_size_.find({j, cond.ToString()});
      p.result_size.push_back(it != observed_result_size_.end()
                                  ? it->second
                                  : p.cardinality *
                                        options_.default_selectivity);
    }
    params.push_back(std::move(p));
  }
  const double universe =
      std::max<double>(options_.default_universe,
                       static_cast<double>(observed_universe_.size()));
  return ParametricCostModel(std::move(params), universe);
}

namespace {

/// Plan-memo key: the memo is consulted only when the caller asks for the
/// same strategy (a strategy-comparison driver must get the strategy it
/// asked for, not whatever plan happens to be anchored).
std::string PlanMemoKey(const FusionQuery& query, OptimizerStrategy strategy) {
  return std::string(OptimizerStrategyName(strategy)) + "|" + query.ToString();
}

}  // namespace

QueryCacheView QuerySession::BuildCacheView(const FusionQuery& query) {
  const size_t num_sources = mediator_.catalog().size();
  QueryCacheView view;
  view.sq_answerable.assign(query.num_conditions(),
                            std::vector<char>(num_sources, 0));
  view.sjq_answerable.assign(query.num_conditions(),
                             std::vector<char>(num_sources, 0));
  view.lq_cached.assign(num_sources, 0);
  for (size_t j = 0; j < num_sources; ++j) {
    // A cached relation answers lq and, by containment, every sq/sjq on it.
    const bool lq = cache_.ContainsLoad(j);
    view.lq_cached[j] = lq ? 1 : 0;
    for (size_t i = 0; i < query.num_conditions(); ++i) {
      const std::string key = query.conditions()[i].CacheKey();
      if (lq || cache_.ContainsSelect(j, key)) {
        view.sq_answerable[i][j] = 1;
        view.sjq_answerable[i][j] = 1;
      } else if (cache_.ContainsSemiJoin(j, key)) {
        // A prior semijoin on this (condition, source) anchors containment
        // derivation: a repeated query's candidates are answerable locally.
        view.sjq_answerable[i][j] = 1;
      }
    }
  }
  return view;
}

void QuerySession::Learn(const FusionQuery& query, const OptimizedPlan& plan,
                         const ExecutionReport& report) {
  std::lock_guard<std::mutex> lock(knowledge_mutex_);
  // Selections reveal exact per-(source, condition) result sizes. Walk the
  // plan's ops next to the report's per-op costs/answers: we only get set
  // *sizes* from the ledger, but the executor's witness sets give the items
  // a source returned overall, and sq answers are the targets of kSelect
  // ops — recover them by re-walking charges is fragile, so instead use
  // the ledger charges in op order for selections (items_received is the
  // answer size of that selection).
  size_t charge_idx = 0;
  const auto& charges = report.ledger.charges();
  // Ops ∅-substituted by degraded-mode execution charged their failed
  // attempts (per_op_cost > 0) but produced no successful charge — walking
  // them would misalign every later op's charge. Skip them outright.
  const std::vector<int>& degraded = report.completeness.degraded_ops;
  // Advances to the next successful sq charge (skipping failed-attempt
  // charges injected by flaky sources and non-selection kinds).
  auto next_select_charge = [&]() -> const Charge* {
    while (charge_idx < charges.size()) {
      const Charge& c = charges[charge_idx++];
      if (c.kind == ChargeKind::kSelect &&
          c.detail.rfind("FAILED", 0) != 0) {
        return &c;
      }
    }
    return nullptr;
  };
  for (size_t k = 0; k < plan.plan.ops().size(); ++k) {
    const PlanOp& op = plan.plan.ops()[k];
    if (op.kind != PlanOpKind::kSelect) continue;
    // Cache hits and lazily skipped selections issue no charge; there is
    // nothing new to learn from them.
    if (k >= report.per_op_cost.size() || report.per_op_cost[k] <= 0.0) {
      continue;
    }
    if (std::find(degraded.begin(), degraded.end(), static_cast<int>(k)) !=
        degraded.end()) {
      continue;
    }
    const Charge* charge = next_select_charge();
    if (charge == nullptr) break;
    const std::string key =
        query.conditions()[static_cast<size_t>(op.cond)].ToString();
    observed_result_size_[{static_cast<size_t>(op.source), key}] =
        static_cast<double>(charge->items_received);
  }
  // Loads reveal cardinalities; witness sets grow the universe bound.
  for (const Charge& c : charges) {
    if (c.kind == ChargeKind::kLoad) {
      // Map the source name back to its index.
      const auto idx = mediator_.catalog().IndexOf(c.source);
      if (idx.ok()) {
        observed_cardinality_[*idx] = static_cast<double>(c.items_received);
      }
    }
  }
  for (const ItemSet& items : report.per_source_items) {
    observed_universe_ = ItemSet::Union(observed_universe_, items);
  }
}

Result<QueryAnswer> QuerySession::Answer(const FusionQuery& raw_query,
                                         const CallControls& controls) {
  const FusionQuery query = raw_query.Canonicalized();
  FUSION_ASSIGN_OR_RETURN(const Schema schema,
                          mediator_.catalog().CommonSchema());
  FUSION_RETURN_IF_ERROR(query.Validate(schema));

  const OptimizerStrategy strategy =
      controls.strategy.value_or(options_.strategy);
  const std::optional<StatisticsMode> statistics =
      controls.statistics.has_value() ? controls.statistics
                                      : options_.statistics;

  CostLedger probe_ledger;
  Result<OptimizedPlan> optimized_or = [&]() -> Result<OptimizedPlan> {
    ScopedSpan span(SpanCategory::kPhase, "optimize");
    if (span.active()) {
      span.AddAttr("strategy", OptimizerStrategyName(strategy));
      span.AddAttr("statistics", statistics.has_value()
                                     ? StatisticsModeName(*statistics)
                                     : "session-learned");
    }
    // Build the base model: either a snapshot of the session-learned
    // statistics (under the knowledge mutex — concurrent learners see a
    // consistent view) or the mediator's fixed-mode model (oracle /
    // parametric / calibrated; probes metered into probe_ledger).
    std::unique_ptr<CostModel> fixed_model;
    std::optional<ParametricCostModel> session_model;
    if (statistics.has_value()) {
      MediatorOptions mopts;
      mopts.strategy = strategy;
      mopts.statistics = *statistics;
      mopts.calibration = options_.calibration;
      mopts.postopt = options_.postopt;
      FUSION_ASSIGN_OR_RETURN(
          fixed_model, mediator_.BuildCostModel(query, mopts, &probe_ledger));
    } else {
      std::lock_guard<std::mutex> lock(knowledge_mutex_);
      FUSION_ASSIGN_OR_RETURN(ParametricCostModel model,
                              BuildSessionModel(query));
      session_model.emplace(std::move(model));
    }
    const CostModel& model = fixed_model != nullptr
                                 ? *fixed_model
                                 : static_cast<const CostModel&>(
                                       *session_model);
    // Cache-aware re-optimization: calls the memo can already answer are
    // priced at zero, so a repeated (or overlapping) query plans *through*
    // the cache instead of re-deriving the cold-cache plan.
    if (options_.use_cache && options_.cache_aware_optimization) {
      const QueryCacheView view = BuildCacheView(query);
      if (view.AnySet()) {
        if (span.active()) span.AddAttr("cache_aware", "true");
        const CacheAwareCostModel cached_model(model, view);
        FUSION_ASSIGN_OR_RETURN(
            OptimizedPlan fresh,
            RunOptimizer(cached_model, strategy, options_.postopt));
        // Plan memo: re-running the plan this exact query executed last
        // time turns every call into an exact cache hit, while a *fresh*
        // plan with the same (often zero) estimate may order its semijoin
        // chains differently and miss the cached anchors. So when the
        // remembered plan re-prices at least as cheap as the fresh one,
        // prefer it — ties must break toward the anchored plan.
        std::lock_guard<std::mutex> lock(knowledge_mutex_);
        const auto it = plan_memo_.find(PlanMemoKey(query, strategy));
        if (it != plan_memo_.end()) {
          const auto estimate = EstimatePlanCost(it->second.plan, cached_model);
          if (estimate.ok() && estimate->total <= fresh.estimated_cost) {
            OptimizedPlan remembered = it->second;
            remembered.estimated_cost = estimate->total;
            if (span.active()) span.AddAttr("plan_memo", "reused");
            return remembered;
          }
        }
        return fresh;
      }
    }
    return RunOptimizer(model, strategy, options_.postopt);
  }();
  FUSION_ASSIGN_OR_RETURN(OptimizedPlan optimized, std::move(optimized_or));

  ExecOptions exec = options_.execution;
  if (options_.use_cache) exec.cache = &cache_;
  if (exec.health == nullptr) exec.health = &health_;
  if (controls.cancel != nullptr) exec.cancel = controls.cancel;
  if (controls.deadline_seconds >= 0.0) {
    exec.deadline_seconds = controls.deadline_seconds;
  }
  Result<ExecutionReport> execution_or = [&]() -> Result<ExecutionReport> {
    ScopedSpan span(SpanCategory::kPhase, "execute");
    if (span.active()) {
      span.AddAttr("ops", optimized.plan.num_ops());
      if (exec.on_source_failure == SourceFailurePolicy::kDegrade) {
        span.AddAttr("on_source_failure", "degrade");
      }
    }
    return ExecutePlan(optimized.plan, mediator_.catalog(), query, exec);
  }();
  FUSION_ASSIGN_OR_RETURN(ExecutionReport execution, std::move(execution_or));

  {
    ScopedSpan span(SpanCategory::kPhase, "learn");
    Learn(query, optimized, execution);
  }
  if (options_.use_cache && options_.cache_aware_optimization) {
    // Remember the executed plan for this (query, strategy): its source
    // calls are now cached under exactly its candidate sets, so replaying
    // it on the next identical query is free.
    std::lock_guard<std::mutex> lock(knowledge_mutex_);
    const std::string key = PlanMemoKey(query, strategy);
    if (plan_memo_.find(key) == plan_memo_.end()) {
      plan_memo_order_.push_back(key);
      if (plan_memo_order_.size() > kPlanMemoCapacity) {
        plan_memo_.erase(plan_memo_order_.front());
        plan_memo_order_.pop_front();
      }
    }
    plan_memo_[key] = optimized;
  }

  QueryAnswer answer;
  answer.items = execution.answer;
  answer.optimized = std::move(optimized);
  answer.execution = std::move(execution);
  answer.calibration_cost = probe_ledger.total();
  return answer;
}

Result<QueryAnswer> QuerySession::AnswerSql(const std::string& sql,
                                            const CallControls& controls) {
  FUSION_ASSIGN_OR_RETURN(FusionQuery query, ParseFusionQuery(sql));
  return Answer(query, controls);
}

}  // namespace fusion
