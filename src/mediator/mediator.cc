#include "mediator/mediator.h"

#include "cost/oracle_cost_model.h"
#include "exec/exec_internal.h"
#include "mediator/fetch_planner.h"
#include "obs/trace.h"
#include "optimizer/filter.h"
#include "optimizer/greedy.h"
#include "optimizer/postopt.h"
#include "optimizer/sj.h"
#include "optimizer/sja.h"
#include "query/parser.h"
#include "stats/oracle_stats.h"

namespace fusion {
namespace {

/// One record-fetch source call, traced and counted like the executor's
/// sq/sjq/lq calls (exactly one `source_call` span per ledger charge).
Result<Relation> TracedFetch(SourceWrapper& source,
                             const std::string& merge_attribute,
                             const ItemSet& items, CostLedger* ledger) {
  ScopedSpan span(SpanCategory::kSourceCall, "fetch");
  const double cost_before = ledger != nullptr ? ledger->total() : 0.0;
  auto result = source.FetchRecords(merge_attribute, items, ledger);
  const double cost_delta =
      ledger != nullptr ? ledger->total() - cost_before : -1.0;
  if (span.active()) {
    span.AddAttr("source", source.name());
    if (ledger != nullptr) span.AddAttr("cost", cost_delta);
    if (!result.ok()) span.AddAttr("error", result.status().ToString());
  }
  exec_internal::CountSourceCall("fetch", cost_delta);
  return result;
}

}  // namespace

const char* OptimizerStrategyName(OptimizerStrategy s) {
  switch (s) {
    case OptimizerStrategy::kFilter:
      return "FILTER";
    case OptimizerStrategy::kSj:
      return "SJ";
    case OptimizerStrategy::kSja:
      return "SJA";
    case OptimizerStrategy::kSjaPlus:
      return "SJA+";
    case OptimizerStrategy::kGreedySja:
      return "SJA-G";
    case OptimizerStrategy::kGreedySjaPlus:
      return "SJA-G+";
  }
  return "?";
}

const char* StatisticsModeName(StatisticsMode m) {
  switch (m) {
    case StatisticsMode::kOracle:
      return "oracle";
    case StatisticsMode::kOracleParametric:
      return "oracle-parametric";
    case StatisticsMode::kCalibrated:
      return "calibrated";
  }
  return "?";
}

Result<OptimizedPlan> RunOptimizer(const CostModel& model,
                                   OptimizerStrategy strategy,
                                   const PostOptOptions& postopt) {
  switch (strategy) {
    case OptimizerStrategy::kFilter:
      return OptimizeFilter(model);
    case OptimizerStrategy::kSj:
      return OptimizeSj(model);
    case OptimizerStrategy::kSja:
      return OptimizeSja(model);
    case OptimizerStrategy::kSjaPlus:
      return OptimizeSjaPlus(model, postopt);
    case OptimizerStrategy::kGreedySja:
      return OptimizeGreedySja(model, GreedyOrderHeuristic::kByMinCost);
    case OptimizerStrategy::kGreedySjaPlus: {
      FUSION_ASSIGN_OR_RETURN(
          OptimizedPlan greedy,
          OptimizeGreedySja(model, GreedyOrderHeuristic::kByMinCost));
      return PostOptimizeStructure(model, greedy.structure, postopt,
                                   greedy.algorithm);
    }
  }
  return Status::InvalidArgument("unknown optimizer strategy");
}

Result<std::unique_ptr<CostModel>> Mediator::BuildCostModel(
    const FusionQuery& query, const MediatorOptions& options,
    CostLedger* probe_ledger) {
  FUSION_ASSIGN_OR_RETURN(const Schema schema, catalog_.CommonSchema());
  FUSION_RETURN_IF_ERROR(query.Validate(schema));

  if (options.statistics == StatisticsMode::kCalibrated) {
    FUSION_ASSIGN_OR_RETURN(
        ParametricCostModel model,
        CalibrateBySampling(catalog_, query, options.calibration,
                            probe_ledger));
    return std::unique_ptr<CostModel>(
        new ParametricCostModel(std::move(model)));
  }

  // Oracle modes require simulated sources.
  std::vector<const SimulatedSource*> simulated;
  simulated.reserve(catalog_.size());
  for (size_t j = 0; j < catalog_.size(); ++j) {
    const SimulatedSource* s = catalog_.source(j).AsSimulated();
    if (s == nullptr) {
      return Status::InvalidArgument(
          "oracle statistics need simulated sources; source '" +
          catalog_.source(j).name() + "' is not simulated");
    }
    simulated.push_back(s);
  }
  if (options.statistics == StatisticsMode::kOracle) {
    FUSION_ASSIGN_OR_RETURN(OracleCostModel model,
                            OracleCostModel::Create(simulated, query));
    return std::unique_ptr<CostModel>(new OracleCostModel(std::move(model)));
  }
  FUSION_ASSIGN_OR_RETURN(ParametricCostModel model,
                          OracleParametricModel(simulated, query));
  return std::unique_ptr<CostModel>(new ParametricCostModel(std::move(model)));
}

Result<OptimizedPlan> Mediator::Optimize(const FusionQuery& raw_query,
                                         const MediatorOptions& options) {
  const FusionQuery query = raw_query.Canonicalized();
  FUSION_ASSIGN_OR_RETURN(std::unique_ptr<CostModel> model,
                          BuildCostModel(query, options, nullptr));
  return RunOptimizer(*model, options.strategy, options.postopt);
}

Result<QueryAnswer> Mediator::Answer(const FusionQuery& raw_query,
                                     const MediatorOptions& options) {
  const FusionQuery query = raw_query.Canonicalized();
  CostLedger probe_ledger;
  Result<OptimizedPlan> optimized_or = [&]() -> Result<OptimizedPlan> {
    ScopedSpan span(SpanCategory::kPhase, "optimize");
    if (span.active()) {
      span.AddAttr("strategy", OptimizerStrategyName(options.strategy));
      span.AddAttr("statistics", StatisticsModeName(options.statistics));
    }
    FUSION_ASSIGN_OR_RETURN(std::unique_ptr<CostModel> model,
                            BuildCostModel(query, options, &probe_ledger));
    return RunOptimizer(*model, options.strategy, options.postopt);
  }();
  FUSION_ASSIGN_OR_RETURN(OptimizedPlan optimized, std::move(optimized_or));
  Result<ExecutionReport> execution_or = [&]() -> Result<ExecutionReport> {
    ScopedSpan span(SpanCategory::kPhase, "execute");
    if (span.active()) {
      span.AddAttr("ops", optimized.plan.num_ops());
      span.AddAttr("parallelism",
                   static_cast<int64_t>(options.execution.parallelism));
    }
    return ExecutePlan(optimized.plan, catalog_, query, options.execution);
  }();
  FUSION_ASSIGN_OR_RETURN(ExecutionReport execution, std::move(execution_or));
  QueryAnswer answer;
  answer.items = execution.answer;
  answer.optimized = std::move(optimized);
  answer.execution = std::move(execution);
  answer.calibration_cost = probe_ledger.total();
  return answer;
}

Result<QueryAnswer> Mediator::AnswerSql(const std::string& sql,
                                        const MediatorOptions& options) {
  FUSION_ASSIGN_OR_RETURN(FusionQuery query, ParseFusionQuery(sql));
  return Answer(query, options);
}

Result<Relation> Mediator::FetchRecordsFromWitnesses(
    const FusionQuery& query, const ExecutionReport& phase1,
    CostLedger* ledger) {
  if (phase1.per_source_items.size() != catalog_.size()) {
    return Status::InvalidArgument(
        "phase-1 report does not match this catalog");
  }
  ScopedSpan span(SpanCategory::kPhase, "fetch");
  FUSION_ASSIGN_OR_RETURN(
      const std::vector<FetchAssignment> assignments,
      PlanWitnessFetch(phase1.per_source_items, phase1.answer));
  if (span.active()) span.AddAttr("assignments", assignments.size());
  FUSION_ASSIGN_OR_RETURN(const Schema schema, catalog_.CommonSchema());
  Relation out(schema);
  for (const FetchAssignment& a : assignments) {
    FUSION_ASSIGN_OR_RETURN(
        Relation part,
        TracedFetch(catalog_.source(a.source), query.merge_attribute(),
                    a.items, ledger));
    FUSION_ASSIGN_OR_RETURN(out, Relation::Union(out, part));
  }
  return out;
}

Result<Relation> Mediator::FetchRecords(const FusionQuery& query,
                                        const ItemSet& items,
                                        CostLedger* ledger) {
  ScopedSpan span(SpanCategory::kPhase, "fetch");
  FUSION_ASSIGN_OR_RETURN(const Schema schema, catalog_.CommonSchema());
  Relation out(schema);
  for (size_t j = 0; j < catalog_.size(); ++j) {
    FUSION_ASSIGN_OR_RETURN(
        Relation part,
        TracedFetch(catalog_.source(j), query.merge_attribute(), items,
                    ledger));
    FUSION_ASSIGN_OR_RETURN(out, Relation::Union(out, part));
  }
  return out;
}

}  // namespace fusion
